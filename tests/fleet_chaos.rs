//! End-to-end chaos test for the campaign fleet (`ddt serve`).
//!
//! Spawns the real binary: a supervisor sharding the frontier across real
//! worker subprocesses, with the built-in chaos harness SIGKILL-ing workers
//! mid-campaign. The acceptance property is the strong one from the fleet
//! design: the final report's schedule-independent census — bugs (keys,
//! classes, occurrences), coverage, path counts, instructions, symbols —
//! is **identical** to a single-process `ddt test` run, and the supervisor
//! log shows lease reassignment with backoff rather than an abort.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::Command;

use serde::Value;

fn ddt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddt"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ddt-fleet-chaos-{}-{name}", std::process::id()))
}

/// The workspace's offline `serde` stand-in exposes reports as a
/// [`Value`] tree; this wrapper lets `from_slice` hand the tree back raw.
struct Raw(Value);

impl serde::Deserialize for Raw {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Raw(v.clone()))
    }
}

fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("field {key:?} missing")),
        other => panic!("expected a map for {key:?}, got {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        other => panic!("expected an integer, got {other:?}"),
    }
}

fn load_json(path: &Path) -> Value {
    let bytes =
        std::fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let raw: Raw = serde_json::from_slice(&bytes).expect("valid report JSON");
    raw.0
}

/// The schedule-independent slice of a JSON report: bugs, coverage, path
/// census, instructions, symbols, faults. Solver/cache counters are
/// deliberately excluded — they depend on which worker explored which
/// shard with how warm a cache.
fn census(report: &Value) -> (Vec<(String, String, u64)>, Vec<u64>) {
    let Value::List(bug_list) = get(report, "bugs") else { panic!("bugs not a list") };
    let mut bugs: Vec<(String, String, u64)> = bug_list
        .iter()
        .map(|b| {
            (
                get(b, "key").as_str().expect("key").to_string(),
                get(b, "class").as_str().expect("class").to_string(),
                as_u64(get(b, "occurrences")),
            )
        })
        .collect();
    bugs.sort();
    let s = get(report, "stats");
    let scalars = [
        as_u64(get(report, "covered_blocks")),
        as_u64(get(report, "total_blocks")),
        as_u64(get(s, "paths_started")),
        as_u64(get(s, "paths_completed")),
        as_u64(get(s, "paths_faulted")),
        as_u64(get(s, "paths_infeasible")),
        as_u64(get(s, "paths_budget_killed")),
        as_u64(get(s, "paths_step_budget_killed")),
        as_u64(get(s, "insns")),
        as_u64(get(s, "symbols")),
        as_u64(get(s, "faults_pool")),
        as_u64(get(s, "faults_shared")),
        as_u64(get(s, "faults_map")),
        as_u64(get(s, "faults_registration")),
        as_u64(get(s, "faults_registry")),
    ];
    (bugs, scalars.to_vec())
}

/// A clean driver surviving two worker SIGKILLs still gets a clean verdict
/// (exit 0) — degraded infrastructure must never fabricate or hide bugs.
#[test]
fn chaos_fleet_on_clean_driver_exits_zero() {
    let status_file = tmp("clean-status.json");
    let out = ddt()
        .args(["serve", "clean_nic", "--workers", "4", "--chaos-kill", "2", "--status-file"])
        .arg(&status_file)
        .output()
        .expect("ddt serve runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "clean driver under chaos must exit 0\nstderr:\n{stderr}");
    assert!(
        stderr.contains("chaos harness killing worker"),
        "the chaos kills actually happened:\n{stderr}"
    );
    // The live status file survives to the end and is valid JSON with the
    // lease table and per-worker telemetry.
    let status = load_json(&status_file);
    assert!(as_u64(get(&status, "shards_total")) > 0);
    assert_eq!(as_u64(get(&status, "shards_pending")), 0, "campaign drained");
    let Value::List(workers) = get(&status, "workers") else { panic!("workers not a list") };
    assert!(workers.len() >= 4, "at least the initial fleet is listed");
    get(&workers[0], "states_per_sec"); // Per-worker rate is present.
    let _ = std::fs::remove_file(&status_file);
}

/// The acceptance criterion: with a buggy driver, SIGKILL-ing workers
/// mid-campaign changes nothing about the final report. The supervisor log
/// must show reassignment with backoff, not an abort.
#[test]
fn chaos_fleet_report_matches_serial_baseline() {
    let serial_json = tmp("serial.json");
    let chaos_json = tmp("chaos.json");

    let serial = ddt()
        .args(["test", "pcnet", "--json"])
        .arg(&serial_json)
        .output()
        .expect("ddt test runs");
    assert_eq!(serial.status.code(), Some(1), "pcnet has bugs");

    let chaos = ddt()
        .args([
            "serve",
            "pcnet",
            "--workers",
            "4",
            "--shard-factor",
            "6",
            "--chaos-kill",
            "2",
            "--json",
        ])
        .arg(&chaos_json)
        .output()
        .expect("ddt serve runs");
    let stderr = String::from_utf8_lossy(&chaos.stderr);
    assert_eq!(
        chaos.status.code(),
        Some(1),
        "fleet reaches the same buggy verdict\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("chaos harness killing worker"),
        "chaos kills happened:\n{stderr}"
    );
    assert!(
        stderr.contains("backoff"),
        "lost leases are reassigned with backoff, not dropped:\n{stderr}"
    );
    assert!(
        !stderr.contains("quarantined"),
        "transient worker death must not quarantine shards:\n{stderr}"
    );

    let baseline = census(&load_json(&serial_json));
    let chaos_report = load_json(&chaos_json);
    assert_eq!(
        baseline,
        census(&chaos_report),
        "the chaos fleet report must be identical to the serial baseline"
    );

    let health = get(&chaos_report, "health");
    assert!(as_u64(get(health, "fleet_workers_lost")) >= 2);
    assert_eq!(as_u64(get(health, "fleet_shards_quarantined")), 0);

    let _ = std::fs::remove_file(&serial_json);
    let _ = std::fs::remove_file(&chaos_json);
}

/// A poisoned shard (every attempt fails, on every worker) is quarantined
/// to the trace store after bounded retries; the rest of the campaign
/// completes and the quarantine record is on disk.
#[test]
fn poisoned_shard_is_quarantined_not_fatal() {
    let trace_dir = tmp("quarantine-store");
    let _ = std::fs::remove_dir_all(&trace_dir);
    let out = ddt()
        .args(["serve", "pcnet", "--workers", "2", "--max-retries", "1", "--trace-dir"])
        .arg(&trace_dir)
        .env("DDT_FLEET_TEST_FAIL_SHARD", "0")
        .output()
        .expect("ddt serve runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The campaign completes with a verdict (0 or 1 depending on which
    // shards survived) — a poisoned shard must not abort the run.
    assert!(
        matches!(out.status.code(), Some(0) | Some(1)),
        "fleet degrades gracefully\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("quarantined after"),
        "the poisoned shard was quarantined:\n{stderr}"
    );
    let qdir = trace_dir.join("quarantine");
    let records: Vec<_> = std::fs::read_dir(&qdir)
        .expect("quarantine directory exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!records.is_empty(), "quarantine record persisted");
    let bytes = std::fs::read(&records[0]).unwrap();
    let q = ddt::trace::decode_quarantine(&bytes).expect("record decodes");
    assert_eq!(q.driver, "pcnet");
    assert!(q.attempts >= 2, "initial attempt plus retries");
    let _ = std::fs::remove_dir_all(&trace_dir);
}
