//! Strategy-differential harness: every search strategy must find the
//! exact same Table 2 bug set.
//!
//! The search strategy decides *which* pending state runs next; it must
//! never decide *what* the exploration finds. This harness runs every
//! bundled driver under the full flag matrix — each [`Strategy`], with and
//! without fingerprint pruning, serially and in parallel and across an
//! interrupt/resume — and demands the same bug-key set as the FIFO/serial/
//! no-prune baseline, which itself must match the Table 2 row counts.
//!
//! Pruning earns its keep here too: it may drop duplicate states (and the
//! health section counts them), but it must never drop a bug.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ddt::{CheckpointPolicy, Ddt, DdtConfig, DriverUnderTest, Report, Strategy};

/// Table 2, row by row (clean_nic is the no-false-positives control).
const EXPECTED: &[(&str, usize)] = &[
    ("rtl8029", 5),
    ("pcnet", 2),
    ("pro1000", 1),
    ("pro100", 1),
    ("ac97", 1),
    ("ensoniq", 4),
    ("clean_nic", 0),
];

fn dut_by_name(name: &str) -> DriverUnderTest {
    if name == "clean_nic" {
        return DriverUnderTest::from_spec(&ddt::drivers::clean_driver());
    }
    DriverUnderTest::from_spec(&ddt::drivers::driver_by_name(name).expect("bundled"))
}

fn config_for(strategy: Strategy, prune: bool) -> DdtConfig {
    let mut config = DdtConfig::default();
    config.strategy = strategy;
    config.prune = prune;
    config
}

fn bug_keys(report: &Report) -> Vec<String> {
    let mut keys: Vec<String> = report.bugs.iter().map(|b| b.key.clone()).collect();
    keys.sort_unstable();
    keys
}

/// The full serial matrix for one driver: every strategy × {prune on, off}
/// must match the FIFO/no-prune baseline bug set, and the baseline must
/// match the Table 2 count.
fn serial_matrix(name: &str, expected_bugs: usize) {
    let dut = dut_by_name(name);
    let baseline = Ddt::new(config_for(Strategy::Fifo, false)).test(&dut);
    assert_eq!(
        baseline.bugs.len(),
        expected_bugs,
        "{name}: FIFO baseline missed the Table 2 count: {:#?}",
        baseline.bugs
    );
    let want = bug_keys(&baseline);
    for &strategy in Strategy::ALL.iter() {
        for prune in [false, true] {
            if strategy == Strategy::Fifo && !prune {
                continue; // that *is* the baseline
            }
            let report = Ddt::new(config_for(strategy, prune)).test(&dut);
            assert_eq!(
                bug_keys(&report),
                want,
                "{name}: {} (prune={prune}) diverged from the baseline bug set",
                strategy.name()
            );
            // Pruning never hides itself: the health section owns the count
            // and stays pristine (dropping duplicates is not degradation).
            if prune {
                assert!(report.health.pristine(), "{name}: pruning broke pristine()");
            } else {
                assert_eq!(
                    report.health.states_pruned, 0,
                    "{name}: pruned without --prune"
                );
            }
        }
    }
}

#[test]
fn serial_matrix_rtl8029() {
    serial_matrix("rtl8029", 5);
}

#[test]
fn serial_matrix_pcnet() {
    serial_matrix("pcnet", 2);
}

#[test]
fn serial_matrix_pro1000() {
    serial_matrix("pro1000", 1);
}

#[test]
fn serial_matrix_pro100() {
    serial_matrix("pro100", 1);
}

#[test]
fn serial_matrix_ac97() {
    serial_matrix("ac97", 1);
}

#[test]
fn serial_matrix_ensoniq() {
    serial_matrix("ensoniq", 4);
}

#[test]
fn serial_matrix_clean_nic_stays_clean() {
    serial_matrix("clean_nic", 0);
}

/// Parallel workers under every guided strategy (and pruning) still land on
/// the serial baseline's bug set — scheduling noise may reorder discovery,
/// never change it.
#[test]
fn parallel_matrix_matches_serial_baseline() {
    for &(name, expected_bugs) in &[("pcnet", 2usize), ("rtl8029", 5usize)] {
        let dut = dut_by_name(name);
        let baseline = Ddt::new(config_for(Strategy::Fifo, false)).test(&dut);
        assert_eq!(baseline.bugs.len(), expected_bugs, "{name}");
        let want = bug_keys(&baseline);
        for &strategy in Strategy::ALL.iter() {
            for prune in [false, true] {
                let ddt = Ddt::new(config_for(strategy, prune));
                let report = ddt::test_parallel(&ddt, &dut, 2);
                assert_eq!(
                    bug_keys(&report),
                    want,
                    "{name}: parallel {} (prune={prune}) diverged",
                    strategy.name()
                );
            }
        }
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("ddt-searchdiff-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Interrupt + resume under every strategy (pruning on, the harder case:
/// the prune set must survive the checkpoint round-trip) reproduces the
/// uninterrupted bug set. The resume must use the *same* strategy config —
/// the campaign fingerprint refuses anything else.
#[test]
fn interrupt_resume_matrix_matches_uninterrupted() {
    let dut = dut_by_name("pcnet");
    let baseline = Ddt::new(config_for(Strategy::Fifo, false)).test(&dut);
    let want = bug_keys(&baseline);
    for &strategy in Strategy::ALL.iter() {
        let dir = tmp_dir(strategy.name());
        let flag = Arc::new(AtomicBool::new(false));
        let mut config = config_for(strategy, true);
        let mut policy = CheckpointPolicy::new(dir.clone());
        policy.every_quanta = 8;
        config.checkpoint = Some(policy);
        config.stop_flag = Some(flag.clone());
        let setter = {
            let f = flag.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                f.store(true, Ordering::Relaxed);
            })
        };
        let _partial = Ddt::new(config).test(&dut);
        setter.join().unwrap();
        let resumed = Ddt::new(config_for(strategy, true))
            .resume(&dut, &dir)
            .expect("resume under the same strategy");
        assert_eq!(
            bug_keys(&resumed),
            want,
            "{}: resume diverged from the uninterrupted bug set",
            strategy.name()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A resume under a *different* strategy than the checkpoint's must be
/// refused — the config fingerprint covers `--strategy` and `--prune`.
#[test]
fn resume_refuses_cross_strategy_checkpoint() {
    let dut = dut_by_name("clean_nic");
    let dir = tmp_dir("cross");
    let mut config = config_for(Strategy::RarestBranch, true);
    config.checkpoint = Some(CheckpointPolicy::new(dir.clone()));
    let _ = Ddt::new(config).test(&dut);
    match Ddt::new(config_for(Strategy::Fifo, false)).resume(&dut, &dir) {
        Err(ddt::CampaignError::Mismatch(_)) => {}
        other => panic!("expected Mismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// FIFO must remain the report-identity baseline: strategy plumbing is not
/// allowed to perturb the historic exploration. The default config *is*
/// FIFO/no-prune, so a default run and an explicit FIFO run must agree on
/// the full report shape, not just bugs.
#[test]
fn fifo_is_report_identical_to_default() {
    for &(name, _) in EXPECTED {
        let dut = dut_by_name(name);
        let default_run = Ddt::default().test(&dut);
        let explicit = Ddt::new(config_for(Strategy::Fifo, false)).test(&dut);
        assert_eq!(bug_keys(&default_run), bug_keys(&explicit), "{name}");
        assert_eq!(default_run.covered_blocks, explicit.covered_blocks, "{name}");
        assert_eq!(default_run.stats.insns, explicit.stats.insns, "{name}");
        assert_eq!(
            default_run.stats.paths_started, explicit.stats.paths_started,
            "{name}"
        );
        assert_eq!(
            ddt::decision_streams(&default_run.bugs),
            ddt::decision_streams(&explicit.bugs),
            "{name}: decision streams diverged"
        );
    }
}

/// Bug *classifications* survive the strategy choice too, not just the
/// dedup keys: the per-class census matches across the matrix.
#[test]
fn class_census_is_strategy_invariant() {
    let dut = dut_by_name("ensoniq");
    let census = |r: &Report| -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for b in &r.bugs {
            *m.entry(format!("{:?}", b.class)).or_insert(0) += 1;
        }
        m
    };
    let baseline = census(&Ddt::default().test(&dut));
    for &strategy in Strategy::ALL.iter() {
        let report = Ddt::new(config_for(strategy, true)).test(&dut);
        assert_eq!(census(&report), baseline, "{}", strategy.name());
    }
}
