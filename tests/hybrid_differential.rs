//! Hybrid-vs-symbolic differential harness.
//!
//! The hybrid pipeline (`ddt fuzz`) must be a strict superset of the pure
//! symbolic engine: fuzzing and escalation may *add* findings, but the final
//! frontier drain guarantees every symbolic path is still explored. Over the
//! bundled drivers that means Table 2 is fully reproduced — every signature
//! the symbolic baseline reports appears in the hybrid report too — with
//! deterministic seeded fuzzing on top.

use std::collections::BTreeSet;

use ddt::{BugClass, Ddt, DriverUnderTest, FuzzConfig, Report};

fn hybrid_config() -> FuzzConfig {
    FuzzConfig {
        // Small batches keep the harness fast; the superset guarantee comes
        // from the frontier drain, not from fuzzing volume.
        batches: 2,
        batch_size: 12,
        ..FuzzConfig::default()
    }
}

fn signatures(report: &Report) -> BTreeSet<String> {
    report.bugs.iter().map(|b| b.signature.clone()).collect()
}

fn keys(report: &Report) -> Vec<(String, String)> {
    report.bugs.iter().map(|b| (b.key.clone(), b.signature.clone())).collect()
}

/// Every bundled driver: the symbolic baseline reproduces its Table 2 row,
/// and the hybrid run finds a superset of the baseline's signatures.
#[test]
fn hybrid_is_a_superset_of_symbolic_on_every_bundled_driver() {
    for spec in ddt::drivers::drivers() {
        let dut = DriverUnderTest::from_spec(&spec);
        let tool = Ddt::default();
        let baseline = tool.test(&dut);
        assert_eq!(
            baseline.bugs.len(),
            spec.expected_bugs,
            "driver {}: symbolic baseline must match Table 2: {:#?}",
            spec.name,
            baseline.bugs
        );
        let hybrid = ddt::run_hybrid(&tool, &dut, &hybrid_config());
        let base_sigs = signatures(&baseline);
        let hybrid_sigs = signatures(&hybrid);
        let missing: Vec<&String> = base_sigs.difference(&hybrid_sigs).collect();
        assert!(
            missing.is_empty(),
            "driver {}: hybrid run lost symbolic findings {missing:?}\n\
             baseline: {:#?}\nhybrid: {:#?}",
            spec.name,
            baseline.bugs,
            hybrid.bugs
        );
        assert!(
            hybrid.covered_blocks >= baseline.covered_blocks,
            "driver {}: hybrid coverage regressed ({} < {})",
            spec.name,
            hybrid.covered_blocks,
            baseline.covered_blocks
        );
    }
}

/// Same seed, same driver, same report: the fuzzing phase is deterministic
/// end to end (SplitMix64 corpus scheduling plus a deterministic VM), so two
/// hybrid runs agree bug-for-bug.
#[test]
fn seeded_hybrid_runs_are_deterministic() {
    let spec = ddt::drivers::driver_by_name("rtl8029").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let tool = Ddt::default();
    let a = ddt::run_hybrid(&tool, &dut, &hybrid_config());
    let b = ddt::run_hybrid(&tool, &dut, &hybrid_config());
    assert_eq!(keys(&a), keys(&b), "bug sets must match key-for-key");
    assert_eq!(a.stats.fuzz_execs, b.stats.fuzz_execs);
    assert_eq!(a.stats.fuzz_insns, b.stats.fuzz_insns);
    assert_eq!(a.stats.escalations, b.stats.escalations);
    assert_eq!(a.covered_blocks, b.covered_blocks);
    // A different seed may schedule differently but must preserve the
    // symbolic superset (drain still runs).
    let other = ddt::run_hybrid(
        &tool,
        &dut,
        &FuzzConfig { seed: 0x5EED_CAFE, ..hybrid_config() },
    );
    let base = signatures(&tool.test(&dut));
    let other_sigs = signatures(&other);
    let missing: Vec<&String> = base.difference(&other_sigs).collect();
    assert!(missing.is_empty(), "reseeded hybrid lost {missing:?}");
}

/// A concretely-found bug carries a synthesized trace + decision schedule
/// good enough for the standard replayer: persist it to a trace store, load
/// it back, and reproduce the same verdict concretely.
#[test]
fn concrete_bug_persists_and_replays_to_the_same_verdict() {
    let dir = std::env::temp_dir()
        .join(format!("ddt-hybrid-diff-{}-replay", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = ddt::drivers::driver_by_name("rtl8029").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let mut config = ddt::DdtConfig::default();
    config.trace_dir = Some(dir.clone());
    let tool = Ddt::new(config);
    // Fuzz-only: everything this run reports was found concretely.
    let fz = FuzzConfig {
        escalate: false,
        quanta_per_batch: 0,
        drain_frontier: false,
        ..hybrid_config()
    };
    let report = ddt::run_hybrid(&tool, &dut, &fz);
    let crash = report
        .bugs
        .iter()
        .find(|b| b.class == BugClass::KernelCrash)
        .expect("the canned interrupt seed finds the timer crash concretely");
    assert_eq!(crash.origin, ddt::core::BugOrigin::Concrete);
    let store = ddt::trace::TraceStore::open(&dir).unwrap();
    let artifact = store.load(&crash.signature).expect("concrete bug was persisted");
    assert_eq!(artifact.manifest.origin, ddt::trace::BugOrigin::Concrete);
    match ddt::replay_artifact(&dut, &artifact) {
        ddt::ReplayOutcome::Reproduced { .. } => {}
        ddt::ReplayOutcome::NotReproduced { observed } => {
            panic!("concrete bug failed to replay: {observed}")
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Escalated findings are attributed: when fuzzing seeds the frontier, bugs
/// found on lifted states are tagged `Escalated`, never mislabeled as plain
/// symbolic discoveries of a fuzz-free run.
#[test]
fn escalation_attributes_origins_and_interleaves_quanta() {
    let spec = ddt::drivers::driver_by_name("rtl8029").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let tool = Ddt::default();
    let report = ddt::run_hybrid(&tool, &dut, &hybrid_config());
    assert!(report.stats.escalations > 0, "fuzzing found interesting inputs");
    assert!(report.stats.quanta_executed > 0, "symbolic quanta ran");
    assert!(report.stats.fuzz_execs > 0);
    // Every origin value is well-formed and at least one bug is non-symbolic
    // (the canned seeds find the timer crash and the config-handle leak
    // concretely before the drain re-finds their symbolic twins).
    assert!(
        report.bugs.iter().any(|b| b.origin != ddt::core::BugOrigin::Symbolic),
        "{:#?}",
        report.bugs
    );
}
