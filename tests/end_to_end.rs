//! End-to-end integration: the whole stack from assembly source through
//! symbolic exploration to bug reports, on fast targets.

use ddt::drivers::workload::WorkloadOp;
use ddt::drivers::DriverClass;
use ddt::{Annotations, BugClass, DdtConfig, Ddt, DriverUnderTest};

#[test]
fn clean_driver_has_no_false_positives_and_high_coverage() {
    let dut = DriverUnderTest::from_spec(&ddt::drivers::clean_driver());
    // The clean driver registers a PnP notification handler; that code is
    // only reachable when lifecycle events are delivered, so the run
    // enables the family — which must still produce zero reports.
    let config = DdtConfig {
        fault_plan: ddt::FaultPlan::for_families(&[ddt::FaultFamily::Lifecycle]),
        ..DdtConfig::default()
    };
    let report = Ddt::new(config).test(&dut);
    assert!(
        report.bugs.is_empty(),
        "false positives on the clean driver: {:?}",
        report.bugs.iter().map(|b| &b.description).collect::<Vec<_>>()
    );
    assert!(
        report.relative_coverage() > 0.9,
        "coverage too low: {:.2}",
        report.relative_coverage()
    );
    assert!(report.stats.paths_completed > 10, "exploration actually forked");
}

#[test]
fn ensoniq_finds_its_four_table2_bugs() {
    let spec = ddt::drivers::driver_by_name("ensoniq").unwrap();
    let report = Ddt::default().test(&DriverUnderTest::from_spec(&spec));
    assert_eq!(report.bugs.len(), 4, "{:#?}", report.bugs);
    assert_eq!(report.bugs_of(BugClass::SegFault).len(), 2);
    assert_eq!(report.bugs_of(BugClass::RaceCondition).len(), 2);
    // The two races are distinguished by the interrupted entry point.
    let windows: Vec<Option<String>> = report
        .bugs_of(BugClass::RaceCondition)
        .iter()
        .map(|b| b.interrupted_entry.clone())
        .collect();
    assert!(windows.contains(&Some("Initialize".into())));
    assert!(windows.contains(&Some("Send".into())));
}

#[test]
fn pcnet_leaks_are_split_by_resource_kind() {
    let spec = ddt::drivers::driver_by_name("pcnet").unwrap();
    let report = Ddt::default().test(&DriverUnderTest::from_spec(&spec));
    assert_eq!(report.bugs.len(), 2);
    assert_eq!(report.bugs_of(BugClass::MemoryLeak).len(), 1);
    assert_eq!(report.bugs_of(BugClass::ResourceLeak).len(), 1);
    // Both need the forced-allocation-failure annotation fork.
    for b in &report.bugs {
        assert!(
            b.decisions
                .iter()
                .any(|d| matches!(d, ddt::core::Decision::ForceAllocFail { .. })),
            "leak found without a forced allocation failure?"
        );
    }
}

#[test]
fn ablation_loses_annotation_dependent_bugs_but_keeps_races() {
    let spec = ddt::drivers::driver_by_name("ensoniq").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let mut cfg = DdtConfig::default();
    cfg.annotations = Annotations::disabled();
    let report = Ddt::new(cfg).test(&dut);
    assert!(
        report.bugs.iter().all(|b| b.class == BugClass::RaceCondition),
        "only race bugs survive the ablation: {:#?}",
        report.bugs
    );
    assert_eq!(report.bugs.len(), 2, "both interrupt windows are still found");
}

#[test]
fn interrupts_can_be_disabled() {
    // With no interrupt budget, the races disappear but the annotation
    // bugs remain — the two mechanisms are independent.
    let spec = ddt::drivers::driver_by_name("ensoniq").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let mut cfg = DdtConfig::default();
    cfg.interrupt_budget = 0;
    let report = Ddt::new(cfg).test(&dut);
    assert!(report.bugs_of(BugClass::RaceCondition).is_empty());
    assert_eq!(report.bugs_of(BugClass::SegFault).len(), 2);
}

#[test]
fn unknown_entry_points_are_skipped_gracefully() {
    // A driver registering only Initialize/Halt runs the full workload
    // without errors: missing handlers are skipped.
    let src = "
.name tiny
.text
DriverEntry:
    push lr
    lea  r0, table
    call @NdisMRegisterMiniport
    mov  r0, 0
    pop  lr
    ret
Initialize:
    mov  r0, 0
    ret
Halt:
    mov  r0, 0
    ret
.data
table: .word Initialize, 0, 0, 0, 0, 0, 0, Halt, 0, 0
";
    let assembled = ddt::isa::asm::assemble(src, &ddt::kernel::export_map()).unwrap();
    let dut = DriverUnderTest {
        image: assembled.image,
        class: DriverClass::Net,
        registry: vec![],
        descriptor: Default::default(),
        workload: ddt::drivers::workload::workload_for(DriverClass::Net),
    };
    let report = Ddt::default().test(&dut);
    assert!(report.bugs.is_empty());
    assert_eq!(report.stats.paths_completed, report.stats.paths_started);
}

#[test]
fn workload_can_be_customized() {
    // Only initialize + halt: the send-path bug in the custom driver below
    // is unreachable, proving the workload gates what gets exercised.
    let spec = ddt::drivers::driver_by_name("ac97").unwrap();
    let mut dut = DriverUnderTest::from_spec(&spec);
    dut.workload = vec![WorkloadOp::Initialize, WorkloadOp::Halt];
    let report = Ddt::default().test(&dut);
    assert!(
        report.bugs.is_empty(),
        "the ac97 race needs the playback workload: {:#?}",
        report.bugs
    );
}

#[test]
fn reports_serialize_roundtrip() {
    let spec = ddt::drivers::driver_by_name("pcnet").unwrap();
    let report = Ddt::default().test(&DriverUnderTest::from_spec(&spec));
    let json = serde_json::to_string(&report).unwrap();
    let back: ddt::Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back.bugs.len(), report.bugs.len());
    assert_eq!(back.driver, "pcnet");
}

#[test]
fn concretization_backtracking_reissues_kernel_calls() {
    // The bug is reachable only when the symbolic argument to KeRaiseIrql
    // is concretized to 2 (DISPATCH); the default model picks 0. DDT must
    // backtrack the concretization and repeat the call with the other
    // feasible value (§3.2).
    let src = "
.name backtrack
.text
DriverEntry:
    push lr
    lea  r0, table
    call @NdisMRegisterMiniport
    mov  r0, 0
    pop  lr
    ret
Initialize:
    push lr
    in   r1, 0x10
    and  r0, r1, 2          ; symbolic, feasible values {0, 2}
    call @KeRaiseIrql
    mov  r0, 100
    call @NdisMSleep        ; BUG: crashes iff the argument was 2
    mov  r0, 0
    call @KeLowerIrql
    mov  r0, 0
    pop  lr
    ret
Halt:
    mov  r0, 0
    ret
.data
table: .word Initialize, 0, 0, 0, 0, 0, 0, Halt, 0, 0
";
    let assembled = ddt::isa::asm::assemble(src, &ddt::kernel::export_map()).unwrap();
    let dut = DriverUnderTest {
        image: assembled.image,
        class: DriverClass::Net,
        registry: vec![],
        descriptor: Default::default(),
        workload: vec![WorkloadOp::Initialize, WorkloadOp::Halt],
    };
    let report = Ddt::default().test(&dut);
    assert_eq!(report.bugs.len(), 1, "{:#?}", report.bugs);
    assert!(report.bugs[0].description.contains("NdisMSleep"));
    assert!(
        report.bugs[0]
            .decisions
            .iter()
            .any(|d| matches!(d, ddt::core::Decision::ConcretizationBacktrack { .. })),
        "found via concretization backtracking: {:?}",
        report.bugs[0].decisions
    );
}

#[test]
fn infinite_loop_detector_flags_pure_spin() {
    let sample = ddt::drivers::samples::infinite_loop_sample();
    let built = sample.build();
    let dut = DriverUnderTest {
        image: built.image,
        class: DriverClass::Net,
        registry: vec![],
        descriptor: Default::default(),
        workload: ddt::drivers::workload::workload_for(DriverClass::Net),
    };
    let report = Ddt::default().test(&dut);
    let hangs: Vec<_> = report
        .bugs
        .iter()
        .filter(|b| b.description.contains("infinite loop"))
        .collect();
    assert_eq!(hangs.len(), 1, "{:#?}", report.bugs);
    assert!(report.stats.paths_budget_killed > 0);
}

#[test]
fn parallel_api_is_reachable_through_the_facade() {
    let spec = ddt::drivers::driver_by_name("ensoniq").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let report = ddt::test_parallel(&Ddt::default(), &dut, 3);
    assert_eq!(report.bugs.len(), 4);
}
