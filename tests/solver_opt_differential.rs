//! Differential harness for the verdict-query optimizations: independence
//! slicing, incremental solver sessions, and the lazy-feasibility stack
//! from ISSUE 10 (deferred obligation batching, the algebraic pre-blast
//! rewriter, and the racing solver portfolio).
//!
//! All of them are pure solver-time optimizations and must be
//! *semantically invisible*, exactly like the query cache: an exploration
//! with them on, off, or in any mixture must find the same bugs via the
//! same decision schedules with the same solved inputs and the same
//! coverage. This harness runs bundled drivers across the flag matrix and
//! compares the reports field by field (semantic fields only — solver
//! counters legitimately differ between modes).

use std::collections::HashMap;

use ddt::{decision_streams, Ddt, DdtConfig, DriverUnderTest, Report};

fn run_with(dut: &DriverUnderTest, tweak: impl FnOnce(&mut DdtConfig)) -> Report {
    let mut config = DdtConfig::default();
    tweak(&mut config);
    Ddt::new(config).test(dut)
}

fn run(dut: &DriverUnderTest, slicing: bool, incremental: bool, cache: bool) -> Report {
    run_with(dut, |c| {
        c.use_slicing = slicing;
        c.use_incremental = incremental;
        c.use_query_cache = cache;
    })
}

/// Asserts that two reports describe the same exploration: same bugs (by
/// stable key), same decision schedules, same solved inputs, same coverage
/// and path/instruction counts. Solver/cache counters are deliberately not
/// compared.
fn assert_semantically_equal(a: &Report, b: &Report, label: &str) {
    let mut ak: Vec<&str> = a.bugs.iter().map(|x| x.key.as_str()).collect();
    let mut bk: Vec<&str> = b.bugs.iter().map(|x| x.key.as_str()).collect();
    ak.sort_unstable();
    bk.sort_unstable();
    assert_eq!(ak, bk, "{label}: bug sets diverged");
    assert_eq!(
        decision_streams(&a.bugs),
        decision_streams(&b.bugs),
        "{label}: decision streams diverged"
    );
    let b_inputs: HashMap<&str, _> = b.bugs.iter().map(|x| (x.key.as_str(), &x.inputs)).collect();
    for bug in &a.bugs {
        assert_eq!(
            Some(&&bug.inputs),
            b_inputs.get(bug.key.as_str()),
            "{label}: solved inputs diverged for bug {}",
            bug.key
        );
    }
    assert_eq!(a.total_blocks, b.total_blocks, "{label}: total blocks");
    assert_eq!(a.covered_blocks, b.covered_blocks, "{label}: coverage diverged");
    assert_eq!(a.stats.paths_started, b.stats.paths_started, "{label}: path counts diverged");
    assert_eq!(a.stats.insns, b.stats.insns, "{label}: instruction counts diverged");
}

#[test]
fn optimization_flag_matrix_is_semantically_invisible() {
    for driver in ["rtl8029", "pcnet"] {
        let spec = ddt::drivers::driver_by_name(driver).expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let baseline = run(&dut, true, true, true); // Everything on (default).
        for (slicing, incremental, cache) in [
            (false, true, true),   // --no-slicing
            (true, false, true),   // --no-incremental
            (false, false, true),  // both hatches
            (true, true, false),   // --no-query-cache, optimizations on
            (false, false, false), // the PR-before-this-one baseline
        ] {
            let other = run(&dut, slicing, incremental, cache);
            let label = format!(
                "{driver} (slicing={slicing}, incremental={incremental}, cache={cache})"
            );
            assert_semantically_equal(&baseline, &other, &label);
        }
    }
}

/// The batch/portfolio/rewrite flag matrix, against the all-defaults
/// baseline: every hatch (and several mixtures with the pre-existing
/// hatches) must be report-invisible.
#[test]
fn lazy_batching_matrix_is_semantically_invisible() {
    for driver in ["rtl8029", "pcnet"] {
        let spec = ddt::drivers::driver_by_name(driver).expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let baseline = run_with(&dut, |_| {});
        for (batch, portfolio, rewrite, cache, incremental) in [
            (false, true, true, true, true),    // --no-batch
            (true, false, true, true, true),    // --no-portfolio
            (true, true, false, true, true),    // --no-rewrite
            (false, false, false, true, true),  // all three hatches
            (false, true, true, false, true),   // eager + uncached
            (true, true, false, false, false),  // rewrite off, cache+session off
        ] {
            let other = run_with(&dut, |c| {
                c.use_batch = batch;
                c.use_portfolio = portfolio;
                c.use_rewrite = rewrite;
                c.use_query_cache = cache;
                c.use_incremental = incremental;
            });
            let label = format!(
                "{driver} (batch={batch}, portfolio={portfolio}, rewrite={rewrite}, \
                 cache={cache}, incremental={incremental})"
            );
            assert_semantically_equal(&baseline, &other, &label);
        }
    }
}

#[test]
fn escape_hatches_really_disable_the_machinery() {
    let spec = ddt::drivers::driver_by_name("rtl8029").expect("bundled");
    let dut = DriverUnderTest::from_spec(&spec);

    let no_slicing = run(&dut, false, true, true);
    assert_eq!(no_slicing.stats.solver_sliced, 0, "--no-slicing still sliced");
    assert_eq!(no_slicing.stats.solver_slice_components, 0);

    let no_incremental = run(&dut, true, false, true);
    assert_eq!(no_incremental.stats.solver_session_probes, 0, "--no-incremental still probed");
    assert_eq!(no_incremental.stats.solver_session_resets, 0);

    let no_batch = run_with(&dut, |c| c.use_batch = false);
    assert_eq!(no_batch.stats.solver_batch_flushes, 0, "--no-batch still flushed");
    assert_eq!(no_batch.stats.solver_batched_verdicts, 0);
    assert_eq!(no_batch.stats.solver_batch_witness_hits, 0);

    let no_portfolio = run_with(&dut, |c| c.use_portfolio = false);
    assert_eq!(no_portfolio.stats.solver_portfolio_races, 0, "--no-portfolio still raced");
    assert_eq!(
        no_portfolio.stats.solver_portfolio_session_wins
            + no_portfolio.stats.solver_portfolio_fresh_wins
            + no_portfolio.stats.solver_portfolio_probe_wins,
        0
    );

    let no_rewrite = run_with(&dut, |c| c.use_rewrite = false);
    assert_eq!(no_rewrite.stats.solver_rewrite_reductions, 0, "--no-rewrite still rewrote");
}

/// The parallel explorer resolves deferred obligations at shard pop time;
/// with the whole lazy stack disabled it resolves eagerly at the fork
/// site. Bug sets must agree either way (decision streams and coverage
/// are only compared serial-vs-serial — which equivalent path first
/// exposes a bug is scheduler-dependent in a parallel run).
#[test]
fn parallel_lazy_batching_matches_eager_parallel() {
    let spec = ddt::drivers::driver_by_name("pcnet").expect("bundled");
    let dut = DriverUnderTest::from_spec(&spec);
    let on = ddt::test_parallel(&Ddt::new(DdtConfig::default()), &dut, 4);
    let mut eager = DdtConfig::default();
    eager.use_batch = false;
    eager.use_portfolio = false;
    eager.use_rewrite = false;
    let off = ddt::test_parallel(&Ddt::new(eager), &dut, 4);
    let mut ok: Vec<&str> = on.bugs.iter().map(|b| b.key.as_str()).collect();
    let mut fk: Vec<&str> = off.bugs.iter().map(|b| b.key.as_str()).collect();
    ok.sort_unstable();
    fk.sort_unstable();
    assert_eq!(ok, fk, "parallel lazy-batching diverged from eager parallel");
}

/// SIGKILL + `--resume` with the lazy-feasibility stack on. A batching
/// campaign killed mid-flight leaves deferred (`verdict_pending`) fork
/// children in the checkpointed frontier — the CAMPAIGN v3 wire format
/// round-trips them — and the resumed run must settle them to the same
/// report as both the uninterrupted batching run and an eager `--no-batch`
/// run of the same campaign.
#[cfg(unix)]
mod sigkill_resume_with_pending_obligations {
    use std::path::{Path, PathBuf};
    use std::process::{Command, Stdio};
    use std::time::{Duration, Instant};

    use serde::Value;

    fn ddt_bin() -> &'static str {
        env!("CARGO_BIN_EXE_ddt")
    }

    /// The workspace's offline `serde` stand-in exposes reports as a
    /// [`Value`] tree; this wrapper lets `from_slice` hand the tree back.
    struct Raw(Value);

    impl serde::Deserialize for Raw {
        fn from_value(v: &Value) -> Result<Self, serde::DeError> {
            Ok(Raw(v.clone()))
        }
    }

    fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
        match v {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("report field {key:?} missing")),
            other => panic!("expected a map for {key:?}, got {other:?}"),
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ddt-lazyres-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Runs `ddt test` to completion with `--json`, returning the parsed
    /// report. Exit code 1 (defects found) is success here.
    fn run_json(args: &[&str], tag: &str) -> Value {
        let json =
            std::env::temp_dir().join(format!("ddt-lazyres-{}-{tag}.json", std::process::id()));
        let _ = std::fs::remove_file(&json);
        let out = Command::new(ddt_bin())
            .args(args)
            .arg("--json")
            .arg(&json)
            .output()
            .expect("spawn ddt");
        let code = out.status.code();
        assert!(
            matches!(code, Some(0) | Some(1)),
            "ddt {args:?} exited with {code:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let bytes = std::fs::read(&json).expect("report json written");
        let _ = std::fs::remove_file(&json);
        let raw: Raw = serde_json::from_slice(&bytes).expect("report parses");
        raw.0
    }

    /// Per-bug key/class/pc/inputs/occurrences plus coverage, sorted so
    /// exploration order cannot matter.
    fn essence(report: &Value) -> (Vec<String>, String, String) {
        let Value::List(bug_list) = get(report, "bugs") else { panic!("bugs not a list") };
        let mut bugs: Vec<String> = bug_list
            .iter()
            .map(|b| {
                format!(
                    "{:?}|{:?}|{:?}|{:?}|{:?}",
                    get(b, "key"),
                    get(b, "class"),
                    get(b, "pc"),
                    get(b, "inputs"),
                    get(b, "occurrences")
                )
            })
            .collect();
        bugs.sort();
        (
            bugs,
            format!("{:?}", get(report, "covered_blocks")),
            format!("{:?}", get(report, "total_blocks")),
        )
    }

    /// Starts a batching campaign (default flags, so the lazy-feasibility
    /// stack is live), waits for the first checkpoint, then SIGKILLs it.
    fn kill_mid_campaign(dir: &Path) {
        let mut child = Command::new(ddt_bin())
            .args(["test", "pcnet", "--faults", "--checkpoint-dir"])
            .arg(dir)
            .args(["--checkpoint-every", "4"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn campaign child");
        let deadline = Instant::now() + Duration::from_secs(60);
        let has_checkpoint = |d: &Path| {
            std::fs::read_dir(d).ok().is_some_and(|rd| {
                rd.flatten().any(|e| {
                    let n = e.file_name();
                    let n = n.to_string_lossy().into_owned();
                    n.starts_with("checkpoint-") && n.ends_with(".ddtc")
                })
            })
        };
        while !has_checkpoint(dir) {
            assert!(Instant::now() < deadline, "no checkpoint appeared within 60s");
            if child.try_wait().expect("try_wait").is_some() {
                // Finished before the kill landed; the resume below then
                // exercises the finished-rebuild path instead, which is
                // still a valid (if weaker) run of this test.
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        child.kill().expect("SIGKILL child"); // std kill == SIGKILL on unix
        child.wait().expect("reap child");
    }

    #[test]
    fn batched_sigkill_resume_matches_uninterrupted_and_eager() {
        let batched = run_json(&["test", "pcnet", "--faults"], "batched-ref");
        let eager = run_json(&["test", "pcnet", "--faults", "--no-batch"], "eager-ref");
        assert_eq!(
            essence(&batched),
            essence(&eager),
            "--no-batch diverged from the batching run before any kill"
        );
        let dir = tmp("kill");
        kill_mid_campaign(&dir);
        let resumed = run_json(
            &["test", "pcnet", "--faults", "--resume", dir.to_str().unwrap()],
            "batched-res",
        );
        assert_eq!(
            essence(&resumed),
            essence(&batched),
            "resume with pending obligations diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn optimization_counters_surface_in_stats_and_health() {
    let spec = ddt::drivers::driver_by_name("rtl8029").expect("bundled");
    let dut = DriverUnderTest::from_spec(&spec);
    let on = run(&dut, true, true, true);

    // The batching machinery must actually carry the fork-feasibility
    // traffic: a multi-path exploration defers obligations and flushes
    // them in batches.
    assert!(
        on.stats.solver_batch_flushes > 0,
        "a multi-path exploration must flush deferred obligations (stats: {:?})",
        on.stats
    );
    assert!(
        on.stats.solver_batched_verdicts > 0,
        "flushes must settle verdicts (stats: {:?})",
        on.stats
    );
    // Witness reuse never exceeds the verdicts it helped settle, and
    // portfolio wins sum to the races run. (Fork-feasibility residue runs
    // sessionless by design — Solver::check_obligation — so session-probe
    // positivity is asserted at the solver unit level, not here.)
    assert!(on.stats.solver_batch_witness_hits <= on.stats.solver_batched_verdicts);
    assert_eq!(
        on.stats.solver_portfolio_session_wins
            + on.stats.solver_portfolio_fresh_wins
            + on.stats.solver_portfolio_probe_wins,
        on.stats.solver_portfolio_races
    );
    // Slicing counters are structurally consistent: every sliced query has
    // at least two components.
    assert!(on.stats.solver_slice_components >= 2 * on.stats.solver_sliced);
    // The interner is process-global and exploration allocates expressions.
    assert!(on.stats.interner_hits + on.stats.interner_misses > 0);

    assert_eq!(on.health.solver_sliced, on.stats.solver_sliced);
    assert_eq!(on.health.solver_slice_components, on.stats.solver_slice_components);
    assert_eq!(on.health.session_probes, on.stats.solver_session_probes);
    assert_eq!(on.health.session_resets, on.stats.solver_session_resets);
    assert_eq!(on.health.batch_flushes, on.stats.solver_batch_flushes);
    assert_eq!(on.health.batched_verdicts, on.stats.solver_batched_verdicts);
    assert_eq!(on.health.batch_witness_hits, on.stats.solver_batch_witness_hits);
    assert_eq!(on.health.portfolio_races, on.stats.solver_portfolio_races);
    assert_eq!(on.health.portfolio_session_wins, on.stats.solver_portfolio_session_wins);
    assert_eq!(on.health.portfolio_fresh_wins, on.stats.solver_portfolio_fresh_wins);
    assert_eq!(on.health.portfolio_probe_wins, on.stats.solver_portfolio_probe_wins);
    assert_eq!(on.health.rewrite_reductions, on.stats.solver_rewrite_reductions);
    let text = on.health.render();
    assert!(text.contains("session probes"));
    assert!(text.contains("batched verdicts"));
}
