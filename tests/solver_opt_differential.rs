//! Differential harness for the verdict-query optimizations: independence
//! slicing and incremental solver sessions.
//!
//! Both are pure solver-time optimizations and must be *semantically
//! invisible*, exactly like the query cache: an exploration with them on,
//! off, or in any mixture must find the same bugs via the same decision
//! schedules with the same solved inputs and the same coverage. This
//! harness runs bundled drivers across the flag matrix and compares the
//! reports field by field (semantic fields only — solver counters
//! legitimately differ between modes).

use std::collections::HashMap;

use ddt::{decision_streams, Ddt, DdtConfig, DriverUnderTest, Report};

fn run(dut: &DriverUnderTest, slicing: bool, incremental: bool, cache: bool) -> Report {
    let mut config = DdtConfig::default();
    config.use_slicing = slicing;
    config.use_incremental = incremental;
    config.use_query_cache = cache;
    Ddt::new(config).test(dut)
}

/// Asserts that two reports describe the same exploration: same bugs (by
/// stable key), same decision schedules, same solved inputs, same coverage
/// and path/instruction counts. Solver/cache counters are deliberately not
/// compared.
fn assert_semantically_equal(a: &Report, b: &Report, label: &str) {
    let mut ak: Vec<&str> = a.bugs.iter().map(|x| x.key.as_str()).collect();
    let mut bk: Vec<&str> = b.bugs.iter().map(|x| x.key.as_str()).collect();
    ak.sort_unstable();
    bk.sort_unstable();
    assert_eq!(ak, bk, "{label}: bug sets diverged");
    assert_eq!(
        decision_streams(&a.bugs),
        decision_streams(&b.bugs),
        "{label}: decision streams diverged"
    );
    let b_inputs: HashMap<&str, _> = b.bugs.iter().map(|x| (x.key.as_str(), &x.inputs)).collect();
    for bug in &a.bugs {
        assert_eq!(
            Some(&&bug.inputs),
            b_inputs.get(bug.key.as_str()),
            "{label}: solved inputs diverged for bug {}",
            bug.key
        );
    }
    assert_eq!(a.total_blocks, b.total_blocks, "{label}: total blocks");
    assert_eq!(a.covered_blocks, b.covered_blocks, "{label}: coverage diverged");
    assert_eq!(a.stats.paths_started, b.stats.paths_started, "{label}: path counts diverged");
    assert_eq!(a.stats.insns, b.stats.insns, "{label}: instruction counts diverged");
}

#[test]
fn optimization_flag_matrix_is_semantically_invisible() {
    for driver in ["rtl8029", "pcnet"] {
        let spec = ddt::drivers::driver_by_name(driver).expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let baseline = run(&dut, true, true, true); // Everything on (default).
        for (slicing, incremental, cache) in [
            (false, true, true),   // --no-slicing
            (true, false, true),   // --no-incremental
            (false, false, true),  // both hatches
            (true, true, false),   // --no-query-cache, optimizations on
            (false, false, false), // the PR-before-this-one baseline
        ] {
            let other = run(&dut, slicing, incremental, cache);
            let label = format!(
                "{driver} (slicing={slicing}, incremental={incremental}, cache={cache})"
            );
            assert_semantically_equal(&baseline, &other, &label);
        }
    }
}

#[test]
fn escape_hatches_really_disable_the_machinery() {
    let spec = ddt::drivers::driver_by_name("rtl8029").expect("bundled");
    let dut = DriverUnderTest::from_spec(&spec);

    let no_slicing = run(&dut, false, true, true);
    assert_eq!(no_slicing.stats.solver_sliced, 0, "--no-slicing still sliced");
    assert_eq!(no_slicing.stats.solver_slice_components, 0);

    let no_incremental = run(&dut, true, false, true);
    assert_eq!(no_incremental.stats.solver_session_probes, 0, "--no-incremental still probed");
    assert_eq!(no_incremental.stats.solver_session_resets, 0);
}

#[test]
fn optimization_counters_surface_in_stats_and_health() {
    let spec = ddt::drivers::driver_by_name("rtl8029").expect("bundled");
    let dut = DriverUnderTest::from_spec(&spec);
    let on = run(&dut, true, true, true);

    // The incremental session must actually carry verdict traffic.
    assert!(
        on.stats.solver_session_probes > 0,
        "a multi-path exploration must probe the session (stats: {:?})",
        on.stats
    );
    // Slicing counters are structurally consistent: every sliced query has
    // at least two components.
    assert!(on.stats.solver_slice_components >= 2 * on.stats.solver_sliced);
    // The interner is process-global and exploration allocates expressions.
    assert!(on.stats.interner_hits + on.stats.interner_misses > 0);

    assert_eq!(on.health.solver_sliced, on.stats.solver_sliced);
    assert_eq!(on.health.solver_slice_components, on.stats.solver_slice_components);
    assert_eq!(on.health.session_probes, on.stats.solver_session_probes);
    assert_eq!(on.health.session_resets, on.stats.solver_session_resets);
    assert_eq!(on.health.interner_hits, on.stats.interner_hits);
    assert_eq!(on.health.interner_misses, on.stats.interner_misses);
    assert!(on.health.render().contains("session probes"));
}
