//! The persistent trace store closes the §3.5 loop: every bug found on a
//! bundled driver is persisted as a standalone artifact (binary event log +
//! JSON manifest), and replaying that artifact — loaded back from disk,
//! with no access to the exploration that produced it — re-triggers the
//! same checker verdict with the same solved inputs.

use std::path::PathBuf;

use ddt::trace::{load_artifact, TraceStore};
use ddt::{replay_artifact, Ddt, DdtConfig, DriverUnderTest, ReplayOutcome};

/// A unique scratch directory per test (no tempfile crate in the tree).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ddt-store-roundtrip-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_store_roundtrip(driver: &str) {
    let spec = ddt::drivers::driver_by_name(driver).unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let dir = scratch(driver);
    let config = DdtConfig { trace_dir: Some(dir.clone()), ..Default::default() };
    let report = Ddt::new(config).test(&dut);
    assert!(!report.bugs.is_empty(), "{driver} must have bugs to persist");
    assert_eq!(
        report.health.traces_persisted,
        report.bugs.len() as u64,
        "{driver}: every bug gets a trace artifact"
    );

    let store = TraceStore::open(&dir).unwrap();
    let stored = store.list().unwrap();
    // One artifact per distinct signature (report keys sharing a signature
    // merge into one stored record).
    assert_eq!(
        stored.len() as u64,
        report.health.bugs_deduped,
        "{driver}: one artifact per distinct signature"
    );

    for bug in &report.bugs {
        // The artifact is loaded back purely from disk.
        let artifact = store.load(&bug.signature).unwrap_or_else(|e| {
            panic!("{driver}: artifact for {} missing: {e}", bug.signature)
        });
        // Same solved inputs survived the round trip.
        assert_eq!(artifact.manifest.inputs, bug.inputs, "{driver}: inputs roundtrip");
        assert_eq!(artifact.events, bug.trace, "{driver}: event log roundtrips");
        assert_eq!(artifact.manifest.pc, bug.pc);
        assert_eq!(artifact.manifest.occurrences, bug.occurrences);
        // Standalone replay reproduces the same checker verdict.
        match replay_artifact(&dut, &artifact) {
            ReplayOutcome::Reproduced { .. } => {}
            ReplayOutcome::NotReproduced { observed } => panic!(
                "{driver}: stored artifact {} not reproduced: [{}] {} (observed {observed})",
                bug.signature, bug.class, bug.description
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rtl8029_store_roundtrips_and_replays() {
    assert_store_roundtrip("rtl8029");
}

#[test]
fn pcnet_store_roundtrips_and_replays() {
    assert_store_roundtrip("pcnet");
}

#[test]
fn ensoniq_store_roundtrips_and_replays() {
    assert_store_roundtrip("ensoniq");
}

#[test]
fn ac97_store_roundtrips_and_replays() {
    assert_store_roundtrip("ac97");
}

#[test]
fn clean_driver_persists_nothing() {
    let dut = DriverUnderTest::from_spec(&ddt::drivers::clean_driver());
    let dir = scratch("clean");
    let config = DdtConfig { trace_dir: Some(dir.clone()), ..Default::default() };
    let report = Ddt::new(config).test(&dut);
    assert!(report.bugs.is_empty());
    assert_eq!(report.health.traces_persisted, 0);
    let store = TraceStore::open(&dir).unwrap();
    assert!(store.list().unwrap().is_empty(), "clean driver leaves an empty store");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_loads_from_any_entry_path() {
    // `ddt replay --trace` accepts the bug directory, the manifest, or the
    // raw event log; all three resolve to the same artifact.
    let spec = ddt::drivers::driver_by_name("rtl8029").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let dir = scratch("paths");
    let config = DdtConfig { trace_dir: Some(dir.clone()), ..Default::default() };
    let report = Ddt::new(config).test(&dut);
    let sig = &report.bugs[0].signature;
    let bug_dir = dir.join(format!("bug-{sig}"));
    let a = load_artifact(&bug_dir).unwrap();
    let b = load_artifact(bug_dir.join("manifest.json")).unwrap();
    let c = load_artifact(bug_dir.join("trace.bin")).unwrap();
    assert_eq!(a.manifest.signature, *sig);
    assert_eq!(a.events, b.events);
    assert_eq!(b.events, c.events);
    assert_eq!(b.manifest.description, c.manifest.description);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn minimized_schedules_still_reproduce() {
    // The minimizer only keeps a schedule it proved against the concrete
    // replayer — so whenever a stored artifact carries one, replaying with
    // it (the default) must reproduce. rtl8029's wild-jump faults don't
    // actually need the injected fault decision their paths carried, so the
    // full fault plan produces real trims.
    let spec = ddt::drivers::driver_by_name("rtl8029").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let dir = scratch("minimized");
    let config = DdtConfig {
        trace_dir: Some(dir.clone()),
        fault_plan: ddt::FaultPlan::full(),
        ..Default::default()
    };
    Ddt::new(config).test(&dut);
    let store = TraceStore::open(&dir).unwrap();
    let mut minimized_seen = 0;
    for record in store.list().unwrap() {
        let artifact = store.load(&record.signature).unwrap();
        if let Some(min) = &artifact.manifest.minimized_decisions {
            minimized_seen += 1;
            assert!(
                min.len() < artifact.manifest.decisions.len(),
                "a minimized schedule is strictly smaller"
            );
        }
        assert!(matches!(
            replay_artifact(&dut, &artifact),
            ReplayOutcome::Reproduced { .. }
        ));
    }
    assert!(minimized_seen > 0, "the minimizer trimmed at least one schedule");
    let _ = std::fs::remove_dir_all(&dir);
}
