//! Device-lifecycle fault-injection differential harness (§4.11), driven
//! through the real `ddt` binary.
//!
//! Lifecycle events — PnP surprise removal and D0/D3 power transitions —
//! are replay-deterministic inputs, so every execution mode must agree on
//! the resulting bug inventory, signature for signature:
//!
//! - the serial explorer (`ddt test --lifecycle`),
//! - the parallel explorer (`--workers N`),
//! - a campaign SIGKILLed mid-flight and picked back up with `--resume`,
//! - the multi-process fleet (`ddt serve`).
//!
//! The harness also pins the seeded lifecycle defects — rtl8029 touches its
//! command register inside the removal handler (L1) and double-frees the
//! multicast table from Halt after removal; ac97 resumes to D0 without
//! reprogramming the engine (L2) — and that Table 2 reproduction is
//! unaffected: with `--lifecycle` on, every default-run bug is still found.
//!
//! rtl8029 runs with `--max-insns` headroom: lifecycle injection multiplies
//! its path count past the default campaign budget, and exploration order
//! under an exhausted budget is mode-dependent — the comparison is only
//! meaningful on completed campaigns.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use serde::Value;

fn ddt_bin() -> &'static str {
    env!("CARGO_BIN_EXE_ddt")
}

/// Budget headroom for rtl8029: its lifecycle campaign completes around
/// 5M instructions (the default budget is 3M).
const RTL_FLAGS: &[&str] = &["--lifecycle", "--max-insns", "8000000"];

/// The workspace's offline `serde` stand-in exposes reports as a
/// [`Value`] tree; this wrapper lets `from_slice` hand the tree back raw.
struct Raw(Value);

impl serde::Deserialize for Raw {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Raw(v.clone()))
    }
}

fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("report field {key:?} missing")),
        other => panic!("expected a map for {key:?}, got {other:?}"),
    }
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected a string, got {other:?}"),
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ddt-lcdiff-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the binary to completion with `--json`, returning the parsed
/// report. Exit code 1 (defects found) counts as success here.
fn run_json(args: &[&str], tag: &str) -> Value {
    let json = std::env::temp_dir().join(format!("ddt-lcdiff-{}-{tag}.json", std::process::id()));
    let _ = std::fs::remove_file(&json);
    let out = Command::new(ddt_bin())
        .args(args)
        .arg("--json")
        .arg(&json)
        .output()
        .expect("spawn ddt");
    let code = out.status.code();
    assert!(
        matches!(code, Some(0) | Some(1)),
        "ddt {args:?} exited with {code:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&json).expect("report json written");
    let _ = std::fs::remove_file(&json);
    let raw: Raw = serde_json::from_slice(&bytes).expect("report parses");
    raw.0
}

/// Sorted bug signature keys — the mode-independent identity of a finding.
fn keys(report: &Value) -> Vec<String> {
    let Value::List(bug_list) = get(report, "bugs") else { panic!("bugs not a list") };
    let mut ks: Vec<String> =
        bug_list.iter().map(|b| as_str(get(b, "key")).to_string()).collect();
    ks.sort();
    ks
}

/// Starts a lifecycle campaign in a child process, waits for the first
/// checkpoint, then SIGKILLs it mid-flight.
fn kill_mid_campaign(driver: &str, flags: &[&str], dir: &Path) {
    let mut child = Command::new(ddt_bin())
        .args(["test", driver])
        .args(flags)
        .arg("--checkpoint-dir")
        .arg(dir)
        .args(["--checkpoint-every", "4"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn campaign child");
    let deadline = Instant::now() + Duration::from_secs(60);
    let has_checkpoint = |d: &Path| {
        std::fs::read_dir(d).ok().is_some_and(|rd| {
            rd.flatten().any(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.starts_with("checkpoint-") && n.ends_with(".ddtc")
            })
        })
    };
    while !has_checkpoint(dir) {
        assert!(Instant::now() < deadline, "no checkpoint appeared within 60s");
        if child.try_wait().expect("try_wait").is_some() {
            // Finished before the kill: the resume below exercises the
            // finished-rebuild path instead, which must still agree.
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");
}

/// Runs one driver through all four modes and asserts signature identity.
/// Returns the agreed key set for further shape assertions.
fn all_modes_agree(driver: &str, flags: &[&str]) -> Vec<String> {
    let base: Vec<String> =
        [&["test", driver][..], flags].concat().iter().map(|s| s.to_string()).collect();
    let argv: Vec<&str> = base.iter().map(String::as_str).collect();

    let reference = keys(&run_json(&argv, &format!("{driver}-serial")));

    let par = keys(&run_json(
        &[&argv[..], &["--workers", "4"]].concat(),
        &format!("{driver}-par"),
    ));
    assert_eq!(par, reference, "{driver}: parallel exploration changed the signatures");

    let dir = tmp(&format!("{driver}-kill"));
    kill_mid_campaign(driver, flags, &dir);
    let resumed = keys(&run_json(
        &[&argv[..], &["--resume", dir.to_str().unwrap()]].concat(),
        &format!("{driver}-res"),
    ));
    assert_eq!(resumed, reference, "{driver}: SIGKILL + --resume changed the signatures");
    let _ = std::fs::remove_dir_all(&dir);

    let mut serve_argv: Vec<&str> = argv.clone();
    serve_argv[0] = "serve";
    let fleet = keys(&run_json(
        &[&serve_argv[..], &["--workers", "3"]].concat(),
        &format!("{driver}-fleet"),
    ));
    assert_eq!(fleet, reference, "{driver}: the fleet changed the signatures");

    reference
}

#[test]
fn rtl8029_lifecycle_signatures_identical_across_all_four_modes() {
    let found = all_modes_agree("rtl8029", RTL_FLAGS);
    // Seeded defect L1: the removal handler itself pokes the command
    // register — the hardware is already gone.
    assert!(
        found.iter().any(|k| k.starts_with("touchremove:") && k.ends_with("PnpSurpriseRemove")),
        "L1 touch-after-remove not found, keys: {found:?}"
    );
    // Seeded companion: the removal handler frees the multicast table but
    // keeps the stale pointer, so Halt frees it a second time.
    assert!(
        found.iter().any(|k| k.starts_with("crash:") && k.contains(":Halt:")),
        "halt-after-remove double free not found, keys: {found:?}"
    );
}

#[test]
fn ac97_lifecycle_signatures_identical_across_all_four_modes() {
    let found = all_modes_agree("ac97", &["--lifecycle"]);
    // Seeded defect L2: the D0 arm of the power handler re-arms the ready
    // flag without a single hardware write.
    assert!(
        found.iter().any(|k| k.starts_with("noreprog:")),
        "L2 resume-without-restore not found, keys: {found:?}"
    );
}

#[test]
fn clean_driver_stays_clean_in_every_mode() {
    let found = all_modes_agree("clean_nic", &["--lifecycle"]);
    assert!(found.is_empty(), "clean driver must survive lifecycle injection: {found:?}");
}

/// Table 2 reproduction is unaffected by lifecycle injection: every bug the
/// default campaign finds is still found with `--lifecycle` on. Drivers
/// that never register a PnP notification handler must report *exactly*
/// the default set — with no handler there is nothing to deliver, so
/// injection must be a no-op for them.
#[test]
fn table_2_reproduction_stays_green_with_lifecycle_enabled() {
    for (driver, audio, registers_pnp, extra) in [
        ("pcnet", false, false, &[][..]),
        ("rtl8029", false, true, &RTL_FLAGS[1..]), // budget headroom
        ("pro100", false, false, &[]),
        ("pro1000", false, false, &[]),
        ("ac97", true, true, &[]),
        ("ensoniq", true, false, &[]),
    ] {
        let mut base = vec!["test", driver];
        if audio {
            base.push("--audio");
        }
        let default_keys = keys(&run_json(&base, &format!("{driver}-t2-default")));
        let mut lc = base.clone();
        lc.push("--lifecycle");
        lc.extend_from_slice(extra);
        let lc_keys = keys(&run_json(&lc, &format!("{driver}-t2-lifecycle")));
        for k in &default_keys {
            assert!(
                lc_keys.contains(k),
                "{driver}: default-run bug {k:?} lost under lifecycle injection \
                 (lifecycle keys: {lc_keys:?})"
            );
        }
        if !registers_pnp {
            assert_eq!(
                lc_keys, default_keys,
                "{driver}: no PnP handler, lifecycle injection must change nothing"
            );
        }
    }
}

/// The fleet status dashboard carries the lifecycle counters: a `serve`
/// run over the seeded driver reports injections and at least one
/// violation in its `--status-file`.
#[test]
fn fleet_status_file_reports_lifecycle_counters() {
    let status = std::env::temp_dir()
        .join(format!("ddt-lcdiff-{}-status.json", std::process::id()));
    let _ = std::fs::remove_file(&status);
    let out = Command::new(ddt_bin())
        .args(["serve", "ac97", "--lifecycle", "--workers", "2", "--status-file"])
        .arg(&status)
        .output()
        .expect("spawn ddt serve");
    assert!(
        matches!(out.status.code(), Some(0) | Some(1)),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&status).expect("status file written");
    let _ = std::fs::remove_file(&status);
    let raw: Raw = serde_json::from_slice(text.as_bytes()).expect("status parses");
    let injected = match get(&raw.0, "lifecycle_injected") {
        Value::U64(n) => *n,
        other => panic!("lifecycle_injected not an integer: {other:?}"),
    };
    let bugs = match get(&raw.0, "lifecycle_bugs") {
        Value::U64(n) => *n,
        other => panic!("lifecycle_bugs not an integer: {other:?}"),
    };
    assert!(injected > 0, "no lifecycle events were injected");
    assert!(bugs > 0, "the seeded ac97 lifecycle bugs were not counted");
}
