//! Triage deduplication: a bug reachable along many forked paths is one
//! triaged bug with N occurrences — not N bugs. The trace signature (crash
//! pc + frame stack + checker id + provenance roots) is path-invariant, so
//! it also collapses repeat sightings across runs of the same store.

use std::path::PathBuf;

use ddt::trace::{triage, TraceStore};
use ddt::{Ddt, DdtConfig, DriverUnderTest};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ddt-triage-dedup-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn multi_path_bug_is_one_record_with_many_occurrences() {
    // rtl8029's QueryInformation/SetInformation wild jumps are reachable
    // from every forked oid/hardware path — hundreds of sightings.
    let spec = ddt::drivers::driver_by_name("rtl8029").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let report = Ddt::default().test(&dut);
    let multi: Vec<_> = report.bugs.iter().filter(|b| b.occurrences > 1).collect();
    assert!(
        !multi.is_empty(),
        "some rtl8029 bug is reached along multiple forked paths"
    );
    // Raw sightings strictly exceed distinct bugs, and the report carries
    // the dedup accounting.
    assert!(report.health.bug_occurrences > report.bugs.len() as u64);
    let mut sigs: Vec<&str> = report.bugs.iter().map(|b| b.signature.as_str()).collect();
    sigs.sort_unstable();
    sigs.dedup();
    assert_eq!(
        report.health.bugs_deduped,
        sigs.len() as u64,
        "bugs_deduped counts distinct signatures"
    );
}

#[test]
fn triage_collapses_duplicates_within_a_run() {
    let spec = ddt::drivers::driver_by_name("rtl8029").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let dir = scratch("one-run");
    let config = DdtConfig { trace_dir: Some(dir.clone()), ..Default::default() };
    let report = Ddt::new(config).test(&dut);

    let store = TraceStore::open(&dir).unwrap();
    let summary = triage(&store).unwrap();
    assert_eq!(summary.distinct() as u64, report.health.bugs_deduped);
    assert_eq!(summary.total_occurrences, report.health.bug_occurrences);
    assert!(summary.duplicates_collapsed() > 0, "forked duplicates were collapsed");
    let rendered = summary.render();
    assert!(rendered.contains("duplicate(s) collapsed"), "{rendered}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn triage_dedups_across_runs() {
    // Two identical runs against the same store: the signatures merge, the
    // occurrence counts double, and no second record appears.
    let spec = ddt::drivers::driver_by_name("pcnet").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let dir = scratch("two-runs");

    let config = DdtConfig { trace_dir: Some(dir.clone()), ..Default::default() };
    let first = Ddt::new(config.clone()).test(&dut);
    let store = TraceStore::open(&dir).unwrap();
    let after_one = triage(&store).unwrap();

    let second = Ddt::new(config).test(&dut);
    let after_two = triage(&store).unwrap();

    assert_eq!(first.bugs.len(), second.bugs.len(), "deterministic exploration");
    assert_eq!(
        after_one.distinct(),
        after_two.distinct(),
        "a second run adds sightings, not bugs"
    );
    assert_eq!(
        after_two.total_occurrences,
        2 * after_one.total_occurrences,
        "occurrences accumulate across runs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_store_triages_to_nothing() {
    let dir = scratch("empty");
    let store = TraceStore::open(&dir).unwrap();
    let summary = triage(&store).unwrap();
    assert_eq!(summary.distinct(), 0);
    assert!(summary.render().contains("empty"));
    let _ = std::fs::remove_dir_all(&dir);
}
