//! The headline result: DDT finds exactly the 14 bugs of Table 2 across
//! the six drivers, with the right classifications, and nothing else.
//!
//! This is the slowest integration test (full symbolic runs over every
//! driver); the per-driver expectations mirror Table 2 row by row.

use std::collections::BTreeMap;

use ddt::{BugClass, Ddt, DriverUnderTest};

fn class_counts(report: &ddt::Report) -> BTreeMap<BugClass, usize> {
    let mut m = BTreeMap::new();
    for b in &report.bugs {
        *m.entry(b.class).or_insert(0) += 1;
    }
    m
}

#[test]
fn table2_rtl8029_five_bugs() {
    let spec = ddt::drivers::driver_by_name("rtl8029").unwrap();
    let report = Ddt::default().test(&DriverUnderTest::from_spec(&spec));
    let counts = class_counts(&report);
    assert_eq!(report.bugs.len(), 5, "{:#?}", report.bugs);
    assert_eq!(counts.get(&BugClass::ResourceLeak), Some(&1), "config handle leak");
    assert_eq!(counts.get(&BugClass::MemoryCorruption), Some(&1), "MaximumMulticastList");
    assert_eq!(counts.get(&BugClass::RaceCondition), Some(&1), "timer-init race");
    assert_eq!(counts.get(&BugClass::SegFault), Some(&2), "unexpected OIDs");
    // The memory corruption must be attributed to the registry parameter.
    let corruption = &report.bugs_of(BugClass::MemoryCorruption)[0];
    assert!(corruption.description.contains("MaximumMulticastList"));
    // The OID crashes are in the two information handlers.
    let segs = report.bugs_of(BugClass::SegFault);
    let entries: Vec<&str> = segs.iter().map(|b| b.entry.as_str()).collect();
    assert!(entries.contains(&"QueryInformation"));
    assert!(entries.contains(&"SetInformation"));
}

#[test]
fn table2_pcnet_two_leaks() {
    let spec = ddt::drivers::driver_by_name("pcnet").unwrap();
    let report = Ddt::default().test(&DriverUnderTest::from_spec(&spec));
    assert_eq!(report.bugs.len(), 2, "{:#?}", report.bugs);
    assert!(report.bugs.iter().any(|b| b.description.contains("pool allocation")));
    assert!(report.bugs.iter().any(|b| b.description.contains("packets/buffers")));
}

#[test]
fn table2_pro1000_memory_leak() {
    let spec = ddt::drivers::driver_by_name("pro1000").unwrap();
    let report = Ddt::default().test(&DriverUnderTest::from_spec(&spec));
    assert_eq!(report.bugs.len(), 1, "{:#?}", report.bugs);
    assert_eq!(report.bugs[0].class, BugClass::MemoryLeak);
}

#[test]
fn table2_pro100_spinlock_variant() {
    let spec = ddt::drivers::driver_by_name("pro100").unwrap();
    let report = Ddt::default().test(&DriverUnderTest::from_spec(&spec));
    assert_eq!(report.bugs.len(), 1, "{:#?}", report.bugs);
    let bug = &report.bugs[0];
    assert_eq!(bug.class, BugClass::KernelCrash);
    assert!(bug.description.contains("NdisReleaseSpinLock"));
    assert!(bug.description.contains("HandleInterrupt"), "fires in the DPC");
}

#[test]
fn table2_ac97_playback_race() {
    let spec = ddt::drivers::driver_by_name("ac97").unwrap();
    let report = Ddt::default().test(&DriverUnderTest::from_spec(&spec));
    assert_eq!(report.bugs.len(), 1, "{:#?}", report.bugs);
    assert_eq!(report.bugs[0].class, BugClass::RaceCondition);
    assert_eq!(report.bugs[0].interrupted_entry.as_deref(), Some("Aux"));
    assert!(report.bugs[0].description.contains("in Isr"));
}

#[test]
fn table2_totals_fourteen() {
    let mut total = 0;
    for spec in ddt::drivers::drivers() {
        let report = Ddt::default().test(&DriverUnderTest::from_spec(&spec));
        assert_eq!(
            report.bugs.len(),
            spec.expected_bugs,
            "driver {}: {:#?}",
            spec.name,
            report.bugs
        );
        total += report.bugs.len();
    }
    assert_eq!(total, 14, "Table 2 reports 14 previously unknown bugs");
}
