//! Systematic kernel-API fault injection and harness resilience.
//!
//! The fault plan forks an alternative state at every eligible acquisition
//! call site (pool, shared memory, I/O mappings, interrupt/timer
//! registration, registry reads) in which that acquisition fails. These
//! tests pin the contract:
//!
//! - the clean reference driver survives full injection with zero bugs
//!   (fault paths are not false positives),
//! - every faulty NIC driver gains injected-fault bugs, including the
//!   unchecked-failure class, and each such bug replays deterministically,
//! - the parallel explorer finds the same injected-fault bug set,
//! - a panicking state is isolated as a run-health incident instead of
//!   aborting the run (serial and parallel).

use std::collections::BTreeSet;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use ddt::core::Decision;
use ddt::{
    replay_bug, //
    test_parallel,
    Bug,
    BugClass,
    Ddt,
    DdtConfig,
    DriverUnderTest,
    FaultPlan,
    ReplayOutcome,
};

fn faulty() -> Ddt {
    Ddt::new(DdtConfig { fault_plan: FaultPlan::full(), ..DdtConfig::default() })
}

fn nic_dut(name: &str) -> DriverUnderTest {
    let spec = ddt::drivers::driver_by_name(name).expect("bundled driver");
    DriverUnderTest::from_spec(&spec)
}

fn has_injected_fault(bug: &Bug) -> bool {
    bug.decisions.iter().any(|d| matches!(d, Decision::InjectFault { .. }))
}

/// Full injection must surface bugs on injected-fault paths — among them
/// one of `expect_class` — and every injected-fault bug must replay.
fn assert_injection_finds_and_replays(name: &str, expect_class: BugClass) {
    let dut = nic_dut(name);
    let report = faulty().test(&dut);
    assert!(
        report.health.faults_total() > 0,
        "{name}: no faults were injected at all"
    );
    let injected: Vec<&Bug> = report.bugs.iter().filter(|b| has_injected_fault(b)).collect();
    assert!(!injected.is_empty(), "{name}: injection surfaced no new bugs");
    assert!(
        injected.iter().any(|b| b.class == expect_class),
        "{name}: expected a {expect_class} bug on an injected-fault path, got {:?}",
        injected.iter().map(|b| (b.class, b.description.as_str())).collect::<Vec<_>>()
    );
    for bug in injected {
        match replay_bug(&dut, bug) {
            ReplayOutcome::Reproduced { .. } => {}
            ReplayOutcome::NotReproduced { observed } => panic!(
                "{name}: injected-fault bug not reproduced: [{}] {} (observed {observed})",
                bug.class, bug.description
            ),
        }
    }
}

#[test]
fn clean_driver_survives_full_fault_injection() {
    let dut = DriverUnderTest::from_spec(&ddt::drivers::clean_driver());
    let report = faulty().test(&dut);
    assert!(
        report.bugs.is_empty(),
        "the clean driver checks every acquisition status: {:?}",
        report.bugs.iter().map(|b| b.description.as_str()).collect::<Vec<_>>()
    );
    assert!(report.relative_coverage() > 0.9);
    // The run did exercise the fault paths, it just found them handled.
    assert!(report.health.faults_total() > 0);
    assert_eq!(report.health.panics_caught, 0);
}

#[test]
fn pcnet_crashes_on_failed_packet_pool_and_skips_the_status() {
    // The SharedMemory fault at the pool allocation makes pcnet hand the
    // NULL pool handle straight to NdisAllocatePacket — a kernel crash —
    // and on the surviving path Initialize still claims success.
    assert_injection_finds_and_replays("pcnet", BugClass::KernelCrash);
    assert_injection_finds_and_replays("pcnet", BugClass::UncheckedFailure);
}

#[test]
fn rtl8029_uses_the_config_handle_after_a_failed_open() {
    // The Registry fault at NdisOpenConfiguration leaves handle 0, which
    // rtl8029 passes to NdisReadConfiguration unchecked — a kernel crash.
    assert_injection_finds_and_replays("rtl8029", BugClass::KernelCrash);
}

#[test]
fn pro100_never_checks_registration_status() {
    assert_injection_finds_and_replays("pro100", BugClass::UncheckedFailure);
}

#[test]
fn pro1000_never_checks_registration_status() {
    assert_injection_finds_and_replays("pro1000", BugClass::UncheckedFailure);
}

#[test]
fn parallel_matches_serial_under_fault_injection() {
    let dut = nic_dut("pcnet");
    let ddt = faulty();
    let serial = ddt.test(&dut);
    let parallel = test_parallel(&ddt, &dut, 3);
    let sk: BTreeSet<&str> = serial.bugs.iter().map(|b| b.key.as_str()).collect();
    let pk: BTreeSet<&str> = parallel.bugs.iter().map(|b| b.key.as_str()).collect();
    assert_eq!(sk, pk, "parallel injection finds the same bug set");
    assert!(parallel.health.faults_total() > 0);
}

#[test]
fn serial_run_survives_a_panicking_state() {
    let dut = DriverUnderTest::from_spec(&ddt::drivers::clean_driver());
    // The 25th scheduled quantum panics: by then the root has forked, so
    // the incident costs one in-flight state, not the exploration.
    let config = DdtConfig {
        panic_hook: Some(Arc::new(AtomicU64::new(25))),
        ..DdtConfig::default()
    };
    let report = Ddt::new(config).test(&dut);
    assert_eq!(report.health.panics_caught, 1, "the panic is recorded, not fatal");
    assert!(report.bugs.is_empty());
    assert!(
        report.stats.paths_completed > 5,
        "exploration continued past the incident ({} paths completed)",
        report.stats.paths_completed
    );
}

#[test]
fn parallel_run_survives_a_panicking_state() {
    let dut = DriverUnderTest::from_spec(&ddt::drivers::clean_driver());
    let config = DdtConfig {
        panic_hook: Some(Arc::new(AtomicU64::new(25))),
        ..DdtConfig::default()
    };
    let report = test_parallel(&Ddt::new(config), &dut, 3);
    assert_eq!(report.health.panics_caught, 1);
    assert!(report.bugs.is_empty());
    assert!(report.stats.paths_completed > 5);
}

/// Every fault family injects in isolation: a plan restricted to one
/// family moves only that family's health counter. The one structural
/// exception is `MapRegisters` — no bundled driver maps I/O registers
/// through the faultable exports — so its single-family run must inject
/// nothing at all (the plan is a no-op without call sites, not an error).
#[test]
fn every_fault_family_injects_in_isolation() {
    use ddt::{FaultFamily, RunHealth};

    fn counter(h: &RunHealth, family: FaultFamily) -> u64 {
        match family {
            FaultFamily::PoolAlloc => h.faults_pool,
            FaultFamily::SharedMemory => h.faults_shared,
            FaultFamily::MapRegisters => h.faults_map,
            FaultFamily::Registration => h.faults_registration,
            FaultFamily::Registry => h.faults_registry,
            FaultFamily::Lifecycle => h.lifecycle_injected,
        }
    }

    for family in FaultFamily::ALL {
        // pcnet owns the shared-memory (and would-be map-register) sites;
        // rtl8029 covers pool, registration, registry, and — through its
        // PnP notification handler — lifecycle.
        let driver = match family {
            FaultFamily::SharedMemory | FaultFamily::MapRegisters => "pcnet",
            _ => "rtl8029",
        };
        let dut = nic_dut(driver);
        let mut config = DdtConfig {
            fault_plan: FaultPlan::for_families(&[family]),
            ..DdtConfig::default()
        };
        if family == FaultFamily::PoolAlloc {
            // Pool sites are annotation-owned by default (the NULL
            // alternative); hand them to the injector so the family's own
            // counter moves.
            config.annotations = ddt::Annotations::disabled();
        }
        let report = Ddt::new(config).test(&dut);
        let hit = counter(&report.health, family);
        if family == FaultFamily::MapRegisters {
            assert_eq!(
                report.health.faults_total(),
                0,
                "no bundled driver maps registers; the plan must be a no-op"
            );
        } else {
            assert!(hit > 0, "{family:?} plan on {driver} injected nothing");
            assert_eq!(
                report.health.faults_total(),
                hit,
                "{family:?} plan leaked into other families"
            );
        }
    }
}

#[test]
fn run_health_is_pristine_on_an_uneventful_run() {
    let dut = DriverUnderTest::from_spec(&ddt::drivers::clean_driver());
    let report = Ddt::default().test(&dut);
    assert!(report.health.pristine(), "{:?}", report.health);
    assert_eq!(report.health.faults_total(), 0, "plan defaults to disabled");
}
