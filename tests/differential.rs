//! Differential property test: on fully concrete programs, the symbolic
//! interpreter and the concrete VM must compute identical machine states.
//! This pins the two execution engines to the same ISA semantics — the
//! property that makes concrete replay of symbolic traces sound.

use ddt::expr::Expr;
use ddt::isa::image::DxeImage;
use ddt::isa::{encode, Insn, Reg, INSN_SIZE, RETURN_TRAP};
use ddt::solver::Solver;
use ddt::symvm::interp::NullEnv;
use ddt::symvm::{step, SymCounter, SymState, SymStep};
use ddt::vm::{StepEvent, Vm};
use proptest::prelude::*;

const BUF_BASE: u32 = 0x0050_0000;
const BUF_LEN: u32 = 256;
const LOAD_BASE: u32 = 0x0040_0000;

/// One generated operation (kept abstract so shrinking stays meaningful).
#[derive(Clone, Debug)]
enum Op {
    Movi(u8, u32),
    Mov(u8, u8),
    Add(u8, u8, u8),
    Addi(u8, u8, u32),
    Sub(u8, u8, u8),
    Mul(u8, u8, u8),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    Xor(u8, u8, u8),
    Not(u8, u8),
    Shli(u8, u8, u32),
    Shri(u8, u8, u32),
    Sari(u8, u8, u32),
    Stw(u8, u32),
    Ldw(u8, u32),
    Stb(u8, u32),
    Ldb(u8, u32),
    /// Conditional forward skip over `skip` following operations.
    SkipIfEq(u8, u8, u8),
    SkipIfLtu(u8, u8, u8),
}

fn arb_reg() -> impl Strategy<Value = u8> {
    0u8..8
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_reg(), any::<u32>()).prop_map(|(d, i)| Op::Movi(d, i)),
        (arb_reg(), arb_reg()).prop_map(|(d, s)| Op::Mov(d, s)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, s, t)| Op::Add(d, s, t)),
        (arb_reg(), arb_reg(), any::<u32>()).prop_map(|(d, s, i)| Op::Addi(d, s, i)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, s, t)| Op::Sub(d, s, t)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, s, t)| Op::Mul(d, s, t)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, s, t)| Op::And(d, s, t)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, s, t)| Op::Or(d, s, t)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, s, t)| Op::Xor(d, s, t)),
        (arb_reg(), arb_reg()).prop_map(|(d, s)| Op::Not(d, s)),
        (arb_reg(), arb_reg(), 0u32..40).prop_map(|(d, s, i)| Op::Shli(d, s, i)),
        (arb_reg(), arb_reg(), 0u32..40).prop_map(|(d, s, i)| Op::Shri(d, s, i)),
        (arb_reg(), arb_reg(), 0u32..40).prop_map(|(d, s, i)| Op::Sari(d, s, i)),
        (arb_reg(), 0u32..(BUF_LEN / 4)).prop_map(|(s, o)| Op::Stw(s, o * 4)),
        (arb_reg(), 0u32..(BUF_LEN / 4)).prop_map(|(d, o)| Op::Ldw(d, o * 4)),
        (arb_reg(), 0u32..BUF_LEN).prop_map(|(s, o)| Op::Stb(s, o)),
        (arb_reg(), 0u32..BUF_LEN).prop_map(|(d, o)| Op::Ldb(d, o)),
        (arb_reg(), arb_reg(), 1u8..4).prop_map(|(a, b, k)| Op::SkipIfEq(a, b, k)),
        (arb_reg(), arb_reg(), 1u8..4).prop_map(|(a, b, k)| Op::SkipIfLtu(a, b, k)),
    ]
}

/// Lowers the ops to machine code; r8 holds the buffer base throughout.
fn lower(ops: &[Op]) -> Vec<Insn> {
    let base = Reg(8);
    let mut out: Vec<Insn> = vec![Insn::Movi { rd: base, imm: BUF_BASE }];
    // First pass to know each op's instruction index (every op is 1 insn).
    for (i, op) in ops.iter().enumerate() {
        let r = |x: u8| Reg(x);
        let insn = match *op {
            Op::Movi(d, imm) => Insn::Movi { rd: r(d), imm },
            Op::Mov(d, s) => Insn::Mov { rd: r(d), rs: r(s) },
            Op::Add(d, s, t) => Insn::Add { rd: r(d), rs: r(s), rt: r(t) },
            Op::Addi(d, s, imm) => Insn::Addi { rd: r(d), rs: r(s), imm },
            Op::Sub(d, s, t) => Insn::Sub { rd: r(d), rs: r(s), rt: r(t) },
            Op::Mul(d, s, t) => Insn::Mul { rd: r(d), rs: r(s), rt: r(t) },
            Op::And(d, s, t) => Insn::And { rd: r(d), rs: r(s), rt: r(t) },
            Op::Or(d, s, t) => Insn::Or { rd: r(d), rs: r(s), rt: r(t) },
            Op::Xor(d, s, t) => Insn::Xor { rd: r(d), rs: r(s), rt: r(t) },
            Op::Not(d, s) => Insn::Not { rd: r(d), rs: r(s) },
            Op::Shli(d, s, imm) => Insn::Shli { rd: r(d), rs: r(s), imm },
            Op::Shri(d, s, imm) => Insn::Shri { rd: r(d), rs: r(s), imm },
            Op::Sari(d, s, imm) => Insn::Sari { rd: r(d), rs: r(s), imm },
            Op::Stw(s, off) => Insn::Stw { rs: base, rt: r(s), imm: off },
            Op::Ldw(d, off) => Insn::Ldw { rd: r(d), rs: base, imm: off },
            Op::Stb(s, off) => Insn::Stb { rs: base, rt: r(s), imm: off },
            Op::Ldb(d, off) => Insn::Ldb { rd: r(d), rs: base, imm: off },
            Op::SkipIfEq(a, b, k) => {
                let target_index = (i + 1 + k as usize).min(ops.len()) as u32 + 1;
                Insn::Beq { rs: r(a), rt: r(b), imm: LOAD_BASE + target_index * INSN_SIZE }
            }
            Op::SkipIfLtu(a, b, k) => {
                let target_index = (i + 1 + k as usize).min(ops.len()) as u32 + 1;
                Insn::Bltu { rs: r(a), rt: r(b), imm: LOAD_BASE + target_index * INSN_SIZE }
            }
        };
        out.push(insn);
    }
    out.push(Insn::Ret);
    out
}

fn image_for(insns: &[Insn]) -> DxeImage {
    let mut text = Vec::new();
    for &i in insns {
        text.extend_from_slice(&encode(i));
    }
    DxeImage {
        name: "difftest".into(),
        load_base: LOAD_BASE,
        entry: LOAD_BASE,
        text,
        data: vec![],
        bss_size: 0,
        imports: vec![],
    }
}

fn run_concrete(image: &DxeImage, init: &[u32; 8]) -> ([u32; 16], Vec<u8>) {
    let mut vm = Vm::new();
    vm.load_image(image);
    vm.mem.map(BUF_BASE, BUF_LEN);
    for (i, &v) in init.iter().enumerate() {
        vm.cpu.regs[i] = v;
    }
    vm.cpu.set(Reg::LR, RETURN_TRAP);
    vm.cpu.pc = image.entry;
    let ev = vm.run(10_000);
    assert_eq!(ev, StepEvent::ReturnToKernel, "concrete run must finish");
    let buf = vm.mem.read_bytes(BUF_BASE, BUF_LEN).unwrap();
    (vm.cpu.regs, buf)
}

fn run_symbolic(image: &DxeImage, init: &[u32; 8]) -> ([u32; 16], Vec<u8>) {
    let mut st = SymState::new(SymCounter::new());
    st.mem.map(image.load_base, image.image_end() - image.load_base);
    st.mem.seed_bytes(image.load_base, &image.text);
    st.mem.map(BUF_BASE, BUF_LEN);
    for (i, &v) in init.iter().enumerate() {
        st.cpu.set_u32(Reg(i as u8), v);
    }
    st.cpu.set_u32(Reg::LR, RETURN_TRAP);
    st.cpu.pc = image.entry;
    let mut solver = Solver::new();
    let mut env = NullEnv;
    loop {
        match step(&mut st, &mut env, &mut solver) {
            SymStep::Continue => continue,
            SymStep::ReturnToKernel => break,
            other => panic!("unexpected symbolic outcome {other:?}"),
        }
    }
    assert!(st.pending_forks.is_empty(), "concrete program must not fork");
    let mut regs = [0u32; 16];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = st.cpu.regs[i].as_const().expect("concrete program: concrete regs") as u32;
    }
    let mut buf = Vec::with_capacity(BUF_LEN as usize);
    for i in 0..BUF_LEN {
        buf.push(st.mem.read_byte(BUF_BASE + i).as_const().expect("concrete byte") as u8);
    }
    (regs, buf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn symbolic_and_concrete_engines_agree(
        ops in prop::collection::vec(arb_op(), 1..40),
        init in prop::array::uniform8(any::<u32>()),
    ) {
        let insns = lower(&ops);
        let image = image_for(&insns);
        let (c_regs, c_buf) = run_concrete(&image, &init);
        let (s_regs, s_buf) = run_symbolic(&image, &init);
        // r12-r15 include scratch/sp/lr; compare the program registers and
        // the buffer base register.
        prop_assert_eq!(&c_regs[..9], &s_regs[..9], "register divergence on {:?}", ops);
        prop_assert_eq!(c_buf, s_buf, "memory divergence on {:?}", ops);
    }

    /// Constant-only programs must also agree with the expression layer's
    /// own evaluator: lowering Movi/arith chains through `Expr` folding is
    /// the same arithmetic the VM performs.
    #[test]
    fn expr_folding_matches_vm_arithmetic(a in any::<u32>(), b in any::<u32>()) {
        let insns = vec![
            Insn::Movi { rd: Reg(0), imm: a },
            Insn::Movi { rd: Reg(1), imm: b },
            Insn::Add { rd: Reg(2), rs: Reg(0), rt: Reg(1) },
            Insn::Mul { rd: Reg(3), rs: Reg(2), rt: Reg(0) },
            Insn::Xor { rd: Reg(4), rs: Reg(3), rt: Reg(1) },
            Insn::Ret,
        ];
        let image = image_for(&insns);
        let (regs, _) = run_concrete(&image, &[0; 8]);
        let ea = Expr::constant(a as u64, 32);
        let eb = Expr::constant(b as u64, 32);
        let sum = ea.add(&eb);
        let prod = sum.mul(&ea);
        let x = prod.xor(&eb);
        prop_assert_eq!(regs[4] as u64, x.as_const().unwrap());
    }
}
