//! Every bug report must be concretely replayable (§3.5): the solved
//! inputs, interrupt schedule, and forced-failure schedule re-trigger the
//! same failure in the concrete VM.

use ddt::{replay_bug, Ddt, DriverUnderTest, ReplayOutcome};

fn assert_all_replay(driver: &str) {
    let spec = ddt::drivers::driver_by_name(driver).unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let report = Ddt::default().test(&dut);
    assert!(!report.bugs.is_empty(), "{driver} must have bugs to replay");
    for bug in &report.bugs {
        match replay_bug(&dut, bug) {
            ReplayOutcome::Reproduced { .. } => {}
            ReplayOutcome::NotReproduced { observed } => {
                panic!(
                    "{driver}: bug not reproduced: [{}] {} (observed {observed})",
                    bug.class, bug.description
                );
            }
        }
    }
}

#[test]
fn rtl8029_bugs_replay() {
    assert_all_replay("rtl8029");
}

#[test]
fn ensoniq_bugs_replay() {
    assert_all_replay("ensoniq");
}

#[test]
fn pcnet_bugs_replay() {
    assert_all_replay("pcnet");
}

#[test]
fn ac97_bug_replays() {
    assert_all_replay("ac97");
}

#[test]
fn injected_fault_bugs_replay_to_the_same_bug() {
    // A fault-plan run surfaces bugs whose decision schedules carry
    // `InjectFault` sites; replaying such a report must arm the same fault
    // at the same kernel-call index and reproduce the same failure. The
    // run being deterministic, re-exploring yields the identical bug key.
    let spec = ddt::drivers::driver_by_name("pcnet").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let config = ddt::DdtConfig { fault_plan: ddt::FaultPlan::full(), ..Default::default() };
    let report = Ddt::new(config.clone()).test(&dut);
    let injected: Vec<&ddt::Bug> = report
        .bugs
        .iter()
        .filter(|b| {
            b.decisions.iter().any(|d| matches!(d, ddt::core::Decision::InjectFault { .. }))
        })
        .collect();
    assert!(!injected.is_empty(), "pcnet has injected-fault bugs under the full plan");
    for bug in &injected {
        match replay_bug(&dut, bug) {
            ReplayOutcome::Reproduced { .. } => {}
            ReplayOutcome::NotReproduced { observed } => {
                panic!("[{}] {} not reproduced: {observed}", bug.class, bug.description);
            }
        }
    }
    // Determinism of the bug key: a second exploration with the same plan
    // produces the same injected-fault keys.
    let again = Ddt::new(config).test(&dut);
    let keys = |r: &ddt::Report| {
        r.bugs.iter().map(|b| b.key.clone()).collect::<std::collections::BTreeSet<_>>()
    };
    assert_eq!(keys(&report), keys(&again));
}

#[test]
fn replay_survives_serialization() {
    // The report a consumer receives over the wire replays identically.
    let spec = ddt::drivers::driver_by_name("ensoniq").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let report = Ddt::default().test(&dut);
    let bug = &report.bugs[0];
    let wire = serde_json::to_vec(bug).unwrap();
    let received: ddt::Bug = serde_json::from_slice(&wire).unwrap();
    assert!(matches!(
        replay_bug(&dut, &received),
        ReplayOutcome::Reproduced { .. }
    ));
}

#[test]
fn traces_are_bounded() {
    // §3.5: "The size of these traces rarely exceeds 1 MB per bug".
    let spec = ddt::drivers::driver_by_name("rtl8029").unwrap();
    let dut = DriverUnderTest::from_spec(&spec);
    let report = Ddt::default().test(&dut);
    for bug in &report.bugs {
        let bytes = serde_json::to_vec(bug).unwrap().len();
        assert!(
            bytes < 1_048_576,
            "trace for {:?} is {} bytes (> 1 MB)",
            bug.description,
            bytes
        );
    }
}
