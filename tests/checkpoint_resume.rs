//! Crash-safety integration tests for durable campaigns (§4.7), driven
//! through the real `ddt` binary: a campaign killed with SIGKILL at an
//! arbitrary instant must leave a loadable store, and `--resume` must run
//! it to a report identical to the uninterrupted reference — bug set,
//! solved inputs, and coverage — for both the serial and the parallel
//! explorer.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use serde::Value;

fn ddt_bin() -> &'static str {
    env!("CARGO_BIN_EXE_ddt")
}

/// The workspace's offline `serde` stand-in exposes reports as a
/// [`Value`] tree; this wrapper lets `from_slice` hand the tree back raw.
struct Raw(Value);

impl serde::Deserialize for Raw {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Raw(v.clone()))
    }
}

fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("report field {key:?} missing")),
        other => panic!("expected a map for {key:?}, got {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        other => panic!("expected an integer, got {other:?}"),
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ddt-ckres-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `ddt test` to completion with `--json`, returning the parsed
/// report. Exit code 1 (defects found) is success here.
fn run_json(args: &[&str], tag: &str) -> Value {
    let json = std::env::temp_dir().join(format!("ddt-ckres-{}-{tag}.json", std::process::id()));
    let _ = std::fs::remove_file(&json);
    let out = Command::new(ddt_bin())
        .args(args)
        .arg("--json")
        .arg(&json)
        .output()
        .expect("spawn ddt");
    let code = out.status.code();
    assert!(
        matches!(code, Some(0) | Some(1)),
        "ddt {args:?} exited with {code:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&json).expect("report json written");
    let _ = std::fs::remove_file(&json);
    let raw: Raw = serde_json::from_slice(&bytes).expect("report parses");
    raw.0
}

/// The fields a resumed campaign must reproduce exactly: per-bug key,
/// class, attributed pc, solved concrete inputs, and sighting count, plus
/// the block coverage — sorted so exploration order cannot matter.
fn essence(report: &Value) -> (Vec<String>, u64, u64) {
    let Value::List(bug_list) = get(report, "bugs") else { panic!("bugs not a list") };
    let mut bugs: Vec<String> = bug_list
        .iter()
        .map(|b| {
            format!(
                "{:?}|{:?}|{:?}|{:?}|{:?}",
                get(b, "key"),
                get(b, "class"),
                get(b, "pc"),
                get(b, "inputs"),
                get(b, "occurrences")
            )
        })
        .collect();
    bugs.sort();
    (
        bugs,
        as_u64(get(report, "covered_blocks")),
        as_u64(get(report, "total_blocks")),
    )
}

/// Bug keys only — the schedule-independent comparison for parallel runs.
fn keys(report: &Value) -> Vec<String> {
    let Value::List(bug_list) = get(report, "bugs") else { panic!("bugs not a list") };
    let mut ks: Vec<String> = bug_list.iter().map(|b| format!("{:?}", get(b, "key"))).collect();
    ks.sort();
    ks
}

/// Starts a campaign in a child process, waits until its first checkpoint
/// lands on disk, then SIGKILLs it — the kill races freely against
/// journal appends and checkpoint writes, which is the point.
fn kill_mid_campaign(dir: &Path, extra: &[&str]) {
    let mut child = Command::new(ddt_bin())
        .args(["test", "pcnet", "--faults", "--checkpoint-dir"])
        .arg(dir)
        .args(["--checkpoint-every", "4"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn campaign child");
    let deadline = Instant::now() + Duration::from_secs(60);
    let has_checkpoint = |d: &Path| {
        std::fs::read_dir(d).ok().is_some_and(|rd| {
            rd.flatten().any(|e| {
                let n = e.file_name();
                let n = n.to_string_lossy().into_owned();
                n.starts_with("checkpoint-") && n.ends_with(".ddtc")
            })
        })
    };
    while !has_checkpoint(dir) {
        assert!(Instant::now() < deadline, "no checkpoint appeared within 60s");
        if child.try_wait().expect("try_wait").is_some() {
            // The campaign finished before we could kill it; the resume
            // below then exercises the finished-rebuild path instead.
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL child"); // std kill == SIGKILL on unix
    child.wait().expect("reap child");
}

#[test]
fn serial_sigkill_resume_matches_uninterrupted() {
    let reference = run_json(&["test", "pcnet", "--faults"], "serial-ref");
    let dir = tmp("serial-kill");
    kill_mid_campaign(&dir, &[]);
    let resumed = run_json(
        &["test", "pcnet", "--faults", "--resume", dir.to_str().unwrap()],
        "serial-res",
    );
    assert_eq!(essence(&resumed), essence(&reference), "resumed report diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_sigkill_resume_matches_uninterrupted() {
    let reference = run_json(&["test", "pcnet", "--faults"], "par-ref");
    let dir = tmp("par-kill");
    kill_mid_campaign(&dir, &["--workers", "4"]);
    let resumed = run_json(
        &["test", "pcnet", "--faults", "--workers", "4", "--resume", dir.to_str().unwrap()],
        "par-res",
    );
    assert_eq!(keys(&resumed), keys(&reference), "parallel resume changed the bug set");
    assert_eq!(
        as_u64(get(&resumed, "covered_blocks")),
        as_u64(get(&reference, "covered_blocks")),
        "parallel resume changed coverage"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every other bundled driver, serial, without fault injection: the kill
/// may land anywhere, including before any exploration happened.
#[test]
fn sigkill_resume_across_bundled_drivers() {
    for driver in ["rtl8029", "ensoniq", "clean_nic"] {
        let reference = run_json(&["test", driver], &format!("{driver}-ref"));
        let dir = tmp(&format!("{driver}-kill"));
        let mut child = Command::new(ddt_bin())
            .args(["test", driver, "--checkpoint-dir"])
            .arg(&dir)
            .args(["--checkpoint-every", "4"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn campaign child");
        std::thread::sleep(Duration::from_millis(40));
        let finished = child.try_wait().expect("try_wait").is_some();
        if !finished {
            child.kill().expect("SIGKILL child");
            child.wait().expect("reap child");
        }
        // A kill before the first checkpoint leaves nothing to resume —
        // that must surface as a clear error, not a panic (covered below);
        // here we only demand equivalence when a store exists.
        let any_checkpoint = std::fs::read_dir(&dir).ok().is_some_and(|rd| {
            rd.flatten().any(|e| e.file_name().to_string_lossy().ends_with(".ddtc"))
        });
        if any_checkpoint {
            let resumed = run_json(
                &["test", driver, "--resume", dir.to_str().unwrap()],
                &format!("{driver}-res"),
            );
            assert_eq!(essence(&resumed), essence(&reference), "{driver}: resume diverged");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Strategy state survives the checkpoint: a campaign killed under each
/// guided strategy (with pruning, the harder case — the prune set and the
/// per-state coverage stamps must round-trip through the store) resumes
/// with `--strategy`/`--prune` to the same report as the uninterrupted
/// run under the same flags.
#[test]
fn sigkill_resume_round_trips_every_strategy() {
    for strategy in ["fifo", "coverage-new-first", "rarest-branch", "bug-directed"] {
        let flags = ["--strategy", strategy, "--prune"];
        let reference = run_json(
            &[&["test", "pcnet", "--faults"][..], &flags[..]].concat(),
            &format!("strat-{strategy}-ref"),
        );
        let dir = tmp(&format!("strat-{strategy}-kill"));
        kill_mid_campaign(&dir, &flags);
        let resumed = run_json(
            &[
                &["test", "pcnet", "--faults", "--resume", dir.to_str().unwrap()],
                &flags[..],
            ]
            .concat(),
            &format!("strat-{strategy}-res"),
        );
        assert_eq!(
            essence(&resumed),
            essence(&reference),
            "{strategy}: resume diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A checkpoint taken under one strategy refuses to resume under another:
/// the config fingerprint covers `--strategy` and `--prune`.
#[test]
fn resume_refuses_a_strategy_mismatch() {
    let dir = tmp("strat-mismatch");
    let _ = run_json(
        &["test", "clean_nic", "--strategy", "rarest-branch", "--checkpoint-dir",
          dir.to_str().unwrap()],
        "strat-mismatch-full",
    );
    let out = Command::new(ddt_bin())
        .args(["test", "clean_nic", "--strategy", "fifo", "--resume", dir.to_str().unwrap()])
        .output()
        .expect("spawn ddt");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "expected a clean failure");
    assert!(
        stderr.contains("cannot resume campaign"),
        "missing diagnostic, stderr: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_clean_finish_is_a_noop() {
    let dir = tmp("finish");
    let full = run_json(
        &["test", "clean_nic", "--checkpoint-dir", dir.to_str().unwrap()],
        "finish-full",
    );
    let resumed = run_json(
        &["test", "clean_nic", "--resume", dir.to_str().unwrap()],
        "finish-res",
    );
    assert_eq!(essence(&resumed), essence(&full));
    assert_eq!(
        as_u64(get(get(&resumed, "stats"), "insns")),
        as_u64(get(get(&full, "stats"), "insns")),
        "no-op resume re-explored paths"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_missing_empty_or_corrupt_dir_fails_cleanly() {
    let check = |dir: &Path, tag: &str| {
        let out = Command::new(ddt_bin())
            .args(["test", "pcnet", "--resume", dir.to_str().unwrap()])
            .output()
            .expect("spawn ddt");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "{tag}: expected a clean failure");
        assert!(
            stderr.contains("cannot resume campaign"),
            "{tag}: missing diagnostic, stderr: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "{tag}: the tool panicked: {stderr}");
    };
    let missing = tmp("missing");
    check(&missing, "missing dir");
    let empty = tmp("empty");
    std::fs::create_dir_all(&empty).unwrap();
    check(&empty, "empty dir");
    let corrupt = tmp("corrupt");
    std::fs::create_dir_all(&corrupt).unwrap();
    std::fs::write(corrupt.join("checkpoint-000000.ddtc"), b"DDTC\x07not a checkpoint").unwrap();
    check(&corrupt, "corrupt checkpoint");
    let _ = std::fs::remove_dir_all(&empty);
    let _ = std::fs::remove_dir_all(&corrupt);
}
