//! Cached-vs-uncached differential harness for the shared query cache.
//!
//! The counterexample cache must be *semantically invisible*: with the cache
//! on or off (`--no-query-cache`), an exploration must find the same bugs
//! via the same decision schedules with the same solved inputs and the same
//! coverage — only solver time may differ. This harness runs every bundled
//! driver both ways and compares the runs field by field, then replays each
//! bug to check the reproductions agree too.

use std::collections::HashMap;

use ddt::{decision_streams, replay_bug, Ddt, DdtConfig, DriverUnderTest, Report};

fn run(dut: &DriverUnderTest, use_cache: bool) -> Report {
    let mut config = DdtConfig::default();
    config.use_query_cache = use_cache;
    Ddt::new(config).test(dut)
}

fn all_duts() -> Vec<DriverUnderTest> {
    let mut duts: Vec<DriverUnderTest> =
        ddt::drivers::drivers().iter().map(DriverUnderTest::from_spec).collect();
    duts.push(DriverUnderTest::from_spec(&ddt::drivers::clean_driver()));
    duts
}

#[test]
fn cache_on_and_off_explorations_are_identical() {
    for dut in all_duts() {
        let on = run(&dut, true);
        let off = run(&dut, false);
        let name = &dut.image.name;

        // Identical bug sets, by stable dedup key.
        let mut on_keys: Vec<&str> = on.bugs.iter().map(|b| b.key.as_str()).collect();
        let mut off_keys: Vec<&str> = off.bugs.iter().map(|b| b.key.as_str()).collect();
        on_keys.sort_unstable();
        off_keys.sort_unstable();
        assert_eq!(on_keys, off_keys, "{name}: bug sets diverged");

        // Identical decision schedules: same interrupt injections, forced
        // failures, and backtracks, in the same order, per bug.
        assert_eq!(
            decision_streams(&on.bugs),
            decision_streams(&off.bugs),
            "{name}: decision streams diverged"
        );

        // Identical solved inputs per bug (models are a deterministic
        // function of the constraint set in both modes).
        let off_inputs: HashMap<&str, _> =
            off.bugs.iter().map(|b| (b.key.as_str(), &b.inputs)).collect();
        for bug in &on.bugs {
            assert_eq!(
                Some(&&bug.inputs),
                off_inputs.get(bug.key.as_str()),
                "{name}: solved inputs diverged for bug {}",
                bug.key
            );
        }

        // Identical exploration shape and coverage.
        assert_eq!(on.total_blocks, off.total_blocks, "{name}: total blocks");
        assert_eq!(on.covered_blocks, off.covered_blocks, "{name}: coverage diverged");
        assert_eq!(
            on.stats.paths_started, off.stats.paths_started,
            "{name}: path counts diverged"
        );
        assert_eq!(on.stats.insns, off.stats.insns, "{name}: instruction counts diverged");

        // The uncached run must really have bypassed the cache.
        assert_eq!(off.stats.solver_cache_hits, 0, "{name}: uncached run hit the cache");
        assert_eq!(off.stats.solver_model_reuse, 0);
        assert_eq!(off.stats.solver_unsat_subset, 0);

        // Replaying each bug reproduces identically in both runs.
        let off_by_key: HashMap<&str, _> =
            off.bugs.iter().map(|b| (b.key.as_str(), b)).collect();
        for bug in &on.bugs {
            let other = off_by_key[bug.key.as_str()];
            assert_eq!(
                replay_bug(&dut, bug),
                replay_bug(&dut, other),
                "{name}: replay outcomes diverged for bug {}",
                bug.key
            );
        }
    }
}

#[test]
fn parallel_shared_cache_matches_uncached_serial() {
    for driver in ["pcnet", "ensoniq"] {
        let spec = ddt::drivers::driver_by_name(driver).expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let serial_off = run(&dut, false);
        let parallel_on = ddt::test_parallel(&Ddt::default(), &dut, 4);
        let mut sk: Vec<&str> = serial_off.bugs.iter().map(|b| b.key.as_str()).collect();
        let mut pk: Vec<&str> = parallel_on.bugs.iter().map(|b| b.key.as_str()).collect();
        sk.sort_unstable();
        pk.sort_unstable();
        assert_eq!(sk, pk, "{driver}: shared-cache parallel diverged from uncached serial");
        // Decision *streams* are only compared serial-vs-serial: a bug's
        // dedup key is stable across exploration order, but which equivalent
        // path first exposes it is scheduler-dependent in a parallel run.
    }
}

#[test]
fn cache_counters_surface_in_stats_and_health() {
    let spec = ddt::drivers::driver_by_name("rtl8029").expect("bundled");
    let dut = DriverUnderTest::from_spec(&spec);
    let on = run(&dut, true);
    let hits =
        on.stats.solver_cache_hits + on.stats.solver_model_reuse + on.stats.solver_unsat_subset;
    assert!(
        hits > 0,
        "a multi-path exploration must produce cache activity (stats: {:?})",
        on.stats
    );
    assert_eq!(on.health.cache_hits, on.stats.solver_cache_hits);
    assert_eq!(on.health.cache_model_reuse, on.stats.solver_model_reuse);
    assert_eq!(on.health.cache_unsat_subset, on.stats.solver_unsat_subset);
    assert_eq!(on.health.cache_evictions, on.stats.cache_evictions);
    assert!(on.health.render().contains("query-cache hits"));
}
