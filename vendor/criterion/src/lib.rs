//! Offline stand-in for `criterion`: runs each benchmark closure a fixed
//! number of iterations and prints mean wall-clock time per iteration. No
//! statistics, plots, or baselines — enough for `cargo bench` to build and
//! give rough numbers offline.

use std::time::Instant;

/// Benchmark driver; collects and prints per-benchmark timings.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Honored for CLI compatibility; no arguments are parsed offline.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.sample_size as u64, elapsed_ns: 0 };
        f(&mut b);
        let per_iter = b.elapsed_ns / b.iters.max(1);
        println!("bench {id:<45} {per_iter:>12} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Clone, Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as u64;
    }
}

/// Prevents the optimizer from deleting a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
