//! Offline stand-in for `bytes`, covering the subset the DXE image
//! encoder/decoder uses: `Buf` over `&[u8]`, `BufMut`/`BytesMut` for
//! building, and an immutable `Bytes` produced by `freeze()`.

use std::ops::Deref;

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out and consumes them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Append-only byte sink.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte buffer (here: a plain owned vector, not refcounted).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes { data: src.to_vec() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let mut b = BytesMut::new();
        b.put_slice(b"hdr");
        b.put_u8(7);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xdeadbeef);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdeadbeef);
        assert_eq!(r.remaining(), 0);
    }
}
