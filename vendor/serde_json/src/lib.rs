//! Offline stand-in for `serde_json`: renders and parses the sibling serde
//! stand-in's [`serde::Value`] model as JSON. Covers the functions this
//! workspace calls: `to_string`, `to_string_pretty`, `to_vec`,
//! `to_vec_pretty`, `from_str`, `from_slice`.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes a value to indented JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: Deserialize>(b: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(b).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Guarantee a numeric JSON token that parses back as f64.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::List(items) => {
            write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                write_value(&items[i], out, indent, d);
            });
        }
        Value::Map(entries) => {
            write_seq(out, indent, depth, entries.len(), '{', '}', |out, i, d| {
                write_string(&entries[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&entries[i].1, out, indent, d);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> Error {
        Error(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => {
                self.eat("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::List(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::List(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(self.err("expected `:`"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(cp).unwrap_or(char::REPLACEMENT_CHARACTER),
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar from the remaining input.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_value_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::List(vec![Value::I64(-3), Value::Null, Value::Bool(true)])),
            ("s".into(), Value::Str("q\"\\\n\u{1}é".into())),
            ("f".into(), Value::F64(1.5)),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        impl Deserialize for Raw {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(Raw(v.clone()))
            }
        }
        for render in [to_string(&Raw(v.clone())).unwrap(), to_string_pretty(&Raw(v.clone())).unwrap()] {
            let back: Raw = from_str(&render).unwrap();
            assert_eq!(back.0, v, "render: {render}");
        }
    }
}
