//! Offline placeholder for `rand`. The workspace declares `rand` as a
//! dev-dependency in a couple of crates but no code imports it; this empty
//! crate satisfies dependency resolution without network access. If real
//! randomness is needed later, extend this with a small PRNG or gate the
//! dependency.
