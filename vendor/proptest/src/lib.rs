//! Offline stand-in for `proptest`, implementing the strategy/macro subset
//! this workspace's property tests use. Generation is deterministic (fixed
//! splitmix64 seed per case index) and there is no shrinking: a failing case
//! reports its case number and generated inputs via the assertion message.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property (raised by `prop_assert!`-family macros).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator for one test case.
        pub fn from_case(case: u32) -> TestRng {
            TestRng { state: 0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(case as u64 + 1) }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 32 uniform bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds recursive values: up to `depth` nested applications of
        /// `grow` over `self` as the leaf strategy. The size-hint arguments
        /// of real proptest are accepted and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            grow: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = grow(cur.clone()).boxed();
                let l = leaf.clone();
                cur = BoxedStrategy::new(move |rng| {
                    if rng.below(3) == 0 {
                        l.gen_value(rng)
                    } else {
                        deeper.gen_value(rng)
                    }
                });
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(move |rng| self.gen_value(rng))
        }
    }

    /// A cloneable type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { gen: Rc::clone(&self.gen) }
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation function.
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniformly picks one of several strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over type-erased alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.options.len() as u64) as usize;
            self.options[ix].gen_value(rng)
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// `any::<T>()` adapter over [`Arbitrary`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a canonical full-range generator.
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy for an unconstrained `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any { _marker: PhantomData }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    assert!(span > 0, "empty range strategy");
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as u64;
                    let hi = *self.end() as u64;
                    if lo == 0 && hi == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(hi - lo + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with element strategy `element` and length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for fixed-size arrays of 8 elements.
    pub struct UniformArray8<S> {
        element: S,
    }

    /// An `[T; 8]` strategy from one element strategy.
    pub fn uniform8<S: Strategy>(element: S) -> UniformArray8<S> {
        UniformArray8 { element }
    }

    impl<S: Strategy> Strategy for UniformArray8<S> {
        type Value = [S::Value; 8];

        fn gen_value(&self, rng: &mut TestRng) -> [S::Value; 8] {
            std::array::from_fn(|_| self.element.gen_value(rng))
        }
    }
}

/// The usual proptest import surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniformly selects among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
}

/// Declares property tests: each `fn` runs `cases` times over generated
/// inputs. `prop_assert!` failures report the case index; there is no
/// shrinking in this stand-in.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::from_case(case);
                $(
                    let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
    )*};
}
