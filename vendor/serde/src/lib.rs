//! Offline stand-in for `serde`, covering exactly the subset this workspace
//! uses: `#[derive(Serialize, Deserialize)]` on plain (non-generic) structs
//! and enums, serialized through an in-memory [`Value`] model that the
//! sibling `serde_json` stand-in renders as JSON.
//!
//! The build environment has no network access and no registry cache, so the
//! real serde cannot be fetched; the workspace points its `serde` dependency
//! at this path crate instead. The trait surface is intentionally simpler
//! than real serde (no `Serializer`/`Deserializer` visitors): derived impls
//! convert to and from [`Value`], which is all the repo's round-trip and
//! report-emission call sites need.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

/// The serialization data model: a JSON-shaped tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None` and unit structs).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string (also unit enum variants).
    Str(String),
    /// A sequence (also tuples, tuple structs, and non-string-keyed maps,
    /// which serialize as pair lists).
    List(Vec<Value>),
    /// A key-ordered object (struct fields, tagged enum variants).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the elements if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer value if this is any integer representation.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Returns the signed integer value if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Returns the number as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Returns the boolean if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// A deserialization error (type mismatch, missing field, unknown variant).
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// A "expected X" type-mismatch error.
    pub fn expected(what: &str) -> DeError {
        DeError(format!("expected {what}"))
    }

    /// A missing-field error.
    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` for {ty}"))
    }

    /// An unknown enum-variant error.
    pub fn unknown_variant(ty: &str, variant: &str) -> DeError {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a field in a map value; used by derived impls.
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}`")))
}

/// Types that can render themselves into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a serialization value.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Parses a value back into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::expected(stringify!($t)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::expected(stringify!($t)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("f32"))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::List(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_list()
            .ok_or_else(|| DeError::expected("list"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Rc::new)
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::List(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let l = v.as_list().ok_or_else(|| DeError::expected("tuple"))?;
                Ok(($($t::from_value(
                    l.get($n).ok_or_else(|| DeError::expected("tuple element"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::List(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        items.try_into().map_err(|_| DeError::expected("fixed-size array"))
    }
}

/// Maps serialize as a list of `[key, value]` pairs so that non-string keys
/// (e.g. newtype symbol ids) round-trip without a string-key convention.
/// Pairs are sorted by serialized key, making the encoding canonical: the
/// same map renders to the same bytes in every process regardless of hash
/// iteration order (hashed containers randomize per process).
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(Value, Value)> =
        entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    pairs.sort_by(|(a, _), (b, _)| value_cmp(a, b));
    Value::List(pairs.into_iter().map(|(k, v)| Value::List(vec![k, v])).collect())
}

/// A total structural order over [`Value`] trees (variant rank, then
/// contents), used only to canonicalize map-pair output order.
fn value_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::U64(_) => 2,
            Value::I64(_) => 3,
            Value::F64(_) => 4,
            Value::Str(_) => 5,
            Value::List(_) => 6,
            Value::Map(_) => 7,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::U64(x), Value::U64(y)) => x.cmp(y),
        (Value::I64(x), Value::I64(y)) => x.cmp(y),
        (Value::F64(x), Value::F64(y)) => x.total_cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::List(x), Value::List(y)) => {
            for (xi, yi) in x.iter().zip(y.iter()) {
                match value_cmp(xi, yi) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => {
            for ((xk, xv), (yk, yv)) in x.iter().zip(y.iter()) {
                match xk.cmp(yk).then_with(|| value_cmp(xv, yv)) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    v.as_list()
        .ok_or_else(|| DeError::expected("map pair list"))?
        .iter()
        .map(|pair| {
            let p = pair.as_list().ok_or_else(|| DeError::expected("map pair"))?;
            if p.len() != 2 {
                return Err(DeError::expected("two-element map pair"));
            }
            Ok((K::from_value(&p[0])?, V::from_value(&p[1])?))
        })
        .collect()
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}
