//! Offline stand-in for `crossbeam`, providing the two types this workspace
//! uses: `crossbeam::queue::SegQueue` and `crossbeam::sync::ShardedLock`.
//! The queue is a mutexed `VecDeque` rather than a lock-free segmented
//! queue, and the sharded lock wraps a single `std::sync::RwLock` rather
//! than per-core shards — same APIs and semantics (unbounded MPMC / a
//! read-optimized reader-writer lock, neither poisons callers), lower
//! throughput.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> SegQueue<T> {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // A panic while holding the lock cannot leave the queue in a
            // broken state (push/pop are atomic on VecDeque), so poisoning
            // is safe to ignore — matching lock-free SegQueue behavior.
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Appends an element at the tail.
        pub fn push(&self, value: T) {
            self.guard().push_back(value);
        }

        /// Removes the head element, if any.
        pub fn pop(&self) -> Option<T> {
            self.guard().pop_front()
        }

        /// Number of queued elements (racy snapshot, like crossbeam's).
        pub fn len(&self) -> usize {
            self.guard().len()
        }

        /// True when no elements are queued (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.guard().is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_threaded_drain() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());

            let q = std::sync::Arc::new(SegQueue::new());
            for i in 0..100 {
                q.push(i);
            }
            let mut handles = Vec::new();
            for _ in 0..4 {
                let q = q.clone();
                handles.push(std::thread::spawn(move || {
                    let mut n = 0;
                    while q.pop().is_some() {
                        n += 1;
                    }
                    n
                }));
            }
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 100);
        }
    }
}

pub mod sync {
    use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

    /// A reader-writer lock optimized for read-mostly workloads.
    ///
    /// The real crossbeam implementation shards the lock per core so
    /// uncontended reads never touch a shared cache line; this stand-in
    /// delegates to one `std::sync::RwLock`. Poisoning is absorbed (a
    /// panicked writer cannot leave guarded data half-updated in the
    /// workspace's usage — every structure stays internally consistent),
    /// matching crossbeam's no-poisoning contract.
    #[derive(Debug, Default)]
    pub struct ShardedLock<T> {
        inner: RwLock<T>,
    }

    impl<T> ShardedLock<T> {
        /// Creates a lock holding `value`.
        pub fn new(value: T) -> ShardedLock<T> {
            ShardedLock { inner: RwLock::new(value) }
        }

        /// Acquires shared read access.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Acquires exclusive write access.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Consumes the lock, returning the value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn concurrent_readers_and_a_writer() {
            let lock = std::sync::Arc::new(ShardedLock::new(0u64));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let l = lock.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _ = *l.read();
                    }
                }));
            }
            for _ in 0..1000 {
                *lock.write() += 1;
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*lock.read(), 1000);
        }
    }
}
