//! Offline stand-in for `crossbeam`, providing the one type this workspace
//! uses: `crossbeam::queue::SegQueue`. The implementation is a mutexed
//! `VecDeque` rather than a lock-free segmented queue — same API and
//! semantics (unbounded MPMC, never poisons callers), lower throughput.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> SegQueue<T> {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // A panic while holding the lock cannot leave the queue in a
            // broken state (push/pop are atomic on VecDeque), so poisoning
            // is safe to ignore — matching lock-free SegQueue behavior.
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Appends an element at the tail.
        pub fn push(&self, value: T) {
            self.guard().push_back(value);
        }

        /// Removes the head element, if any.
        pub fn pop(&self) -> Option<T> {
            self.guard().pop_front()
        }

        /// Number of queued elements (racy snapshot, like crossbeam's).
        pub fn len(&self) -> usize {
            self.guard().len()
        }

        /// True when no elements are queued (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.guard().is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_threaded_drain() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());

            let q = std::sync::Arc::new(SegQueue::new());
            for i in 0..100 {
                q.push(i);
            }
            let mut handles = Vec::new();
            for _ in 0..4 {
                let q = q.clone();
                handles.push(std::thread::spawn(move || {
                    let mut n = 0;
                    while q.pop().is_some() {
                        n += 1;
                    }
                    n
                }));
            }
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 100);
        }
    }
}
