//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stand-in. Implemented directly on `proc_macro` token trees (no syn/quote —
//! the build environment has no registry access), which is sufficient because
//! every derive site in this workspace is a non-generic struct or enum with
//! no `#[serde(...)]` attributes.
//!
//! Wire shape (mirrors serde_json's externally-tagged defaults):
//! - named struct        -> map of field name -> value
//! - newtype struct      -> the inner value
//! - tuple struct        -> list of values
//! - unit enum variant   -> the variant name as a string
//! - newtype variant     -> one-entry map: name -> inner value
//! - tuple variant       -> one-entry map: name -> list
//! - struct variant      -> one-entry map: name -> field map

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the stand-in `serde::Serialize` (value-model rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape).parse().expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize` (value-model parsing).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape).parse().expect("generated Deserialize impl parses")
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // '#' + bracketed group
        } else if i < toks.len() && is_ident(&toks[i], "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1; // pub(crate) etc.
                }
            }
        } else {
            return i;
        }
    }
}

fn parse_item(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!("serde stand-in derive: expected struct or enum, got {:?}", toks[i]);
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected type name, got {other:?}"),
    };
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }
    if is_enum {
        let TokenTree::Group(body) = &toks[i] else {
            panic!("serde stand-in derive: expected enum body");
        };
        Shape::Enum { name, variants: parse_variants(body.stream()) }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            _ => Shape::UnitStruct { name },
        }
    }
}

/// Advances past one type, tracking `<...>` nesting, up to a top-level comma.
/// Returns the index just past the comma (or the end).
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if is_punct(&toks[i], '<') {
            depth += 1;
        } else if is_punct(&toks[i], '>') {
            depth -= 1;
        } else if is_punct(&toks[i], ',') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(id) = &toks[i] else {
            panic!("serde stand-in derive: expected field name, got {:?}", toks[i]);
        };
        fields.push(id.to_string());
        i += 1;
        assert!(is_punct(&toks[i], ':'), "expected `:` after field name");
        i = skip_type(&toks, i + 1);
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        n += 1;
        i = skip_type(&toks, i);
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(id) = &toks[i] else {
            panic!("serde stand-in derive: expected variant name, got {:?}", toks[i]);
        };
        let name = id.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` up to the separating comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1; // past the comma (or end)
        variants.push(Variant { name, kind });
    }
    variants
}

fn gen_serialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            (name, format!("::serde::Value::Map(vec![{}])", entries.join(", ")))
        }
        Shape::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|n| format!("::serde::Serialize::to_value(&self.{n})"))
                .collect();
            (name, format!("::serde::Value::List(vec![{}])", items.join(", ")))
        }
        Shape::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::List(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(m, \"{f}\")?)?"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "let m = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map for {name}\"))?;\n\
                     ::core::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
            ),
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|n| {
                    format!(
                        "::serde::Deserialize::from_value(l.get({n}).ok_or_else(|| ::serde::DeError::expected(\"element {n} of {name}\"))?)?"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "let l = v.as_list().ok_or_else(|| ::serde::DeError::expected(\"list for {name}\"))?;\n\
                     ::core::result::Result::Ok({name}({}))",
                    inits.join(", ")
                ),
            )
        }
        Shape::UnitStruct { name } => {
            (name, format!("let _ = v; ::core::result::Result::Ok({name})"))
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push(format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push(format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_value(l.get({k}).ok_or_else(|| ::serde::DeError::expected(\"element {k} of {name}::{vn}\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => {{ let l = inner.as_list().ok_or_else(|| ::serde::DeError::expected(\"list for {name}::{vn}\"))?; ::core::result::Result::Ok({name}::{vn}({})) }}",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::map_get(fm, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => {{ let fm = inner.as_map().ok_or_else(|| ::serde::DeError::expected(\"map for {name}::{vn}\"))?; ::core::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => ::core::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", other)),\n\
                     }},\n\
                     ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                         let (tag, inner) = &m[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => ::core::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                     _ => ::core::result::Result::Err(::serde::DeError::expected(\"enum value for {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n"),
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
