//! Bring your own driver: write DDT-32 assembly, assemble it to a binary,
//! and test that binary with DDT — the full workflow a driver vendor (or a
//! suspicious consumer with a disassembler) would use.
//!
//! The example driver below has a planted bug: it trusts a device register
//! as an index into its rx ring without a bounds check — the hardware-bug
//! robustness case of §3.3 ("consider a device that returns a value used by
//! the driver as an array index").
//!
//! ```text
//! cargo run --release --example custom_driver
//! ```

use ddt::drivers::workload::WorkloadOp;
use ddt::drivers::DriverClass;
use ddt::isa::asm::assemble;

const MY_DRIVER: &str = r#"
.name mynic
.equ NDIS_SUCCESS, 0
.equ NDIS_FAILURE, 0xC0000001

.text
DriverEntry:
    push lr
    lea  r0, miniport_table
    call @NdisMRegisterMiniport
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

Initialize:
    push lr
    lea  r1, adapter
    stw  [r1], r0
    lea  r0, intr_obj
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, 5
    mov  r3, 0
    call @NdisMRegisterInterrupt
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

Send:
    push lr
    ldw  r2, [r1]
    ldw  r3, [r1+4]
    bgeu r3, 1515, send_bad
    out  0x14, r3
    lea  r0, adapter
    ldw  r0, [r0]
    mov  r2, 0
    call @NdisMSendComplete
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
send_bad:
    mov  r0, NDIS_FAILURE
    pop  lr
    ret

QueryInformation:
    mov  r0, 0xC00000BB
    ret
SetInformation:
    mov  r0, 0xC00000BB
    ret

Isr:
    push lr
    in   r1, 0x10               ; rx slot index straight from the device
    and  r2, r1, 0x80
    beq  r2, 0, isr_no
    and  r1, r1, 0x7f           ; "can't be more than 127, right?"
    shl  r1, r1, 2
    lea  r2, rx_ring            ; BUG: the ring has 16 entries, not 128
    add  r2, r2, r1
    mov  r3, 1
    stw  [r2], r3
    mov  r0, 1
    pop  lr
    ret
isr_no:
    mov  r0, 0
    pop  lr
    ret

HandleInterrupt:
    mov  r0, 0
    ret
Reset:
    mov  r0, NDIS_SUCCESS
    ret
Halt:
    push lr
    lea  r0, intr_obj
    call @NdisMDeregisterInterrupt
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
CheckForHang:
    mov  r0, 0
    ret

.data
miniport_table:
    .word Initialize, Send, QueryInformation, SetInformation
    .word Isr, HandleInterrupt, Reset, Halt, CheckForHang, 0

.bss
adapter:  .space 4
intr_obj: .space 16
rx_ring:  .space 64
"#;

fn main() {
    // 1. Assemble to a binary; from here on only the binary is used.
    let exports = ddt::kernel::export_map();
    let assembled = assemble(MY_DRIVER, &exports).expect("driver assembles");
    let binary = assembled.image.to_bytes();
    println!("assembled 'mynic' to {} bytes of DXE binary", binary.len());

    // 2. Reload from the binary (what a vendor would actually ship).
    let image = ddt::isa::image::DxeImage::from_bytes(&binary).expect("valid image");

    // 3. Test it.
    let dut = ddt::DriverUnderTest {
        image,
        class: DriverClass::Net,
        registry: vec![],
        descriptor: Default::default(),
        workload: vec![
            WorkloadOp::Initialize,
            WorkloadOp::Send { len: 64, fill: 0x42 },
            WorkloadOp::Halt,
        ],
    };
    let report = ddt::Ddt::default().test(&dut);
    println!(
        "explored {} paths, coverage {:.0}%",
        report.stats.paths_started,
        100.0 * report.relative_coverage()
    );
    for bug in &report.bugs {
        println!("[{}] {}", bug.class, bug.description);
    }
    assert!(
        !report.bugs.is_empty(),
        "DDT should flag the unchecked device-provided ring index"
    );
    println!("\nDDT caught the unchecked hardware index without ever seeing the source.");
}
