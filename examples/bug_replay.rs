//! Find a bug symbolically, then replay it **concretely** in the VM with
//! the solved inputs — the paper's "irrefutable evidence" workflow (§3.5).
//!
//! ```text
//! cargo run --release --example bug_replay [driver-name]
//! ```

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ensoniq".to_string());
    let spec = ddt::drivers::driver_by_name(&name)
        .unwrap_or_else(|| panic!("no bundled driver named {name:?}"));
    let dut = ddt::DriverUnderTest::from_spec(&spec);

    println!("Phase 1: symbolic exploration of '{}'", spec.name);
    let report = ddt::Ddt::default().test(&dut);
    println!("  found {} bug(s)\n", report.bugs.len());

    println!("Phase 2: concrete replay of each bug");
    for bug in &report.bugs {
        println!("  [{}] {}", bug.class, bug.description);
        // Serialize the report like the tool would ship it to a consumer
        // (the trace is self-contained, §3.5).
        let shipped = serde_json::to_vec(bug).expect("bug serializes");
        let received: ddt::Bug = serde_json::from_slice(&shipped).expect("bug parses");
        println!("    shipped report: {} bytes", shipped.len());
        match ddt::replay_bug(&dut, &received) {
            ddt::ReplayOutcome::Reproduced { observed } => {
                println!("    REPRODUCED concretely: {observed}");
            }
            ddt::ReplayOutcome::NotReproduced { observed } => {
                println!("    not reproduced (observed: {observed})");
            }
        }
        println!();
    }
}
