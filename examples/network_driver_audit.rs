//! Audit all bundled NIC drivers the way the paper's consumer scenario
//! imagines (§1: the "Test Now" button): run DDT on each network driver
//! before "installing" it, then decide.
//!
//! The audit runs in two passes. The first is the paper's baseline
//! workload. The second replays the workload under device-lifecycle fault
//! injection (§4.11) — surprise removals and D0/D3 power transitions
//! delivered to the driver's PnP notification handler — and persists a
//! replayable triage artifact for every touch-after-remove finding, so the
//! evidence survives the audit process itself.
//!
//! ```text
//! cargo run --release --example network_driver_audit
//! ```

use ddt::drivers::DriverClass;
use ddt::{BugClass, FaultFamily, FaultPlan};

fn main() {
    println!("Network driver pre-installation audit\n");
    let mut verdicts = Vec::new();
    for spec in ddt::drivers::drivers().into_iter().filter(|d| d.class == DriverClass::Net) {
        println!("--- {} (vendor {:04x}:{:04x}) ---", spec.name, spec.descriptor.vendor_id, spec.descriptor.device_id);
        let dut = ddt::DriverUnderTest::from_spec(&spec);
        let report = ddt::Ddt::default().test(&dut);
        let crashers = report
            .bugs
            .iter()
            .filter(|b| {
                matches!(
                    b.class,
                    BugClass::SegFault
                        | BugClass::RaceCondition
                        | BugClass::KernelCrash
                        | BugClass::MemoryCorruption
                )
            })
            .count();
        let leaks = report.bugs.len() - crashers;
        for b in &report.bugs {
            println!("  [{}] {}", b.class, b.description);
        }
        let verdict = if crashers > 0 {
            "DO NOT INSTALL (can crash the kernel)"
        } else if leaks > 0 {
            "install with caution (leaks resources)"
        } else {
            "no defects found"
        };
        println!("  => {verdict}\n");
        verdicts.push((spec.name, report.bugs.len(), verdict));
    }
    println!("Summary:");
    for (name, bugs, verdict) in &verdicts {
        println!("  {name:<10} {bugs} bug(s) — {verdict}");
    }

    // Second pass: surprise-removal injection. A driver that survives the
    // baseline can still poke vanished hardware from its removal path — the
    // class of defect that only a lifecycle schedule exposes.
    println!("\nLifecycle audit (surprise removal + power transitions)\n");
    let triage_dir = std::env::temp_dir().join("ddt-lifecycle-audit");
    let mut lifecycle_verdicts = Vec::new();
    for spec in ddt::drivers::drivers().into_iter().filter(|d| d.class == DriverClass::Net) {
        let mut dut = ddt::DriverUnderTest::from_spec(&spec);
        dut.workload = ddt::drivers::workload::lifecycle_workload_for(dut.class);
        let config = ddt::DdtConfig {
            fault_plan: FaultPlan::for_families(&[FaultFamily::Lifecycle]),
            ..ddt::DdtConfig::default()
        };
        let report = ddt::Ddt::new(config).test(&dut);
        let lifecycle: Vec<&ddt::Bug> = report
            .bugs
            .iter()
            .filter(|b| b.class == BugClass::LifecycleViolation)
            .collect();
        println!(
            "--- {} --- {} lifecycle event(s) injected, {} violation(s)",
            spec.name,
            report.health.lifecycle_injected,
            lifecycle.len()
        );
        for b in &lifecycle {
            println!("  [{}] {}", b.key, b.description);
        }
        // Touch-after-remove findings become replayable triage artifacts:
        // the minimized decision schedule plus the hardware trace, enough to
        // reproduce the violation without rerunning the exploration.
        let touch: Vec<ddt::Bug> = lifecycle
            .iter()
            .filter(|b| b.key.starts_with("touchremove:"))
            .map(|b| (*b).clone())
            .collect();
        if !touch.is_empty() {
            match ddt::persist_bugs(&triage_dir, &touch, &dut) {
                Ok(n) => println!(
                    "  persisted {n} touch-after-remove artifact(s) to {}",
                    triage_dir.display()
                ),
                Err(e) => println!("  could not persist triage artifacts: {e}"),
            }
        }
        lifecycle_verdicts.push((spec.name, lifecycle.len()));
    }
    println!("\nLifecycle summary:");
    for (name, violations) in lifecycle_verdicts {
        let verdict = if violations > 0 {
            "mishandles removal/power events"
        } else {
            "lifecycle-clean"
        };
        println!("  {name:<10} {violations} violation(s) — {verdict}");
    }
}
