//! Audit all bundled NIC drivers the way the paper's consumer scenario
//! imagines (§1: the "Test Now" button): run DDT on each network driver
//! before "installing" it, then decide.
//!
//! ```text
//! cargo run --release --example network_driver_audit
//! ```

use ddt::drivers::DriverClass;
use ddt::BugClass;

fn main() {
    println!("Network driver pre-installation audit\n");
    let mut verdicts = Vec::new();
    for spec in ddt::drivers::drivers().into_iter().filter(|d| d.class == DriverClass::Net) {
        println!("--- {} (vendor {:04x}:{:04x}) ---", spec.name, spec.descriptor.vendor_id, spec.descriptor.device_id);
        let dut = ddt::DriverUnderTest::from_spec(&spec);
        let report = ddt::Ddt::default().test(&dut);
        let crashers = report
            .bugs
            .iter()
            .filter(|b| {
                matches!(
                    b.class,
                    BugClass::SegFault
                        | BugClass::RaceCondition
                        | BugClass::KernelCrash
                        | BugClass::MemoryCorruption
                )
            })
            .count();
        let leaks = report.bugs.len() - crashers;
        for b in &report.bugs {
            println!("  [{}] {}", b.class, b.description);
        }
        let verdict = if crashers > 0 {
            "DO NOT INSTALL (can crash the kernel)"
        } else if leaks > 0 {
            "install with caution (leaks resources)"
        } else {
            "no defects found"
        };
        println!("  => {verdict}\n");
        verdicts.push((spec.name, report.bugs.len(), verdict));
    }
    println!("Summary:");
    for (name, bugs, verdict) in verdicts {
        println!("  {name:<10} {bugs} bug(s) — {verdict}");
    }
}
