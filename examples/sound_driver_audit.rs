//! Audit the bundled sound drivers (§5.2: "for the audio drivers, we
//! played a small sound file") and demonstrate the §3.6 trace analysis:
//! for each race, show which hardware reads and interrupt injections the
//! failing path depended on.
//!
//! ```text
//! cargo run --release --example sound_driver_audit
//! ```

use ddt::drivers::DriverClass;
use ddt::symvm::TraceEvent;

fn main() {
    for spec in ddt::drivers::drivers().into_iter().filter(|d| d.class == DriverClass::Audio) {
        println!("=== {} ===", spec.name);
        let dut = ddt::DriverUnderTest::from_spec(&spec);
        let report = ddt::Ddt::default().test(&dut);
        println!(
            "coverage {:.0}%, {} bug(s)\n",
            100.0 * report.relative_coverage(),
            report.bugs.len()
        );
        for bug in &report.bugs {
            println!("[{}] {}", bug.class, bug.description);
            // §3.6-style analysis from the trace: when was the interrupt
            // injected, and what did the hardware have to return?
            for ev in &bug.trace {
                match ev {
                    TraceEvent::Interrupt { line, at_pc } => {
                        println!("    interrupt on line {line} injected at pc {at_pc:#x}");
                    }
                    TraceEvent::HardwareRead { addr, id } => {
                        println!(
                            "    hardware read @ {addr:#x} must return {:#x}",
                            bug.inputs.get_or_zero(*id)
                        );
                    }
                    _ => {}
                }
            }
            // The hardware-write log shows what the driver configured
            // before the failure (e.g. whether interrupts were enabled —
            // the paper's RTL8029 analysis).
            let writes = bug
                .trace
                .iter()
                .filter(|e| matches!(e, TraceEvent::HardwareWrite { .. }))
                .count();
            println!("    {} hardware writes before the failure (all discarded)", writes);
            println!();
        }
    }
}
