//! Quickstart: test a closed-source binary driver with DDT.
//!
//! ```text
//! cargo run --release --example quickstart [driver-name]
//! ```
//!
//! Loads one of the bundled closed-source driver binaries (default:
//! `rtl8029`, the paper's smallest NIC driver and its richest bug carrier),
//! exercises it with symbolic hardware and symbolic interrupts, and prints
//! the bug report with the solved concrete inputs for each failure.

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "rtl8029".to_string());
    let spec = ddt::drivers::driver_by_name(&name)
        .unwrap_or_else(|| panic!("no bundled driver named {name:?}"));

    println!("Testing driver '{}' ({:?} class)", spec.name, spec.class);
    println!("The tool sees only the binary: no source, no hardware device.\n");

    let dut = ddt::DriverUnderTest::from_spec(&spec);
    let started = std::time::Instant::now();
    let report = ddt::Ddt::default().test(&dut);

    println!(
        "Explored {} paths ({} instructions, {} solver queries) in {:.2?}",
        report.stats.paths_started,
        report.stats.insns,
        report.stats.solver_queries,
        started.elapsed()
    );
    println!(
        "Basic-block coverage: {}/{} ({:.0}%)\n",
        report.covered_blocks,
        report.total_blocks,
        100.0 * report.relative_coverage()
    );

    if report.bugs.is_empty() {
        println!("No bugs found.");
        return;
    }
    println!("{} bug(s) found:\n", report.bugs.len());
    for (i, bug) in report.bugs.iter().enumerate() {
        println!("#{} [{}] in {}", i + 1, bug.class, bug.entry);
        println!("    {}", bug.description);
        println!("    attributed to driver pc {:#x}", bug.pc);
        if let Some(at) = &bug.interrupted_entry {
            println!("    requires an interrupt during {at}");
        }
        if !bug.decisions.is_empty() {
            println!("    schedule: {:?}", bug.decisions);
        }
        let inputs: Vec<String> = bug
            .trace
            .iter()
            .filter_map(|ev| match ev {
                ddt::symvm::TraceEvent::SymCreate { id, label, .. } => {
                    Some(format!("{label} = {:#x}", bug.inputs.get_or_zero(*id)))
                }
                _ => None,
            })
            .take(6)
            .collect();
        if !inputs.is_empty() {
            println!("    concrete inputs: {}", inputs.join(", "));
        }
        println!("    trace: {} events (replayable)", bug.trace.len());
        println!();
    }
}
