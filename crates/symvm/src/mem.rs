//! Symbolic guest memory with chained copy-on-write forking.
//!
//! Implements §4.1.3 of the paper verbatim: "instead of copying the entire
//! state upon an execution fork, DDT creates an empty memory object
//! containing a pointer to the parent object. All subsequent writes place
//! their values in the empty object, while reads that cannot be resolved
//! locally are forwarded up to the parent. Since quick forking can lead to
//! deep state hierarchies, we cache each resolved read in the leaf state."
//!
//! Every byte is an 8-bit [`Expr`]; fully concrete bytes are constant
//! expressions, so the same store holds mixed symbolic/concrete data.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use ddt_expr::Expr;

/// Chain depth past which [`SymMemory::fork`] compacts the frozen layers
/// into one. Deep chains make every uncached read an O(depth) pointer walk;
/// 32 keeps the walk short while amortizing the merge cost over many forks.
const COMPACT_DEPTH: usize = 32;

/// One frozen copy-on-write layer.
#[derive(Debug)]
struct MemLayer {
    parent: Option<Arc<MemLayer>>,
    writes: HashMap<u32, Expr>,
}

/// The concrete root store: initial image bytes.
#[derive(Debug, Default)]
struct RootMem {
    bytes: HashMap<u32, u8>,
}

/// Symbolic memory: mapped-region tracking + COW expression store.
#[derive(Clone, Debug)]
pub struct SymMemory {
    /// Mapped regions: start → end (exclusive), per-state (cloned on fork).
    regions: BTreeMap<u32, u32>,
    /// Frozen parent chain.
    node: Option<Arc<MemLayer>>,
    /// Writes since the last fork.
    local: HashMap<u32, Expr>,
    /// Leaf read cache for chain walks (§4.1.3).
    cache: HashMap<u32, Expr>,
    /// Immutable initial contents.
    root: Arc<RootMem>,
    /// Number of layers below `local` (diagnostics / §5.2 stats).
    depth: usize,
    /// Declared driver-text range backing the decoded-instruction cache.
    code_region: Option<(u32, u32)>,
    /// Writes that landed inside `code_region` on this path (self-modifying
    /// code); any such write disables decode caching for this lineage.
    code_writes: u64,
}

impl Default for SymMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl SymMemory {
    /// Creates empty, fully unmapped memory.
    pub fn new() -> SymMemory {
        SymMemory {
            regions: BTreeMap::new(),
            node: None,
            local: HashMap::new(),
            cache: HashMap::new(),
            root: Arc::new(RootMem::default()),
            depth: 0,
            code_region: None,
            code_writes: 0,
        }
    }

    /// Declares `[start, start+len)` as the driver's code region. Decoded
    /// instructions at pcs inside it may be cached for as long as no write
    /// targets the region (see [`Self::code_bytes_stable`]).
    pub fn set_code_region(&mut self, start: u32, len: u32) {
        self.code_region = (len > 0).then(|| (start, start.checked_add(len).expect("code region wraps")));
    }

    /// True when all of `[addr, addr+len)` lies inside the declared code
    /// region and no write has ever targeted the region on this path —
    /// i.e. a decode of those bytes can be cached by pc alone.
    pub fn code_bytes_stable(&self, addr: u32, len: u32) -> bool {
        match self.code_region {
            Some((s, e)) => {
                self.code_writes == 0
                    && addr >= s
                    && addr.checked_add(len).is_some_and(|end| end <= e)
            }
            None => false,
        }
    }

    /// Seeds initial concrete contents (driver image). Only valid before
    /// execution begins; later writes go through [`Self::write_byte`].
    ///
    /// # Panics
    ///
    /// Panics if called after a fork (the root is shared by then).
    pub fn seed_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let root = Arc::get_mut(&mut self.root).expect("seed_bytes after fork");
        for (i, &b) in bytes.iter().enumerate() {
            root.bytes.insert(addr.wrapping_add(i as u32), b);
        }
    }

    /// Maps `[start, start+len)` as accessible zero-filled memory.
    pub fn map(&mut self, start: u32, len: u32) {
        if len == 0 {
            return;
        }
        let end = start.checked_add(len).expect("region wraps");
        let (mut s, mut e) = (start, end);
        let overlapping: Vec<(u32, u32)> = self
            .regions
            .range(..=e)
            .filter(|&(&rs, &re)| re >= s && rs <= e)
            .map(|(&rs, &re)| (rs, re))
            .collect();
        for (rs, re) in overlapping {
            s = s.min(rs);
            e = e.max(re);
            self.regions.remove(&rs);
        }
        self.regions.insert(s, e);
    }

    /// Unmaps `[start, start+len)`.
    ///
    /// Contents are *not* erased from the COW chain: a dangling read after
    /// re-mapping sees stale bytes, exactly like real freed memory — DDT's
    /// checkers, not the memory model, are responsible for flagging
    /// use-after-free.
    pub fn unmap(&mut self, start: u32, len: u32) {
        if len == 0 {
            return;
        }
        let end = start + len;
        let affected: Vec<(u32, u32)> = self
            .regions
            .range(..end)
            .filter(|&(_, &re)| re > start)
            .map(|(&rs, &re)| (rs, re))
            .collect();
        for (rs, re) in affected {
            self.regions.remove(&rs);
            if rs < start {
                self.regions.insert(rs, start);
            }
            if re > end {
                self.regions.insert(end, re);
            }
        }
    }

    /// True if `addr` is mapped.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.regions.range(..=addr).next_back().is_some_and(|(_, &end)| addr < end)
    }

    /// True if all of `[addr, addr+len)` is mapped.
    pub fn is_range_mapped(&self, addr: u32, len: u32) -> bool {
        if len == 0 {
            return true;
        }
        let Some(end) = addr.checked_add(len) else { return false };
        let mut cur = addr;
        while cur < end {
            match self.regions.range(..=cur).next_back() {
                Some((_, &rend)) if cur < rend => cur = rend,
                _ => return false,
            }
        }
        true
    }

    /// Iterates over mapped regions.
    pub fn regions(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.regions.iter().map(|(&s, &e)| (s, e))
    }

    /// Current COW chain depth (diagnostics).
    pub fn chain_depth(&self) -> usize {
        self.depth
    }

    /// Squashes the frozen parent chain into a single merged layer.
    ///
    /// "Quick forking can lead to deep state hierarchies" (§4.1.3): past a
    /// point, every cache-miss read pays an O(depth) walk, so the leaf
    /// periodically folds its view of the chain into one layer. Leaf-most
    /// writes win (the same resolution order the walk uses), so reads are
    /// unchanged. Sibling states still hold `Arc`s to the old layers; only
    /// this state and its future children see (and pay for) the merge.
    fn compact_chain(&mut self) {
        let mut merged: HashMap<u32, Expr> = HashMap::new();
        let mut cur = self.node.as_ref();
        while let Some(layer) = cur {
            for (addr, e) in &layer.writes {
                merged.entry(*addr).or_insert_with(|| e.clone());
            }
            cur = layer.parent.as_ref();
        }
        if merged.is_empty() {
            self.node = None;
            self.depth = 0;
        } else {
            self.node = Some(Arc::new(MemLayer { parent: None, writes: merged }));
            self.depth = 1;
        }
    }

    /// Forks the memory: both this state and the returned copy see the
    /// current contents; subsequent writes diverge.
    pub fn fork(&mut self) -> SymMemory {
        if !self.local.is_empty() {
            let layer =
                MemLayer { parent: self.node.take(), writes: std::mem::take(&mut self.local) };
            self.node = Some(Arc::new(layer));
            self.depth += 1;
        }
        if self.depth > COMPACT_DEPTH {
            self.compact_chain();
        }
        SymMemory {
            regions: self.regions.clone(),
            node: self.node.clone(),
            local: HashMap::new(),
            cache: HashMap::new(),
            root: self.root.clone(),
            depth: self.depth,
            code_region: self.code_region,
            code_writes: self.code_writes,
        }
    }

    /// Reads one byte as an 8-bit expression.
    ///
    /// The address must be mapped (callers check and fault otherwise);
    /// unmapped reads return zero here to keep the model total.
    pub fn read_byte(&mut self, addr: u32) -> Expr {
        if let Some(e) = self.local.get(&addr) {
            return e.clone();
        }
        if let Some(e) = self.cache.get(&addr) {
            return e.clone();
        }
        // Walk the frozen chain.
        let mut cur = self.node.as_ref();
        while let Some(layer) = cur {
            if let Some(e) = layer.writes.get(&addr) {
                self.cache.insert(addr, e.clone());
                return e.clone();
            }
            cur = layer.parent.as_ref();
        }
        let v = self.root.bytes.get(&addr).copied().unwrap_or(0);
        let e = Expr::constant(v as u64, 8);
        self.cache.insert(addr, e.clone());
        e
    }

    /// Writes one byte.
    pub fn write_byte(&mut self, addr: u32, value: Expr) {
        debug_assert_eq!(value.width(), 8, "byte writes take 8-bit values");
        if let Some((s, e)) = self.code_region {
            if addr >= s && addr < e {
                self.code_writes += 1;
            }
        }
        self.cache.remove(&addr);
        self.local.insert(addr, value);
    }

    /// Reads `size` bytes little-endian as one expression of `8*size` bits.
    pub fn read(&mut self, addr: u32, size: u8) -> Expr {
        let mut e = self.read_byte(addr);
        for i in 1..size {
            let hi = self.read_byte(addr.wrapping_add(i as u32));
            e = hi.concat(&e);
        }
        e
    }

    /// Writes an expression of `8*size` bits little-endian.
    ///
    /// # Panics
    ///
    /// Panics if the value width does not match `size`.
    pub fn write(&mut self, addr: u32, size: u8, value: &Expr) {
        assert_eq!(value.width(), 8 * size as u32, "value width mismatch");
        for i in 0..size {
            let lo = 8 * i as u32;
            self.write_byte(addr.wrapping_add(i as u32), value.extract(lo + 7, lo));
        }
    }

    /// Convenience: reads `len` bytes, requiring them all to be concrete
    /// (used for instruction fetch — driver text is never symbolic).
    pub fn read_concrete_bytes(&mut self, addr: u32, len: u32) -> Option<Vec<u8>> {
        (0..len)
            .map(|i| self.read_byte(addr.wrapping_add(i)).as_const().map(|v| v as u8))
            .collect()
    }

    /// Convenience: writes concrete bytes.
    pub fn write_concrete_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), Expr::constant(b as u64, 8));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_expr::SymId;

    #[test]
    fn seeded_bytes_read_back() {
        let mut m = SymMemory::new();
        m.map(0x1000, 0x100);
        m.seed_bytes(0x1000, &[1, 2, 3, 4]);
        assert_eq!(m.read(0x1000, 4).as_const(), Some(0x04030201));
    }

    #[test]
    fn unseeded_mapped_memory_is_zero() {
        let mut m = SymMemory::new();
        m.map(0x1000, 0x100);
        assert_eq!(m.read(0x1050, 4).as_const(), Some(0));
    }

    #[test]
    fn write_read_roundtrip_mixed_width() {
        let mut m = SymMemory::new();
        m.map(0, 0x100);
        m.write(0x10, 4, &Expr::constant(0xdead_beef, 32));
        assert_eq!(m.read(0x10, 4).as_const(), Some(0xdead_beef));
        assert_eq!(m.read(0x10, 2).as_const(), Some(0xbeef));
        assert_eq!(m.read_byte(0x13).as_const(), Some(0xde));
        m.write(0x11, 1, &Expr::constant(0x00, 8));
        assert_eq!(m.read(0x10, 4).as_const(), Some(0xdead_00ef));
    }

    #[test]
    fn symbolic_bytes_concat_back() {
        let mut m = SymMemory::new();
        m.map(0, 0x100);
        let x = Expr::sym(SymId(1), 32);
        m.write(0x20, 4, &x);
        // Reading the word back should simplify to exactly the symbol.
        assert_eq!(m.read(0x20, 4), x);
        // A sub-read extracts.
        assert_eq!(m.read(0x20, 2), x.extract(15, 0));
    }

    #[test]
    fn fork_isolation() {
        let mut a = SymMemory::new();
        a.map(0, 0x100);
        a.write(0, 4, &Expr::constant(1, 32));
        let mut b = a.fork();
        b.write(0, 4, &Expr::constant(2, 32));
        a.write(4, 4, &Expr::constant(3, 32));
        assert_eq!(a.read(0, 4).as_const(), Some(1));
        assert_eq!(b.read(0, 4).as_const(), Some(2));
        assert_eq!(b.read(4, 4).as_const(), Some(0), "b never saw a's later write");
    }

    #[test]
    fn deep_chain_reads_resolve_and_cache() {
        let mut m = SymMemory::new();
        m.map(0, 0x1000);
        m.write(0x500, 4, &Expr::constant(42, 32));
        let mut cur = m;
        for _ in 0..50 {
            let next = cur.fork();
            cur = next;
        }
        assert!(cur.chain_depth() <= 50);
        assert_eq!(cur.read(0x500, 4).as_const(), Some(42));
        // Second read must hit the leaf cache (observable only as still
        // being correct, but exercise the path).
        assert_eq!(cur.read(0x500, 4).as_const(), Some(42));
    }

    #[test]
    fn fork_without_local_writes_reuses_chain() {
        let mut m = SymMemory::new();
        m.map(0, 0x100);
        let d0 = m.chain_depth();
        let _a = m.fork();
        let _b = m.fork(); // No writes between forks: depth must not grow.
        assert_eq!(m.chain_depth(), d0);
    }

    #[test]
    fn chain_compaction_preserves_reads_and_caps_depth() {
        let mut m = SymMemory::new();
        m.map(0, 0x10000);
        m.seed_bytes(0x100, &[0xaa, 0xbb]);
        let x = Expr::sym(SymId(9), 8);
        m.write_byte(0x200, x.clone());
        // Drive the chain far past the compaction threshold; each layer
        // overwrites one shared slot and adds one private slot.
        let rounds = 2 * COMPACT_DEPTH;
        let mut sibling = None;
        let mut cur = m;
        for i in 0..rounds {
            cur.write(0x300, 4, &Expr::constant(i as u64, 32));
            cur.write(0x400 + 4 * i as u32, 4, &Expr::constant(i as u64 + 1, 32));
            let next = cur.fork();
            if i == 3 {
                // A sibling pinned before compaction happens.
                sibling = Some(cur.fork());
            }
            cur = next;
        }
        assert!(
            cur.chain_depth() <= COMPACT_DEPTH + 1,
            "compaction must cap the chain, got depth {}",
            cur.chain_depth()
        );
        // Leaf-most write wins across the merge...
        assert_eq!(cur.read(0x300, 4).as_const(), Some(rounds as u64 - 1));
        // ...every layer's private slot is still visible...
        for i in 0..rounds {
            assert_eq!(cur.read(0x400 + 4 * i as u32, 4).as_const(), Some(i as u64 + 1));
        }
        // ...root bytes and symbolic bytes survive...
        assert_eq!(cur.read(0x100, 2).as_const(), Some(0xbbaa));
        assert_eq!(cur.read_byte(0x200), x);
        // ...and a sibling forked pre-compaction keeps its own view.
        let mut sib = sibling.unwrap();
        assert_eq!(sib.read(0x300, 4).as_const(), Some(3));
    }

    #[test]
    fn mapping_checks() {
        let mut m = SymMemory::new();
        m.map(0x1000, 0x1000);
        assert!(m.is_mapped(0x1fff));
        assert!(!m.is_mapped(0x2000));
        assert!(m.is_range_mapped(0x1000, 0x1000));
        assert!(!m.is_range_mapped(0x1ff0, 0x20));
        m.unmap(0x1800, 0x100);
        assert!(m.is_mapped(0x17ff));
        assert!(!m.is_mapped(0x1800));
        assert!(m.is_mapped(0x1900));
    }

    #[test]
    fn stale_contents_survive_unmap_remap() {
        // Deliberate: the memory model keeps bytes so checkers can detect
        // use-after-free patterns; remapping exposes stale data.
        let mut m = SymMemory::new();
        m.map(0, 0x100);
        m.write(0x40, 4, &Expr::constant(7, 32));
        m.unmap(0, 0x100);
        m.map(0, 0x100);
        assert_eq!(m.read(0x40, 4).as_const(), Some(7));
    }
}
