//! Symbolic execution of DDT-32 driver binaries.
//!
//! This crate is the Klee-equivalent execution engine (DESIGN.md §2): it
//! interprets driver machine code over *symbolic* machine state, forks at
//! feasible branches, tracks path constraints, and records the execution
//! trace events that DDT turns into replayable bug reports.
//!
//! Architecture (paper §4.1):
//!
//! - [`SymState`] is one execution state — "conceptually a complete system
//!   snapshot": symbolic CPU, symbolic memory, path constraints, symbol
//!   provenance table, concretization log, and the trace.
//! - [`mem::SymMemory`] implements the paper's chained copy-on-write (§4.1.3):
//!   forks push an immutable layer; reads that miss locally walk the parent
//!   chain and are cached in the leaf.
//! - [`interp::step`] executes one instruction; branch decisions consult the
//!   constraint [`Solver`], forking when both sides are feasible.
//! - The [`SymEnv`] trait is the hook surface DDT (in `ddt-core`) implements:
//!   symbolic hardware reads, memory access checking, and MMIO detection.
//!
//! [`Solver`]: ddt_solver::Solver

pub mod interp;
pub mod mem;
pub mod state;
pub mod trace;

pub use interp::{step, DecodeCache, SymEnv, SymFault, SymStep};
pub use mem::SymMemory;
pub use state::{
    GrantRegion, //
    GrantSet,
    SymCounter,
    SymCpu,
    SymOrigin,
    SymState,
    SymbolInfo,
    SymbolTable,
};
pub use trace::{Trace, TraceEvent};
