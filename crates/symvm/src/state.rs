//! Symbolic execution states.

use std::collections::{HashMap, VecDeque};

use ddt_expr::{Assignment, Expr, SymId};
use ddt_isa::Reg;
use serde::{Deserialize, Serialize};

use crate::mem::SymMemory;
use crate::trace::{Trace, TraceEvent};

/// Per-path allocator of symbol ids.
///
/// Forking copies the counter by value, so every path numbers its symbols
/// by its own creation order. Two sibling paths may therefore use the same
/// `SymId` for different symbols — that is safe because nothing ever mixes
/// expressions across paths: constraints, models, and traces are all
/// per-state, and the solver layer (including the shared query cache) is
/// purely structural. What the per-path numbering buys is determinism: a
/// path replayed from its decision schedule allocates byte-identical ids,
/// which is what makes checkpointed frontier states reconstructible and
/// resumed reports bit-equal to uninterrupted ones.
#[derive(Clone, Debug, Default)]
pub struct SymCounter(u32);

impl SymCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> SymCounter {
        SymCounter::default()
    }

    /// Allocates the next id.
    #[allow(clippy::should_implement_trait)] // Not an iterator: an id well.
    pub fn next(&mut self) -> SymId {
        let id = SymId(self.0);
        self.0 += 1;
        id
    }

    /// Number of ids allocated so far on this path.
    pub fn allocated(&self) -> u32 {
        self.0
    }
}

/// Where a symbolic value came from (provenance, §3.6: traces "identify on
/// what symbolic values the condition depended ... why they were created").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SymOrigin {
    /// A read from a symbolic hardware register (MMIO).
    HardwareRead {
        /// The MMIO address.
        addr: u32,
    },
    /// A read from a symbolic hardware I/O port.
    PortRead {
        /// The port number.
        port: u32,
    },
    /// An entry-point argument made symbolic by DDT.
    EntryArg {
        /// Entry point name.
        entry: String,
        /// Argument index.
        index: usize,
    },
    /// A value injected by an API annotation (§3.4.1).
    Annotation {
        /// The annotated kernel API.
        api: String,
    },
    /// A registry / configuration parameter.
    Registry {
        /// Parameter name.
        name: String,
    },
    /// Other (test fixtures, internal).
    Other,
}

/// Provenance record for one symbol.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolInfo {
    /// Human-readable label ("registry:MaximumMulticastList").
    pub label: String,
    /// Structured origin.
    pub origin: SymOrigin,
    /// Width in bits.
    pub width: u32,
}

/// Per-state symbol provenance table.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    info: HashMap<SymId, SymbolInfo>,
}

impl SymbolTable {
    /// Records a new symbol.
    pub fn insert(&mut self, id: SymId, info: SymbolInfo) {
        self.info.insert(id, info);
    }

    /// Looks up a symbol.
    pub fn get(&self, id: SymId) -> Option<&SymbolInfo> {
        self.info.get(&id)
    }

    /// Iterates all known symbols.
    pub fn iter(&self) -> impl Iterator<Item = (SymId, &SymbolInfo)> {
        self.info.iter().map(|(&k, v)| (k, v))
    }

    /// Number of symbols recorded.
    pub fn len(&self) -> usize {
        self.info.len()
    }

    /// True if no symbols were recorded.
    pub fn is_empty(&self) -> bool {
        self.info.is_empty()
    }
}

/// A log entry for an on-demand concretization (§3.2), kept so DDT can
/// backtrack to the concretization point and re-issue the kernel call with
/// a different feasible value.
#[derive(Clone, Debug)]
pub struct Concretization {
    /// The symbolic expression that was concretized.
    pub expr: Expr,
    /// The concrete value chosen.
    pub value: u32,
    /// Index in `constraints` of the `expr == value` constraint.
    pub constraint_index: usize,
    /// Program counter at the concretization point.
    pub pc: u32,
}

/// A memory region the driver is permitted to access, with provenance.
///
/// DDT's VM-level memory checker (§3.1.1) verifies every driver access
/// against the union of granted regions. Grants change as the kernel hands
/// resources to the driver and fork with the state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrantRegion {
    /// First granted address.
    pub start: u32,
    /// One past the last granted address.
    pub end: u32,
    /// Why the driver may touch this ("driver image", "pool alloc", ...).
    pub label: String,
}

/// The per-path set of granted regions.
#[derive(Clone, Debug, Default)]
pub struct GrantSet {
    regions: Vec<GrantRegion>,
}

impl GrantSet {
    /// Grants `[start, start+len)`.
    pub fn grant(&mut self, start: u32, len: u32, label: impl Into<String>) {
        if len == 0 {
            return;
        }
        self.regions.push(GrantRegion { start, end: start + len, label: label.into() });
    }

    /// Revokes any grant exactly starting at `start` (resource freed).
    pub fn revoke_at(&mut self, start: u32) {
        self.regions.retain(|r| r.start != start);
    }

    /// True if the concrete range `[addr, addr+len)` lies inside one grant.
    pub fn contains_range(&self, addr: u32, len: u32) -> bool {
        let Some(end) = addr.checked_add(len) else { return false };
        self.regions.iter().any(|r| addr >= r.start && end <= r.end)
    }

    /// Iterates the granted regions.
    pub fn iter(&self) -> impl Iterator<Item = &GrantRegion> {
        self.regions.iter()
    }

    /// Number of granted regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if no regions are granted.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The label of the grant containing `addr`, if any.
    pub fn label_of(&self, addr: u32) -> Option<&str> {
        self.regions
            .iter()
            .find(|r| addr >= r.start && addr < r.end)
            .map(|r| r.label.as_str())
    }
}

/// The symbolic CPU: 32-bit expressions in each register, concrete pc.
#[derive(Clone, Debug)]
pub struct SymCpu {
    /// General-purpose registers.
    pub regs: [Expr; 16],
    /// Program counter (always concrete: branches fork rather than going
    /// symbolic).
    pub pc: u32,
}

impl Default for SymCpu {
    fn default() -> Self {
        SymCpu { regs: std::array::from_fn(|_| Expr::constant(0, 32)), pc: 0 }
    }
}

impl SymCpu {
    /// Reads a register.
    pub fn get(&self, r: Reg) -> Expr {
        self.regs[r.index()].clone()
    }

    /// Writes a register.
    ///
    /// # Panics
    ///
    /// Panics if the value is not 32 bits wide.
    pub fn set(&mut self, r: Reg, v: Expr) {
        assert_eq!(v.width(), 32, "registers hold 32-bit values");
        self.regs[r.index()] = v;
    }

    /// Sets a register to a concrete value.
    pub fn set_u32(&mut self, r: Reg, v: u32) {
        self.regs[r.index()] = Expr::constant(v as u64, 32);
    }
}

/// One symbolic execution state — conceptually a complete system snapshot
/// (§4.1.2). The kernel-side state (pools, locks, timers) is attached by
/// `ddt-core`, which wraps this in its own machine structure.
#[derive(Clone, Debug)]
pub struct SymState {
    /// CPU.
    pub cpu: SymCpu,
    /// Memory.
    pub mem: SymMemory,
    /// Path constraints (all 1-bit expressions; the path condition is their
    /// conjunction).
    pub constraints: Vec<Expr>,
    /// Provenance of every symbol created on this path.
    pub symbols: SymbolTable,
    /// Concretization log for backtracking (§3.2).
    pub concretizations: Vec<Concretization>,
    /// Memory regions the driver may legally access (checker policy data).
    pub grants: GrantSet,
    /// Execution trace.
    pub trace: Trace,
    /// Per-path symbol id allocator (copied by value on fork).
    pub counter: SymCounter,
    /// Instructions executed on this path.
    pub insns_retired: u64,
    /// State generation: 0 for the root, +1 per fork (diagnostics).
    pub generation: u32,
    /// Fork alternatives produced mid-instruction (multi-way address
    /// resolution); the exploration driver drains these after each step.
    pub pending_forks: Vec<SymState>,
    /// A satisfying model of the current path condition, when known
    /// (model reuse: most feasibility checks and concretizations are
    /// answered by evaluating this model instead of calling the solver).
    /// Invariant: when `Some`, the model (with absent symbols read as 0)
    /// satisfies every constraint in `constraints`.
    pub last_model: Option<Assignment>,
    /// Decoded-instruction cache shared by every state forked from one
    /// root (an `Arc` handle; see [`crate::interp::DecodeCache`]).
    pub decode_cache: crate::interp::DecodeCache,
    /// Escalation-lift pins for hardware reads (hybrid fuzzing): each
    /// hardware symbol created while this queue is non-empty is immediately
    /// constrained equal to the popped value, so the symbolic path retraces
    /// a concrete fuzz execution up to the lift point and explores freely
    /// beyond it. Remaining pins propagate to forks.
    pub hw_pins: VecDeque<u64>,
    /// Escalation-lift pins for labeled kernel-boundary symbols (packet
    /// bytes, OIDs, registry values), consumed per-label in order.
    pub label_pins: HashMap<String, VecDeque<u64>>,
    /// True while this state's feasibility verdict is deferred: the state
    /// was forked optimistically at a branch without consulting the solver,
    /// and must not execute a quantum until a batched flush (or an eager
    /// per-fork check under `--no-batch`) proves its path condition
    /// satisfiable. Not part of the exploration fingerprint — both batching
    /// modes fork the same states; only *when* the verdict lands differs.
    pub verdict_pending: bool,
}

impl SymState {
    /// Creates a root state.
    pub fn new(counter: SymCounter) -> SymState {
        SymState {
            cpu: SymCpu::default(),
            mem: SymMemory::new(),
            constraints: Vec::new(),
            symbols: SymbolTable::default(),
            concretizations: Vec::new(),
            grants: GrantSet::default(),
            trace: Trace::new(),
            counter,
            insns_retired: 0,
            generation: 0,
            pending_forks: Vec::new(),
            // The empty model satisfies the empty path condition.
            last_model: Some(Assignment::new()),
            decode_cache: crate::interp::DecodeCache::default(),
            hw_pins: VecDeque::new(),
            label_pins: HashMap::new(),
            verdict_pending: false,
        }
    }

    /// Forks the state (chained COW for memory and trace; cheap clones for
    /// the rest).
    pub fn fork(&mut self) -> SymState {
        SymState {
            cpu: self.cpu.clone(),
            mem: self.mem.fork(),
            constraints: self.constraints.clone(),
            symbols: self.symbols.clone(),
            concretizations: self.concretizations.clone(),
            grants: self.grants.clone(),
            trace: self.trace.fork(),
            counter: self.counter.clone(),
            insns_retired: self.insns_retired,
            generation: self.generation + 1,
            // Pending alternatives stay with the parent path.
            pending_forks: Vec::new(),
            last_model: self.last_model.clone(),
            decode_cache: self.decode_cache.clone(),
            hw_pins: self.hw_pins.clone(),
            label_pins: self.label_pins.clone(),
            // The fork site decides whether the child owes a verdict; a
            // plain fork inherits the parent's (settled) status.
            verdict_pending: self.verdict_pending,
        }
    }

    /// Creates a fresh symbol with provenance, recording the trace event.
    ///
    /// If an escalation pin is queued for this symbol's source (hardware
    /// queue for MMIO/port reads, per-label queue otherwise), the symbol is
    /// constrained equal to the pinned concrete value at creation.
    pub fn new_symbol(&mut self, label: impl Into<String>, origin: SymOrigin, width: u32) -> Expr {
        let id = self.counter.next();
        let label = label.into();
        let pin = match origin {
            SymOrigin::HardwareRead { .. } | SymOrigin::PortRead { .. } => {
                self.hw_pins.pop_front()
            }
            _ => self.label_pins.get_mut(&label).and_then(|q| q.pop_front()),
        };
        self.symbols.insert(id, SymbolInfo { label: label.clone(), origin: origin.clone(), width });
        self.trace.push(TraceEvent::SymCreate { id, label, origin, width });
        let e = Expr::sym(id, width);
        if let Some(v) = pin {
            let v = if width >= 64 { v } else { v & ((1u64 << width) - 1) };
            // A brand-new symbol cannot appear in older constraints, so
            // extending the cached model keeps it satisfying — no solver
            // round-trip during an escalation replay.
            if let Some(m) = &mut self.last_model {
                m.set(id, v);
            }
            self.add_constraint(e.eq(&Expr::constant(v, width)));
        }
        e
    }

    /// Adds a path constraint, keeping the cached model honest: if the
    /// model no longer satisfies the constraint, it is dropped (a solver
    /// call will replace it when next needed).
    ///
    /// # Panics
    ///
    /// Panics if the constraint is not boolean.
    pub fn add_constraint(&mut self, c: Expr) {
        assert_eq!(c.width(), 1, "path constraints are boolean");
        if c.is_true() {
            return;
        }
        if let Some(m) = &self.last_model {
            if !c.eval_bool(m) {
                self.last_model = None;
            }
        }
        self.constraints.push(c);
    }

    /// Evaluates `e` under the cached model, if one is present.
    pub fn model_eval(&self, e: &Expr) -> Option<u64> {
        self.last_model.as_ref().map(|m| e.eval(m))
    }

    /// Installs a fresh satisfying model (from a solver call).
    pub fn set_model(&mut self, m: Assignment) {
        debug_assert!(
            self.constraints.iter().all(|c| c.eval_bool(&m)),
            "installed model must satisfy the path condition"
        );
        self.last_model = Some(m);
    }

    /// Records a concretization: constrains `expr == value` and logs it.
    pub fn record_concretization(&mut self, expr: Expr, value: u32) {
        let c = expr.eq(&Expr::constant(value as u64, expr.width()));
        let constraint_index = self.constraints.len();
        self.constraints.push(c);
        self.trace.push(TraceEvent::Concretize { pc: self.cpu.pc, expr: expr.clone(), value: value as u64 });
        self.concretizations.push(Concretization {
            expr,
            value,
            constraint_index,
            pc: self.cpu.pc,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_pins_constrain_new_symbols() {
        let mut st = SymState::new(SymCounter::new());
        st.hw_pins.extend([0xabcd, 0x1]);
        st.label_pins.insert("packet_len".into(), [60u64].into());
        let h1 = st.new_symbol("hw:mmio[0x0]", SymOrigin::HardwareRead { addr: 0 }, 32);
        let h2 = st.new_symbol("hw:port[0x10]", SymOrigin::PortRead { port: 0x10 }, 32);
        let pl = st.new_symbol("packet_len", SymOrigin::Annotation { api: "x".into() }, 32);
        // Unpinned: no matching label queue, hardware queue drained.
        let free = st.new_symbol("hw:mmio[0x4]", SymOrigin::HardwareRead { addr: 4 }, 32);
        assert_eq!(st.constraints.len(), 3, "three pins, three equality constraints");
        let m = st.last_model.clone().expect("pinned constraints are satisfiable");
        assert_eq!(h1.eval(&m), 0xabcd);
        assert_eq!(h2.eval(&m), 0x1);
        assert_eq!(pl.eval(&m), 60);
        assert_eq!(free.eval(&m), 0, "unpinned symbol is unconstrained");
        // Pins survive forks: a child created mid-lift keeps the queues.
        let mut parent = SymState::new(SymCounter::new());
        parent.hw_pins.push_back(7);
        let mut child = parent.fork();
        let c = child.new_symbol("hw:mmio[0x0]", SymOrigin::HardwareRead { addr: 0 }, 32);
        assert_eq!(child.model_eval(&c), Some(7));
    }

    #[test]
    fn counter_is_per_path_and_deterministic() {
        // Sibling paths allocate ids independently: each numbers symbols by
        // its own creation order, so a replayed path reproduces the exact
        // ids of the original. Aliasing across siblings is harmless —
        // constraints, models, and traces never mix across states.
        let mut a = SymState::new(SymCounter::new());
        let before = a.counter.allocated();
        let mut b = a.fork();
        let s1 = a.new_symbol("a", SymOrigin::Other, 32);
        let s2 = b.new_symbol("b", SymOrigin::Other, 32);
        assert_eq!(s1, Expr::sym(SymId(before), 32));
        assert_eq!(s2, Expr::sym(SymId(before), 32), "sibling numbering is independent");
        assert_eq!(a.counter.allocated(), before + 1);
        assert_eq!(b.counter.allocated(), before + 1);
    }

    #[test]
    fn fork_isolates_constraints_and_regs() {
        let mut a = SymState::new(SymCounter::new());
        a.cpu.set_u32(Reg(0), 1);
        let mut b = a.fork();
        b.cpu.set_u32(Reg(0), 2);
        b.add_constraint(Expr::false_());
        assert_eq!(a.cpu.get(Reg(0)).as_const(), Some(1));
        assert_eq!(b.cpu.get(Reg(0)).as_const(), Some(2));
        assert!(a.constraints.is_empty());
        assert_eq!(b.constraints.len(), 1);
        assert_eq!(b.generation, 1);
    }

    #[test]
    fn true_constraints_are_dropped() {
        let mut s = SymState::new(SymCounter::new());
        s.add_constraint(Expr::true_());
        assert!(s.constraints.is_empty());
    }

    #[test]
    fn concretization_is_logged_and_constrained() {
        let mut s = SymState::new(SymCounter::new());
        let x = s.new_symbol("hw", SymOrigin::HardwareRead { addr: 0x8000_0000 }, 32);
        s.record_concretization(x.clone(), 42);
        assert_eq!(s.concretizations.len(), 1);
        assert_eq!(s.concretizations[0].value, 42);
        let c = &s.constraints[s.concretizations[0].constraint_index];
        assert_eq!(*c, x.eq(&Expr::constant(42, 32)));
        // Trace carries both events.
        let evs = s.trace.events();
        assert!(matches!(evs[0], TraceEvent::SymCreate { .. }));
        assert!(matches!(evs[1], TraceEvent::Concretize { value: 42, .. }));
    }

    #[test]
    fn symbol_table_records_provenance() {
        let mut s = SymState::new(SymCounter::new());
        let x = s.new_symbol("registry:MaxList", SymOrigin::Registry { name: "MaxList".into() }, 32);
        let id = match x.node() {
            ddt_expr::ExprNode::Sym { id, .. } => *id,
            _ => panic!(),
        };
        let info = s.symbols.get(id).unwrap();
        assert_eq!(info.label, "registry:MaxList");
        assert_eq!(info.origin, SymOrigin::Registry { name: "MaxList".into() });
    }
}

#[cfg(test)]
mod model_tests {
    use super::*;
    use ddt_expr::Expr;

    #[test]
    fn root_state_has_the_empty_model() {
        let s = SymState::new(SymCounter::new());
        assert!(s.last_model.is_some());
        assert_eq!(s.model_eval(&Expr::constant(7, 32)), Some(7));
    }

    #[test]
    fn satisfied_constraints_keep_the_model() {
        let mut s = SymState::new(SymCounter::new());
        let x = s.new_symbol("x", SymOrigin::Other, 32);
        // x == 0 holds under the default-zero model extension.
        s.add_constraint(x.eq(&Expr::constant(0, 32)));
        assert!(s.last_model.is_some(), "model survives a satisfied constraint");
    }

    #[test]
    fn violated_constraints_drop_the_model() {
        let mut s = SymState::new(SymCounter::new());
        let x = s.new_symbol("x", SymOrigin::Other, 32);
        s.add_constraint(x.eq(&Expr::constant(5, 32)));
        assert!(s.last_model.is_none(), "stale model must be invalidated");
        // Installing a correct model restores model_eval.
        let mut m = ddt_expr::Assignment::new();
        if let ddt_expr::ExprNode::Sym { id, .. } = x.node() {
            m.set(*id, 5);
        }
        s.set_model(m);
        assert_eq!(s.model_eval(&x), Some(5));
    }

    #[test]
    fn forked_state_inherits_the_model() {
        let mut s = SymState::new(SymCounter::new());
        let x = s.new_symbol("x", SymOrigin::Other, 32);
        s.add_constraint(x.eq(&Expr::constant(0, 32))); // Keeps zero model.
        let child = s.fork();
        assert!(child.last_model.is_some());
    }

    #[test]
    fn grant_set_operations() {
        let mut g = GrantSet::default();
        g.grant(0x100, 0x40, "a");
        g.grant(0x200, 0x10, "b");
        assert!(g.contains_range(0x100, 0x40));
        assert!(g.contains_range(0x13c, 4));
        assert!(!g.contains_range(0x13d, 4), "straddles the end");
        assert!(!g.contains_range(0x150, 4), "between grants");
        assert_eq!(g.label_of(0x205), Some("b"));
        g.revoke_at(0x100);
        assert!(!g.contains_range(0x100, 4));
        assert_eq!(g.len(), 1);
        // Zero-length grants are ignored.
        g.grant(0x300, 0, "zero");
        assert_eq!(g.len(), 1);
    }
}
