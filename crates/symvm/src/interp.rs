//! The symbolic instruction interpreter.
//!
//! [`step`] executes one DDT-32 instruction over a [`SymState`]. Branches on
//! symbolic conditions consult the solver and fork when both outcomes are
//! feasible (§2: "when a symbolic value is used to decide the direction of a
//! conditional branch, symbolic execution explores all feasible
//! alternatives"). Device accesses and access-permission checks are
//! delegated to a [`SymEnv`] implementation — `ddt-core` plugs symbolic
//! hardware and the memory-access checker in through this trait.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use ddt_expr::Expr;
use ddt_isa::{
    decode, //
    trap_export_id,
    AccessKind,
    Insn,
    Reg,
    INSN_SIZE,
    RETURN_TRAP,
};
use ddt_solver::Solver;

use crate::state::SymState;
use crate::trace::TraceEvent;

/// Decoded-instruction cache keyed by pc, shared by every state forked from
/// one root (the handle clones as an `Arc`).
///
/// Driver text is immutable in practice, but the memory model does not
/// forbid writes to it, so the cache is consulted only for pcs the state's
/// memory vouches for ([`crate::SymMemory::code_bytes_stable`]): inside the
/// declared code region on a path that never wrote to that region. States
/// with no declared code region — or self-modifying lineages — fall back to
/// the fetch-and-decode path byte for byte.
///
/// `None` entries record undecodable opcodes, so repeatedly faulting pcs
/// are as cheap as valid ones.
#[derive(Clone, Debug, Default)]
pub struct DecodeCache {
    inner: Arc<DecodeCacheInner>,
}

#[derive(Debug, Default)]
struct DecodeCacheInner {
    map: Mutex<HashMap<u32, Option<Insn>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DecodeCache {
    /// Looks up the decode result for `pc`. The outer `Option` is presence
    /// in the cache; the inner one is decodability.
    fn get(&self, pc: u32) -> Option<Option<Insn>> {
        let got =
            self.inner.map.lock().unwrap_or_else(PoisonError::into_inner).get(&pc).copied();
        match got {
            Some(_) => self.inner.hits.fetch_add(1, Ordering::Relaxed),
            None => self.inner.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    fn put(&self, pc: u32, insn: Option<Insn>) {
        self.inner.map.lock().unwrap_or_else(PoisonError::into_inner).insert(pc, insn);
    }

    /// (hits, misses) over the cache's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.inner.hits.load(Ordering::Relaxed), self.inner.misses.load(Ordering::Relaxed))
    }
}

/// A fault detected during symbolic execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymFault {
    /// Undecodable instruction (or symbolic code bytes) at `pc`.
    IllegalInsn {
        /// Faulting instruction address.
        pc: u32,
    },
    /// Access to unmapped memory at a concrete witness address.
    BadAccess {
        /// Faulting instruction address.
        pc: u32,
        /// Witness guest address.
        addr: u32,
        /// Access type.
        kind: AccessKind,
    },
    /// Misaligned word/halfword access.
    Misaligned {
        /// Faulting instruction address.
        pc: u32,
        /// The misaligned address.
        addr: u32,
    },
    /// Division by zero (possibly on a forked divisor-is-zero path).
    DivByZero {
        /// Faulting instruction address.
        pc: u32,
    },
    /// The path condition became unsatisfiable (dead path, not a bug).
    Infeasible,
    /// The memory-access checker vetoed an access (DDT bug condition).
    AccessViolation(AccessViolation),
}

/// Details of a memory-permission violation flagged by the checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessViolation {
    /// Faulting instruction address.
    pub pc: u32,
    /// A concrete witness address outside the permitted regions.
    pub witness: u32,
    /// Access type.
    pub kind: AccessKind,
    /// Access size in bytes.
    pub size: u8,
    /// Checker-provided explanation.
    pub reason: String,
    /// Symbols the offending address depends on (provenance for the §3.6
    /// analysis: "identify on what symbolic values the condition depended").
    pub syms: Vec<ddt_expr::SymId>,
    /// A full model of the path condition under which the access escapes
    /// the permitted regions (used for replay instead of the post-
    /// continuation path condition).
    pub model: Option<ddt_expr::Assignment>,
}

/// Outcome of one symbolic step.
#[derive(Debug)]
pub enum SymStep {
    /// Instruction retired; path continues.
    Continue,
    /// A branch (or a symbolic divisor) forked; `other` is the second path.
    /// The current state already took its side and continues.
    Forked {
        /// The other feasible path.
        other: Box<SymState>,
    },
    /// The driver called a kernel export.
    KernelCall {
        /// The export id.
        export_id: u16,
    },
    /// The driver entry point returned to the kernel.
    ReturnToKernel,
    /// `halt` executed.
    Halted,
    /// The path ended in a fault.
    Fault(SymFault),
}

/// Environment hooks provided by DDT (`ddt-core`).
pub trait SymEnv {
    /// True if `addr` lies in a device MMIO window.
    fn is_mmio(&self, addr: u32) -> bool;

    /// Serves a device register read (symbolic hardware returns a fresh
    /// symbol, §3.3).
    fn mmio_read(&mut self, st: &mut SymState, addr: u32, size: u8) -> Expr;

    /// Serves a device register write (symbolic hardware discards it).
    fn mmio_write(&mut self, st: &mut SymState, addr: u32, size: u8, value: &Expr);

    /// Serves a port read.
    fn port_read(&mut self, st: &mut SymState, port: u32) -> Expr;

    /// Serves a port write.
    fn port_write(&mut self, st: &mut SymState, port: u32, value: &Expr);

    /// Verifies the driver may access memory at (possibly symbolic) `addr`.
    ///
    /// This is DDT's VM-level memory access verification hook (§3.1.1). The
    /// default permits everything — the raw engine then only faults on
    /// unmapped concrete addresses, like plain hardware would.
    fn check_access(
        &mut self,
        st: &mut SymState,
        solver: &mut Solver,
        addr: &Expr,
        size: u8,
        kind: AccessKind,
    ) -> Result<(), AccessViolation> {
        let _ = (st, solver, addr, size, kind);
        Ok(())
    }
}

/// A [`SymEnv`] with no devices and no checker (tests, benchmarks).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullEnv;

impl SymEnv for NullEnv {
    fn is_mmio(&self, _addr: u32) -> bool {
        false
    }

    fn mmio_read(&mut self, _st: &mut SymState, _addr: u32, _size: u8) -> Expr {
        Expr::constant(0, 32)
    }

    fn mmio_write(&mut self, _st: &mut SymState, _addr: u32, _size: u8, _value: &Expr) {}

    fn port_read(&mut self, st: &mut SymState, port: u32) -> Expr {
        let _ = (st, port);
        Expr::constant(0xffff_ffff, 32)
    }

    fn port_write(&mut self, _st: &mut SymState, _port: u32, _value: &Expr) {}
}

/// Maximum number of feasible values of a symbolic address that are
/// explored by forking; larger sets fall back to single concretization
/// with a recorded constraint (§3.2).
pub const MULTIWAY_ADDR_LIMIT: usize = 8;

/// Resolves a possibly-symbolic address to a concrete one, recording the
/// concretization constraint (§3.2 on-demand concretization).
///
/// When the address has only a few feasible values (jump tables, small
/// indexed accesses), the resolution is *multi-way*: this path takes one
/// value and a forked path re-executes the instruction with that value
/// excluded, enumerating the alternatives — the mechanism behind DDT's
/// concretization backtracking ("DDT backtracks to the point of
/// concretization, forks the entire machine state, and repeats the kernel
/// call with different feasible concrete values").
fn resolve_addr(st: &mut SymState, solver: &mut Solver, addr: &Expr) -> Result<u32, SymFault> {
    if let Some(a) = addr.as_const() {
        return Ok(a as u32);
    }
    // Pick a witness value: the cached model answers for free; otherwise one
    // solver call both decides feasibility and refreshes the model.
    let v = match st.model_eval(addr) {
        Some(v) => v as u32,
        None => match solver.check(&st.constraints) {
            ddt_solver::SatResult::Sat(m) => {
                let v = addr.eval(&m) as u32;
                st.set_model(m);
                v
            }
            ddt_solver::SatResult::Unsat => return Err(SymFault::Infeasible),
        },
    };
    // Multi-way enumeration — only for addresses with a *small* feasible
    // set (jump tables, short dispatch arrays). Wide sets (e.g. an index
    // ranging over a whole buffer) take a single concretization, as the
    // paper's DDT does; enumerating them would multiply paths without
    // covering new code.
    let here = st.cpu.pc;
    let already_enumerating =
        st.concretizations.iter().filter(|c| c.pc == here).count() > 0;
    let small_set = already_enumerating
        || solver.distinct_values(&st.constraints, addr, MULTIWAY_ADDR_LIMIT + 1).len()
            <= MULTIWAY_ADDR_LIMIT;
    if small_set {
        let exclude = addr.ne(&Expr::constant(v as u64, addr.width()));
        let mut cs = st.constraints.clone();
        cs.push(exclude.clone());
        if let ddt_solver::SatResult::Sat(m) = solver.check(&cs) {
            let mut other = st.fork();
            other.add_constraint(exclude);
            other.set_model(m);
            st.pending_forks.push(other);
        }
    }
    st.record_concretization(addr.clone(), v);
    Ok(v)
}

/// Reads memory or MMIO at a concrete address.
fn load(
    env: &mut dyn SymEnv,
    st: &mut SymState,
    pc: u32,
    addr: u32,
    size: u8,
) -> Result<Expr, SymFault> {
    if (size == 4 && !addr.is_multiple_of(4)) || (size == 2 && !addr.is_multiple_of(2)) {
        return Err(SymFault::Misaligned { pc, addr });
    }
    if env.is_mmio(addr) {
        let v = env.mmio_read(st, addr, size);
        return Ok(v);
    }
    if !st.mem.is_range_mapped(addr, size as u32) {
        return Err(SymFault::BadAccess { pc, addr, kind: AccessKind::Read });
    }
    let v = st.mem.read(addr, size);
    st.trace.push(TraceEvent::MemRead { pc, addr, size, value: v.as_const() });
    Ok(v)
}

/// Writes memory or MMIO at a concrete address.
fn store(
    env: &mut dyn SymEnv,
    st: &mut SymState,
    pc: u32,
    addr: u32,
    size: u8,
    value: &Expr,
) -> Result<(), SymFault> {
    if (size == 4 && !addr.is_multiple_of(4)) || (size == 2 && !addr.is_multiple_of(2)) {
        return Err(SymFault::Misaligned { pc, addr });
    }
    if env.is_mmio(addr) {
        env.mmio_write(st, addr, size, value);
        return Ok(());
    }
    if !st.mem.is_range_mapped(addr, size as u32) {
        return Err(SymFault::BadAccess { pc, addr, kind: AccessKind::Write });
    }
    st.trace.push(TraceEvent::MemWrite { pc, addr, size, value: value.as_const() });
    st.mem.write(addr, size, value);
    Ok(())
}

/// Decides a symbolic branch condition, forking if both sides are feasible.
///
/// Returns the fork partner (which takes the `!cond` side) if one was
/// created; `self` takes the `cond`-true side when feasible.
fn branch(
    st: &mut SymState,
    solver: &mut Solver,
    pc: u32,
    cond: Expr,
    target: u32,
    fallthrough: u32,
) -> Result<Option<Box<SymState>>, SymFault> {
    if let Some(c) = cond.as_const() {
        st.trace.push(TraceEvent::Branch { pc, taken: c != 0, forked: false, constraint: cond });
        st.cpu.pc = if c != 0 { target } else { fallthrough };
        return Ok(None);
    }
    let not_cond = cond.lnot();
    // Lazy feasibility (ISSUE 10): when the cached model proves the taken
    // side live, the untaken side is forked *optimistically* — no solver
    // call here at all. The child carries `verdict_pending` and is decided
    // later, either immediately after the quantum (`--no-batch`) or in a
    // batched flush with its frontier siblings, before it ever executes.
    // A live path always has a satisfiable condition, so `st` itself never
    // needs a verdict when the model decides its side.
    let model_side = st.model_eval(&cond).map(|v| v != 0);
    match model_side {
        Some(true) => {
            // `st`'s true side is witnessed by the model; defer the ¬cond
            // child's verdict. `add_constraint` drops the inherited model
            // (it satisfies cond), leaving the child model-less until it is
            // either witnessed at flush or first needs a concretization.
            let mut other = st.fork();
            other.add_constraint(not_cond.clone());
            other.verdict_pending = true;
            other.trace.push(TraceEvent::Branch {
                pc,
                taken: false,
                forked: true,
                constraint: not_cond,
            });
            other.cpu.pc = fallthrough;
            st.add_constraint(cond.clone());
            st.trace.push(TraceEvent::Branch { pc, taken: true, forked: true, constraint: cond });
            st.cpu.pc = target;
            Ok(Some(Box::new(other)))
        }
        Some(false) => {
            // The model witnesses the untaken side. `st` follows its model
            // (¬cond) only if the taken side is infeasible; otherwise `st`
            // takes the branch (canonical taken-side priority) with the
            // fresh model, and the partner inherits the parent model. This
            // side keeps the synchronous model-grade check: the verdict
            // decides which side `st` itself executes *this* instruction,
            // so it cannot be deferred.
            let mut cs = st.constraints.clone();
            cs.push(cond.clone());
            match solver.check(&cs) {
                ddt_solver::SatResult::Sat(m) => {
                    let mut other = st.fork();
                    other.add_constraint(not_cond.clone());
                    other.trace.push(TraceEvent::Branch {
                        pc,
                        taken: false,
                        forked: true,
                        constraint: not_cond,
                    });
                    other.cpu.pc = fallthrough;
                    st.add_constraint(cond.clone());
                    st.trace.push(TraceEvent::Branch {
                        pc,
                        taken: true,
                        forked: true,
                        constraint: cond,
                    });
                    st.cpu.pc = target;
                    // The parent model satisfied !cond: it belongs to
                    // `other`; the fresh model satisfies cond, goes to `st`.
                    if let Some(parent_model) = st.last_model.take() {
                        other.set_model(parent_model);
                    }
                    st.set_model(m);
                    Ok(Some(Box::new(other)))
                }
                ddt_solver::SatResult::Unsat => {
                    st.add_constraint(not_cond.clone());
                    st.trace.push(TraceEvent::Branch {
                        pc,
                        taken: false,
                        forked: false,
                        constraint: not_cond,
                    });
                    st.cpu.pc = fallthrough;
                    Ok(None)
                }
            }
        }
        None => {
            // No cached model: one model-grade call decides the taken side;
            // if it is live, `st` takes it and the ¬cond child's verdict is
            // deferred exactly as in the model-witnessed case.
            let mut cs = st.constraints.clone();
            cs.push(cond.clone());
            match solver.check(&cs) {
                ddt_solver::SatResult::Sat(mt) => {
                    st.set_model(mt);
                    let mut other = st.fork();
                    other.add_constraint(not_cond.clone());
                    other.verdict_pending = true;
                    other.trace.push(TraceEvent::Branch {
                        pc,
                        taken: false,
                        forked: true,
                        constraint: not_cond,
                    });
                    other.cpu.pc = fallthrough;
                    st.add_constraint(cond.clone());
                    st.trace.push(TraceEvent::Branch {
                        pc,
                        taken: true,
                        forked: true,
                        constraint: cond,
                    });
                    st.cpu.pc = target;
                    Ok(Some(Box::new(other)))
                }
                ddt_solver::SatResult::Unsat => {
                    cs.pop();
                    cs.push(not_cond.clone());
                    match solver.check(&cs) {
                        ddt_solver::SatResult::Sat(mf) => {
                            st.set_model(mf);
                            st.add_constraint(not_cond.clone());
                            st.trace.push(TraceEvent::Branch {
                                pc,
                                taken: false,
                                forked: false,
                                constraint: not_cond,
                            });
                            st.cpu.pc = fallthrough;
                            Ok(None)
                        }
                        ddt_solver::SatResult::Unsat => Err(SymFault::Infeasible),
                    }
                }
            }
        }
    }
}

/// Executes one instruction symbolically.
///
/// Like the concrete VM, kernel traps are reported *before* executing at the
/// trap address so DDT's kernel dispatcher takes over with driver-visible
/// state intact.
pub fn step(st: &mut SymState, env: &mut dyn SymEnv, solver: &mut Solver) -> SymStep {
    use Insn::*;
    let pc = st.cpu.pc;
    if pc == RETURN_TRAP {
        return SymStep::ReturnToKernel;
    }
    if let Some(export_id) = trap_export_id(pc) {
        return SymStep::KernelCall { export_id };
    }
    if !st.mem.is_range_mapped(pc, INSN_SIZE) {
        return SymStep::Fault(SymFault::BadAccess { pc, addr: pc, kind: AccessKind::Fetch });
    }
    let cacheable = st.mem.code_bytes_stable(pc, INSN_SIZE);
    let decoded = match cacheable.then(|| st.decode_cache.get(pc)).flatten() {
        Some(cached) => cached,
        None => {
            let Some(raw) = st.mem.read_concrete_bytes(pc, INSN_SIZE) else {
                return SymStep::Fault(SymFault::IllegalInsn { pc });
            };
            let d = decode(raw.as_slice().try_into().expect("8 bytes"));
            if cacheable {
                st.decode_cache.put(pc, d);
            }
            d
        }
    };
    let Some(insn) = decoded else {
        return SymStep::Fault(SymFault::IllegalInsn { pc });
    };
    st.insns_retired += 1;
    st.trace.push(TraceEvent::Exec { pc });
    let next = pc.wrapping_add(INSN_SIZE);
    let c32 = |v: u32| Expr::constant(v as u64, 32);

    // Helper macro-free closures cannot borrow st mutably twice; handle each
    // instruction inline.
    let outcome: Result<SymStep, SymFault> = (|| {
        match insn {
            Halt => return Ok(SymStep::Halted),
            Nop => {}
            Movi { rd, imm } => st.cpu.set(rd, c32(imm)),
            Mov { rd, rs } => {
                let v = st.cpu.get(rs);
                st.cpu.set(rd, v);
            }
            Add { rd, rs, rt } => {
                let v = st.cpu.get(rs).add(&st.cpu.get(rt));
                st.cpu.set(rd, v);
            }
            Addi { rd, rs, imm } => {
                let v = st.cpu.get(rs).add(&c32(imm));
                st.cpu.set(rd, v);
            }
            Sub { rd, rs, rt } => {
                let v = st.cpu.get(rs).sub(&st.cpu.get(rt));
                st.cpu.set(rd, v);
            }
            Mul { rd, rs, rt } => {
                let v = st.cpu.get(rs).mul(&st.cpu.get(rt));
                st.cpu.set(rd, v);
            }
            Udiv { rd, rs, rt } | Urem { rd, rs, rt } | Sdiv { rd, rs, rt } => {
                let divisor = st.cpu.get(rt);
                let zero = c32(0);
                let is_zero = divisor.eq(&zero);
                match is_zero.as_const() {
                    Some(1) => return Err(SymFault::DivByZero { pc }),
                    Some(_) => {}
                    None => {
                        // Fork the divisor-is-zero case; that path re-executes
                        // this instruction with the == 0 constraint and then
                        // takes the `Some(1)` arm above.
                        if solver.may_be_true(&st.constraints, &is_zero) {
                            if !solver.may_be_true(&st.constraints, &is_zero.lnot()) {
                                return Err(SymFault::DivByZero { pc });
                            }
                            let mut other = st.fork();
                            other.add_constraint(is_zero.clone());
                            other.cpu.pc = pc; // Re-execute the division.
                            st.add_constraint(is_zero.lnot());
                            // Perform the division on the nonzero side.
                            let a = st.cpu.get(rs);
                            let v = match insn {
                                Udiv { .. } => a.udiv(&divisor),
                                Urem { .. } => a.urem(&divisor),
                                _ => a.sdiv(&divisor),
                            };
                            st.cpu.set(rd, v);
                            st.cpu.pc = next;
                            return Ok(SymStep::Forked { other: Box::new(other) });
                        }
                        st.add_constraint(is_zero.lnot());
                    }
                }
                let a = st.cpu.get(rs);
                let v = match insn {
                    Udiv { .. } => a.udiv(&divisor),
                    Urem { .. } => a.urem(&divisor),
                    _ => a.sdiv(&divisor),
                };
                st.cpu.set(rd, v);
            }
            And { rd, rs, rt } => {
                let v = st.cpu.get(rs).and(&st.cpu.get(rt));
                st.cpu.set(rd, v);
            }
            Andi { rd, rs, imm } => {
                let v = st.cpu.get(rs).and(&c32(imm));
                st.cpu.set(rd, v);
            }
            Or { rd, rs, rt } => {
                let v = st.cpu.get(rs).or(&st.cpu.get(rt));
                st.cpu.set(rd, v);
            }
            Ori { rd, rs, imm } => {
                let v = st.cpu.get(rs).or(&c32(imm));
                st.cpu.set(rd, v);
            }
            Xor { rd, rs, rt } => {
                let v = st.cpu.get(rs).xor(&st.cpu.get(rt));
                st.cpu.set(rd, v);
            }
            Xori { rd, rs, imm } => {
                let v = st.cpu.get(rs).xor(&c32(imm));
                st.cpu.set(rd, v);
            }
            Not { rd, rs } => {
                let v = st.cpu.get(rs).not();
                st.cpu.set(rd, v);
            }
            Shl { rd, rs, rt } => {
                let v = st.cpu.get(rs).shl(&st.cpu.get(rt));
                st.cpu.set(rd, v);
            }
            Shli { rd, rs, imm } => {
                let v = st.cpu.get(rs).shl(&c32(imm));
                st.cpu.set(rd, v);
            }
            Shr { rd, rs, rt } => {
                let v = st.cpu.get(rs).lshr(&st.cpu.get(rt));
                st.cpu.set(rd, v);
            }
            Shri { rd, rs, imm } => {
                let v = st.cpu.get(rs).lshr(&c32(imm));
                st.cpu.set(rd, v);
            }
            Sar { rd, rs, rt } => {
                let v = st.cpu.get(rs).ashr(&st.cpu.get(rt));
                st.cpu.set(rd, v);
            }
            Sari { rd, rs, imm } => {
                let v = st.cpu.get(rs).ashr(&c32(imm));
                st.cpu.set(rd, v);
            }
            Ldw { rd, rs, imm } | Ldh { rd, rs, imm } | Ldb { rd, rs, imm } => {
                let size = match insn {
                    Ldw { .. } => 4,
                    Ldh { .. } => 2,
                    _ => 1,
                };
                let addr_e = st.cpu.get(rs).add(&c32(imm));
                env.check_access(st, solver, &addr_e, size, AccessKind::Read)
                    .map_err(SymFault::AccessViolation)?;
                let addr = resolve_addr(st, solver, &addr_e)?;
                let v = load(env, st, pc, addr, size)?;
                st.cpu.set(rd, v.zext(32));
            }
            Stw { rs, rt, imm } | Sth { rs, rt, imm } | Stb { rs, rt, imm } => {
                let size = match insn {
                    Stw { .. } => 4,
                    Sth { .. } => 2,
                    _ => 1,
                };
                let addr_e = st.cpu.get(rs).add(&c32(imm));
                env.check_access(st, solver, &addr_e, size, AccessKind::Write)
                    .map_err(SymFault::AccessViolation)?;
                let addr = resolve_addr(st, solver, &addr_e)?;
                let v = st.cpu.get(rt);
                let v = if size == 4 { v } else { v.extract(8 * size as u32 - 1, 0) };
                store(env, st, pc, addr, size, &v)?;
            }
            Jmp { imm } => {
                st.cpu.pc = imm;
                return Ok(check_transfer(st));
            }
            Jr { rs } => {
                let t = st.cpu.get(rs);
                let target = resolve_addr(st, solver, &t)?;
                st.cpu.pc = target;
                return Ok(check_transfer(st));
            }
            Beq { rs, rt, imm }
            | Bne { rs, rt, imm }
            | Blt { rs, rt, imm }
            | Bge { rs, rt, imm }
            | Bltu { rs, rt, imm }
            | Bgeu { rs, rt, imm } => {
                let a = st.cpu.get(rs);
                let b = st.cpu.get(rt);
                let cond = match insn {
                    Beq { .. } => a.eq(&b),
                    Bne { .. } => a.ne(&b),
                    Blt { .. } => a.slt(&b),
                    Bge { .. } => b.sle(&a),
                    Bltu { .. } => a.ult(&b),
                    _ => b.ule(&a),
                };
                return match branch(st, solver, pc, cond, imm, next)? {
                    Some(other) => Ok(SymStep::Forked { other }),
                    None => Ok(check_transfer(st)),
                };
            }
            Call { imm } => {
                st.cpu.set_u32(Reg::LR, next);
                st.cpu.pc = imm;
                return Ok(check_transfer(st));
            }
            Callr { rs } => {
                let t = st.cpu.get(rs);
                let target = resolve_addr(st, solver, &t)?;
                st.cpu.set_u32(Reg::LR, next);
                st.cpu.pc = target;
                return Ok(check_transfer(st));
            }
            Ret => {
                let t = st.cpu.get(Reg::LR);
                let target = resolve_addr(st, solver, &t)?;
                st.cpu.pc = target;
                return Ok(check_transfer(st));
            }
            Push { rs } => {
                let sp_e = st.cpu.get(Reg::SP).sub(&c32(4));
                let sp = resolve_addr(st, solver, &sp_e)?;
                // Decrement the stack pointer *before* the access check so
                // the below-sp rule permits the push slot itself.
                let v = st.cpu.get(rs);
                st.cpu.set_u32(Reg::SP, sp);
                env.check_access(st, solver, &c32(sp), 4, AccessKind::Write)
                    .map_err(SymFault::AccessViolation)?;
                store(env, st, pc, sp, 4, &v)?;
            }
            Pop { rd } => {
                let sp_e = st.cpu.get(Reg::SP);
                let sp = resolve_addr(st, solver, &sp_e)?;
                env.check_access(st, solver, &c32(sp), 4, AccessKind::Read)
                    .map_err(SymFault::AccessViolation)?;
                let v = load(env, st, pc, sp, 4)?;
                st.cpu.set(rd, v);
                st.cpu.set_u32(Reg::SP, sp.wrapping_add(4));
            }
            In { rd, imm } => {
                let v = env.port_read(st, imm);
                st.cpu.set(rd, v.zext(32));
            }
            Inr { rd, rs } => {
                let p = st.cpu.get(rs);
                let port = resolve_addr(st, solver, &p)?;
                let v = env.port_read(st, port);
                st.cpu.set(rd, v.zext(32));
            }
            Out { rt, imm } => {
                let v = st.cpu.get(rt);
                env.port_write(st, imm, &v);
            }
            Outr { rs, rt } => {
                let p = st.cpu.get(rs);
                let port = resolve_addr(st, solver, &p)?;
                let v = st.cpu.get(rt);
                env.port_write(st, port, &v);
            }
        }
        st.cpu.pc = next;
        Ok(SymStep::Continue)
    })();

    match outcome {
        Ok(ev) => ev,
        Err(f) => SymStep::Fault(f),
    }
}

/// After a control transfer, classify kernel-bound targets.
fn check_transfer(st: &SymState) -> SymStep {
    let pc = st.cpu.pc;
    if pc == RETURN_TRAP {
        return SymStep::ReturnToKernel;
    }
    if let Some(export_id) = trap_export_id(pc) {
        return SymStep::KernelCall { export_id };
    }
    SymStep::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{SymCounter, SymOrigin};
    use ddt_isa::asm::{assemble, ExportMap};

    /// Runs a state to completion, collecting all terminal outcomes.
    fn explore(mut root: SymState, env: &mut dyn SymEnv) -> Vec<(SymState, SymStep)> {
        let mut solver = Solver::new();
        let mut work = vec![root.clone()];
        let mut done = Vec::new();
        root.cpu.pc = 0; // Unused; root cloned above.
        // Branch forks are optimistic (the ¬cond child defers its verdict);
        // this harness resolves each one eagerly, exactly like the core
        // driver's `--no-batch` mode.
        let admit = |mut child: SymState, work: &mut Vec<SymState>, solver: &mut Solver| {
            if child.verdict_pending {
                if !solver.is_feasible_obligation(&child.constraints) {
                    return;
                }
                child.verdict_pending = false;
            }
            work.push(child);
        };
        while let Some(mut st) = work.pop() {
            loop {
                let outcome = step(&mut st, env, &mut solver);
                for fork in st.pending_forks.drain(..) {
                    admit(fork, &mut work, &mut solver);
                }
                match outcome {
                    SymStep::Continue => continue,
                    SymStep::Forked { other } => {
                        admit(*other, &mut work, &mut solver);
                        continue;
                    }
                    terminal => {
                        done.push((st, terminal));
                        break;
                    }
                }
            }
            assert!(done.len() + work.len() < 256, "state explosion in test");
        }
        done
    }

    fn make_state(src: &str) -> (SymState, u32) {
        let exports = ExportMap::new();
        let a = assemble(src, &exports).expect("asm");
        let mut st = SymState::new(SymCounter::new());
        let img = &a.image;
        st.mem.map(img.load_base, img.image_end() - img.load_base);
        st.mem.seed_bytes(img.load_base, &img.text);
        st.mem.seed_bytes(img.data_base(), &img.data);
        st.mem.set_code_region(img.load_base, img.text.len() as u32);
        st.mem.map(0x7000_0000, 0x10_0000);
        st.cpu.set_u32(Reg::SP, 0x7010_0000);
        st.cpu.set_u32(Reg::LR, RETURN_TRAP);
        st.cpu.pc = img.entry;
        (st, img.entry)
    }

    /// Runs a single-path state until it returns to the kernel.
    fn run_to_return(mut st: SymState) -> SymState {
        let mut solver = Solver::new();
        loop {
            match step(&mut st, &mut NullEnv, &mut solver) {
                SymStep::Continue => {}
                SymStep::ReturnToKernel => return st,
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
    }

    #[test]
    fn decode_cache_serves_repeat_fetches() {
        let (st, _) = make_state(
            "DriverEntry:
                mov r0, 1
                mov r1, 2
                ret",
        );
        let cache = st.decode_cache.clone();
        run_to_return(st.clone());
        let (h1, m1) = cache.stats();
        assert_eq!(h1, 0, "first pass decodes everything");
        assert!(m1 >= 3, "every fetch consulted the cache");
        // A sibling sharing the root's cache replays the same pcs for free.
        run_to_return(st.clone());
        let (h2, m2) = cache.stats();
        assert_eq!(m2, m1, "no new decodes on the second pass");
        assert!(h2 >= 3, "second pass served from the cache");
    }

    #[test]
    fn code_writes_bypass_the_decode_cache() {
        let src_a = "DriverEntry:
                mov r1, 1
                mov r2, 2
                ret";
        let src_b = "DriverEntry:
                mov r1, 1
                mov r2, 99
                ret";
        let (st, entry) = make_state(src_a);
        let patched = assemble(src_b, &ExportMap::new()).expect("asm").image.text;
        // Populate the cache with the original second instruction.
        let clean = run_to_return(st.clone());
        assert_eq!(clean.cpu.get(Reg(2)).as_const(), Some(2));
        // A lineage that rewrites its own text must execute the new bytes,
        // not the cached decode of the old ones.
        let mut dirty = st.clone();
        let off = INSN_SIZE as usize;
        dirty
            .mem
            .write_concrete_bytes(entry + INSN_SIZE, &patched[off..off + INSN_SIZE as usize]);
        let dirty = run_to_return(dirty);
        assert_eq!(dirty.cpu.get(Reg(2)).as_const(), Some(99), "patched code must run");
        // Clean siblings are unaffected and keep using the cache.
        let clean2 = run_to_return(st.clone());
        assert_eq!(clean2.cpu.get(Reg(2)).as_const(), Some(2));
    }

    #[test]
    fn concrete_program_runs() {
        let (st, _) = make_state(
            "DriverEntry:
                mov r0, 6
                mov r1, 7
                mul r2, r0, r1
                ret",
        );
        let done = explore(st, &mut NullEnv);
        assert_eq!(done.len(), 1);
        let (fin, ev) = &done[0];
        assert!(matches!(ev, SymStep::ReturnToKernel));
        assert_eq!(fin.cpu.get(Reg(2)).as_const(), Some(42));
    }

    #[test]
    fn symbolic_branch_forks_both_ways() {
        let (mut st, _) = make_state(
            "DriverEntry:
                bltu r0, 10, small
                mov r1, 2
                ret
            small:
                mov r1, 1
                ret",
        );
        let x = st.new_symbol("input", SymOrigin::Other, 32);
        st.cpu.set(Reg(0), x.clone());
        let done = explore(st, &mut NullEnv);
        assert_eq!(done.len(), 2, "both branch sides explored");
        let mut r1s: Vec<u64> = done
            .iter()
            .map(|(s, _)| s.cpu.get(Reg(1)).as_const().expect("r1 concrete"))
            .collect();
        r1s.sort_unstable();
        assert_eq!(r1s, vec![1, 2]);
        // Each final state's constraints pin x to the matching side.
        for (s, _) in &done {
            let mut solver = Solver::new();
            let model = match solver.check(&s.constraints) {
                ddt_solver::SatResult::Sat(m) => m,
                _ => panic!("path must be feasible"),
            };
            let xv = x.eval(&model) as u32;
            let r1 = s.cpu.get(Reg(1)).as_const().unwrap();
            assert_eq!(r1 == 1, xv < 10, "constraint matches outcome");
        }
    }

    #[test]
    fn infeasible_second_branch_does_not_fork() {
        let (mut st, _) = make_state(
            "DriverEntry:
                bltu r0, 10, small
                ret
            small:
                bltu r0, 20, tiny   ; implied by r0 < 10: must not fork
                ret
            tiny:
                ret",
        );
        let x = st.new_symbol("input", SymOrigin::Other, 32);
        st.cpu.set(Reg(0), x);
        let done = explore(st, &mut NullEnv);
        assert_eq!(done.len(), 2, "second branch is decided, not forked");
    }

    #[test]
    fn nested_branches_enumerate_paths() {
        let (mut st, _) = make_state(
            "DriverEntry:
                mov r3, 0
                beq r0, 0, a
                add r3, r3, 1
            a:
                beq r1, 0, b
                add r3, r3, 2
            b:
                ret",
        );
        let x = st.new_symbol("x", SymOrigin::Other, 32);
        let y = st.new_symbol("y", SymOrigin::Other, 32);
        st.cpu.set(Reg(0), x);
        st.cpu.set(Reg(1), y);
        let done = explore(st, &mut NullEnv);
        assert_eq!(done.len(), 4);
        let mut r3s: Vec<u64> =
            done.iter().map(|(s, _)| s.cpu.get(Reg(3)).as_const().unwrap()).collect();
        r3s.sort_unstable();
        assert_eq!(r3s, vec![0, 1, 2, 3]);
    }

    #[test]
    fn symbolic_division_forks_divide_by_zero() {
        let (mut st, entry) = make_state(
            "DriverEntry:
                mov r1, 100
                udiv r2, r1, r0
                ret",
        );
        let x = st.new_symbol("divisor", SymOrigin::Other, 32);
        st.cpu.set(Reg(0), x);
        let done = explore(st, &mut NullEnv);
        assert_eq!(done.len(), 2);
        let faults: Vec<bool> =
            done.iter().map(|(_, ev)| matches!(ev, SymStep::Fault(SymFault::DivByZero { .. }))).collect();
        assert!(faults.contains(&true), "zero path faults");
        assert!(faults.contains(&false), "nonzero path completes");
        let _ = entry;
    }

    #[test]
    fn symbolic_store_address_concretizes() {
        let (mut st, _) = make_state(
            "DriverEntry:
                lea r1, buf
                add r1, r1, r0      ; r0 symbolic offset
                and r1, r1, 0xfffffffc
                stw [r1], r2
                ret
            .bss
            buf: .space 64",
        );
        let x = st.new_symbol("off", SymOrigin::Other, 32);
        st.cpu.set(Reg(0), x.clone());
        let mut solver = Solver::new();
        let mut env = NullEnv;
        // Constrain the offset so any concretization lands in the buffer.
        let small = x.ult(&Expr::constant(32, 32));
        st.add_constraint(small);
        loop {
            match step(&mut st, &mut env, &mut solver) {
                SymStep::Continue => continue,
                SymStep::ReturnToKernel => break,
                ev => panic!("unexpected {ev:?}"),
            }
        }
        assert_eq!(st.concretizations.len(), 1, "address was concretized once");
    }

    #[test]
    fn memory_trace_events_recorded() {
        let (st, _) = make_state(
            "DriverEntry:
                lea r1, buf
                mov r2, 0x55
                stw [r1], r2
                ldw r3, [r1]
                ret
            .bss
            buf: .space 8",
        );
        let done = explore(st, &mut NullEnv);
        let (fin, _) = &done[0];
        let evs = fin.trace.events();
        assert!(evs.iter().any(|e| matches!(e, TraceEvent::MemWrite { value: Some(0x55), .. })));
        assert!(evs.iter().any(|e| matches!(e, TraceEvent::MemRead { value: Some(0x55), .. })));
        assert_eq!(fin.cpu.get(Reg(3)).as_const(), Some(0x55));
    }

    #[test]
    fn unmapped_fault_has_witness() {
        let (st, _) = make_state(
            "DriverEntry:
                mov r1, 0x66000000
                ldw r0, [r1]
                ret",
        );
        let done = explore(st, &mut NullEnv);
        match &done[0].1 {
            SymStep::Fault(SymFault::BadAccess { addr, .. }) => assert_eq!(*addr, 0x6600_0000),
            ev => panic!("expected fault, got {ev:?}"),
        }
    }

    #[test]
    fn port_reads_come_from_env() {
        struct CountingEnv {
            reads: u32,
        }
        impl SymEnv for CountingEnv {
            fn is_mmio(&self, _addr: u32) -> bool {
                false
            }
            fn mmio_read(&mut self, _st: &mut SymState, _a: u32, _s: u8) -> Expr {
                Expr::constant(0, 32)
            }
            fn mmio_write(&mut self, _st: &mut SymState, _a: u32, _s: u8, _v: &Expr) {}
            fn port_read(&mut self, st: &mut SymState, port: u32) -> Expr {
                self.reads += 1;
                st.new_symbol(format!("port{port:#x}"), SymOrigin::PortRead { port }, 32)
            }
            fn port_write(&mut self, _st: &mut SymState, _p: u32, _v: &Expr) {}
        }
        let (st, _) = make_state(
            "DriverEntry:
                in r0, 0x10
                bltu r0, 5, low
                ret
            low:
                ret",
        );
        let mut env = CountingEnv { reads: 0 };
        let done = explore(st, &mut env);
        assert_eq!(env.reads, 1);
        assert_eq!(done.len(), 2, "symbolic port value forks the branch");
    }

    #[test]
    fn mmio_routes_to_env() {
        struct MmioEnv;
        impl SymEnv for MmioEnv {
            fn is_mmio(&self, addr: u32) -> bool {
                (0x8000_0000..0x8000_1000).contains(&addr)
            }
            fn mmio_read(&mut self, st: &mut SymState, addr: u32, _s: u8) -> Expr {
                st.new_symbol(format!("hw{addr:#x}"), SymOrigin::HardwareRead { addr }, 32)
            }
            fn mmio_write(&mut self, _st: &mut SymState, _a: u32, _s: u8, _v: &Expr) {}
            fn port_read(&mut self, _st: &mut SymState, _p: u32) -> Expr {
                Expr::constant(0, 32)
            }
            fn port_write(&mut self, _st: &mut SymState, _p: u32, _v: &Expr) {}
        }
        let (st, _) = make_state(
            "DriverEntry:
                mov r1, 0x80000000
                ldw r0, [r1]        ; symbolic hardware read
                beq r0, 0, done
                mov r2, 1
            done:
                ret",
        );
        let done = explore(st, &mut MmioEnv);
        assert_eq!(done.len(), 2, "hardware value is unconstrained");
    }

    #[test]
    fn access_checker_vetoes() {
        struct Veto;
        impl SymEnv for Veto {
            fn is_mmio(&self, _addr: u32) -> bool {
                false
            }
            fn mmio_read(&mut self, _st: &mut SymState, _a: u32, _s: u8) -> Expr {
                Expr::constant(0, 32)
            }
            fn mmio_write(&mut self, _st: &mut SymState, _a: u32, _s: u8, _v: &Expr) {}
            fn port_read(&mut self, _st: &mut SymState, _p: u32) -> Expr {
                Expr::constant(0, 32)
            }
            fn port_write(&mut self, _st: &mut SymState, _p: u32, _v: &Expr) {}
            fn check_access(
                &mut self,
                st: &mut SymState,
                _solver: &mut Solver,
                addr: &Expr,
                size: u8,
                kind: AccessKind,
            ) -> Result<(), AccessViolation> {
                Err(AccessViolation {
                    pc: st.cpu.pc,
                    witness: addr.as_const().unwrap_or(0) as u32,
                    kind,
                    size,
                    reason: "all accesses vetoed".into(),
                    syms: vec![],
                    model: None,
                })
            }
        }
        let (st, _) = make_state(
            "DriverEntry:
                lea r1, buf
                ldw r0, [r1]
                ret
            .bss
            buf: .space 4",
        );
        let done = explore(st, &mut Veto);
        assert!(matches!(
            &done[0].1,
            SymStep::Fault(SymFault::AccessViolation(v)) if v.reason.contains("vetoed")
        ));
    }

    #[test]
    fn call_and_ret_maintain_lr() {
        let (st, _) = make_state(
            "DriverEntry:
                push lr
                mov r0, 3
                call triple
                pop lr
                ret
            triple:
                mov r1, 3
                mul r0, r0, r1
                ret",
        );
        let done = explore(st, &mut NullEnv);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0.cpu.get(Reg(0)).as_const(), Some(9));
    }
}

#[cfg(test)]
mod more_interp_tests {
    use super::*;
    use crate::state::{SymCounter, SymOrigin, SymState};
    use ddt_isa::asm::{assemble, ExportMap};
    use ddt_isa::{Reg, RETURN_TRAP};

    fn state_for(src: &str) -> SymState {
        let a = assemble(src, &ExportMap::new()).expect("asm");
        let mut st = SymState::new(SymCounter::new());
        let img = &a.image;
        st.mem.map(img.load_base, img.image_end() - img.load_base);
        st.mem.seed_bytes(img.load_base, &img.text);
        st.mem.seed_bytes(img.data_base(), &img.data);
        st.mem.set_code_region(img.load_base, img.text.len() as u32);
        st.mem.map(0x7000_0000, 0x10_0000);
        st.cpu.set_u32(Reg::SP, 0x7010_0000);
        st.cpu.set_u32(Reg::LR, RETURN_TRAP);
        st.cpu.pc = img.entry;
        st
    }

    fn run_to_end(st: &mut SymState) -> (SymStep, Vec<SymState>) {
        let mut solver = Solver::new();
        let mut env = NullEnv;
        let mut forks = Vec::new();
        loop {
            let outcome = step(st, &mut env, &mut solver);
            forks.append(&mut st.pending_forks);
            match outcome {
                SymStep::Continue => continue,
                SymStep::Forked { other } => {
                    forks.push(*other);
                    continue;
                }
                terminal => return (terminal, forks),
            }
        }
    }

    #[test]
    fn jump_table_enumerates_exactly_its_entries() {
        // A 4-entry jump table indexed by a symbolic value constrained to
        // [0, 4): multi-way resolution must enumerate exactly 4 targets.
        let mut st = state_for(
            "DriverEntry:
                shl  r1, r0, 2
                lea  r2, table
                add  r2, r2, r1
                ldw  r3, [r2]
                jr   r3
            t0: mov r4, 10
                ret
            t1: mov r4, 11
                ret
            t2: mov r4, 12
                ret
            t3: mov r4, 13
                ret
            .data
            table: .word t0, t1, t2, t3",
        );
        let idx = st.new_symbol("idx", SymOrigin::Other, 32);
        st.add_constraint(idx.ult(&Expr::constant(4, 32)));
        st.cpu.set(Reg(0), idx);
        let mut done = Vec::new();
        let mut work = vec![st];
        while let Some(mut s) = work.pop() {
            let (terminal, forks) = run_to_end(&mut s);
            work.extend(forks);
            done.push((s, terminal));
            assert!(done.len() <= 8, "enumeration must not explode");
        }
        let mut r4s: Vec<u64> =
            done.iter().map(|(s, _)| s.cpu.get(Reg(4)).as_const().unwrap()).collect();
        r4s.sort_unstable();
        assert_eq!(r4s, vec![10, 11, 12, 13]);
    }

    #[test]
    fn wide_symbolic_index_takes_single_concretization() {
        let mut st = state_for(
            "DriverEntry:
                lea  r1, buf
                add  r1, r1, r0
                ldb  r2, [r1]
                ret
            .bss
            buf: .space 256",
        );
        let idx = st.new_symbol("idx", SymOrigin::Other, 32);
        st.add_constraint(idx.ult(&Expr::constant(256, 32)));
        st.cpu.set(Reg(0), idx);
        let mut done = 0;
        let mut work = vec![st];
        while let Some(mut s) = work.pop() {
            let (_, forks) = run_to_end(&mut s);
            work.extend(forks);
            done += 1;
        }
        assert_eq!(done, 1, "256 feasible addresses: no enumeration");
    }

    #[test]
    fn subword_stores_truncate() {
        let mut st = state_for(
            "DriverEntry:
                lea  r1, buf
                stb  [r1], r0
                ldw  r2, [r1]
                ret
            .bss
            buf: .space 8",
        );
        st.cpu.set_u32(Reg(0), 0xAABBCCDD);
        let (terminal, _) = run_to_end(&mut st);
        assert!(matches!(terminal, SymStep::ReturnToKernel));
        assert_eq!(st.cpu.get(Reg(2)).as_const(), Some(0xDD));
    }

    #[test]
    fn below_sp_write_is_checkable() {
        // The raw engine (NullEnv) allows below-sp writes; this documents
        // that the rule is checker policy, not engine mechanism.
        let mut st = state_for(
            "DriverEntry:
                stw  [sp-64], r0
                ret",
        );
        let (terminal, _) = run_to_end(&mut st);
        assert!(matches!(terminal, SymStep::ReturnToKernel));
    }

    #[test]
    fn push_pop_respect_the_moved_sp() {
        let mut st = state_for(
            "DriverEntry:
                mov  r0, 7
                push r0
                pop  r1
                ret",
        );
        let (terminal, _) = run_to_end(&mut st);
        assert!(matches!(terminal, SymStep::ReturnToKernel));
        assert_eq!(st.cpu.get(Reg(1)).as_const(), Some(7));
        assert_eq!(st.cpu.get(Reg::SP).as_const(), Some(0x7010_0000));
    }

    #[test]
    fn both_branch_sides_infeasible_is_infeasible_path() {
        let mut st = state_for(
            "DriverEntry:
                beq r0, 1, yes
                ret
            yes:
                ret",
        );
        let x = st.new_symbol("x", SymOrigin::Other, 32);
        // Contradictory constraints kill the path at the branch.
        st.add_constraint(x.eq(&Expr::constant(0, 32)));
        st.add_constraint(x.eq(&Expr::constant(1, 32)));
        st.cpu.set(Reg(0), x);
        let (terminal, forks) = run_to_end(&mut st);
        assert!(matches!(terminal, SymStep::Fault(SymFault::Infeasible)), "{terminal:?}");
        assert!(forks.is_empty());
    }
}
