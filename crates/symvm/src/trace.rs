//! Execution traces (paper §3.5).
//!
//! "These traces contain the list of program counters of the executed
//! instructions up to the bug occurrence, all memory accesses done by each
//! instruction (address and value) and the type of the access. Traces
//! contain information about creation and propagation of all symbolic values
//! and constraints on branches taken. Each branch instruction has a flag
//! indicating whether it forked execution or not."
//!
//! Traces are chained like memory layers so that forking a state is O(1);
//! [`Trace::events`] flattens the chain in execution order.

use std::sync::Arc;

use ddt_expr::{Expr, SymId};
use serde::{Deserialize, Serialize};

use crate::state::SymOrigin;

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An instruction was executed at `pc`.
    Exec {
        /// Program counter.
        pc: u32,
    },
    /// A data memory read.
    MemRead {
        /// Instruction address performing the read.
        pc: u32,
        /// Accessed guest address.
        addr: u32,
        /// Access size in bytes.
        size: u8,
        /// The value, if concrete.
        value: Option<u64>,
    },
    /// A data memory write.
    MemWrite {
        /// Instruction address performing the write.
        pc: u32,
        /// Accessed guest address.
        addr: u32,
        /// Access size in bytes.
        size: u8,
        /// The value, if concrete.
        value: Option<u64>,
    },
    /// A conditional branch was resolved.
    Branch {
        /// Branch instruction address.
        pc: u32,
        /// Whether the branch was taken on this path.
        taken: bool,
        /// Whether execution forked here (both sides feasible).
        forked: bool,
        /// The path constraint added (already negated for the not-taken
        /// side).
        constraint: Expr,
    },
    /// A fresh symbolic value was created.
    SymCreate {
        /// The symbol.
        id: SymId,
        /// Human-readable provenance label.
        label: String,
        /// Where the symbol came from (hardware read, entry argument, …) —
        /// the provenance root recorded in persisted trace artifacts (§3.6).
        origin: SymOrigin,
        /// Width of the symbol in bits.
        width: u32,
    },
    /// A symbolic expression was concretized (at a kernel call or a
    /// symbolic-address access).
    Concretize {
        /// Program counter at the concretization point.
        pc: u32,
        /// The expression that was concretized.
        expr: Expr,
        /// The chosen concrete value.
        value: u64,
    },
    /// The driver called a kernel export.
    KernelCall {
        /// Export id.
        export_id: u16,
        /// Export name.
        name: String,
    },
    /// A kernel export returned to the driver.
    KernelReturn {
        /// Export id.
        export_id: u16,
        /// Concrete return value placed in `r0`.
        ret: u32,
    },
    /// The kernel invoked a driver entry point.
    EntryInvoke {
        /// Entry point name.
        name: String,
        /// Entry address.
        addr: u32,
    },
    /// An interrupt was injected (symbolic interrupt, §3.3).
    Interrupt {
        /// Interrupt line.
        line: u8,
        /// Where in the execution it was injected (pc of the boundary).
        at_pc: u32,
    },
    /// A hardware register read was served by symbolic hardware.
    HardwareRead {
        /// MMIO address or port.
        addr: u32,
        /// The symbol produced.
        id: SymId,
    },
    /// A hardware write was discarded by symbolic hardware (logged for
    /// §3.6-style analysis, e.g. "no write to the interrupt-enable
    /// register occurred before the crash").
    HardwareWrite {
        /// MMIO address or port.
        addr: u32,
        /// The value, if concrete.
        value: Option<u64>,
    },
}

#[derive(Debug, Default)]
struct TraceSeg {
    parent: Option<Arc<TraceSeg>>,
    events: Vec<TraceEvent>,
}

/// An append-only, fork-cheap event log.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    frozen: Option<Arc<TraceSeg>>,
    local: Vec<TraceEvent>,
    frozen_len: usize,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.local.push(ev);
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.frozen_len + self.local.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forks the trace: both sides keep the history, appends diverge.
    pub fn fork(&mut self) -> Trace {
        if !self.local.is_empty() {
            let seg = TraceSeg {
                parent: self.frozen.take(),
                events: std::mem::take(&mut self.local),
            };
            self.frozen_len += seg.events.len();
            self.frozen = Some(Arc::new(seg));
        }
        Trace { frozen: self.frozen.clone(), local: Vec::new(), frozen_len: self.frozen_len }
    }

    /// Flattens the chain into execution order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut segs = Vec::new();
        let mut cur = self.frozen.as_ref();
        while let Some(seg) = cur {
            segs.push(seg);
            cur = seg.parent.as_ref();
        }
        let mut out = Vec::with_capacity(self.len());
        for seg in segs.into_iter().rev() {
            out.extend(seg.events.iter().cloned());
        }
        out.extend(self.local.iter().cloned());
        out
    }

    /// Iterates executed program counters in order.
    pub fn pcs(&self) -> Vec<u32> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Exec { pc } => Some(pc),
                _ => None,
            })
            .collect()
    }

    /// Visits every event in execution order without flattening the chain
    /// into a fresh vector (no per-event clones).
    pub fn for_each(&self, mut f: impl FnMut(&TraceEvent)) {
        let mut segs = Vec::new();
        let mut cur = self.frozen.as_ref();
        while let Some(seg) = cur {
            segs.push(seg);
            cur = seg.parent.as_ref();
        }
        for seg in segs.into_iter().rev() {
            for ev in &seg.events {
                f(ev);
            }
        }
        for ev in &self.local {
            f(ev);
        }
    }

    /// Visits events newest-first, stopping when `f` returns `Some`.
    ///
    /// Walks the local tail then the frozen segments backwards, so a query
    /// answered by recent history (the common case for checkers asking
    /// "where was the last instruction?") never touches the shared prefix.
    pub fn rfind_map<T>(&self, mut f: impl FnMut(&TraceEvent) -> Option<T>) -> Option<T> {
        for ev in self.local.iter().rev() {
            if let Some(v) = f(ev) {
                return Some(v);
            }
        }
        let mut cur = self.frozen.as_ref();
        while let Some(seg) = cur {
            for ev in seg.events.iter().rev() {
                if let Some(v) = f(ev) {
                    return Some(v);
                }
            }
            cur = seg.parent.as_ref();
        }
        None
    }

    /// Program counter of the most recently executed instruction, if any.
    ///
    /// O(distance from the tail) — replaces the `events()` full flatten the
    /// checkers used to do on every fault-site lookup.
    pub fn last_exec_pc(&self) -> Option<u32> {
        self.rfind_map(|ev| match ev {
            TraceEvent::Exec { pc } => Some(*pc),
            _ => None,
        })
    }

    /// The last `n` events in execution order, without flattening the whole
    /// chain.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(n.min(self.len()));
        self.rfind_map(|ev| {
            if out.len() == n {
                return Some(());
            }
            out.push(ev.clone());
            None
        });
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_flatten() {
        let mut t = Trace::new();
        t.push(TraceEvent::Exec { pc: 1 });
        t.push(TraceEvent::Exec { pc: 2 });
        assert_eq!(t.pcs(), vec![1, 2]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fork_shares_history_but_not_future() {
        let mut a = Trace::new();
        a.push(TraceEvent::Exec { pc: 1 });
        let mut b = a.fork();
        a.push(TraceEvent::Exec { pc: 2 });
        b.push(TraceEvent::Exec { pc: 3 });
        assert_eq!(a.pcs(), vec![1, 2]);
        assert_eq!(b.pcs(), vec![1, 3]);
    }

    #[test]
    fn repeated_forks_preserve_order() {
        let mut t = Trace::new();
        for pc in 0..5 {
            t.push(TraceEvent::Exec { pc });
            let _child = t.fork();
        }
        t.push(TraceEvent::Exec { pc: 99 });
        assert_eq!(t.pcs(), vec![0, 1, 2, 3, 4, 99]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn tail_and_last_exec_cross_fork_boundaries() {
        let mut t = Trace::new();
        t.push(TraceEvent::Exec { pc: 1 });
        t.push(TraceEvent::Exec { pc: 2 });
        let _child = t.fork(); // freezes [1, 2]
        t.push(TraceEvent::KernelCall { export_id: 3, name: "x".into() });
        assert_eq!(t.last_exec_pc(), Some(2));
        assert_eq!(t.tail(2).len(), 2);
        assert_eq!(t.tail(10).len(), 3);
        let mut seen = Vec::new();
        t.for_each(|ev| {
            if let TraceEvent::Exec { pc } = ev {
                seen.push(*pc);
            }
        });
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn events_roundtrip_serde() {
        let mut t = Trace::new();
        t.push(TraceEvent::Branch {
            pc: 0x400000,
            taken: true,
            forked: true,
            constraint: ddt_expr::Expr::true_(),
        });
        let json = serde_json::to_string(&t.events()).unwrap();
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t.events());
    }
}
