//! Regenerates **Table 1**: characteristics of the drivers used to evaluate
//! DDT — binary file size, code segment size, number of functions, number
//! of called kernel functions (plus basic blocks, the Figures 2/3
//! denominator).

use ddt_isa::analysis::census;

fn main() {
    println!("Table 1: Characteristics of drivers used to evaluate DDT");
    println!("(synthetic analogs; the paper's drivers are proprietary Windows binaries)");
    println!();
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>14} {:>8}",
        "Driver", "Binary File", "Code Seg.", "Functions", "Kernel Funcs", "Blocks"
    );
    ddt_bench::rule(74);
    for spec in ddt_drivers::drivers() {
        let image = spec.build().image;
        let c = census(&image);
        println!(
            "{:<12} {:>12} {:>12} {:>10} {:>14} {:>8}",
            c.name,
            ddt_bench::human_kb(c.file_size),
            ddt_bench::human_kb(c.code_size),
            c.functions,
            c.kernel_functions,
            c.basic_blocks
        );
    }
    println!();
    println!("Source code available: No (all drivers ship as DXE binaries only)");
}
