//! Concrete-executor benchmark: what does the superblock executor buy?
//!
//! For each bundled NIC driver, runs the pure symbolic engine and the pure
//! fuzzing phase of the hybrid pipeline (escalation and symbolic quanta
//! off), and compares instruction throughput: symbolic instructions per
//! second of the full engine vs concrete instructions per second of the
//! fuzz loop (scheduling, mutation, snapshot-reset, and kernel dispatch
//! included — this is the *usable* executor rate, not a dispatch
//! microbenchmark).
//!
//! Acceptance gates:
//! 1. The concrete executor sustains at least 50x the symbolic
//!    instruction rate on every bundled NIC driver.
//! 2. Hybrid reaches its first bug no later (in scheduling quanta) than
//!    the symbolic-only run: the canned corpus finds a concrete bug
//!    during the first fuzz batch, before the first symbolic quantum.
//!
//! `--smoke` runs the pcnet subset for CI and still writes the JSON.

use ddt_core::{Ddt, DdtConfig, DriverUnderTest, FuzzConfig};
use serde::Deserialize;

// Mirror of the emitted JSON, deserialized back as the well-formedness
// check (the vendored serde has no free-form `Value` parser).
#[derive(Deserialize)]
#[allow(dead_code)]
struct BenchFile {
    bench: String,
    smoke: bool,
    min_speedup_gate: u64,
    drivers: Vec<BenchDriver>,
}

#[derive(Deserialize)]
#[allow(dead_code)]
struct BenchDriver {
    driver: String,
    symbolic_insns: u64,
    symbolic_wall_ms: u64,
    symbolic_insns_per_sec: u64,
    symbolic_bugs: u64,
    symbolic_first_bug_quanta: u64,
    concrete_execs: u64,
    concrete_insns: u64,
    concrete_wall_ms: u64,
    concrete_insns_per_sec: u64,
    concrete_blocks: u64,
    concrete_bugs: u64,
    speedup: u64,
    hybrid_first_bug_quanta: u64,
}

struct Row {
    driver: &'static str,
    sym_insns: u64,
    sym_wall_ms: u64,
    sym_rate: u64,
    sym_bugs: u64,
    sym_first_bug: u64,
    conc_execs: u64,
    conc_insns: u64,
    conc_wall_ms: u64,
    conc_rate: u64,
    conc_blocks: u64,
    conc_bugs: u64,
    speedup: u64,
    hybrid_first_bug: u64,
}

/// Instructions per second with millisecond walls clamped to 1 (the fuzz
/// phase of a small driver finishes in single-digit milliseconds).
fn rate(insns: u64, wall_ms: u64) -> u64 {
    insns * 1000 / wall_ms.max(1)
}

fn bench_driver(name: &'static str) -> Row {
    let spec = ddt_drivers::driver_by_name(name).expect("bundled driver");
    let dut = DriverUnderTest::from_spec(&spec);
    let tool = Ddt::new(DdtConfig::default());

    let sym = tool.test(&dut);

    // Pure fuzzing: no escalation, no symbolic quanta, no drain. Enough
    // volume that the per-run wall is tens of milliseconds.
    let fuzz_only = FuzzConfig {
        batches: 10,
        batch_size: 100,
        escalate: false,
        quanta_per_batch: 0,
        drain_frontier: false,
        ..FuzzConfig::default()
    };
    let conc = ddt_core::run_hybrid(&tool, &dut, &fuzz_only);

    // The full pipeline, for time-to-first-bug: the canned seeds find a
    // concrete bug before the first symbolic quantum runs.
    let hybrid = ddt_core::run_hybrid(&tool, &dut, &FuzzConfig::default());

    let sym_rate = rate(sym.stats.insns, sym.stats.wall_ms);
    let conc_rate = rate(conc.stats.fuzz_insns, conc.stats.fuzz_wall_ms);
    Row {
        driver: name,
        sym_insns: sym.stats.insns,
        sym_wall_ms: sym.stats.wall_ms,
        sym_rate,
        sym_bugs: sym.bugs.len() as u64,
        sym_first_bug: sym.stats.quanta_to_first_bug,
        conc_execs: conc.stats.fuzz_execs,
        conc_insns: conc.stats.fuzz_insns,
        conc_wall_ms: conc.stats.fuzz_wall_ms,
        conc_rate,
        conc_blocks: conc.stats.concrete_blocks,
        conc_bugs: conc.stats.concrete_bugs,
        speedup: conc_rate / sym_rate.max(1),
        hybrid_first_bug: hybrid.stats.quanta_to_first_bug,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    const GATE: u64 = 50;
    let drivers: &[&'static str] =
        if smoke { &["pcnet"] } else { &["pro1000", "pcnet", "rtl8029"] };

    println!("Concrete executor vs symbolic engine (bundled NIC drivers)");
    println!();
    println!(
        "  {:<10} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9} {:>8}",
        "Driver", "Sym insn/s", "Conc insn/s", "Speedup", "Conc execs", "Conc blocks", "1st(sym)", "1st(hyb)"
    );
    let mut rows = Vec::new();
    for &name in drivers {
        let r = bench_driver(name);
        println!(
            "  {:<10} {:>12} {:>12} {:>8}x {:>12} {:>12} {:>9} {:>8}",
            r.driver,
            r.sym_rate,
            r.conc_rate,
            r.speedup,
            r.conc_execs,
            r.conc_blocks,
            r.sym_first_bug,
            r.hybrid_first_bug
        );
        rows.push(r);
    }
    println!();

    for r in &rows {
        assert!(
            r.speedup >= GATE,
            "{}: concrete executor only {}x the symbolic rate (gate {}x): \
             {} insns/{} ms vs {} insns/{} ms",
            r.driver,
            r.speedup,
            GATE,
            r.conc_insns,
            r.conc_wall_ms,
            r.sym_insns,
            r.sym_wall_ms
        );
        assert!(r.conc_blocks > 0, "{}: fuzzing covered no blocks", r.driver);
        // Every bundled NIC driver has Table 2 bugs, and the canned corpus
        // reaches at least one of them concretely — so the hybrid pipeline
        // reports first blood no later than the symbolic engine.
        assert!(r.sym_bugs > 0 && r.conc_bugs > 0, "{}: no bugs found", r.driver);
        assert!(
            r.hybrid_first_bug <= r.sym_first_bug,
            "{}: hybrid first bug at quantum {} vs symbolic {}",
            r.driver,
            r.hybrid_first_bug,
            r.sym_first_bug
        );
    }
    println!("  gate: all drivers >= {GATE}x and hybrid first-bug <= symbolic first-bug");
    println!();

    let driver_blobs: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"driver\": \"{}\",\n",
                    "      \"symbolic_insns\": {},\n",
                    "      \"symbolic_wall_ms\": {},\n",
                    "      \"symbolic_insns_per_sec\": {},\n",
                    "      \"symbolic_bugs\": {},\n",
                    "      \"symbolic_first_bug_quanta\": {},\n",
                    "      \"concrete_execs\": {},\n",
                    "      \"concrete_insns\": {},\n",
                    "      \"concrete_wall_ms\": {},\n",
                    "      \"concrete_insns_per_sec\": {},\n",
                    "      \"concrete_blocks\": {},\n",
                    "      \"concrete_bugs\": {},\n",
                    "      \"speedup\": {},\n",
                    "      \"hybrid_first_bug_quanta\": {}\n",
                    "    }}"
                ),
                r.driver,
                r.sym_insns,
                r.sym_wall_ms,
                r.sym_rate,
                r.sym_bugs,
                r.sym_first_bug,
                r.conc_execs,
                r.conc_insns,
                r.conc_wall_ms,
                r.conc_rate,
                r.conc_blocks,
                r.conc_bugs,
                r.speedup,
                r.hybrid_first_bug
            )
        })
        .collect();

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"concrete\",\n  \"smoke\": {},\n",
            "  \"min_speedup_gate\": {},\n  \"drivers\": [\n{}\n  ]\n}}\n"
        ),
        smoke,
        GATE,
        driver_blobs.join(",\n")
    );
    // Well-formedness check before writing: the CI job parses this file.
    let parsed: BenchFile = serde_json::from_str(&json).expect("bench JSON is well-formed");
    assert_eq!(parsed.bench, "concrete");
    assert_eq!(parsed.drivers.len(), drivers.len());
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_concrete.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
