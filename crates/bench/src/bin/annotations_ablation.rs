//! Regenerates the **§5.1 annotations ablation**: "we re-tested these
//! drivers with all annotations turned off. We managed to reproduce all the
//! race condition bugs ... We also found the hardware-related bugs ...
//! However, removing the annotations resulted in decreased code coverage,
//! so we did not find the memory leaks and the segmentation faults."

use ddt_core::{Annotations, BugClass, DdtConfig};

fn main() {
    println!("Annotations ablation (paper §5.1)");
    println!();
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>14}",
        "Driver", "Bugs(on)", "Cov(on)", "Bugs(off)", "Cov(off)", "Races kept?"
    );
    ddt_bench::rule(76);
    let mut on_total = 0;
    let mut off_total = 0;
    let mut races_on = 0;
    let mut races_off = 0;
    for spec in ddt_drivers::drivers() {
        let with = ddt_bench::run_ddt(&spec);
        let cfg = DdtConfig { annotations: Annotations::disabled(), ..Default::default() };
        let without = ddt_bench::run_ddt_with(&spec, cfg);
        let races_w = with.bugs_of(BugClass::RaceCondition).len()
            + with.bugs_of(BugClass::KernelCrash).len();
        let races_wo = without.bugs_of(BugClass::RaceCondition).len()
            + without.bugs_of(BugClass::KernelCrash).len();
        println!(
            "{:<10} {:>10} {:>11.0}% {:>10} {:>11.0}% {:>14}",
            spec.name,
            with.bugs.len(),
            100.0 * with.relative_coverage(),
            without.bugs.len(),
            100.0 * without.relative_coverage(),
            if races_wo >= races_w.min(1) { "yes" } else { "LOST" },
        );
        on_total += with.bugs.len();
        off_total += without.bugs.len();
        races_on += races_w;
        races_off += races_wo;
    }
    ddt_bench::rule(76);
    println!("Total: {on_total} bugs with annotations, {off_total} without.");
    println!("Race/hardware-timing bugs: {races_on} with annotations, {races_off} without.");
    println!();
    println!(
        "Expected shape: all race-condition and hardware-timing bugs survive the \
         ablation (symbolic hardware and symbolic interrupts are not annotations); \
         the leak, memory-corruption, and segmentation-fault bugs are lost along \
         with coverage."
    );
}
