//! Regenerates **Table 2**: summary of previously unknown bugs discovered
//! by DDT — every bug warning issued, not a subset, with zero false
//! positives (§5.1). Optionally replays each bug concretely (§3.5)
//! with `--replay`.

use ddt_core::{replay_bug, DriverUnderTest, ReplayOutcome};

fn main() {
    let replay = std::env::args().any(|a| a == "--replay");
    println!("Table 2: Previously unknown bugs discovered by DDT");
    println!();
    println!("{:<10} {:<18} Description", "Driver", "Bug Type");
    ddt_bench::rule(100);
    let mut total = 0usize;
    let mut per_driver = Vec::new();
    let t0 = std::time::Instant::now();
    for spec in ddt_drivers::drivers() {
        let dut = DriverUnderTest::from_spec(&spec);
        let report = ddt_bench::run_ddt(&spec);
        for bug in &report.bugs {
            println!("{}", bug.table_row());
            if replay {
                match replay_bug(&dut, bug) {
                    ReplayOutcome::Reproduced { observed } => {
                        println!("{:<10} {:<18}   replayed: {observed}", "", "");
                    }
                    ReplayOutcome::NotReproduced { observed } => {
                        println!("{:<10} {:<18}   REPLAY FAILED: {observed}", "", "");
                    }
                }
            }
        }
        total += report.bugs.len();
        per_driver.push((spec.name, report.bugs.len(), spec.expected_bugs));
    }
    ddt_bench::rule(100);
    println!("Total bugs: {total} in {:.1?} (paper: 14)", t0.elapsed());
    println!();
    println!("{:<10} {:>6} {:>10}", "Driver", "Found", "Expected");
    for (name, found, expected) in &per_driver {
        let mark = if found == expected { "ok" } else { "MISMATCH" };
        println!("{name:<10} {found:>6} {expected:>10}   {mark}");
    }
    // The clean reference driver validates the zero-false-positive claim.
    let clean = ddt_bench::run_ddt(&ddt_drivers::clean_driver());
    println!();
    println!(
        "clean_nic reference driver: {} bug(s) — {}",
        clean.bugs.len(),
        if clean.bugs.is_empty() { "no false positives" } else { "FALSE POSITIVES" }
    );
}
