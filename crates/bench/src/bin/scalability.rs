//! Regenerates the **§5.2 efficiency and scalability** measurements:
//! exploration statistics per driver (paths, states, instructions, solver
//! queries, copy-on-write depth) and the bounded-memory behavior that
//! stands in for the paper's 4 GB limit (our bound is the state cap).

fn main() {
    println!("Efficiency and scalability (paper §5.2)");
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "Driver", "Paths", "Peak st", "Insns", "Queries", "FullSAT", "Symbols", "COW max",
        "Wall ms", "Bugs"
    );
    ddt_bench::rule(98);
    for spec in ddt_drivers::drivers() {
        let r = ddt_bench::run_ddt(&spec);
        let s = &r.stats;
        println!(
            "{:<10} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
            spec.name,
            s.paths_started,
            s.peak_states,
            s.insns,
            s.solver_queries,
            s.solver_full,
            s.symbols,
            s.max_cow_depth,
            s.wall_ms,
            r.bugs.len()
        );
    }
    ddt_bench::rule(98);
    println!();
    println!("Path disposition for the largest driver (pro1000):");
    let r = ddt_bench::run_ddt(&ddt_drivers::driver_by_name("pro1000").expect("bundled"));
    let s = &r.stats;
    println!(
        "  started {} | completed {} | faulted {} | infeasible {} | budget-killed {}",
        s.paths_started, s.paths_completed, s.paths_faulted, s.paths_infeasible,
        s.paths_budget_killed
    );
    println!();
    println!(
        "All runs fit the state cap (the 4 GB analog); the chained copy-on-write \
         keeps per-fork cost flat — max chain depth {} across pro1000's {} paths.",
        s.max_cow_depth, s.paths_started
    );
}
