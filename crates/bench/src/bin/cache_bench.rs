//! Warm-vs-cold query-cache exploration benchmark.
//!
//! Runs each bundled driver three ways — uncached, cold cache (fresh per
//! run), and warm cache (a second run over the first run's populated cache)
//! — and reports wall time, full-solve counts, and the cache hit breakdown.
//! This quantifies what the shared counterexample cache buys: sibling paths
//! (and re-runs) share long constraint prefixes, so warm explorations
//! resolve most queries without bit-blasting.
//!
//! `--smoke` runs a two-driver subset for CI.

use std::sync::Arc;

use ddt_core::{Ddt, DdtConfig, DriverUnderTest, Report};
use ddt_solver::QueryCache;

fn run(dut: &DriverUnderTest, use_cache: bool, shared: Option<Arc<QueryCache>>) -> Report {
    let config =
        DdtConfig { use_query_cache: use_cache, shared_cache: shared, ..DdtConfig::default() };
    Ddt::new(config).test(dut)
}

fn cache_hits(r: &Report) -> u64 {
    r.stats.solver_cache_hits + r.stats.solver_model_reuse + r.stats.solver_unsat_subset
}

fn hit_rate(r: &Report) -> f64 {
    let cached = cache_hits(r);
    let decided = cached + r.stats.solver_full;
    if decided == 0 {
        0.0
    } else {
        100.0 * cached as f64 / decided as f64
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let names: Vec<&str> = if smoke {
        vec!["rtl8029", "ensoniq"]
    } else {
        ddt_drivers::drivers().iter().map(|d| d.name).collect()
    };
    println!("Warm-vs-cold query cache (counterexample caching across workers/runs)");
    println!();
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>8}",
        "Driver", "NoCache", "Cold ms", "Warm ms", "ColdSAT", "WarmSAT", "Exact", "Model", "Hit %"
    );
    ddt_bench::rule(92);
    let mut warm_model_reuse_total = 0u64;
    for name in &names {
        let spec = ddt_drivers::driver_by_name(name).expect("bundled driver");
        let dut = DriverUnderTest::from_spec(&spec);
        let uncached = run(&dut, false, None);
        let shared = Arc::new(QueryCache::new());
        let cold = run(&dut, true, Some(shared.clone()));
        let warm = run(&dut, true, Some(shared));
        assert_eq!(
            uncached.bugs.len(),
            warm.bugs.len(),
            "{name}: the cache must not change the bug count"
        );
        warm_model_reuse_total += warm.stats.solver_model_reuse;
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7.1}%",
            name,
            uncached.stats.wall_ms,
            cold.stats.wall_ms,
            warm.stats.wall_ms,
            cold.stats.solver_full,
            warm.stats.solver_full,
            warm.stats.solver_cache_hits,
            warm.stats.solver_model_reuse,
            hit_rate(&warm)
        );
    }
    ddt_bench::rule(92);
    // Acceptance check: counterexample reuse must actually fire on the
    // multi-path drivers, not just exact memoization.
    assert!(
        warm_model_reuse_total > 0,
        "warm runs produced no model-reuse hits — counterexample caching is dead code"
    );
    println!();
    println!(
        "Cold runs already hit within one exploration (sibling paths share \
         constraint prefixes); warm runs additionally answer from the previous \
         run's counterexamples ({warm_model_reuse_total} model-reuse hits across drivers)."
    );
}
