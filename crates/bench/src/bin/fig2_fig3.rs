//! Regenerates **Figure 2** (relative basic-block coverage over time) and
//! **Figure 3** (absolute covered basic blocks over time) for the same
//! representative driver subset the paper plots: RTL8029, Intel Pro/100,
//! and Intel 82801AA AC97.
//!
//! Emits both an ASCII rendering and a CSV series (`--csv` for CSV only).

use ddt_core::Report;

const SUBSET: [&str; 3] = ["rtl8029", "pro100", "ac97"];

fn sample_at(report: &Report, t_ms: u64) -> usize {
    report
        .coverage_timeline
        .iter()
        .take_while(|(ms, _)| *ms <= t_ms)
        .last()
        .map(|&(_, n)| n)
        .unwrap_or(0)
}

fn main() {
    let csv_only = std::env::args().any(|a| a == "--csv");
    let mut reports = Vec::new();
    for name in SUBSET {
        let spec = ddt_drivers::driver_by_name(name).expect("bundled driver");
        let report = ddt_bench::run_ddt(&spec);
        reports.push(report);
    }
    let end_ms = reports
        .iter()
        .filter_map(|r| r.coverage_timeline.last().map(|&(ms, _)| ms))
        .max()
        .unwrap_or(0)
        .max(1000);

    // CSV: time series usable for external plotting.
    println!("# Figures 2 and 3: coverage over time");
    println!("time_ms,driver,covered_blocks,total_blocks,relative");
    let steps = 24;
    for r in &reports {
        for i in 0..=steps {
            let t = end_ms * i / steps;
            let n = sample_at(r, t);
            println!(
                "{t},{},{n},{},{:.4}",
                r.driver,
                r.total_blocks,
                n as f64 / r.total_blocks as f64
            );
        }
    }
    if csv_only {
        return;
    }

    // ASCII rendering of both figures.
    for (title, relative) in [
        ("Figure 2: Relative coverage with time", true),
        ("Figure 3: Absolute coverage with time", false),
    ] {
        println!();
        println!("{title}");
        for r in &reports {
            let finals = sample_at(r, end_ms);
            println!(
                "  {} (total {} blocks, final {} = {:.0}%)",
                r.driver,
                r.total_blocks,
                finals,
                100.0 * finals as f64 / r.total_blocks as f64
            );
            let width = 60usize;
            let mut line = String::from("  |");
            for i in 0..width {
                let t = end_ms * i as u64 / width as u64;
                let n = sample_at(r, t);
                let frac = if relative {
                    n as f64 / r.total_blocks as f64
                } else {
                    let maxn = reports.iter().map(|x| x.covered_blocks).max().unwrap_or(1);
                    n as f64 / maxn as f64
                };
                line.push(match (frac * 4.0) as u32 {
                    0 => ' ',
                    1 => '.',
                    2 => ':',
                    3 => '|',
                    _ => '#',
                });
            }
            line.push('|');
            println!("{line}");
        }
        println!("   0 ms {:>55} ms", end_ms);
    }
    println!();
    println!(
        "The flat plateaus between rises correspond to exploration within one \
         entry point; each new entry-point invocation triggers a coverage step \
         (§5.2)."
    );
}
