//! Search-strategy benchmark: what does coverage guidance buy?
//!
//! Runs the pro1000 and pcnet drivers under every [`Strategy`] (serial,
//! pruning off so the comparison is pure ordering) and reports states
//! expanded to the first bug and to the last new covered block — the two
//! quantities a guided search is supposed to shrink. FIFO is the
//! report-identity baseline: same bugs, same coverage, only the order (and
//! therefore the quanta-to-X counters) may differ.
//!
//! Acceptance gate: on each driver, at least one guided strategy must
//! strictly beat FIFO on states-expanded-to-first-bug or on
//! states-expanded-to-full-coverage, and FIFO itself must land the Table 2
//! bug count. A separate pruning column shows how many duplicate states
//! `--prune` drops without changing the bug set.
//!
//! `--smoke` runs the pcnet subset for CI and still writes the JSON.

use ddt_core::{Ddt, DdtConfig, DriverUnderTest, Report, Strategy};
use serde::Deserialize;

// Mirror of the emitted JSON, deserialized back as the well-formedness
// check (the vendored serde has no free-form `Value` parser).
#[derive(Deserialize)]
#[allow(dead_code)]
struct BenchFile {
    bench: String,
    smoke: bool,
    drivers: Vec<BenchDriver>,
}

#[derive(Deserialize)]
#[allow(dead_code)]
struct BenchDriver {
    driver: String,
    table2_bugs: u64,
    guided_winner: String,
    strategies: Vec<BenchRow>,
}

#[derive(Deserialize)]
#[allow(dead_code)]
struct BenchRow {
    strategy: String,
    wall_ms: u64,
    quanta: u64,
    quanta_to_first_bug: u64,
    quanta_to_last_cover: u64,
    bugs: u64,
    covered_blocks: u64,
    states_pruned_with_prune: u64,
}

struct Row {
    strategy: &'static str,
    wall_ms: u64,
    quanta: u64,
    first_bug: u64,
    last_cover: u64,
    bugs: usize,
    covered: u64,
    pruned_with_prune: u64,
}

fn run(dut: &DriverUnderTest, strategy: Strategy, prune: bool) -> Report {
    let config = DdtConfig { strategy, prune, ..DdtConfig::default() };
    Ddt::new(config).test(dut)
}

fn bench_driver(name: &str, table2_bugs: usize) -> Vec<Row> {
    let spec = ddt_drivers::driver_by_name(name).expect("bundled driver");
    let dut = DriverUnderTest::from_spec(&spec);
    let mut rows = Vec::new();
    for &strategy in Strategy::ALL.iter() {
        let report = run(&dut, strategy, false);
        let pruned = run(&dut, strategy, true);
        assert_eq!(
            report.bugs.len(),
            table2_bugs,
            "{name}/{}: strategy changed the Table 2 bug count",
            strategy.name()
        );
        assert_eq!(
            pruned.bugs.len(),
            table2_bugs,
            "{name}/{}: pruning changed the Table 2 bug count",
            strategy.name()
        );
        rows.push(Row {
            strategy: strategy.name(),
            wall_ms: report.stats.wall_ms,
            quanta: report.stats.quanta_executed,
            first_bug: report.stats.quanta_to_first_bug,
            last_cover: report.stats.quanta_to_last_cover,
            bugs: report.bugs.len(),
            covered: report.covered_blocks as u64,
            pruned_with_prune: pruned.stats.states_pruned,
        });
    }
    rows
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let drivers: &[(&str, usize)] =
        if smoke { &[("pcnet", 2)] } else { &[("pro1000", 1), ("pcnet", 2)] };

    println!("Search strategies vs FIFO (serial, prune off; pruned column from a --prune run)");
    println!();
    let mut driver_blobs = Vec::new();
    for &(name, table2_bugs) in drivers {
        let rows = bench_driver(name, table2_bugs);
        println!("{name} (Table 2: {table2_bugs} bugs)");
        println!(
            "  {:<18} {:>8} {:>8} {:>10} {:>11} {:>8} {:>8}",
            "Strategy", "Wall ms", "Quanta", "->1st bug", "->last cov", "Covered", "Pruned"
        );
        for r in &rows {
            println!(
                "  {:<18} {:>8} {:>8} {:>10} {:>11} {:>8} {:>8}",
                r.strategy, r.wall_ms, r.quanta, r.first_bug, r.last_cover, r.covered, r.pruned_with_prune
            );
        }
        println!();

        let fifo = &rows[0];
        assert_eq!(fifo.strategy, "fifo", "FIFO must be the baseline row");
        // Every strategy reaches the same coverage and bug set; guidance
        // only changes *when*. That is what the gate below measures.
        for r in &rows[1..] {
            assert_eq!(r.covered, fifo.covered, "{name}/{}: coverage diverged", r.strategy);
            assert_eq!(r.bugs, fifo.bugs, "{name}/{}: bug count diverged", r.strategy);
        }
        let beats = |r: &Row| {
            (r.first_bug != 0 && fifo.first_bug != 0 && r.first_bug < fifo.first_bug)
                || r.last_cover < fifo.last_cover
        };
        let winner = rows[1..].iter().find(|r| beats(r));
        assert!(
            winner.is_some(),
            "{name}: no guided strategy beat FIFO on states-to-first-bug \
             ({}) or states-to-full-coverage ({})",
            fifo.first_bug,
            fifo.last_cover
        );
        println!(
            "  gate: {} beats fifo (first bug {} vs {}, last cover {} vs {})",
            winner.unwrap().strategy,
            winner.unwrap().first_bug,
            fifo.first_bug,
            winner.unwrap().last_cover,
            fifo.last_cover
        );
        println!();

        let strategy_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "      {{\"strategy\": \"{}\", \"wall_ms\": {}, \"quanta\": {}, ",
                        "\"quanta_to_first_bug\": {}, \"quanta_to_last_cover\": {}, ",
                        "\"bugs\": {}, \"covered_blocks\": {}, \"states_pruned_with_prune\": {}}}"
                    ),
                    r.strategy,
                    r.wall_ms,
                    r.quanta,
                    r.first_bug,
                    r.last_cover,
                    r.bugs,
                    r.covered,
                    r.pruned_with_prune
                )
            })
            .collect();
        driver_blobs.push(format!(
            concat!(
                "    {{\n",
                "      \"driver\": \"{}\",\n",
                "      \"table2_bugs\": {},\n",
                "      \"guided_winner\": \"{}\",\n",
                "      \"strategies\": [\n{}\n      ]\n",
                "    }}"
            ),
            name,
            table2_bugs,
            winner.unwrap().strategy,
            strategy_json.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"search\",\n  \"smoke\": {},\n  \"drivers\": [\n{}\n  ]\n}}\n",
        smoke,
        driver_blobs.join(",\n")
    );
    // Well-formedness check before writing: the CI job parses this file.
    let parsed: BenchFile = serde_json::from_str(&json).expect("bench JSON is well-formed");
    assert_eq!(parsed.bench, "search");
    assert_eq!(parsed.drivers.len(), drivers.len());
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
