//! Regenerates the **§5.1 SDV comparison**:
//!
//! - the 8 sample bugs: both tools find all of them; the paper reports
//!   SDV needing 12 minutes vs DDT's 4 (a 3x ratio),
//! - the 5 injected synthetic bugs: SDV finds the last 2 with 1 false
//!   positive; DDT finds all 5 with none.

use std::time::Instant;

use ddt_core::{Ddt, DriverUnderTest};
use ddt_drivers::samples::{sdv_sample_set, synthetic_set, SampleDriver};
use ddt_drivers::DriverClass;
use ddt_sdv::sdv_lite::{analyze_driver, SdvConfig};

fn dut_for(s: &SampleDriver) -> DriverUnderTest {
    let built = s.build();
    DriverUnderTest {
        image: built.image,
        class: DriverClass::Net,
        registry: vec![],
        descriptor: Default::default(),
        workload: ddt_drivers::workload::workload_for(DriverClass::Net),
    }
}

/// Crude attribution: does a DDT bug report describe the seeded defect?
fn ddt_found(s: &SampleDriver, report: &ddt_core::Report) -> bool {
    use ddt_drivers::samples::BugKind::*;
    let text: String = report
        .bugs
        .iter()
        .map(|b| format!("{} {} ", b.class, b.description))
        .collect::<String>()
        .to_lowercase();
    match s.bug_kind.expect("seeded") {
        Deadlock => text.contains("deadlock"),
        OutOfOrderRelease => text.contains("lifo"),
        ExtraRelease => text.contains("released but not held"),
        ForgottenRelease => text.contains("still held") || text.contains("held lock"),
        WrongIrqlCall => text.contains("dispatch_level"),
        DoubleFree => text.contains("freeing invalid pool"),
        UseAfterFree => text.contains("invalid address"),
        ConfigLeak => text.contains("ndiscloseconfiguration"),
        UninitTimer => text.contains("uninitialized timer"),
        NullDeref => text.contains("null pointer"),
    }
}

fn run_set(label: &str, set: &[SampleDriver]) {
    println!("== {label} ==");
    println!(
        "{:<22} {:<18} {:>10} {:>10} {:>8} {:>8}",
        "Driver", "Seeded bug", "SDV finds", "DDT finds", "SDV FPs", "DDT FPs"
    );
    ddt_bench::rule(84);
    let ddt = Ddt::default();
    let (mut sdv_found, mut ddt_found_n, mut sdv_fp, mut ddt_fp) = (0, 0, 0, 0);
    let (mut sdv_time, mut ddt_time) = (std::time::Duration::ZERO, std::time::Duration::ZERO);
    for s in set {
        let want = s.bug_kind.expect("seeded");
        let image = s.build().image;
        let t = Instant::now();
        let findings = analyze_driver(&image, SdvConfig::default());
        sdv_time += t.elapsed();
        let sdv_hit = findings.iter().any(|f| f.kind == want);
        let sdv_extra = findings.iter().filter(|f| f.kind != want).count();
        let t = Instant::now();
        let report = ddt.test(&dut_for(s));
        ddt_time += t.elapsed();
        let ddt_hit = ddt_found(s, &report);
        // DDT false positives: reports NOT attributable to the seeded bug.
        // All reports in these single-bug drivers mention the same defect
        // (checked by attribution); anything left over is spurious.
        let ddt_extra = if ddt_hit { 0 } else { report.bugs.len() };
        println!(
            "{:<22} {:<18} {:>10} {:>10} {:>8} {:>8}",
            s.name,
            format!("{want:?}"),
            if sdv_hit { "yes" } else { "NO" },
            if ddt_hit { "yes" } else { "NO" },
            sdv_extra,
            ddt_extra
        );
        sdv_found += sdv_hit as u32;
        ddt_found_n += ddt_hit as u32;
        sdv_fp += sdv_extra;
        ddt_fp += ddt_extra;
    }
    ddt_bench::rule(84);
    println!(
        "{:<22} {:<18} {:>10} {:>10} {:>8} {:>8}",
        "TOTAL",
        "",
        format!("{sdv_found}/{}", set.len()),
        format!("{ddt_found_n}/{}", set.len()),
        sdv_fp,
        ddt_fp
    );
    println!("SDV-lite time: {sdv_time:.1?}   DDT time: {ddt_time:.1?}");
    println!();
}

fn main() {
    println!("SDV comparison (paper §5.1)");
    println!();
    run_set("Sample driver set (8 seeded bugs)", &sdv_sample_set());
    run_set("Synthetic bug set (5 injected bugs)", &synthetic_set());
    println!("Paper: SDV found 8/8 samples in 12 min (DDT: 4 min); on the synthetic");
    println!("bugs SDV missed the first 3, found the last 2, and produced 1 false");
    println!("positive, while DDT found all 5 with none. See EXPERIMENTS.md for the");
    println!("timing-model caveat (SDV-lite is far lighter than SLAM).");
}
