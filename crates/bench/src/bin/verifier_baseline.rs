//! Regenerates the **§5.1 Driver Verifier baseline**: "We tried to find
//! these bugs with the Microsoft Driver Verifier running the driver
//! concretely, but did not find any of them."

use ddt_core::DriverUnderTest;
use ddt_sdv::run_verifier;

fn main() {
    println!("Driver Verifier concrete baseline (paper §5.1)");
    println!();
    println!(
        "{:<10} {:>16} {:>10} {:>12}   (DDT finds)",
        "Driver", "Outcome", "Insns", "Bugs found"
    );
    ddt_bench::rule(70);
    let mut verifier_total = 0usize;
    for spec in ddt_drivers::drivers() {
        let dut = DriverUnderTest::from_spec(&spec);
        let v = run_verifier(&dut);
        let outcome = match &v.outcome {
            ddt_core::replay::ConcreteOutcome::Completed => "completed",
            ddt_core::replay::ConcreteOutcome::Faulted { .. } => "FAULTED",
            ddt_core::replay::ConcreteOutcome::Crashed(_) => "CRASHED",
            ddt_core::replay::ConcreteOutcome::InitFailureLeak { .. } => "LEAKED",
            ddt_core::replay::ConcreteOutcome::Hung => "HUNG",
        };
        println!(
            "{:<10} {:>16} {:>10} {:>12}   {}",
            spec.name,
            outcome,
            v.insns,
            v.bugs_found.len(),
            spec.expected_bugs
        );
        for b in &v.bugs_found {
            println!("    !! {b}");
        }
        verifier_total += v.bugs_found.len();
    }
    ddt_bench::rule(70);
    println!(
        "Concrete verifier found {verifier_total} of the 14 Table 2 bugs (paper: 0). \
         Every seeded bug needs symbolic hardware values, an interrupt at a precise \
         boundary, a forced allocation failure, or a hostile registry value — none \
         of which a concrete run against well-behaved hardware produces."
    );
}
