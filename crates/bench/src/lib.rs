//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§5). One binary per artifact — see DESIGN.md §5 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results.
//!
//! | Artifact | Binary |
//! |---|---|
//! | Table 1 (driver characteristics) | `table1` |
//! | Table 2 (previously unknown bugs) | `table2` |
//! | Figures 2 and 3 (coverage vs. time) | `fig2_fig3` |
//! | §5.1 SDV comparison | `sdv_comparison` |
//! | §5.1 annotations ablation | `annotations_ablation` |
//! | §5.1 Driver Verifier baseline | `verifier_baseline` |
//! | §5.2 resource statistics | `scalability` |

use ddt_core::{Ddt, DdtConfig, DriverUnderTest, Report};
use ddt_drivers::DriverSpec;

/// Runs DDT with the default configuration on a bundled driver.
pub fn run_ddt(spec: &DriverSpec) -> Report {
    run_ddt_with(spec, DdtConfig::default())
}

/// Runs DDT with a custom configuration on a bundled driver.
pub fn run_ddt_with(spec: &DriverSpec, config: DdtConfig) -> Report {
    let dut = DriverUnderTest::from_spec(spec);
    Ddt::new(config).test(&dut)
}

/// Prints a horizontal rule sized for the report tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a byte count like the paper's Table 1 ("168 KB").
pub fn human_kb(bytes: usize) -> String {
    format!("{:.1} KB", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_kb_formats() {
        assert_eq!(human_kb(2048), "2.0 KB");
        assert_eq!(human_kb(1536), "1.5 KB");
    }

    #[test]
    fn run_ddt_smoke() {
        // The clean driver finishes quickly with no bugs: harness sanity.
        let report = run_ddt(&ddt_drivers::clean_driver());
        assert!(report.bugs.is_empty());
        assert!(report.covered_blocks > 0);
    }
}
