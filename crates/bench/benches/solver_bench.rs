//! Benchmarks for the verdict-query optimization layer: hash-consed
//! interning, independence slicing, and incremental solver sessions.
//!
//! The headline measurement is the explorer's hot pattern — a *deep-path
//! query stream*, where each branch decision re-decides a constraint prefix
//! that grew by one conjunct. A plain solver re-blasts the whole prefix per
//! query (quadratic in depth); the optimized solver slices off independent
//! components and answers on a persistent incremental core (linear-ish);
//! the **batched lane** hands the whole stream to
//! [`Solver::solve_obligations`] as one deferred-feasibility flush, where
//! witness subsumption collapses the prefix chains to a handful of real
//! solves. The run asserts the optimized stream is at least 2x and the
//! batched flush at least 5x faster than plain, with identical verdicts in
//! every mode, then appends a history entry (keyed by git revision + date)
//! to the `BENCH_solver.json` trajectory at the repo root, alongside
//! per-stage criterion timings and a bundled-driver end-to-end sample.

use std::hint::black_box;
use std::time::Instant;

use criterion::Criterion;
use ddt_core::{Ddt, DdtConfig, DriverUnderTest};
use ddt_expr::{cache_key, partition_independent, Expr, SymId};
use ddt_solver::Solver;
use serde::Value;

/// Growing constraint prefixes over three symbol families, mimicking a
/// path that alternates branching on unrelated inputs (registry values,
/// device registers, entry arguments). Every prefix is satisfiable by
/// construction — each conjunct equates a blast-heavy term with its value
/// under a fixed per-family witness — but those witnesses are nontrivial,
/// so the solver's cheap candidate models (all-zero, all-ones, ...) never
/// apply and every query pays for real decision work. That is the
/// deep-path cost profile: a fresh solver re-lowers the whole prefix per
/// query (quadratic in depth), the session lowers each conjunct once.
fn deep_path_prefixes(depth: usize) -> Vec<Vec<Expr>> {
    const W: u32 = 16;
    let mut prefix = Vec::new();
    let mut stream = Vec::with_capacity(depth);
    for i in 0..depth as u64 {
        let fam = (i % 3) * 2;
        let x = Expr::sym(SymId(fam as u32), W);
        let y = Expr::sym(SymId(fam as u32 + 1), W);
        // Per-family witness, deliberately outside the fast path's uniform
        // candidate set and distinct across families.
        let witness: ddt_expr::Assignment =
            [(SymId(fam as u32), 11 + fam * 13), (SymId(fam as u32 + 1), 7 + fam * 5)]
                .into_iter()
                .collect();
        let t = x
            .mul(&y.add(&Expr::constant(i * 7 + 1, W)))
            .mul(&x.xor(&Expr::constant(i | 1, W)))
            .add(&y.mul(&x.add(&Expr::constant(i * 3 + 2, W))));
        // Pinning the blast-heavy term to its witness value (instead of
        // pinning x and y directly) keeps real CDCL search in every query:
        // that is the regime where the session wins, by reusing learned
        // clauses and the lowered circuit across the whole stream, while a
        // fresh solver restarts from nothing each time.
        prefix.push(t.eq(&Expr::constant(t.eval(&witness), W)));
        stream.push(prefix.clone());
    }
    stream
}

fn solver_with(slicing: bool, incremental: bool) -> Solver {
    // Uncached on purpose: the point is the cost of *deciding*, not of
    // remembering — the query cache is measured by `cache_bench`.
    let mut s = Solver::uncached();
    s.set_slicing(slicing);
    s.set_incremental(incremental);
    s
}

/// Decides every prefix in the stream, returning the SAT count (all of
/// them, for this workload — the count guards against dead-code folding).
fn run_stream(s: &mut Solver, stream: &[Vec<Expr>]) -> usize {
    stream.iter().filter(|p| s.is_feasible(p)).count()
}

/// Mean milliseconds per run of `f` over `iters` runs.
fn measure_ms(iters: u32, mut f: impl FnMut() -> usize) -> f64 {
    let start = Instant::now();
    let mut acc = 0;
    for _ in 0..iters {
        acc += f();
    }
    black_box(acc);
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn bench_stages(c: &mut Criterion, stream: &[Vec<Expr>]) {
    let deepest = stream.last().expect("non-empty stream");

    // Interner-backed canonicalization: cache_key over a deep prefix is
    // mostly pointer work when every node is hash-consed.
    c.bench_function("interner/cache_key_deep_prefix", |b| {
        b.iter(|| black_box(cache_key(deepest)).len())
    });

    // Union-find partition of the deepest prefix into its three families.
    let key = cache_key(deepest);
    c.bench_function("slicing/partition_independent", |b| {
        b.iter(|| black_box(partition_independent(&key)).len())
    });

    c.bench_function("solver/deep_path_stream_plain", |b| {
        b.iter(|| run_stream(&mut solver_with(false, false), stream))
    });
    c.bench_function("solver/deep_path_stream_optimized", |b| {
        b.iter(|| run_stream(&mut solver_with(true, true), stream))
    });
}

/// One batched deferred-feasibility flush over the whole stream, as
/// `flush_pending` would issue it for a frontier of pending siblings.
/// Returns the SAT count (guards dead-code folding and the correctness
/// gate below).
fn run_batched(s: &mut Solver, stream: &[Vec<Expr>]) -> usize {
    s.solve_obligations(stream).iter().filter(|v| **v).count()
}

fn main() {
    let stream = deep_path_prefixes(40);
    // The batched lane measures a frontier-sized flush: 120 obligation keys
    // (the same three families, 40 prefixes each).
    let batch_stream = deep_path_prefixes(120);

    // Correctness gate before timing anything: all modes agree on every
    // prefix of the workload.
    let plain_sat = run_stream(&mut solver_with(false, false), &stream);
    for (slicing, incremental) in [(true, false), (false, true), (true, true)] {
        let sat = run_stream(&mut solver_with(slicing, incremental), &stream);
        assert_eq!(
            sat, plain_sat,
            "verdicts diverged (slicing={slicing}, incremental={incremental})"
        );
    }
    // The batched flush must reproduce the per-query verdicts positionally.
    let batch_plain: Vec<bool> = {
        let mut s = solver_with(false, false);
        batch_stream.iter().map(|p| s.is_feasible(p)).collect()
    };
    let batch_verdicts = solver_with(false, false).solve_obligations(&batch_stream);
    assert_eq!(batch_verdicts, batch_plain, "batched verdicts diverged from per-query");

    let mut c = Criterion::default().configure_from_args().sample_size(3);
    bench_stages(&mut c, &stream);

    // The headline numbers, measured outside criterion so they can gate and
    // be serialized: plain vs fully optimized over the 40-deep stream, and
    // plain per-query vs one batched flush over the 120-key stream.
    let iters = 3;
    let plain_ms = measure_ms(iters, || run_stream(&mut solver_with(false, false), &stream));
    let opt_ms = measure_ms(iters, || run_stream(&mut solver_with(true, true), &stream));
    let speedup = plain_ms / opt_ms.max(1e-9);
    println!("deep-path stream: plain {plain_ms:.2} ms, optimized {opt_ms:.2} ms ({speedup:.1}x)");
    assert!(
        speedup >= 2.0,
        "optimized deep-path stream must be at least 2x faster \
         (plain {plain_ms:.2} ms vs optimized {opt_ms:.2} ms = {speedup:.2}x)"
    );

    let batch_plain_ms = measure_ms(iters, || {
        let mut s = solver_with(false, false);
        batch_stream.iter().filter(|p| s.is_feasible(p)).count()
    });
    let mut witness_solver = solver_with(false, false);
    let batched_ms = measure_ms(iters, || run_batched(&mut witness_solver, &batch_stream));
    let witness_hits = witness_solver.stats().batch_witness_hits / iters as u64;
    let batched_speedup = batch_plain_ms / batched_ms.max(1e-9);
    println!(
        "deep-path flush ({} keys): plain {batch_plain_ms:.2} ms, \
         batched {batched_ms:.2} ms ({batched_speedup:.1}x, {witness_hits} witness hits/flush)",
        batch_stream.len()
    );
    assert!(
        batched_speedup >= 5.0,
        "a batched obligation flush must be at least 5x faster than per-query \
         (plain {batch_plain_ms:.2} ms vs batched {batched_ms:.2} ms = {batched_speedup:.2}x)"
    );

    // One bundled driver end to end, optimizations on vs off, as the
    // macro-level sample for the trajectory point.
    let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled driver");
    let dut = DriverUnderTest::from_spec(&spec);
    let run_campaign = |slicing: bool, incremental: bool| {
        let config =
            DdtConfig { use_slicing: slicing, use_incremental: incremental, ..DdtConfig::default() };
        Ddt::new(config).test(&dut)
    };
    let campaign_off = run_campaign(false, false);
    let campaign_on = run_campaign(true, true);
    assert_eq!(campaign_on.bugs.len(), campaign_off.bugs.len(), "optimizations changed bugs");
    println!(
        "rtl8029 campaign: baseline {} ms, optimized {} ms \
         ({} session probes, {} sliced queries)",
        campaign_off.stats.wall_ms,
        campaign_on.stats.wall_ms,
        campaign_on.stats.solver_session_probes,
        campaign_on.stats.solver_sliced,
    );

    let (interner_hits, interner_misses) = ddt_expr::intern_stats();
    let str_v = |v: String| Value::Str(v);
    let entry = Value::Map(vec![
        ("rev".into(), str_v(cmd_line("git", &["rev-parse", "--short", "HEAD"]))),
        ("date".into(), str_v(cmd_line("date", &["+%F"]))),
        ("deep_path_depth".into(), Value::U64(stream.len() as u64)),
        ("deep_path_plain_ms".into(), Value::F64(round3(plain_ms))),
        ("deep_path_optimized_ms".into(), Value::F64(round3(opt_ms))),
        ("deep_path_speedup".into(), Value::F64(round2(speedup))),
        ("batch_keys".into(), Value::U64(batch_stream.len() as u64)),
        ("batch_plain_ms".into(), Value::F64(round3(batch_plain_ms))),
        ("batch_flush_ms".into(), Value::F64(round3(batched_ms))),
        ("batch_speedup".into(), Value::F64(round2(batched_speedup))),
        ("batch_witness_hits".into(), Value::U64(witness_hits)),
        ("campaign_driver".into(), str_v("rtl8029".into())),
        ("campaign_baseline_ms".into(), Value::U64(campaign_off.stats.wall_ms)),
        ("campaign_optimized_ms".into(), Value::U64(campaign_on.stats.wall_ms)),
        ("campaign_session_probes".into(), Value::U64(campaign_on.stats.solver_session_probes)),
        ("campaign_sliced_queries".into(), Value::U64(campaign_on.stats.solver_sliced)),
        ("interner_hits".into(), Value::U64(interner_hits)),
        ("interner_misses".into(), Value::U64(interner_misses)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    let json = trajectory_with(std::fs::read_to_string(out).ok().as_deref(), entry);
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}

/// Runs `cmd args...` and returns its first output line (trimmed), or
/// `"unknown"` when unavailable — bench results must not depend on the
/// environment cooperating.
fn cmd_line(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.lines().next().unwrap_or("").trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

fn round2(v: f64) -> f64 {
    (v * 1e2).round() / 1e2
}

/// The workspace's offline `serde` stand-in has no blanket impls for its
/// [`Value`] model; this wrapper moves a raw tree through `from_str` /
/// `to_string_pretty` unchanged.
struct Raw(Value);

impl serde::Deserialize for Raw {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Raw(v.clone()))
    }
}

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Map-field lookup on a raw value tree.
fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Builds the trajectory document: `summary` mirrors the newest entry and
/// `history` accumulates one entry per (rev, date), newest last. A
/// pre-trajectory scalar file (the old single-point format) is migrated as
/// the oldest history entry; re-running on the same rev+date replaces that
/// entry instead of duplicating it.
fn trajectory_with(existing: Option<&str>, entry: Value) -> String {
    let mut history: Vec<Value> = Vec::new();
    if let Some(Raw(prev)) = existing.and_then(|s| serde_json::from_str::<Raw>(s).ok()) {
        match field(&prev, "history").and_then(Value::as_list) {
            Some(entries) => history = entries.to_vec(),
            // Old scalar format: keep the measurement as the first point.
            None => {
                if let Value::Map(mut fields) = prev {
                    fields.retain(|(k, _)| k != "bench");
                    if !fields.iter().any(|(k, _)| k == "rev") {
                        fields.insert(0, ("rev".into(), Value::Str("pre-trajectory".into())));
                    }
                    if !fields.iter().any(|(k, _)| k == "date") {
                        fields.insert(1, ("date".into(), Value::Str("unknown".into())));
                    }
                    history.push(Value::Map(fields));
                }
            }
        }
    }
    history.retain(|e| {
        !(field(e, "rev") == field(&entry, "rev") && field(e, "date") == field(&entry, "date"))
    });
    history.push(entry.clone());
    let doc = Value::Map(vec![
        ("bench".into(), Value::Str("solver".into())),
        ("format".into(), Value::Str("trajectory-v1".into())),
        ("summary".into(), entry),
        ("history".into(), Value::List(history)),
    ]);
    let mut s = serde_json::to_string_pretty(&Raw(doc)).expect("trajectory serializes");
    s.push('\n');
    s
}
