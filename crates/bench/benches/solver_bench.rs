//! Benchmarks for the verdict-query optimization layer: hash-consed
//! interning, independence slicing, and incremental solver sessions.
//!
//! The headline measurement is the explorer's hot pattern — a *deep-path
//! query stream*, where each branch decision re-decides a constraint prefix
//! that grew by one conjunct. A plain solver re-blasts the whole prefix per
//! query (quadratic in depth); the optimized solver slices off independent
//! components and answers on a persistent incremental core (linear-ish).
//! The run asserts the optimized stream is at least 2x faster and that both
//! modes produce identical verdicts, then writes a `BENCH_solver.json`
//! trajectory point at the repo root, alongside per-stage criterion
//! timings and a bundled-driver end-to-end sample.

use std::hint::black_box;
use std::time::Instant;

use criterion::Criterion;
use ddt_core::{Ddt, DdtConfig, DriverUnderTest};
use ddt_expr::{cache_key, partition_independent, Expr, SymId};
use ddt_solver::Solver;

/// Growing constraint prefixes over three symbol families, mimicking a
/// path that alternates branching on unrelated inputs (registry values,
/// device registers, entry arguments). Every prefix is satisfiable by
/// construction — each conjunct equates a blast-heavy term with its value
/// under a fixed per-family witness — but those witnesses are nontrivial,
/// so the solver's cheap candidate models (all-zero, all-ones, ...) never
/// apply and every query pays for real decision work. That is the
/// deep-path cost profile: a fresh solver re-lowers the whole prefix per
/// query (quadratic in depth), the session lowers each conjunct once.
fn deep_path_prefixes(depth: usize) -> Vec<Vec<Expr>> {
    const W: u32 = 16;
    let mut prefix = Vec::new();
    let mut stream = Vec::with_capacity(depth);
    for i in 0..depth as u64 {
        let fam = (i % 3) * 2;
        let x = Expr::sym(SymId(fam as u32), W);
        let y = Expr::sym(SymId(fam as u32 + 1), W);
        // Per-family witness, deliberately outside the fast path's uniform
        // candidate set and distinct across families.
        let witness: ddt_expr::Assignment =
            [(SymId(fam as u32), 11 + fam * 13), (SymId(fam as u32 + 1), 7 + fam * 5)]
                .into_iter()
                .collect();
        let t = x
            .mul(&y.add(&Expr::constant(i * 7 + 1, W)))
            .mul(&x.xor(&Expr::constant(i | 1, W)))
            .add(&y.mul(&x.add(&Expr::constant(i * 3 + 2, W))));
        // Pinning the blast-heavy term to its witness value (instead of
        // pinning x and y directly) keeps real CDCL search in every query:
        // that is the regime where the session wins, by reusing learned
        // clauses and the lowered circuit across the whole stream, while a
        // fresh solver restarts from nothing each time.
        prefix.push(t.eq(&Expr::constant(t.eval(&witness), W)));
        stream.push(prefix.clone());
    }
    stream
}

fn solver_with(slicing: bool, incremental: bool) -> Solver {
    // Uncached on purpose: the point is the cost of *deciding*, not of
    // remembering — the query cache is measured by `cache_bench`.
    let mut s = Solver::uncached();
    s.set_slicing(slicing);
    s.set_incremental(incremental);
    s
}

/// Decides every prefix in the stream, returning the SAT count (all of
/// them, for this workload — the count guards against dead-code folding).
fn run_stream(s: &mut Solver, stream: &[Vec<Expr>]) -> usize {
    stream.iter().filter(|p| s.is_feasible(p)).count()
}

/// Mean milliseconds per run of `f` over `iters` runs.
fn measure_ms(iters: u32, mut f: impl FnMut() -> usize) -> f64 {
    let start = Instant::now();
    let mut acc = 0;
    for _ in 0..iters {
        acc += f();
    }
    black_box(acc);
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn bench_stages(c: &mut Criterion, stream: &[Vec<Expr>]) {
    let deepest = stream.last().expect("non-empty stream");

    // Interner-backed canonicalization: cache_key over a deep prefix is
    // mostly pointer work when every node is hash-consed.
    c.bench_function("interner/cache_key_deep_prefix", |b| {
        b.iter(|| black_box(cache_key(deepest)).len())
    });

    // Union-find partition of the deepest prefix into its three families.
    let key = cache_key(deepest);
    c.bench_function("slicing/partition_independent", |b| {
        b.iter(|| black_box(partition_independent(&key)).len())
    });

    c.bench_function("solver/deep_path_stream_plain", |b| {
        b.iter(|| run_stream(&mut solver_with(false, false), stream))
    });
    c.bench_function("solver/deep_path_stream_optimized", |b| {
        b.iter(|| run_stream(&mut solver_with(true, true), stream))
    });
}

fn main() {
    let stream = deep_path_prefixes(40);

    // Correctness gate before timing anything: all modes agree on every
    // prefix of the workload.
    let plain_sat = run_stream(&mut solver_with(false, false), &stream);
    for (slicing, incremental) in [(true, false), (false, true), (true, true)] {
        let sat = run_stream(&mut solver_with(slicing, incremental), &stream);
        assert_eq!(
            sat, plain_sat,
            "verdicts diverged (slicing={slicing}, incremental={incremental})"
        );
    }
    let mut c = Criterion::default().configure_from_args().sample_size(3);
    bench_stages(&mut c, &stream);

    // The headline number, measured outside criterion so it can gate and
    // be serialized: plain vs fully optimized over the same stream.
    let iters = 3;
    let plain_ms = measure_ms(iters, || run_stream(&mut solver_with(false, false), &stream));
    let opt_ms = measure_ms(iters, || run_stream(&mut solver_with(true, true), &stream));
    let speedup = plain_ms / opt_ms.max(1e-9);
    println!("deep-path stream: plain {plain_ms:.2} ms, optimized {opt_ms:.2} ms ({speedup:.1}x)");
    assert!(
        speedup >= 2.0,
        "optimized deep-path stream must be at least 2x faster \
         (plain {plain_ms:.2} ms vs optimized {opt_ms:.2} ms = {speedup:.2}x)"
    );

    // One bundled driver end to end, optimizations on vs off, as the
    // macro-level sample for the trajectory point.
    let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled driver");
    let dut = DriverUnderTest::from_spec(&spec);
    let run_campaign = |slicing: bool, incremental: bool| {
        let config =
            DdtConfig { use_slicing: slicing, use_incremental: incremental, ..DdtConfig::default() };
        Ddt::new(config).test(&dut)
    };
    let campaign_off = run_campaign(false, false);
    let campaign_on = run_campaign(true, true);
    assert_eq!(campaign_on.bugs.len(), campaign_off.bugs.len(), "optimizations changed bugs");
    println!(
        "rtl8029 campaign: baseline {} ms, optimized {} ms \
         ({} session probes, {} sliced queries)",
        campaign_off.stats.wall_ms,
        campaign_on.stats.wall_ms,
        campaign_on.stats.solver_session_probes,
        campaign_on.stats.solver_sliced,
    );

    let (interner_hits, interner_misses) = ddt_expr::intern_stats();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"solver\",\n",
            "  \"deep_path_depth\": {},\n",
            "  \"deep_path_plain_ms\": {:.3},\n",
            "  \"deep_path_optimized_ms\": {:.3},\n",
            "  \"deep_path_speedup\": {:.2},\n",
            "  \"campaign_driver\": \"rtl8029\",\n",
            "  \"campaign_baseline_ms\": {},\n",
            "  \"campaign_optimized_ms\": {},\n",
            "  \"campaign_session_probes\": {},\n",
            "  \"campaign_sliced_queries\": {},\n",
            "  \"interner_hits\": {},\n",
            "  \"interner_misses\": {}\n",
            "}}\n"
        ),
        stream.len(),
        plain_ms,
        opt_ms,
        speedup,
        campaign_off.stats.wall_ms,
        campaign_on.stats.wall_ms,
        campaign_on.stats.solver_session_probes,
        campaign_on.stats.solver_sliced,
        interner_hits,
        interner_misses,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
