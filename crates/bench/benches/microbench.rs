//! Criterion micro-benchmarks for the substrates underpinning the §5.2
//! scalability claims: expression simplification, constraint solving,
//! concrete interpretation, symbolic stepping, and copy-on-write forking.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ddt_expr::{Expr, SymId};
use ddt_isa::asm::{assemble, ExportMap};
use ddt_solver::Solver;
use ddt_symvm::interp::NullEnv;
use ddt_symvm::{step, SymCounter, SymState};
use ddt_vm::{StepEvent, Vm};

fn bench_expr(c: &mut Criterion) {
    c.bench_function("expr/build_and_simplify_chain", |b| {
        b.iter(|| {
            let x = Expr::sym(SymId(0), 32);
            let mut e = x.clone();
            for i in 1..32u64 {
                e = e.add(&Expr::constant(i, 32)).and(&Expr::constant(0xffff_ffff, 32));
            }
            black_box(e.size())
        })
    });
    c.bench_function("expr/eval_deep", |b| {
        let x = Expr::sym(SymId(0), 32);
        let mut e = x.clone();
        for i in 1..64u64 {
            e = e.mul(&Expr::constant(i | 1, 32)).xor(&x);
        }
        let mut asg = ddt_expr::Assignment::new();
        asg.set(SymId(0), 0x1234_5678);
        b.iter(|| black_box(e.eval(&asg)))
    });
}

fn bench_solver(c: &mut Criterion) {
    c.bench_function("solver/feasibility_linear", |b| {
        let x = Expr::sym(SymId(0), 32);
        let cs = vec![
            x.add(&Expr::constant(7, 32)).ult(&Expr::constant(100, 32)),
            Expr::constant(5, 32).ult(&x),
        ];
        b.iter(|| {
            let mut s = Solver::new();
            black_box(s.is_feasible(&cs))
        })
    });
    c.bench_function("solver/multiplication_inversion", |b| {
        let x = Expr::sym(SymId(0), 16);
        let cs = vec![x.mul(&Expr::constant(7, 16)).eq(&Expr::constant(91, 16))];
        b.iter(|| {
            let mut s = Solver::new();
            black_box(s.is_feasible(&cs))
        })
    });
}

/// A query workload with the exploration's characteristic shape: a shared
/// constraint prefix (the path condition so far) plus a per-query suffix.
fn cache_workload() -> Vec<Vec<Expr>> {
    let x = Expr::sym(SymId(0), 32);
    let y = Expr::sym(SymId(1), 32);
    let prefix = vec![
        x.mul(&Expr::constant(3, 32)).eq(&Expr::constant(21, 32)),
        x.ult(&Expr::constant(100, 32)),
    ];
    (0..24u64)
        .map(|i| {
            let mut q = prefix.clone();
            q.push(y.eq(&Expr::constant(1000 + i, 32)));
            q
        })
        .collect()
}

fn bench_query_cache(c: &mut Criterion) {
    let queries = cache_workload();
    c.bench_function("solver/query_workload_cold_uncached", |b| {
        b.iter(|| {
            let mut s = Solver::uncached();
            for q in &queries {
                black_box(s.check(q).is_sat());
            }
            black_box(s.stats().full_solves)
        })
    });
    c.bench_function("solver/query_workload_warm_shared_cache", |b| {
        // Prewarm one shared cache; each iteration is a fresh worker over it
        // (the steady state of a long exploration).
        let cache = std::sync::Arc::new(ddt_solver::QueryCache::new());
        let mut warmer = Solver::with_cache(cache.clone());
        for q in &queries {
            warmer.check(q);
        }
        b.iter(|| {
            let mut s = Solver::with_cache(cache.clone());
            for q in &queries {
                black_box(s.check(q).is_sat());
            }
            assert_eq!(s.stats().full_solves, 0, "warm cache must answer everything");
            black_box(s.stats().cache_hits)
        })
    });
}

fn bench_vm(c: &mut Criterion) {
    let src = "
        DriverEntry:
            mov r0, 0
            mov r1, 0
        loop:
            add r0, r0, 1
            add r1, r1, r0
            and r1, r1, 0xffff
            bltu r0, 10000, loop
            ret";
    let a = assemble(src, &ExportMap::new()).expect("asm");
    c.bench_function("vm/concrete_interpreter_40k_insns", |b| {
        b.iter(|| {
            let mut vm = Vm::new();
            vm.load_image(&a.image);
            vm.mem.map(0x7000_0000, 0x10_0000);
            vm.cpu.set(ddt_isa::Reg::SP, 0x7010_0000);
            vm.cpu.set(ddt_isa::Reg::LR, ddt_isa::RETURN_TRAP);
            vm.cpu.pc = a.image.entry;
            assert_eq!(vm.run(100_000), StepEvent::ReturnToKernel);
            black_box(vm.insns_retired)
        })
    });
}

fn sym_state_for(a: &ddt_isa::asm::Assembled) -> SymState {
    let mut st = SymState::new(SymCounter::new());
    let img = &a.image;
    st.mem.map(img.load_base, img.image_end() - img.load_base);
    st.mem.seed_bytes(img.load_base, &img.text);
    st.mem.set_code_region(img.load_base, img.text.len() as u32);
    st.mem.map(0x7000_0000, 0x10_0000);
    st.cpu.set_u32(ddt_isa::Reg::SP, 0x7010_0000);
    st.cpu.set_u32(ddt_isa::Reg::LR, ddt_isa::RETURN_TRAP);
    st.cpu.pc = img.entry;
    st
}

fn bench_symvm(c: &mut Criterion) {
    let src = "
        DriverEntry:
            mov r0, 0
            mov r1, 0
        loop:
            add r0, r0, 1
            add r1, r1, r0
            bltu r0, 500, loop
            ret";
    let a = assemble(src, &ExportMap::new()).expect("asm");
    c.bench_function("symvm/concrete_program_2k_steps", |b| {
        b.iter(|| {
            let mut st = sym_state_for(&a);
            let mut solver = Solver::new();
            let mut env = NullEnv;
            loop {
                match step(&mut st, &mut env, &mut solver) {
                    ddt_symvm::SymStep::Continue => continue,
                    _ => break,
                }
            }
            black_box(st.insns_retired)
        })
    });
    c.bench_function("symvm/cow_fork_with_dirty_pages", |b| {
        let mut st = sym_state_for(&a);
        for i in 0..256u32 {
            st.mem.write(0x7000_0000 + 4 * i, 4, &Expr::constant(i as u64, 32));
        }
        b.iter(|| {
            let child = st.fork();
            black_box(child.generation)
        })
    });
}

fn bench_asm(c: &mut Criterion) {
    let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
    c.bench_function("asm/assemble_rtl8029", |b| {
        b.iter(|| black_box(spec.build().image.text.len()))
    });
}

/// A representative event mix for trace benchmarks (mostly Exec, some
/// memory traffic and branches — the shape real paths produce).
fn trace_events(n: usize) -> Vec<ddt_symvm::TraceEvent> {
    use ddt_symvm::TraceEvent;
    let x = Expr::sym(SymId(0), 32);
    (0..n)
        .map(|i| match i % 8 {
            0 => TraceEvent::MemRead {
                pc: i as u32,
                addr: 0x7000_0000 + i as u32,
                size: 4,
                value: Some(i as u64),
            },
            1 => TraceEvent::Branch {
                pc: i as u32,
                taken: i % 2 == 0,
                forked: i % 16 == 1,
                constraint: x.ult(&Expr::constant(i as u64, 32)),
            },
            _ => TraceEvent::Exec { pc: i as u32 },
        })
        .collect()
}

fn bench_trace(c: &mut Criterion) {
    use ddt_symvm::Trace;

    // Trace-write overhead: what every symbolic step pays to log itself.
    c.bench_function("trace/push_4k_events", |b| {
        let events = trace_events(4096);
        b.iter(|| {
            let mut t = Trace::new();
            for ev in &events {
                t.push(ev.clone());
            }
            black_box(t.len())
        })
    });

    // Fork cost: the shared-prefix representation freezes the local tail
    // once and hands out a parent pointer — no event copying.
    c.bench_function("trace/fork_after_4k_events", |b| {
        let mut t = Trace::new();
        for ev in trace_events(4096) {
            t.push(ev);
        }
        b.iter(|| black_box(t.fork().len()))
    });

    // Reading the recent past without flattening (checkers do this on every
    // fault) vs materializing the full log.
    let mut deep = Trace::new();
    for chunk in 0..64 {
        for ev in trace_events(64) {
            deep.push(ev);
        }
        let _ = deep.fork(); // Freeze a segment per chunk: a 64-deep chain.
        let _ = chunk;
    }
    c.bench_function("trace/tail_window_across_segments", |b| {
        b.iter(|| black_box(deep.tail(32).len()))
    });
    c.bench_function("trace/flatten_full_log", |b| {
        b.iter(|| black_box(deep.events().len()))
    });

    // Codec throughput: what persisting / loading one artifact costs.
    let events = trace_events(2048);
    let encoded = ddt_trace::encode_events(&events);
    c.bench_function("trace/codec_encode_2k_events", |b| {
        b.iter(|| black_box(ddt_trace::encode_events(&events).len()))
    });
    c.bench_function("trace/codec_decode_2k_events", |b| {
        b.iter(|| black_box(ddt_trace::decode_events(&encoded).unwrap().len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_expr, bench_solver, bench_query_cache, bench_vm, bench_symvm, bench_asm,
        bench_trace
}
criterion_main!(benches);
