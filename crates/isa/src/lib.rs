//! The DDT-32 instruction set architecture.
//!
//! DDT tests *binary* drivers: the driver under test is shipped to the tool
//! as machine code for a concrete ISA, never as source. This crate defines
//! that ISA and everything needed to produce and inspect driver binaries:
//!
//! - [`Insn`]/[`Reg`]: the instruction set (fixed 8-byte encoding, 16 GPRs,
//!   compare-and-branch, port I/O, call/ret),
//! - [`asm::assemble`]: a two-pass assembler for the `.s` dialect the
//!   synthetic drivers in `ddt-drivers` are written in,
//! - [`image::DxeImage`]: the driver executable format (the PE analog): load
//!   base, entry point, text/data/bss sections, import table,
//! - [`dis`]: a disassembler,
//! - [`analysis`]: basic-block and function discovery over binaries, used by
//!   DDT's coverage heuristic (§4.3) and the Table 1 census.
//!
//! The ISA plays the role x86 plays in the paper: the guest instruction set
//! that QEMU translates and Klee interprets (DESIGN.md §4.1).
//!
//! # Memory map conventions
//!
//! | Range | Use |
//! |---|---|
//! | `0x0040_0000` (default) | driver image (text, data, bss) |
//! | `0x0100_0000..0x0200_0000` | kernel pool heap |
//! | `0x7000_0000..0x7010_0000` | driver stack (grows down) |
//! | `0x8000_0000..0x9000_0000` | MMIO device space |
//! | `0xF000_0000..` | kernel export trap addresses (call targets) |

pub mod analysis;
pub mod asm;
pub mod dis;
pub mod image;
mod insn;

pub use insn::{decode, encode, Insn, Reg};

/// The kind of a memory access (shared vocabulary between the concrete VM,
/// the symbolic engine, and DDT's memory checker).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum AccessKind {
    /// A data read.
    Read,
    /// A data write.
    Write,
    /// An instruction fetch.
    Fetch,
}

/// Size in bytes of every encoded instruction.
pub const INSN_SIZE: u32 = 8;

/// Base address of kernel export traps: a `CALL` to
/// `KERNEL_TRAP_BASE + 8 * export_id` invokes kernel export `export_id`.
pub const KERNEL_TRAP_BASE: u32 = 0xF000_0000;

/// The magic address a driver entry point returns to; the VM recognizes it
/// and hands control back to the kernel.
pub const RETURN_TRAP: u32 = 0xFFFF_FFF0;

/// Default driver image load base.
pub const DEFAULT_LOAD_BASE: u32 = 0x0040_0000;

/// Returns the export id if `addr` is a kernel trap address.
pub fn trap_export_id(addr: u32) -> Option<u16> {
    if (KERNEL_TRAP_BASE..RETURN_TRAP).contains(&addr) {
        let off = addr - KERNEL_TRAP_BASE;
        if off.is_multiple_of(8) {
            return Some((off / 8) as u16);
        }
    }
    None
}

/// Returns the trap address of a kernel export id.
pub fn export_trap_addr(id: u16) -> u32 {
    KERNEL_TRAP_BASE + 8 * id as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_addresses_roundtrip() {
        for id in [0u16, 1, 77, 500] {
            assert_eq!(trap_export_id(export_trap_addr(id)), Some(id));
        }
        assert_eq!(trap_export_id(0x1000), None);
        assert_eq!(trap_export_id(KERNEL_TRAP_BASE + 4), None, "misaligned trap");
        assert_eq!(trap_export_id(RETURN_TRAP), None);
    }
}
