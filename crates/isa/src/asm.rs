//! Two-pass assembler for the DDT-32 `.s` dialect.
//!
//! The synthetic drivers in `ddt-drivers` are written in this dialect and
//! assembled to [`DxeImage`] binaries; only the binaries reach DDT. The
//! dialect is deliberately small:
//!
//! ```text
//! .name  rtl8029            ; driver name
//! .base  0x400000           ; load base (optional, defaults)
//! .entry DriverEntry        ; entry label (optional, defaults to DriverEntry)
//! .equ   MAX_LEN, 32        ; assembly-time constant
//! .text                     ; section switches
//! DriverEntry:
//!     push lr
//!     mov  r0, 5            ; movi
//!     add  r1, r0, 3        ; addi
//!     ldw  r2, [r1+8]       ; memory operands: [reg], [reg+imm], [reg-imm]
//!     beq  r0, 5, done      ; immediate compare expands via r12
//!     call @NdisMSleep      ; kernel import (resolved via the export map)
//! done:
//!     pop  lr
//!     ret
//! .data
//! table:  .word 1, 2, 3
//! msg:    .asciz "hello"
//! .bss
//! buf:    .space 64
//! ```
//!
//! Registers: `r0`–`r15`, with aliases `sp` (r13) and `lr` (r14). `r12` is
//! reserved as the assembler scratch register for pseudo-expansions.
//! Comments start with `;`, `#`, or `//`.

use std::collections::BTreeMap;

use crate::image::{DxeImage, Import};
use crate::insn::{encode, Insn, Reg};
use crate::{export_trap_addr, DEFAULT_LOAD_BASE, INSN_SIZE};

/// Maps kernel export names to export ids (provided by `ddt-kernel`).
pub type ExportMap = BTreeMap<String, u16>;

/// An assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Assembly output: the binary image plus source-level metadata used by
/// tests and by DDT's trace post-processing (§3.5 "mapped to source lines").
#[derive(Clone, Debug)]
pub struct Assembled {
    /// The driver binary.
    pub image: DxeImage,
    /// Label name → absolute address.
    pub labels: BTreeMap<String, u32>,
    /// Text address → source line number (per instruction).
    pub line_map: BTreeMap<u32, usize>,
}

impl Assembled {
    /// Resolves a label to its address.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Resolves a label, panicking with a clear message if missing.
    ///
    /// # Panics
    ///
    /// Panics if the label is not defined.
    pub fn label_addr(&self, name: &str) -> u32 {
        self.label(name).unwrap_or_else(|| panic!("no label {name:?} in {}", self.image.name))
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
    Bss,
}

/// One parsed source statement.
struct Stmt<'a> {
    line: usize,
    label: Option<&'a str>,
    op: Option<&'a str>,
    args: Vec<&'a str>,
}

/// Assembles DDT-32 source into a driver image.
///
/// `exports` maps kernel export names (used as `call @Name`) to ids.
pub fn assemble(src: &str, exports: &ExportMap) -> Result<Assembled, AsmError> {
    let stmts = parse(src)?;
    let mut asm = Assembler::new(exports);
    asm.layout(&stmts)?;
    asm.emit(&stmts)
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError { line, msg: msg.into() }
}

fn parse(src: &str) -> Result<Vec<Stmt<'_>>, AsmError> {
    let mut stmts = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        // Strip comments; respect string literals for `.asciz`.
        let mut cut = raw.len();
        let mut in_str = false;
        let bytes = raw.as_bytes();
        let mut j = 0;
        while j < bytes.len() {
            let c = bytes[j];
            if in_str {
                if c == b'\\' {
                    j += 1;
                } else if c == b'"' {
                    in_str = false;
                }
            } else if c == b'"' {
                in_str = true;
            } else if c == b';' || c == b'#' || (c == b'/' && bytes.get(j + 1) == Some(&b'/')) {
                cut = j;
                break;
            }
            j += 1;
        }
        let mut text = raw[..cut].trim();
        if text.is_empty() {
            continue;
        }
        // Optional label.
        let mut label = None;
        if let Some(colon) = find_label_colon(text) {
            let (l, rest) = text.split_at(colon);
            let l = l.trim();
            if !is_ident(l) {
                return Err(err(line, format!("bad label {l:?}")));
            }
            label = Some(l);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            stmts.push(Stmt { line, label, op: None, args: Vec::new() });
            continue;
        }
        // Opcode and comma-separated operands.
        let (op, rest) = match text.find(char::is_whitespace) {
            Some(p) => (&text[..p], text[p..].trim()),
            None => (text, ""),
        };
        let args = if rest.is_empty() {
            Vec::new()
        } else if op == ".asciz" || op == ".ascii" {
            vec![rest]
        } else {
            rest.split(',').map(str::trim).collect()
        };
        stmts.push(Stmt { line, label, op: Some(op), args });
    }
    Ok(stmts)
}

/// Finds the colon ending a leading label, ignoring colons inside strings.
fn find_label_colon(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c == b':' {
            return Some(i);
        }
        if !(c.is_ascii_alphanumeric() || c == b'_' || c == b'.') {
            return None;
        }
    }
    None
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

struct Assembler<'e> {
    exports: &'e ExportMap,
    name: String,
    base: u32,
    entry_label: String,
    equs: BTreeMap<String, u32>,
    labels: BTreeMap<String, u32>,
    text_size: u32,
    data_size: u32,
    bss_size: u32,
    used_imports: BTreeMap<String, u16>,
}

impl<'e> Assembler<'e> {
    fn new(exports: &'e ExportMap) -> Assembler<'e> {
        Assembler {
            exports,
            name: "driver".into(),
            base: DEFAULT_LOAD_BASE,
            entry_label: "DriverEntry".into(),
            equs: BTreeMap::new(),
            labels: BTreeMap::new(),
            text_size: 0,
            data_size: 0,
            bss_size: 0,
            used_imports: BTreeMap::new(),
        }
    }

    fn data_base(&self) -> u32 {
        (self.base + self.text_size + 7) & !7
    }

    fn bss_base(&self) -> u32 {
        (self.data_base() + self.data_size + 7) & !7
    }

    /// Pass 1: compute sizes, collect labels and constants.
    fn layout(&mut self, stmts: &[Stmt<'_>]) -> Result<(), AsmError> {
        let mut section = Section::Text;
        let (mut toff, mut doff, mut boff) = (0u32, 0u32, 0u32);
        // Section-relative label positions; resolved to absolute below.
        let mut rel: BTreeMap<String, (Section, u32)> = BTreeMap::new();
        for s in stmts {
            if let Some(l) = s.label {
                let off = match section {
                    Section::Text => toff,
                    Section::Data => doff,
                    Section::Bss => boff,
                };
                if rel.insert(l.to_string(), (section, off)).is_some() {
                    return Err(err(s.line, format!("duplicate label {l:?}")));
                }
            }
            let Some(op) = s.op else { continue };
            let size = match op {
                ".name" => {
                    self.name = s.args.first().unwrap_or(&"driver").to_string();
                    0
                }
                ".base" => {
                    let v = self.const_expr(s, s.args.first().copied())?;
                    self.base = v;
                    0
                }
                ".entry" => {
                    self.entry_label =
                        s.args.first().ok_or_else(|| err(s.line, ".entry needs a label"))?.to_string();
                    0
                }
                ".equ" => {
                    if s.args.len() != 2 {
                        return Err(err(s.line, ".equ needs name, value"));
                    }
                    let v = self.const_expr(s, Some(s.args[1]))?;
                    self.equs.insert(s.args[0].to_string(), v);
                    0
                }
                ".text" => {
                    section = Section::Text;
                    0
                }
                ".data" => {
                    section = Section::Data;
                    0
                }
                ".bss" => {
                    section = Section::Bss;
                    0
                }
                ".word" => 4 * s.args.len() as u32,
                ".half" => 2 * s.args.len() as u32,
                ".byte" => s.args.len() as u32,
                ".ascii" | ".asciz" => {
                    let bytes = parse_string(s.line, s.args.first().copied())?;
                    bytes.len() as u32 + (op == ".asciz") as u32
                }
                ".space" => self.const_expr(s, s.args.first().copied())?,
                ".align" => {
                    let a = self.const_expr(s, s.args.first().copied())?;
                    if a == 0 || !a.is_power_of_two() {
                        return Err(err(s.line, "alignment must be a power of two"));
                    }
                    let off = match section {
                        Section::Text => toff,
                        Section::Data => doff,
                        Section::Bss => boff,
                    };
                    off.next_multiple_of(a) - off
                }
                _ if op.starts_with('.') => {
                    return Err(err(s.line, format!("unknown directive {op}")));
                }
                mnemonic => {
                    if section != Section::Text {
                        return Err(err(s.line, "instructions only in .text"));
                    }
                    self.insn_count(s, mnemonic)? * INSN_SIZE
                }
            };
            match section {
                Section::Text => toff += size,
                Section::Data => doff += size,
                Section::Bss => boff += size,
            }
            // Data directives may appear in bss only as .space/.align.
            if section == Section::Bss
                && !matches!(op, ".space" | ".align" | ".bss" | ".text" | ".data")
                && op.starts_with('.')
                && matches!(op, ".word" | ".half" | ".byte" | ".ascii" | ".asciz")
            {
                return Err(err(s.line, "initialized data not allowed in .bss"));
            }
        }
        self.text_size = toff;
        self.data_size = doff;
        self.bss_size = boff;
        // Resolve labels to absolute addresses.
        for (name, (sec, off)) in rel {
            let addr = match sec {
                Section::Text => self.base + off,
                Section::Data => self.data_base() + off,
                Section::Bss => self.bss_base() + off,
            };
            self.labels.insert(name, addr);
        }
        Ok(())
    }

    /// Number of instructions a mnemonic expands to (pseudo-expansion aware).
    fn insn_count(&self, s: &Stmt<'_>, mnemonic: &str) -> Result<u32, AsmError> {
        Ok(match mnemonic {
            // Branches with an immediate comparand expand to movi + branch.
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                if s.args.len() != 3 {
                    return Err(err(s.line, format!("{mnemonic} needs rs, rt|imm, target")));
                }
                if parse_reg(s.args[1]).is_some() {
                    1
                } else {
                    2
                }
            }
            // push/pop accept register lists.
            "push" | "pop" => s.args.len().max(1) as u32,
            _ => 1,
        })
    }

    /// Pass 2: encode instructions and data.
    fn emit(&mut self, stmts: &[Stmt<'_>]) -> Result<Assembled, AsmError> {
        let mut text: Vec<u8> = Vec::with_capacity(self.text_size as usize);
        let mut data: Vec<u8> = Vec::with_capacity(self.data_size as usize);
        let mut line_map = BTreeMap::new();
        let mut section = Section::Text;
        for s in stmts {
            let Some(op) = s.op else { continue };
            match op {
                ".name" | ".base" | ".entry" | ".equ" => {}
                ".text" => section = Section::Text,
                ".data" => section = Section::Data,
                ".bss" => section = Section::Bss,
                ".word" => {
                    for a in &s.args {
                        let v = self.value_expr(s, a)?;
                        data_sink(&mut data, section, s.line)?.extend_from_slice(&v.to_le_bytes());
                    }
                }
                ".half" => {
                    for a in &s.args {
                        let v = self.value_expr(s, a)? as u16;
                        data_sink(&mut data, section, s.line)?.extend_from_slice(&v.to_le_bytes());
                    }
                }
                ".byte" => {
                    for a in &s.args {
                        let v = self.value_expr(s, a)? as u8;
                        data_sink(&mut data, section, s.line)?.push(v);
                    }
                }
                ".ascii" | ".asciz" => {
                    let mut bytes = parse_string(s.line, s.args.first().copied())?;
                    if op == ".asciz" {
                        bytes.push(0);
                    }
                    data_sink(&mut data, section, s.line)?.extend_from_slice(&bytes);
                }
                ".space" => {
                    let n = self.const_expr(s, s.args.first().copied())?;
                    if section == Section::Data {
                        data.extend(std::iter::repeat_n(0u8, n as usize));
                    }
                    // In .bss, space is implicit (bss_size was computed in
                    // pass 1); in .text it is invalid.
                    if section == Section::Text {
                        return Err(err(s.line, ".space not allowed in .text"));
                    }
                }
                ".align" => {
                    let a = self.const_expr(s, s.args.first().copied())?;
                    if section == Section::Data {
                        while !(data.len() as u32).is_multiple_of(a) {
                            data.push(0);
                        }
                    } else if section == Section::Text {
                        return Err(err(s.line, ".align not allowed in .text"));
                    }
                }
                mnemonic => {
                    let pc = self.base + text.len() as u32;
                    line_map.insert(pc, s.line);
                    for insn in self.encode_stmt(s, mnemonic, pc)? {
                        text.extend_from_slice(&encode(insn));
                    }
                }
            }
        }
        debug_assert_eq!(text.len() as u32, self.text_size, "pass-1/pass-2 size mismatch");
        debug_assert_eq!(data.len() as u32, self.data_size, "pass-1/pass-2 data mismatch");
        let entry = *self
            .labels
            .get(&self.entry_label)
            .ok_or_else(|| err(0, format!("entry label {:?} not defined", self.entry_label)))?;
        let imports = self
            .used_imports
            .iter()
            .map(|(name, &export_id)| Import { export_id, name: name.clone() })
            .collect();
        Ok(Assembled {
            image: DxeImage {
                name: self.name.clone(),
                load_base: self.base,
                entry,
                text,
                data,
                bss_size: self.bss_size,
                imports,
            },
            labels: self.labels.clone(),
            line_map,
        })
    }

    fn encode_stmt(
        &mut self,
        s: &Stmt<'_>,
        mnemonic: &str,
        _pc: u32,
    ) -> Result<Vec<Insn>, AsmError> {
        use Insn::*;
        let line = s.line;
        let nargs = s.args.len();
        let arg = |i: usize| -> Result<&str, AsmError> {
            s.args.get(i).copied().ok_or_else(|| err(line, "missing operand"))
        };
        let reg = |i: usize| -> Result<Reg, AsmError> {
            let a = arg(i)?;
            parse_reg(a).ok_or_else(|| err(line, format!("expected register, got {a:?}")))
        };
        let scratch = Reg(12);
        Ok(match mnemonic {
            "halt" => vec![Halt],
            "nop" => vec![Nop],
            "ret" => vec![Ret],
            "mov" | "lea" => {
                let rd = reg(0)?;
                let a = arg(1)?;
                match parse_reg(a) {
                    Some(rs) => vec![Mov { rd, rs }],
                    None => vec![Movi { rd, imm: self.value_expr(s, a)? }],
                }
            }
            "add" | "and" | "or" | "xor" | "shl" | "shr" | "sar" => {
                let rd = reg(0)?;
                let rs = reg(1)?;
                let a = arg(2)?;
                match parse_reg(a) {
                    Some(rt) => vec![match mnemonic {
                        "add" => Add { rd, rs, rt },
                        "and" => And { rd, rs, rt },
                        "or" => Or { rd, rs, rt },
                        "xor" => Xor { rd, rs, rt },
                        "shl" => Shl { rd, rs, rt },
                        "shr" => Shr { rd, rs, rt },
                        _ => Sar { rd, rs, rt },
                    }],
                    None => {
                        let imm = self.value_expr(s, a)?;
                        vec![match mnemonic {
                            "add" => Addi { rd, rs, imm },
                            "and" => Andi { rd, rs, imm },
                            "or" => Ori { rd, rs, imm },
                            "xor" => Xori { rd, rs, imm },
                            "shl" => Shli { rd, rs, imm },
                            "shr" => Shri { rd, rs, imm },
                            _ => Sari { rd, rs, imm },
                        }]
                    }
                }
            }
            "sub" => {
                let rd = reg(0)?;
                let rs = reg(1)?;
                let a = arg(2)?;
                match parse_reg(a) {
                    Some(rt) => vec![Sub { rd, rs, rt }],
                    None => {
                        let imm = self.value_expr(s, a)?.wrapping_neg();
                        vec![Addi { rd, rs, imm }]
                    }
                }
            }
            "mul" => vec![Mul { rd: reg(0)?, rs: reg(1)?, rt: reg(2)? }],
            "udiv" => vec![Udiv { rd: reg(0)?, rs: reg(1)?, rt: reg(2)? }],
            "urem" => vec![Urem { rd: reg(0)?, rs: reg(1)?, rt: reg(2)? }],
            "sdiv" => vec![Sdiv { rd: reg(0)?, rs: reg(1)?, rt: reg(2)? }],
            "not" => vec![Not { rd: reg(0)?, rs: reg(1)? }],
            "ldw" | "ldh" | "ldb" => {
                let rd = reg(0)?;
                let (rs, imm) = self.mem_operand(s, arg(1)?)?;
                vec![match mnemonic {
                    "ldw" => Ldw { rd, rs, imm },
                    "ldh" => Ldh { rd, rs, imm },
                    _ => Ldb { rd, rs, imm },
                }]
            }
            "stw" | "sth" | "stb" => {
                let (rs, imm) = self.mem_operand(s, arg(0)?)?;
                let rt = reg(1)?;
                vec![match mnemonic {
                    "stw" => Stw { rs, rt, imm },
                    "sth" => Sth { rs, rt, imm },
                    _ => Stb { rs, rt, imm },
                }]
            }
            "jmp" => vec![Jmp { imm: self.value_expr(s, arg(0)?)? }],
            "jr" => vec![Jr { rs: reg(0)? }],
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                let rs = reg(0)?;
                let target = self.value_expr(s, arg(2)?)?;
                let (mut out, rt) = match parse_reg(arg(1)?) {
                    Some(rt) => (vec![], rt),
                    None => {
                        let imm = self.value_expr(s, arg(1)?)?;
                        (vec![Movi { rd: scratch, imm }], scratch)
                    }
                };
                out.push(match mnemonic {
                    "beq" => Beq { rs, rt, imm: target },
                    "bne" => Bne { rs, rt, imm: target },
                    "blt" => Blt { rs, rt, imm: target },
                    "bge" => Bge { rs, rt, imm: target },
                    "bltu" => Bltu { rs, rt, imm: target },
                    _ => Bgeu { rs, rt, imm: target },
                });
                out
            }
            "call" => {
                let a = arg(0)?;
                if let Some(import) = a.strip_prefix('@') {
                    let id = *self
                        .exports
                        .get(import)
                        .ok_or_else(|| err(line, format!("unknown kernel export {import:?}")))?;
                    self.used_imports.insert(import.to_string(), id);
                    vec![Call { imm: export_trap_addr(id) }]
                } else if let Some(rs) = parse_reg(a) {
                    vec![Callr { rs }]
                } else {
                    vec![Call { imm: self.value_expr(s, a)? }]
                }
            }
            "push" => {
                let mut out = Vec::new();
                for a in &s.args {
                    let rs = parse_reg(a)
                        .ok_or_else(|| err(line, format!("expected register, got {a:?}")))?;
                    out.push(Push { rs });
                }
                if out.is_empty() {
                    return Err(err(line, "push needs a register"));
                }
                out
            }
            "pop" => {
                let mut out = Vec::new();
                for a in &s.args {
                    let rd = parse_reg(a)
                        .ok_or_else(|| err(line, format!("expected register, got {a:?}")))?;
                    out.push(Pop { rd });
                }
                if out.is_empty() {
                    return Err(err(line, "pop needs a register"));
                }
                out
            }
            "in" => {
                let rd = reg(0)?;
                let a = arg(1)?;
                match parse_reg(a) {
                    Some(rs) => vec![Inr { rd, rs }],
                    None => vec![In { rd, imm: self.value_expr(s, a)? }],
                }
            }
            "out" => {
                let a = arg(0)?;
                let rt = reg(1)?;
                match parse_reg(a) {
                    Some(rs) => vec![Outr { rs, rt }],
                    None => vec![Out { rt, imm: self.value_expr(s, a)? }],
                }
            }
            _ => return Err(err(line, format!("unknown mnemonic {mnemonic:?} with {nargs} args"))),
        })
    }

    /// Parses `[reg]`, `[reg+imm]`, `[reg-imm]`.
    fn mem_operand(&self, s: &Stmt<'_>, a: &str) -> Result<(Reg, u32), AsmError> {
        let inner = a
            .strip_prefix('[')
            .and_then(|x| x.strip_suffix(']'))
            .ok_or_else(|| err(s.line, format!("expected memory operand [..], got {a:?}")))?
            .trim();
        // Split at the first +/- that is not leading.
        let mut split = None;
        for (i, c) in inner.char_indices().skip(1) {
            if c == '+' || c == '-' {
                split = Some((i, c));
                break;
            }
        }
        let (base_s, disp) = match split {
            None => (inner, 0u32),
            Some((i, c)) => {
                let base = inner[..i].trim();
                let off = self.value_expr(s, inner[i + 1..].trim())?;
                (base, if c == '-' { off.wrapping_neg() } else { off })
            }
        };
        let rs = parse_reg(base_s)
            .ok_or_else(|| err(s.line, format!("memory base must be a register: {base_s:?}")))?;
        Ok((rs, disp))
    }

    /// Evaluates a constant expression that may use `.equ` names but not
    /// labels (used during pass 1).
    fn const_expr(&self, s: &Stmt<'_>, a: Option<&str>) -> Result<u32, AsmError> {
        let a = a.ok_or_else(|| err(s.line, "missing operand"))?;
        self.expr(s, a, false)
    }

    /// Evaluates a value expression (numbers, `.equ` names, labels,
    /// `name+off`, `name-off`).
    fn value_expr(&self, s: &Stmt<'_>, a: &str) -> Result<u32, AsmError> {
        self.expr(s, a, true)
    }

    fn expr(&self, s: &Stmt<'_>, a: &str, labels_ok: bool) -> Result<u32, AsmError> {
        let a = a.trim();
        // name+off / name-off.
        for (i, c) in a.char_indices().skip(1) {
            if (c == '+' || c == '-') && !a[..i].trim().is_empty() && is_ident(a[..i].trim()) {
                let base = self.expr(s, a[..i].trim(), labels_ok)?;
                let off = self.expr(s, a[i + 1..].trim(), labels_ok)?;
                return Ok(if c == '-' { base.wrapping_sub(off) } else { base.wrapping_add(off) });
            }
        }
        if let Some(v) = parse_number(a) {
            return Ok(v);
        }
        if let Some(&v) = self.equs.get(a) {
            return Ok(v);
        }
        if labels_ok {
            if let Some(&v) = self.labels.get(a) {
                return Ok(v);
            }
        }
        Err(err(s.line, format!("cannot evaluate expression {a:?}")))
    }
}

fn data_sink(
    data: &mut Vec<u8>,
    section: Section,
    line: usize,
) -> Result<&mut Vec<u8>, AsmError> {
    match section {
        Section::Data => Ok(data),
        Section::Text => Err(err(line, "data directives not allowed in .text")),
        Section::Bss => Err(err(line, "initialized data not allowed in .bss")),
    }
}

fn parse_reg(s: &str) -> Option<Reg> {
    match s {
        "sp" => Some(Reg::SP),
        "lr" => Some(Reg::LR),
        _ => {
            let n: u8 = s.strip_prefix('r')?.parse().ok()?;
            (n < 16).then_some(Reg(n))
        }
    }
}

fn parse_number(s: &str) -> Option<u32> {
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if s.chars().next()?.is_ascii_digit() {
        s.replace('_', "").parse::<u32>().ok()?
    } else {
        return None;
    };
    Some(if neg { v.wrapping_neg() } else { v })
}

fn parse_string(line: usize, a: Option<&str>) -> Result<Vec<u8>, AsmError> {
    let a = a.ok_or_else(|| err(line, "missing string"))?.trim();
    let inner = a
        .strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected quoted string, got {a:?}")))?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                other => return Err(err(line, format!("bad escape {other:?}"))),
            }
        } else {
            out.push(c as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    fn exports() -> ExportMap {
        let mut m = ExportMap::new();
        m.insert("NdisMSleep".into(), 7);
        m.insert("NdisAllocateMemoryWithTag".into(), 3);
        m
    }

    fn asm(src: &str) -> Assembled {
        assemble(src, &exports()).expect("assembly failed")
    }

    fn decode_text(img: &DxeImage) -> Vec<Insn> {
        img.text
            .chunks_exact(8)
            .map(|c| decode(c.try_into().unwrap()).expect("bad encoding"))
            .collect()
    }

    #[test]
    fn minimal_driver_assembles() {
        let a = asm("
            .name test
            .text
            DriverEntry:
                mov r0, 0
                ret
        ");
        assert_eq!(a.image.name, "test");
        assert_eq!(a.image.entry, a.label_addr("DriverEntry"));
        let insns = decode_text(&a.image);
        assert_eq!(insns, vec![Insn::Movi { rd: Reg(0), imm: 0 }, Insn::Ret]);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let a = asm("
            DriverEntry:
                jmp fwd
            back:
                ret
            fwd:
                jmp back
        ");
        let insns = decode_text(&a.image);
        assert_eq!(insns[0], Insn::Jmp { imm: a.label_addr("fwd") });
        assert_eq!(insns[2], Insn::Jmp { imm: a.label_addr("back") });
    }

    #[test]
    fn imports_resolve_to_trap_addresses() {
        let a = asm("
            DriverEntry:
                call @NdisMSleep
                ret
        ");
        let insns = decode_text(&a.image);
        assert_eq!(insns[0], Insn::Call { imm: export_trap_addr(7) });
        assert_eq!(a.image.imports.len(), 1);
        assert_eq!(a.image.imports[0].name, "NdisMSleep");
        assert_eq!(a.image.imports[0].export_id, 7);
    }

    #[test]
    fn unknown_import_is_an_error() {
        let e = assemble("DriverEntry: call @NoSuchApi", &exports()).unwrap_err();
        assert!(e.msg.contains("NoSuchApi"), "{e}");
    }

    #[test]
    fn immediate_branch_expands_via_scratch() {
        let a = asm("
            DriverEntry:
                beq r0, 5, done
            done:
                ret
        ");
        let insns = decode_text(&a.image);
        assert_eq!(insns[0], Insn::Movi { rd: Reg(12), imm: 5 });
        assert_eq!(
            insns[1],
            Insn::Beq { rs: Reg(0), rt: Reg(12), imm: a.label_addr("done") }
        );
        // Label addresses must account for the 2-instruction expansion.
        assert_eq!(a.label_addr("done"), a.image.load_base + 16);
    }

    #[test]
    fn data_section_layout() {
        let a = asm("
            .base 0x400000
            DriverEntry:
                ret
            .data
            tbl:  .word 1, 2, 3
            msg:  .asciz \"hi\"
            .align 4
            more: .word 0xdeadbeef
            .bss
            buf:  .space 32
            buf2: .space 4
        ");
        let img = &a.image;
        assert_eq!(img.text.len(), 8);
        assert_eq!(img.data_base(), 0x40_0008);
        assert_eq!(a.label_addr("tbl"), 0x40_0008);
        assert_eq!(a.label_addr("msg"), 0x40_0008 + 12);
        assert_eq!(a.label_addr("more"), 0x40_0008 + 16, "aligned after 3-byte string");
        assert_eq!(&img.data[0..4], &[1, 0, 0, 0]);
        assert_eq!(&img.data[12..15], b"hi\0");
        assert_eq!(&img.data[16..20], &0xdeadbeefu32.to_le_bytes());
        assert_eq!(img.bss_size, 36);
        assert_eq!(img.bss_base() % 8, 0);
        assert_eq!(a.label_addr("buf"), img.bss_base());
        assert_eq!(a.label_addr("buf2"), img.bss_base() + 32);
    }

    #[test]
    fn equ_constants_and_expressions() {
        let a = asm("
            .equ MAX, 32
            .equ MASK, 0xff
            DriverEntry:
                mov r0, MAX
                add r1, r0, MAX-1
                and r2, r1, MASK
                ret
            .data
            arr: .space 8
            ptr: .word arr+4
        ");
        let insns = decode_text(&a.image);
        assert_eq!(insns[0], Insn::Movi { rd: Reg(0), imm: 32 });
        assert_eq!(insns[1], Insn::Addi { rd: Reg(1), rs: Reg(0), imm: 31 });
        assert_eq!(insns[2], Insn::Andi { rd: Reg(2), rs: Reg(1), imm: 0xff });
        let arr = a.label_addr("arr");
        let ptr_off = (a.label_addr("ptr") - a.image.data_base()) as usize;
        let stored = u32::from_le_bytes(a.image.data[ptr_off..ptr_off + 4].try_into().unwrap());
        assert_eq!(stored, arr + 4);
    }

    #[test]
    fn memory_operands() {
        let a = asm("
            DriverEntry:
                ldw r0, [r1]
                ldw r0, [r1+8]
                ldb r0, [r1-1]
                stw [sp+4], r2
                ret
        ");
        let insns = decode_text(&a.image);
        assert_eq!(insns[0], Insn::Ldw { rd: Reg(0), rs: Reg(1), imm: 0 });
        assert_eq!(insns[1], Insn::Ldw { rd: Reg(0), rs: Reg(1), imm: 8 });
        assert_eq!(insns[2], Insn::Ldb { rd: Reg(0), rs: Reg(1), imm: 0xffff_ffff });
        assert_eq!(insns[3], Insn::Stw { rs: Reg::SP, rt: Reg(2), imm: 4 });
    }

    #[test]
    fn push_pop_lists() {
        let a = asm("
            DriverEntry:
                push r4, r5, lr
                pop lr, r5, r4
                ret
        ");
        let insns = decode_text(&a.image);
        assert_eq!(insns[0], Insn::Push { rs: Reg(4) });
        assert_eq!(insns[2], Insn::Push { rs: Reg::LR });
        assert_eq!(insns[3], Insn::Pop { rd: Reg::LR });
    }

    #[test]
    fn sub_immediate_becomes_addi() {
        let a = asm("
            DriverEntry:
                sub sp, sp, 16
                ret
        ");
        let insns = decode_text(&a.image);
        assert_eq!(insns[0], Insn::Addi { rd: Reg::SP, rs: Reg::SP, imm: (-16i32) as u32 });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("DriverEntry:\n  ret\n  bogus r1", &exports()).unwrap_err();
        assert_eq!(e.line, 3);
        let e = assemble("DriverEntry:\n  mov r0, nolabel\n ret", &exports()).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\n ret\na:\n ret\n.entry a", &exports()).unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn missing_entry_rejected() {
        let e = assemble("foo:\n ret", &exports()).unwrap_err();
        assert!(e.msg.contains("entry"), "{e}");
    }

    #[test]
    fn comments_are_stripped() {
        let a = asm("
            ; full-line comment
            DriverEntry:          ; trailing
                mov r0, 1         # hash comment
                ret               // slashes
        ");
        assert_eq!(decode_text(&a.image).len(), 2);
    }

    #[test]
    fn line_map_tracks_source_lines() {
        let src = "DriverEntry:\n    nop\n    nop\n    ret\n";
        let a = asm(src);
        let base = a.image.load_base;
        assert_eq!(a.line_map[&base], 2);
        assert_eq!(a.line_map[&(base + 8)], 3);
        assert_eq!(a.line_map[&(base + 16)], 4);
    }

    #[test]
    fn image_roundtrips_through_bytes() {
        let a = asm("
            .name roundtrip
            DriverEntry:
                call @NdisAllocateMemoryWithTag
                ret
            .data
            x: .word 7
        ");
        let bytes = a.image.to_bytes();
        let back = DxeImage::from_bytes(&bytes).unwrap();
        assert_eq!(back, a.image);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::decode;

    fn exports() -> ExportMap {
        let mut m = ExportMap::new();
        m.insert("KeFoo".into(), 1);
        m
    }

    #[test]
    fn space_in_text_is_rejected() {
        let e = assemble("DriverEntry:\n .space 8\n ret", &exports()).unwrap_err();
        assert!(e.msg.contains(".space"), "{e}");
    }

    #[test]
    fn align_must_be_power_of_two() {
        let e = assemble("DriverEntry:\n ret\n.data\n.align 3", &exports()).unwrap_err();
        assert!(e.msg.contains("power of two"));
    }

    #[test]
    fn data_in_bss_is_rejected() {
        let e = assemble("DriverEntry:\n ret\n.bss\nx: .word 1", &exports()).unwrap_err();
        assert!(e.msg.contains("bss"), "{e}");
    }

    #[test]
    fn instructions_outside_text_are_rejected() {
        let e = assemble("DriverEntry:\n ret\n.data\n nop", &exports()).unwrap_err();
        assert!(e.msg.contains(".text"), "{e}");
    }

    #[test]
    fn bad_memory_operand_reports_clearly() {
        let e = assemble("DriverEntry:\n ldw r0, r1\n ret", &exports()).unwrap_err();
        assert!(e.msg.contains("memory operand"), "{e}");
        let e = assemble("DriverEntry:\n ldw r0, [5+r1]\n ret", &exports()).unwrap_err();
        assert!(
            e.msg.contains("register") || e.msg.contains("evaluate"),
            "{e}"
        );
    }

    #[test]
    fn empty_push_is_rejected() {
        let e = assemble("DriverEntry:\n push\n ret", &exports()).unwrap_err();
        assert!(e.msg.contains("push"), "{e}");
    }

    #[test]
    fn register_operand_bounds() {
        let e = assemble("DriverEntry:\n mov r16, 0\n ret", &exports()).unwrap_err();
        assert!(e.line == 2);
        // sp/lr aliases work everywhere a register does.
        let a = assemble("DriverEntry:\n mov sp, lr\n ret", &exports()).unwrap();
        let b: &[u8; 8] = a.image.text[0..8].try_into().unwrap();
        assert_eq!(decode(b), Some(Insn::Mov { rd: Reg::SP, rs: Reg::LR }));
    }

    #[test]
    fn negative_and_hex_immediates() {
        let a = assemble(
            "DriverEntry:\n mov r0, -1\n mov r1, 0xFFFF_0000\n mov r2, 1_000\n ret",
            &exports(),
        )
        .unwrap();
        let ws: Vec<Insn> = a
            .image
            .text
            .chunks_exact(8)
            .map(|c| decode(c.try_into().unwrap()).unwrap())
            .collect();
        assert_eq!(ws[0], Insn::Movi { rd: Reg(0), imm: 0xffff_ffff });
        assert_eq!(ws[1], Insn::Movi { rd: Reg(1), imm: 0xffff_0000 });
        assert_eq!(ws[2], Insn::Movi { rd: Reg(2), imm: 1000 });
    }

    #[test]
    fn custom_base_and_entry() {
        let a = assemble(
            ".base 0x100000\n.entry Start\nhelper:\n ret\nStart:\n ret",
            &exports(),
        )
        .unwrap();
        assert_eq!(a.image.load_base, 0x10_0000);
        assert_eq!(a.image.entry, 0x10_0008, "entry is the second instruction");
    }

    #[test]
    fn string_escapes() {
        let a = assemble(
            "DriverEntry:\n ret\n.data\ns: .asciz \"a\\n\\t\\\\\\\"b\\0\"",
            &exports(),
        )
        .unwrap();
        assert_eq!(&a.image.data[..7], b"a\n\t\\\"b\0");
    }

    #[test]
    fn labels_with_dots_and_underscores() {
        let a = assemble(
            "DriverEntry:\n jmp .L_loop\n.L_loop:\n ret",
            &exports(),
        )
        .unwrap();
        assert!(a.label(".L_loop").is_some());
    }

    #[test]
    fn equ_referencing_equ() {
        let a = assemble(
            ".equ A, 4\n.equ B, A+8\nDriverEntry:\n mov r0, B\n ret",
            &exports(),
        )
        .unwrap();
        let b: &[u8; 8] = a.image.text[0..8].try_into().unwrap();
        assert_eq!(decode(b), Some(Insn::Movi { rd: Reg(0), imm: 12 }));
    }
}
