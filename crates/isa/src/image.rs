//! The DXE driver executable format (the PE/COFF analog).
//!
//! A driver binary consists of a header, a text section, an initialized data
//! section, an uninitialized (bss) size, and an import table naming the
//! kernel exports the driver calls. DDT loads only this artifact — the
//! assembly source never reaches the tool, which is what makes the drivers
//! "closed-source" (DESIGN.md §2).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Magic bytes identifying a DXE image.
pub const DXE_MAGIC: &[u8; 4] = b"DXE1";

/// An entry in the import table: a kernel export used by the driver.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Import {
    /// Kernel export table id (determines the trap address).
    pub export_id: u16,
    /// Export name, for reports and Table 1 accounting.
    pub name: String,
}

/// A loadable driver binary.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DxeImage {
    /// Driver name (from the `.name` directive; shown in bug reports).
    pub name: String,
    /// Address the image must be loaded at.
    pub load_base: u32,
    /// Absolute address of the `DriverEntry` routine.
    pub entry: u32,
    /// Machine code.
    pub text: Vec<u8>,
    /// Initialized data, placed immediately after text (8-byte aligned).
    pub data: Vec<u8>,
    /// Size in bytes of zero-initialized memory after data.
    pub bss_size: u32,
    /// Kernel exports referenced by the driver.
    pub imports: Vec<Import>,
}

/// Errors produced when decoding a DXE image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// The magic bytes were wrong.
    BadMagic,
    /// The image was truncated or a length field was inconsistent.
    Truncated,
    /// A string field was not valid UTF-8.
    BadString,
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::BadMagic => write!(f, "bad DXE magic"),
            ImageError::Truncated => write!(f, "truncated DXE image"),
            ImageError::BadString => write!(f, "invalid UTF-8 in DXE string"),
        }
    }
}

impl std::error::Error for ImageError {}

impl DxeImage {
    /// Address of the first byte after the text section (data starts here,
    /// rounded up to 8 bytes).
    pub fn data_base(&self) -> u32 {
        let end = self.load_base + self.text.len() as u32;
        (end + 7) & !7
    }

    /// Address of the first byte of bss (8-byte aligned).
    pub fn bss_base(&self) -> u32 {
        (self.data_base() + self.data.len() as u32 + 7) & !7
    }

    /// First address past the loaded image.
    pub fn image_end(&self) -> u32 {
        self.bss_base() + self.bss_size
    }

    /// The address range occupied by the text section.
    pub fn text_range(&self) -> std::ops::Range<u32> {
        self.load_base..self.load_base + self.text.len() as u32
    }

    /// The address range occupied by the whole image.
    pub fn image_range(&self) -> std::ops::Range<u32> {
        self.load_base..self.image_end()
    }

    /// Total size of the on-disk binary file.
    pub fn file_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes to the on-disk format.
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_slice(DXE_MAGIC);
        b.put_u8(self.name.len() as u8);
        b.put_slice(self.name.as_bytes());
        b.put_u32_le(self.load_base);
        b.put_u32_le(self.entry);
        b.put_u32_le(self.text.len() as u32);
        b.put_u32_le(self.data.len() as u32);
        b.put_u32_le(self.bss_size);
        b.put_u32_le(self.imports.len() as u32);
        b.put_slice(&self.text);
        b.put_slice(&self.data);
        for imp in &self.imports {
            b.put_u16_le(imp.export_id);
            b.put_u8(imp.name.len() as u8);
            b.put_slice(imp.name.as_bytes());
        }
        b.freeze()
    }

    /// Parses the on-disk format.
    pub fn from_bytes(raw: &[u8]) -> Result<DxeImage, ImageError> {
        let mut b = raw;
        fn need(b: &[u8], n: usize) -> Result<(), ImageError> {
            if b.remaining() < n {
                Err(ImageError::Truncated)
            } else {
                Ok(())
            }
        }
        need(b, 5)?;
        let mut magic = [0u8; 4];
        b.copy_to_slice(&mut magic);
        if &magic != DXE_MAGIC {
            return Err(ImageError::BadMagic);
        }
        let name_len = b.get_u8() as usize;
        need(b, name_len)?;
        let name = String::from_utf8(b[..name_len].to_vec())
            .map_err(|_| ImageError::BadString)?;
        b.advance(name_len);
        need(b, 24)?;
        let load_base = b.get_u32_le();
        let entry = b.get_u32_le();
        let text_len = b.get_u32_le() as usize;
        let data_len = b.get_u32_le() as usize;
        let bss_size = b.get_u32_le();
        let import_count = b.get_u32_le() as usize;
        need(b, text_len + data_len)?;
        let text = b[..text_len].to_vec();
        b.advance(text_len);
        let data = b[..data_len].to_vec();
        b.advance(data_len);
        let mut imports = Vec::with_capacity(import_count);
        for _ in 0..import_count {
            need(b, 3)?;
            let export_id = b.get_u16_le();
            let ilen = b.get_u8() as usize;
            need(b, ilen)?;
            let iname =
                String::from_utf8(b[..ilen].to_vec()).map_err(|_| ImageError::BadString)?;
            b.advance(ilen);
            imports.push(Import { export_id, name: iname });
        }
        Ok(DxeImage { name, load_base, entry, text, data, bss_size, imports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DxeImage {
        DxeImage {
            name: "rtl8029".into(),
            load_base: 0x40_0000,
            entry: 0x40_0008,
            text: vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16],
            data: vec![0xaa; 12],
            bss_size: 64,
            imports: vec![
                Import { export_id: 3, name: "NdisAllocateMemoryWithTag".into() },
                Import { export_id: 9, name: "NdisMRegisterMiniport".into() },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let img = sample();
        let bytes = img.to_bytes();
        let back = DxeImage::from_bytes(&bytes).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn layout_addresses() {
        let img = sample();
        assert_eq!(img.data_base(), 0x40_0010, "text is 16 bytes, aligned to 8");
        assert_eq!(img.bss_base(), 0x40_0020, "bss aligns to 8");
        assert_eq!(img.image_end(), 0x40_0020 + 64);
        assert!(img.text_range().contains(&img.entry));
    }

    #[test]
    fn data_base_alignment() {
        let mut img = sample();
        img.text = vec![0; 9];
        assert_eq!(img.data_base() % 8, 0);
        assert!(img.data_base() >= img.load_base + 9);
    }

    #[test]
    fn bad_magic_rejected() {
        let img = sample();
        let mut bytes = img.to_bytes().to_vec();
        bytes[0] = b'X';
        assert_eq!(DxeImage::from_bytes(&bytes), Err(ImageError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let img = sample();
        let bytes = img.to_bytes();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert_eq!(
                DxeImage::from_bytes(&bytes[..cut]),
                Err(ImageError::Truncated),
                "cut at {cut}"
            );
        }
    }
}
