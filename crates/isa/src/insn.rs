//! Instruction definitions and the fixed 8-byte encoding.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A general-purpose register (`r0`–`r15`).
///
/// Calling convention: arguments and return value in `r0`–`r3`, `r4`–`r11`
/// callee-saved, `r12` scratch, `r13` = stack pointer, `r14` = link register,
/// `r15` scratch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The stack pointer alias (`r13`).
    pub const SP: Reg = Reg(13);
    /// The link register alias (`r14`).
    pub const LR: Reg = Reg(14);

    /// Returns the register for index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 15`.
    pub fn new(i: u8) -> Reg {
        assert!(i < 16, "no such register r{i}");
        Reg(i)
    }

    /// The register index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => write!(f, "sp"),
            14 => write!(f, "lr"),
            n => write!(f, "r{n}"),
        }
    }
}

/// A decoded DDT-32 instruction.
///
/// All instructions encode to [`crate::INSN_SIZE`] bytes. Branch and call
/// targets are absolute addresses (the assembler resolves labels because the
/// image load base is fixed at assembly time, like a non-relocatable PE).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Insn {
    /// Stop the machine (used by test stubs, never by well-formed drivers).
    Halt,
    /// No operation.
    Nop,
    /// `rd = imm`.
    Movi { rd: Reg, imm: u32 },
    /// `rd = rs`.
    Mov { rd: Reg, rs: Reg },
    /// `rd = rs + rt`.
    Add { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs + imm` (also used for `sub rd, rs, imm` with negated imm).
    Addi { rd: Reg, rs: Reg, imm: u32 },
    /// `rd = rs - rt`.
    Sub { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs * rt` (wrapping).
    Mul { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs / rt` unsigned; division by zero faults.
    Udiv { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs % rt` unsigned; division by zero faults.
    Urem { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs / rt` signed; division by zero faults.
    Sdiv { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs & rt`.
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs & imm`.
    Andi { rd: Reg, rs: Reg, imm: u32 },
    /// `rd = rs | rt`.
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs | imm`.
    Ori { rd: Reg, rs: Reg, imm: u32 },
    /// `rd = rs ^ rt`.
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs ^ imm`.
    Xori { rd: Reg, rs: Reg, imm: u32 },
    /// `rd = !rs` (bitwise).
    Not { rd: Reg, rs: Reg },
    /// `rd = rs << rt` (amounts ≥ 32 yield 0).
    Shl { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs << imm`.
    Shli { rd: Reg, rs: Reg, imm: u32 },
    /// `rd = rs >> rt` logical.
    Shr { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs >> imm` logical.
    Shri { rd: Reg, rs: Reg, imm: u32 },
    /// `rd = rs >> rt` arithmetic.
    Sar { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs >> imm` arithmetic.
    Sari { rd: Reg, rs: Reg, imm: u32 },
    /// `rd = word [rs + imm]` (imm is a signed displacement).
    Ldw { rd: Reg, rs: Reg, imm: u32 },
    /// `rd = zext(half [rs + imm])`.
    Ldh { rd: Reg, rs: Reg, imm: u32 },
    /// `rd = zext(byte [rs + imm])`.
    Ldb { rd: Reg, rs: Reg, imm: u32 },
    /// `word [rs + imm] = rt`.
    Stw { rs: Reg, rt: Reg, imm: u32 },
    /// `half [rs + imm] = rt[15:0]`.
    Sth { rs: Reg, rt: Reg, imm: u32 },
    /// `byte [rs + imm] = rt[7:0]`.
    Stb { rs: Reg, rt: Reg, imm: u32 },
    /// `pc = imm`.
    Jmp { imm: u32 },
    /// `pc = rs`.
    Jr { rs: Reg },
    /// Branch to `imm` if `rs == rt`.
    Beq { rs: Reg, rt: Reg, imm: u32 },
    /// Branch if `rs != rt`.
    Bne { rs: Reg, rt: Reg, imm: u32 },
    /// Branch if `rs < rt` signed.
    Blt { rs: Reg, rt: Reg, imm: u32 },
    /// Branch if `rs >= rt` signed.
    Bge { rs: Reg, rt: Reg, imm: u32 },
    /// Branch if `rs < rt` unsigned.
    Bltu { rs: Reg, rt: Reg, imm: u32 },
    /// Branch if `rs >= rt` unsigned.
    Bgeu { rs: Reg, rt: Reg, imm: u32 },
    /// `lr = pc + 8; pc = imm`.
    Call { imm: u32 },
    /// `lr = pc + 8; pc = rs`.
    Callr { rs: Reg },
    /// `pc = lr`.
    Ret,
    /// `sp -= 4; word [sp] = rs`.
    Push { rs: Reg },
    /// `rd = word [sp]; sp += 4`.
    Pop { rd: Reg },
    /// `rd = port-read(imm)`.
    In { rd: Reg, imm: u32 },
    /// `rd = port-read(rs)`.
    Inr { rd: Reg, rs: Reg },
    /// `port-write(imm, rt)`.
    Out { rt: Reg, imm: u32 },
    /// `port-write(rs, rt)`.
    Outr { rs: Reg, rt: Reg },
}

mod op {
    pub const HALT: u8 = 0x00;
    pub const NOP: u8 = 0x01;
    pub const MOVI: u8 = 0x02;
    pub const MOV: u8 = 0x03;
    pub const ADD: u8 = 0x04;
    pub const ADDI: u8 = 0x05;
    pub const SUB: u8 = 0x06;
    pub const MUL: u8 = 0x07;
    pub const UDIV: u8 = 0x08;
    pub const UREM: u8 = 0x09;
    pub const SDIV: u8 = 0x0a;
    pub const AND: u8 = 0x0b;
    pub const ANDI: u8 = 0x0c;
    pub const OR: u8 = 0x0d;
    pub const ORI: u8 = 0x0e;
    pub const XOR: u8 = 0x0f;
    pub const XORI: u8 = 0x10;
    pub const NOT: u8 = 0x11;
    pub const SHL: u8 = 0x12;
    pub const SHLI: u8 = 0x13;
    pub const SHR: u8 = 0x14;
    pub const SHRI: u8 = 0x15;
    pub const SAR: u8 = 0x16;
    pub const SARI: u8 = 0x17;
    pub const LDW: u8 = 0x20;
    pub const LDH: u8 = 0x21;
    pub const LDB: u8 = 0x22;
    pub const STW: u8 = 0x23;
    pub const STH: u8 = 0x24;
    pub const STB: u8 = 0x25;
    pub const JMP: u8 = 0x30;
    pub const JR: u8 = 0x31;
    pub const BEQ: u8 = 0x32;
    pub const BNE: u8 = 0x33;
    pub const BLT: u8 = 0x34;
    pub const BGE: u8 = 0x35;
    pub const BLTU: u8 = 0x36;
    pub const BGEU: u8 = 0x37;
    pub const CALL: u8 = 0x38;
    pub const CALLR: u8 = 0x39;
    pub const RET: u8 = 0x3a;
    pub const PUSH: u8 = 0x40;
    pub const POP: u8 = 0x41;
    pub const IN: u8 = 0x50;
    pub const INR: u8 = 0x51;
    pub const OUT: u8 = 0x52;
    pub const OUTR: u8 = 0x53;
}

/// Encodes an instruction to its 8-byte form.
pub fn encode(i: Insn) -> [u8; 8] {
    use Insn::*;
    let (opc, rd, rs, rt, imm): (u8, u8, u8, u8, u32) = match i {
        Halt => (op::HALT, 0, 0, 0, 0),
        Nop => (op::NOP, 0, 0, 0, 0),
        Movi { rd, imm } => (op::MOVI, rd.0, 0, 0, imm),
        Mov { rd, rs } => (op::MOV, rd.0, rs.0, 0, 0),
        Add { rd, rs, rt } => (op::ADD, rd.0, rs.0, rt.0, 0),
        Addi { rd, rs, imm } => (op::ADDI, rd.0, rs.0, 0, imm),
        Sub { rd, rs, rt } => (op::SUB, rd.0, rs.0, rt.0, 0),
        Mul { rd, rs, rt } => (op::MUL, rd.0, rs.0, rt.0, 0),
        Udiv { rd, rs, rt } => (op::UDIV, rd.0, rs.0, rt.0, 0),
        Urem { rd, rs, rt } => (op::UREM, rd.0, rs.0, rt.0, 0),
        Sdiv { rd, rs, rt } => (op::SDIV, rd.0, rs.0, rt.0, 0),
        And { rd, rs, rt } => (op::AND, rd.0, rs.0, rt.0, 0),
        Andi { rd, rs, imm } => (op::ANDI, rd.0, rs.0, 0, imm),
        Or { rd, rs, rt } => (op::OR, rd.0, rs.0, rt.0, 0),
        Ori { rd, rs, imm } => (op::ORI, rd.0, rs.0, 0, imm),
        Xor { rd, rs, rt } => (op::XOR, rd.0, rs.0, rt.0, 0),
        Xori { rd, rs, imm } => (op::XORI, rd.0, rs.0, 0, imm),
        Not { rd, rs } => (op::NOT, rd.0, rs.0, 0, 0),
        Shl { rd, rs, rt } => (op::SHL, rd.0, rs.0, rt.0, 0),
        Shli { rd, rs, imm } => (op::SHLI, rd.0, rs.0, 0, imm),
        Shr { rd, rs, rt } => (op::SHR, rd.0, rs.0, rt.0, 0),
        Shri { rd, rs, imm } => (op::SHRI, rd.0, rs.0, 0, imm),
        Sar { rd, rs, rt } => (op::SAR, rd.0, rs.0, rt.0, 0),
        Sari { rd, rs, imm } => (op::SARI, rd.0, rs.0, 0, imm),
        Ldw { rd, rs, imm } => (op::LDW, rd.0, rs.0, 0, imm),
        Ldh { rd, rs, imm } => (op::LDH, rd.0, rs.0, 0, imm),
        Ldb { rd, rs, imm } => (op::LDB, rd.0, rs.0, 0, imm),
        Stw { rs, rt, imm } => (op::STW, 0, rs.0, rt.0, imm),
        Sth { rs, rt, imm } => (op::STH, 0, rs.0, rt.0, imm),
        Stb { rs, rt, imm } => (op::STB, 0, rs.0, rt.0, imm),
        Jmp { imm } => (op::JMP, 0, 0, 0, imm),
        Jr { rs } => (op::JR, 0, rs.0, 0, 0),
        Beq { rs, rt, imm } => (op::BEQ, 0, rs.0, rt.0, imm),
        Bne { rs, rt, imm } => (op::BNE, 0, rs.0, rt.0, imm),
        Blt { rs, rt, imm } => (op::BLT, 0, rs.0, rt.0, imm),
        Bge { rs, rt, imm } => (op::BGE, 0, rs.0, rt.0, imm),
        Bltu { rs, rt, imm } => (op::BLTU, 0, rs.0, rt.0, imm),
        Bgeu { rs, rt, imm } => (op::BGEU, 0, rs.0, rt.0, imm),
        Call { imm } => (op::CALL, 0, 0, 0, imm),
        Callr { rs } => (op::CALLR, 0, rs.0, 0, 0),
        Ret => (op::RET, 0, 0, 0, 0),
        Push { rs } => (op::PUSH, 0, rs.0, 0, 0),
        Pop { rd } => (op::POP, rd.0, 0, 0, 0),
        In { rd, imm } => (op::IN, rd.0, 0, 0, imm),
        Inr { rd, rs } => (op::INR, rd.0, rs.0, 0, 0),
        Out { rt, imm } => (op::OUT, 0, 0, rt.0, imm),
        Outr { rs, rt } => (op::OUTR, 0, rs.0, rt.0, 0),
    };
    let mut b = [0u8; 8];
    b[0] = opc;
    b[1] = rd;
    b[2] = rs;
    b[3] = rt;
    b[4..8].copy_from_slice(&imm.to_le_bytes());
    b
}

/// Decodes an 8-byte instruction, or `None` for an invalid opcode or
/// register field (which the VM turns into an illegal-instruction fault).
pub fn decode(b: &[u8; 8]) -> Option<Insn> {
    use Insn::*;
    let (opc, rd8, rs8, rt8) = (b[0], b[1], b[2], b[3]);
    if rd8 > 15 || rs8 > 15 || rt8 > 15 {
        return None;
    }
    let (rd, rs, rt) = (Reg(rd8), Reg(rs8), Reg(rt8));
    let imm = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
    Some(match opc {
        op::HALT => Halt,
        op::NOP => Nop,
        op::MOVI => Movi { rd, imm },
        op::MOV => Mov { rd, rs },
        op::ADD => Add { rd, rs, rt },
        op::ADDI => Addi { rd, rs, imm },
        op::SUB => Sub { rd, rs, rt },
        op::MUL => Mul { rd, rs, rt },
        op::UDIV => Udiv { rd, rs, rt },
        op::UREM => Urem { rd, rs, rt },
        op::SDIV => Sdiv { rd, rs, rt },
        op::AND => And { rd, rs, rt },
        op::ANDI => Andi { rd, rs, imm },
        op::OR => Or { rd, rs, rt },
        op::ORI => Ori { rd, rs, imm },
        op::XOR => Xor { rd, rs, rt },
        op::XORI => Xori { rd, rs, imm },
        op::NOT => Not { rd, rs },
        op::SHL => Shl { rd, rs, rt },
        op::SHLI => Shli { rd, rs, imm },
        op::SHR => Shr { rd, rs, rt },
        op::SHRI => Shri { rd, rs, imm },
        op::SAR => Sar { rd, rs, rt },
        op::SARI => Sari { rd, rs, imm },
        op::LDW => Ldw { rd, rs, imm },
        op::LDH => Ldh { rd, rs, imm },
        op::LDB => Ldb { rd, rs, imm },
        op::STW => Stw { rs, rt, imm },
        op::STH => Sth { rs, rt, imm },
        op::STB => Stb { rs, rt, imm },
        op::JMP => Jmp { imm },
        op::JR => Jr { rs },
        op::BEQ => Beq { rs, rt, imm },
        op::BNE => Bne { rs, rt, imm },
        op::BLT => Blt { rs, rt, imm },
        op::BGE => Bge { rs, rt, imm },
        op::BLTU => Bltu { rs, rt, imm },
        op::BGEU => Bgeu { rs, rt, imm },
        op::CALL => Call { imm },
        op::CALLR => Callr { rs },
        op::RET => Ret,
        op::PUSH => Push { rs },
        op::POP => Pop { rd },
        op::IN => In { rd, imm },
        op::INR => Inr { rd, rs },
        op::OUT => Out { rt, imm },
        op::OUTR => Outr { rs, rt },
        _ => return None,
    })
}

impl Insn {
    /// True if the instruction ends a basic block (any control transfer).
    pub fn is_terminator(self) -> bool {
        use Insn::*;
        matches!(
            self,
            Halt | Jmp { .. }
                | Jr { .. }
                | Beq { .. }
                | Bne { .. }
                | Blt { .. }
                | Bge { .. }
                | Bltu { .. }
                | Bgeu { .. }
                | Call { .. }
                | Callr { .. }
                | Ret
        )
    }

    /// Returns the static branch/call target, if the instruction has one.
    pub fn static_target(self) -> Option<u32> {
        use Insn::*;
        match self {
            Jmp { imm }
            | Beq { imm, .. }
            | Bne { imm, .. }
            | Blt { imm, .. }
            | Bge { imm, .. }
            | Bltu { imm, .. }
            | Bgeu { imm, .. }
            | Call { imm } => Some(imm),
            _ => None,
        }
    }

    /// True for conditional branches (two successors).
    pub fn is_cond_branch(self) -> bool {
        use Insn::*;
        matches!(
            self,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Insn> {
        use Insn::*;
        let r = Reg::new;
        vec![
            Halt,
            Nop,
            Movi { rd: r(1), imm: 0xdead_beef },
            Mov { rd: r(2), rs: r(3) },
            Add { rd: r(1), rs: r(2), rt: r(3) },
            Addi { rd: r(1), rs: r(2), imm: 0xffff_fffc },
            Sub { rd: r(4), rs: r(5), rt: r(6) },
            Mul { rd: r(7), rs: r(8), rt: r(9) },
            Udiv { rd: r(1), rs: r(2), rt: r(3) },
            Urem { rd: r(1), rs: r(2), rt: r(3) },
            Sdiv { rd: r(1), rs: r(2), rt: r(3) },
            And { rd: r(1), rs: r(2), rt: r(3) },
            Andi { rd: r(1), rs: r(2), imm: 0xff },
            Or { rd: r(1), rs: r(2), rt: r(3) },
            Ori { rd: r(1), rs: r(2), imm: 0x10 },
            Xor { rd: r(1), rs: r(2), rt: r(3) },
            Xori { rd: r(1), rs: r(2), imm: 1 },
            Not { rd: r(1), rs: r(2) },
            Shl { rd: r(1), rs: r(2), rt: r(3) },
            Shli { rd: r(1), rs: r(2), imm: 4 },
            Shr { rd: r(1), rs: r(2), rt: r(3) },
            Shri { rd: r(1), rs: r(2), imm: 4 },
            Sar { rd: r(1), rs: r(2), rt: r(3) },
            Sari { rd: r(1), rs: r(2), imm: 31 },
            Ldw { rd: r(1), rs: r(13), imm: 8 },
            Ldh { rd: r(1), rs: r(2), imm: 2 },
            Ldb { rd: r(1), rs: r(2), imm: 1 },
            Stw { rs: r(13), rt: r(1), imm: 4 },
            Sth { rs: r(2), rt: r(1), imm: 0 },
            Stb { rs: r(2), rt: r(1), imm: 3 },
            Jmp { imm: 0x40_0100 },
            Jr { rs: r(14) },
            Beq { rs: r(1), rt: r(2), imm: 0x40_0000 },
            Bne { rs: r(1), rt: r(2), imm: 0x40_0000 },
            Blt { rs: r(1), rt: r(2), imm: 0x40_0000 },
            Bge { rs: r(1), rt: r(2), imm: 0x40_0000 },
            Bltu { rs: r(1), rt: r(2), imm: 0x40_0000 },
            Bgeu { rs: r(1), rt: r(2), imm: 0x40_0000 },
            Call { imm: 0xf000_0010 },
            Callr { rs: r(5) },
            Ret,
            Push { rs: r(4) },
            Pop { rd: r(4) },
            In { rd: r(0), imm: 0x10 },
            Inr { rd: r(0), rs: r(1) },
            Out { rt: r(0), imm: 0x10 },
            Outr { rs: r(1), rt: r(0) },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for i in all_variants() {
            let b = encode(i);
            assert_eq!(decode(&b), Some(i), "roundtrip failed for {i:?}");
        }
    }

    #[test]
    fn invalid_opcode_decodes_to_none() {
        let b = [0xee, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(decode(&b), None);
    }

    #[test]
    fn invalid_register_decodes_to_none() {
        let mut b = encode(Insn::Mov { rd: Reg(0), rs: Reg(1) });
        b[1] = 16;
        assert_eq!(decode(&b), None);
    }

    #[test]
    fn terminator_classification() {
        assert!(Insn::Ret.is_terminator());
        assert!(Insn::Jmp { imm: 0 }.is_terminator());
        assert!(Insn::Beq { rs: Reg(0), rt: Reg(1), imm: 0 }.is_cond_branch());
        assert!(!Insn::Nop.is_terminator());
        assert!(!Insn::Add { rd: Reg(0), rs: Reg(1), rt: Reg(2) }.is_terminator());
    }

    #[test]
    fn static_targets() {
        assert_eq!(Insn::Call { imm: 0x1234 }.static_target(), Some(0x1234));
        assert_eq!(Insn::Ret.static_target(), None);
        assert_eq!(Insn::Jr { rs: Reg(1) }.static_target(), None);
    }

    #[test]
    fn reg_display_uses_aliases() {
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
        assert_eq!(Reg(3).to_string(), "r3");
    }
}
