//! Disassembler for DDT-32 binaries.
//!
//! Used by DDT's bug reports and trace post-processing (§3.5): when a trace
//! is unwound, each program counter is rendered through this module.

use crate::insn::{Insn, Reg};
use crate::{decode, trap_export_id, INSN_SIZE};

/// Formats one instruction at `pc` as assembly-like text.
pub fn format_insn(i: Insn) -> String {
    use Insn::*;
    fn shex(imm: u32) -> String {
        let s = imm as i32;
        if s < 0 {
            format!("-{:#x}", s.unsigned_abs())
        } else {
            format!("{s:#x}")
        }
    }
    fn mem(rs: Reg, imm: u32) -> String {
        let s = imm as i32;
        if s == 0 {
            format!("[{rs}]")
        } else if s > 0 {
            format!("[{rs}+{s:#x}]")
        } else {
            format!("[{rs}-{:#x}]", s.unsigned_abs())
        }
    }
    match i {
        Halt => "halt".into(),
        Nop => "nop".into(),
        Movi { rd, imm } => format!("mov {rd}, {imm:#x}"),
        Mov { rd, rs } => format!("mov {rd}, {rs}"),
        Add { rd, rs, rt } => format!("add {rd}, {rs}, {rt}"),
        Addi { rd, rs, imm } => format!("add {rd}, {rs}, {}", shex(imm)),
        Sub { rd, rs, rt } => format!("sub {rd}, {rs}, {rt}"),
        Mul { rd, rs, rt } => format!("mul {rd}, {rs}, {rt}"),
        Udiv { rd, rs, rt } => format!("udiv {rd}, {rs}, {rt}"),
        Urem { rd, rs, rt } => format!("urem {rd}, {rs}, {rt}"),
        Sdiv { rd, rs, rt } => format!("sdiv {rd}, {rs}, {rt}"),
        And { rd, rs, rt } => format!("and {rd}, {rs}, {rt}"),
        Andi { rd, rs, imm } => format!("and {rd}, {rs}, {imm:#x}"),
        Or { rd, rs, rt } => format!("or {rd}, {rs}, {rt}"),
        Ori { rd, rs, imm } => format!("or {rd}, {rs}, {imm:#x}"),
        Xor { rd, rs, rt } => format!("xor {rd}, {rs}, {rt}"),
        Xori { rd, rs, imm } => format!("xor {rd}, {rs}, {imm:#x}"),
        Not { rd, rs } => format!("not {rd}, {rs}"),
        Shl { rd, rs, rt } => format!("shl {rd}, {rs}, {rt}"),
        Shli { rd, rs, imm } => format!("shl {rd}, {rs}, {imm}"),
        Shr { rd, rs, rt } => format!("shr {rd}, {rs}, {rt}"),
        Shri { rd, rs, imm } => format!("shr {rd}, {rs}, {imm}"),
        Sar { rd, rs, rt } => format!("sar {rd}, {rs}, {rt}"),
        Sari { rd, rs, imm } => format!("sar {rd}, {rs}, {imm}"),
        Ldw { rd, rs, imm } => format!("ldw {rd}, {}", mem(rs, imm)),
        Ldh { rd, rs, imm } => format!("ldh {rd}, {}", mem(rs, imm)),
        Ldb { rd, rs, imm } => format!("ldb {rd}, {}", mem(rs, imm)),
        Stw { rs, rt, imm } => format!("stw {}, {rt}", mem(rs, imm)),
        Sth { rs, rt, imm } => format!("sth {}, {rt}", mem(rs, imm)),
        Stb { rs, rt, imm } => format!("stb {}, {rt}", mem(rs, imm)),
        Jmp { imm } => format!("jmp {imm:#x}"),
        Jr { rs } => format!("jr {rs}"),
        Beq { rs, rt, imm } => format!("beq {rs}, {rt}, {imm:#x}"),
        Bne { rs, rt, imm } => format!("bne {rs}, {rt}, {imm:#x}"),
        Blt { rs, rt, imm } => format!("blt {rs}, {rt}, {imm:#x}"),
        Bge { rs, rt, imm } => format!("bge {rs}, {rt}, {imm:#x}"),
        Bltu { rs, rt, imm } => format!("bltu {rs}, {rt}, {imm:#x}"),
        Bgeu { rs, rt, imm } => format!("bgeu {rs}, {rt}, {imm:#x}"),
        Call { imm } => match trap_export_id(imm) {
            Some(id) => format!("call @export_{id}"),
            None => format!("call {imm:#x}"),
        },
        Callr { rs } => format!("call {rs}"),
        Ret => "ret".into(),
        Push { rs } => format!("push {rs}"),
        Pop { rd } => format!("pop {rd}"),
        In { rd, imm } => format!("in {rd}, {imm:#x}"),
        Inr { rd, rs } => format!("in {rd}, {rs}"),
        Out { rt, imm } => format!("out {imm:#x}, {rt}"),
        Outr { rs, rt } => format!("out {rs}, {rt}"),
    }
}

/// Disassembles a text section into `(pc, insn text)` lines.
///
/// Undecodable slots are rendered as `.invalid`.
pub fn disassemble(text: &[u8], base: u32) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, chunk) in text.chunks(INSN_SIZE as usize).enumerate() {
        let pc = base + i as u32 * INSN_SIZE;
        let line = match chunk.try_into().ok().and_then(|c: &[u8; 8]| decode(c)) {
            Some(insn) => format_insn(insn),
            None => ".invalid".into(),
        };
        out.push((pc, line));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn formats_are_parsable_looking() {
        let i = Insn::Ldw { rd: Reg(0), rs: Reg(1), imm: 8 };
        assert_eq!(format_insn(i), "ldw r0, [r1+0x8]");
        let i = Insn::Addi { rd: Reg(2), rs: Reg(2), imm: (-4i32) as u32 };
        assert_eq!(format_insn(i), "add r2, r2, -0x4");
        let i = Insn::Stw { rs: Reg::SP, rt: Reg(1), imm: 0 };
        assert_eq!(format_insn(i), "stw [sp], r1");
    }

    #[test]
    fn call_renders_export_ids() {
        let i = Insn::Call { imm: crate::export_trap_addr(12) };
        assert_eq!(format_insn(i), "call @export_12");
    }

    #[test]
    fn disassemble_walks_text() {
        let mut text = Vec::new();
        text.extend_from_slice(&encode(Insn::Nop));
        text.extend_from_slice(&encode(Insn::Ret));
        text.extend_from_slice(&[0xff; 8]);
        let out = disassemble(&text, 0x40_0000);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], (0x40_0000, "nop".into()));
        assert_eq!(out[1], (0x40_0008, "ret".into()));
        assert_eq!(out[2], (0x40_0010, ".invalid".into()));
    }
}
