//! Static analysis over driver binaries: basic blocks, functions, imports.
//!
//! DDT's coverage heuristic maintains a hit counter per basic block (§4.3),
//! so the exerciser needs the block partition of the driver's text section.
//! The Table 1 census ("number of functions", "number of called kernel
//! functions") is computed here as well.

use std::collections::{BTreeMap, BTreeSet};

use crate::image::DxeImage;
use crate::insn::Insn;
use crate::{decode, trap_export_id, INSN_SIZE};

/// A basic block: a maximal straight-line instruction run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u32,
    /// Address one past the last instruction.
    pub end: u32,
    /// Static successor addresses (conditional branches have two; indirect
    /// jumps and returns have none statically).
    pub successors: Vec<u32>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> u32 {
        (self.end - self.start) / INSN_SIZE
    }

    /// True if the block is empty (never produced by the analyzer).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// True if `pc` falls within this block.
    pub fn contains(&self, pc: u32) -> bool {
        (self.start..self.end).contains(&pc)
    }
}

/// Static analysis results for one driver binary.
#[derive(Clone, Debug)]
pub struct CodeAnalysis {
    /// Basic blocks keyed by start address.
    pub blocks: BTreeMap<u32, BasicBlock>,
    /// Function entry addresses (the image entry + every static call target
    /// inside the image).
    pub functions: BTreeSet<u32>,
    /// Kernel export ids called anywhere in the text section.
    pub called_exports: BTreeSet<u16>,
    /// Start addresses of blocks that call into the kernel. Every dynamic
    /// checker observes the driver at these call boundaries, so they are
    /// the "checker sites" the bug-directed search heuristic steers toward.
    pub call_blocks: BTreeSet<u32>,
}

impl CodeAnalysis {
    /// The start address of the block containing `pc`, if any.
    pub fn block_of(&self, pc: u32) -> Option<u32> {
        self.blocks.range(..=pc).next_back().and_then(|(_, b)| b.contains(pc).then_some(b.start))
    }

    /// Total number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Shortest CFG distance (in blocks, over static successor edges) from
    /// each block to the nearest kernel-call block. Blocks that cannot
    /// reach a checker site statically are absent. Computed by a reverse
    /// BFS seeded from [`call_blocks`](Self::call_blocks) at distance 0.
    pub fn checker_distances(&self) -> BTreeMap<u32, u64> {
        let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for b in self.blocks.values() {
            for &s in &b.successors {
                if self.blocks.contains_key(&s) {
                    preds.entry(s).or_default().push(b.start);
                }
            }
        }
        let mut dist: BTreeMap<u32, u64> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<u32> = BTreeSet::iter(&self.call_blocks)
            .map(|&b| {
                dist.insert(b, 0);
                b
            })
            .collect();
        while let Some(b) = queue.pop_front() {
            let d = dist[&b];
            for &p in preds.get(&b).map(Vec::as_slice).unwrap_or(&[]) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(p) {
                    e.insert(d + 1);
                    queue.push_back(p);
                }
            }
        }
        dist
    }
}

/// Decodes the instruction at `pc` from an image's text section.
pub fn insn_at(image: &DxeImage, pc: u32) -> Option<Insn> {
    if !image.text_range().contains(&pc) {
        return None;
    }
    let off = (pc - image.load_base) as usize;
    let chunk: &[u8; 8] = image.text.get(off..off + 8)?.try_into().ok()?;
    decode(chunk)
}

/// Computes basic blocks, function entries, and the kernel-import census.
pub fn analyze(image: &DxeImage) -> CodeAnalysis {
    let base = image.load_base;
    let n = (image.text.len() as u32) / INSN_SIZE;
    let mut insns: Vec<Option<Insn>> = Vec::with_capacity(n as usize);
    for i in 0..n {
        insns.push(insn_at(image, base + i * INSN_SIZE));
    }
    let in_text = |a: u32| image.text_range().contains(&a);

    // Leaders: entry, branch targets, fall-throughs after terminators.
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    let mut functions: BTreeSet<u32> = BTreeSet::new();
    let mut called_exports: BTreeSet<u16> = BTreeSet::new();
    leaders.insert(image.entry);
    functions.insert(image.entry);
    // Function pointers stored in the data section (entry-point tables the
    // driver registers with the kernel, OID dispatch tables): any aligned
    // word pointing at an instruction boundary in text is a function.
    for chunk in image.data.chunks_exact(4) {
        let v = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        if in_text(v) && (v - base).is_multiple_of(INSN_SIZE) {
            functions.insert(v);
            leaders.insert(v);
        }
    }
    for (i, insn) in insns.iter().enumerate() {
        let pc = base + i as u32 * INSN_SIZE;
        let Some(insn) = insn else { continue };
        if let Some(t) = insn.static_target() {
            if let Insn::Call { .. } = insn {
                if let Some(id) = trap_export_id(t) {
                    called_exports.insert(id);
                } else if in_text(t) {
                    functions.insert(t);
                    leaders.insert(t);
                }
            } else if in_text(t) {
                leaders.insert(t);
            }
        }
        if insn.is_terminator() {
            let next = pc + INSN_SIZE;
            if in_text(next) {
                leaders.insert(next);
            }
        }
    }

    // Partition into blocks.
    let mut blocks = BTreeMap::new();
    let mut call_blocks: BTreeSet<u32> = BTreeSet::new();
    let leader_list: Vec<u32> = leaders.iter().copied().collect();
    for (k, &start) in leader_list.iter().enumerate() {
        let limit = leader_list.get(k + 1).copied().unwrap_or(base + n * INSN_SIZE);
        let mut pc = start;
        let mut successors = Vec::new();
        let mut end = start;
        while pc < limit {
            end = pc + INSN_SIZE;
            let idx = ((pc - base) / INSN_SIZE) as usize;
            let Some(insn) = insns[idx] else {
                break; // Undecodable instruction terminates the block.
            };
            if insn.is_terminator() {
                match insn {
                    Insn::Call { imm } => {
                        // Calls return; successor is the next instruction
                        // (and the callee, if it is local code).
                        if trap_export_id(imm).is_some() {
                            call_blocks.insert(start);
                        }
                        if in_text(imm) {
                            successors.push(imm);
                        }
                        if in_text(end) {
                            successors.push(end);
                        }
                    }
                    Insn::Callr { .. }
                        if in_text(end) => {
                            successors.push(end);
                        }
                    Insn::Jmp { imm }
                        if in_text(imm) => {
                            successors.push(imm);
                        }
                    _ if insn.is_cond_branch() => {
                        if let Some(t) = insn.static_target() {
                            if in_text(t) {
                                successors.push(t);
                            }
                        }
                        if in_text(end) {
                            successors.push(end);
                        }
                    }
                    // Ret, Jr, Halt: no static successors.
                    _ => {}
                }
                break;
            }
            pc = end;
        }
        if end > start {
            if end == limit && !insns[((end - INSN_SIZE - base) / INSN_SIZE) as usize]
                .map(Insn::is_terminator)
                .unwrap_or(true)
            {
                // Fell through into the next leader.
                successors.push(limit);
            }
            blocks.insert(start, BasicBlock { start, end, successors });
        }
    }

    CodeAnalysis { blocks, functions, called_exports, call_blocks }
}

/// Summary row for the Table 1 census.
#[derive(Clone, Debug)]
pub struct DriverCensus {
    /// Driver name.
    pub name: String,
    /// Size of the on-disk binary file in bytes.
    pub file_size: usize,
    /// Size of the code segment in bytes.
    pub code_size: usize,
    /// Number of functions discovered.
    pub functions: usize,
    /// Number of distinct kernel exports called.
    pub kernel_functions: usize,
    /// Number of basic blocks (used by Figures 2 and 3).
    pub basic_blocks: usize,
}

/// Computes the Table 1 row for a driver image.
pub fn census(image: &DxeImage) -> DriverCensus {
    let a = analyze(image);
    DriverCensus {
        name: image.name.clone(),
        file_size: image.file_size(),
        code_size: image.text.len(),
        functions: a.functions.len(),
        kernel_functions: a.called_exports.len().max(image.imports.len()),
        basic_blocks: a.block_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{assemble, ExportMap};

    fn build(src: &str) -> DxeImage {
        let mut exports = ExportMap::new();
        exports.insert("KeSleep".into(), 4);
        exports.insert("KeAlloc".into(), 5);
        assemble(src, &exports).expect("asm").image
    }

    #[test]
    fn straight_line_is_one_block() {
        let img = build("DriverEntry:\n nop\n nop\n ret");
        let a = analyze(&img);
        assert_eq!(a.block_count(), 1);
        let b = a.blocks.values().next().unwrap();
        assert_eq!(b.len(), 3);
        assert!(b.successors.is_empty());
    }

    #[test]
    fn conditional_branch_splits_blocks() {
        let img = build(
            "DriverEntry:
                beq r0, r1, yes
                nop
                ret
            yes:
                ret",
        );
        let a = analyze(&img);
        assert_eq!(a.block_count(), 3);
        let entry = &a.blocks[&img.entry];
        assert_eq!(entry.successors.len(), 2, "branch + fall-through");
    }

    #[test]
    fn immediate_compare_pseudo_stays_in_one_block() {
        // `beq r0, 5, x` expands to movi+beq; the movi must not split.
        let img = build(
            "DriverEntry:
                beq r0, 5, out
                nop
            out:
                ret",
        );
        let a = analyze(&img);
        let entry = &a.blocks[&img.entry];
        assert_eq!(entry.len(), 2, "movi and beq together");
    }

    #[test]
    fn calls_define_functions_and_census_imports() {
        let img = build(
            "DriverEntry:
                call helper
                call @KeSleep
                call @KeAlloc
                ret
            helper:
                call @KeSleep
                ret",
        );
        let a = analyze(&img);
        assert_eq!(a.functions.len(), 2, "entry + helper");
        assert_eq!(a.called_exports.len(), 2);
        let c = census(&img);
        assert_eq!(c.functions, 2);
        assert_eq!(c.kernel_functions, 2);
        assert!(c.file_size > c.code_size);
    }

    #[test]
    fn block_of_maps_interior_pcs() {
        let img = build("DriverEntry:\n nop\n nop\n ret");
        let a = analyze(&img);
        let base = img.entry;
        assert_eq!(a.block_of(base), Some(base));
        assert_eq!(a.block_of(base + 8), Some(base));
        assert_eq!(a.block_of(base + 16), Some(base));
        assert_eq!(a.block_of(base + 24), None, "past the end");
    }

    #[test]
    fn loop_successors() {
        let img = build(
            "DriverEntry:
            top:
                add r0, r0, 1
                bltu r0, r1, top
                ret",
        );
        let a = analyze(&img);
        let top = &a.blocks[&img.entry];
        assert!(top.successors.contains(&img.entry), "back edge");
        assert!(top.successors.iter().any(|&s| s != img.entry), "exit edge");
    }

    #[test]
    fn kernel_call_blocks_and_checker_distances() {
        let img = build(
            "DriverEntry:
                beq r0, r1, far
                nop
                call @KeSleep
                ret
            far:
                nop
                ret",
        );
        let a = analyze(&img);
        // Exactly one block contains a kernel call: the fall-through arm.
        assert_eq!(a.call_blocks.len(), 1);
        let call_block = *a.call_blocks.iter().next().unwrap();
        let dist = a.checker_distances();
        assert_eq!(dist.get(&call_block), Some(&0), "checker site is distance 0");
        // The entry block branches into the calling block: distance 1.
        assert_eq!(dist.get(&img.entry), Some(&1));
        // `far` never reaches a kernel call: absent from the map.
        let far = a.blocks.keys().copied().max().unwrap();
        assert!(!a.call_blocks.contains(&far));
        assert_eq!(dist.get(&far), None, "unreachable-from: no distance");
    }

    #[test]
    fn call_fallthrough_successor() {
        let img = build(
            "DriverEntry:
                call @KeSleep
                nop
                ret",
        );
        let a = analyze(&img);
        let entry = &a.blocks[&img.entry];
        // Kernel call: only the fall-through successor is static.
        assert_eq!(entry.successors, vec![img.entry + 8]);
    }
}
