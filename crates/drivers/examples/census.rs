//! Prints the Table 1 census for the bundled drivers (dev tool).
fn main() {
    for d in ddt_drivers::drivers() {
        let a = d.build();
        let c = ddt_isa::analysis::census(&a.image);
        println!("{:10} file={:5} code={:5} fns={:3} kfns={:3} bbs={:3}", c.name, c.file_size, c.code_size, c.functions, c.kernel_functions, c.basic_blocks);
    }
}
