; Ensoniq AudioPCI (ES1370) sound driver (synthetic analog).
;
; Seeded defects (Table 2 rows 8-11):
;    8. when ExAllocatePoolWithTag returns NULL, the error-handling path
;       itself stores through the NULL pointer (the check exists, the
;       error path is broken)
;    9. the PcNewInterruptSync status is ignored; the (NULL) sync object
;       is dereferenced immediately afterwards
;   10. the ISR is live before the DMA buffer pointer is published:
;       an interrupt during initialization dereferences NULL
;   11. Play clears the DMA buffer pointer while reprogramming the DMA
;       engine and waits with the ISR live: an interrupt while playing
;       dereferences NULL
;
; The ISR trusts the hardware status register rather than driver state,
; which is what turns the two windows (init, playback) into crashes.

.name ensoniq
.equ TAG,          0x45533137       ; 'ES17'
.equ SUCCESS,      0
.equ FAILURE,      0xC0000001
.equ PORT_STATUS,  0x10
.equ PORT_CTRL,    0x11
.equ PORT_DMA_A,   0x12             ; DMA base register
.equ PORT_VOL,     0x13
.equ PLAY_IRQ,     1                ; status bit: playback frame done
.equ IRQ_LINE,     6

.text
DriverEntry:
    push lr
    lea  r0, adapter_table
    call @PcRegisterAdapter
    mov  r0, SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
; Initialize(r0 = adapter handle) -> status
Initialize:
    push r4, r5, lr
    lea  r1, adapter
    stw  [r1], r0

    ; Device extension from non-paged pool.
    mov  r0, 0                      ; NonPagedPool
    mov  r1, 256
    mov  r2, TAG
    call @ExAllocatePoolWithTag
    bne  r0, 0, ext_ok
    ; Error-handling path: record the failure in the extension... which is
    ; exactly the NULL pointer we just failed to obtain. Defect 8.
    mov  r1, FAILURE
    stw  [r0+8], r1
    mov  r0, FAILURE
    pop  lr, r5, r4
    ret
ext_ok:
    lea  r1, ext
    stw  [r1], r0

    ; Interrupt sync object. The status is ignored: defect 9. From here
    ; the ISR is live while the DMA pointer is still NULL: defect 10.
    lea  r0, scratch
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, IRQ_LINE
    call @PcNewInterruptSync
    lea  r1, scratch
    ldw  r5, [r1]                   ; r5 = sync object (NULL on failure)
    lea  r1, sync_obj
    stw  [r1], r5
    ldw  r2, [r5+4]                 ; defect 9: unchecked dereference
    lea  r1, sync_rev
    stw  [r1], r2

    ; Wave-out subdevice.
    lea  r0, adapter
    ldw  r0, [r0]
    lea  r1, name_wave
    call @PcRegisterSubdevice

    ; DMA buffer; published only at the end of initialization.
    lea  r0, scratch
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, 4096
    call @PcNewDmaChannel
    bne  r0, 0, init_fail_dma
    lea  r1, scratch
    ldw  r5, [r1]
    out  PORT_DMA_A, r5             ; program the engine
    lea  r1, dma_buf
    stw  [r1], r5                   ; <-- end of the defect-10 window

    lea  r1, ready
    mov  r2, 1
    stw  [r1], r2
    mov  r0, SUCCESS
    pop  lr, r5, r4
    ret

init_fail_dma:
    ; Correct cleanup for this path.
    lea  r0, ext
    ldw  r0, [r0]
    mov  r1, TAG
    call @ExFreePoolWithTag
    mov  r0, FAILURE
    pop  lr, r5, r4
    ret

; --------------------------------------------------------------------------
; Send(r0 = handle, r1 = unused) = Play: start or restart playback.
Play:
    push r4, lr
    lea  r2, ready
    ldw  r2, [r2]
    beq  r2, 0, play_fail
    ; Reprogram the DMA engine. The pointer is parked at NULL while the
    ; engine is being re-written: defect 11 window.
    lea  r1, dma_buf
    ldw  r4, [r1]
    mov  r2, 0
    stw  [r1], r2                   ; dma_buf = NULL
    out  PORT_DMA_A, r4
    mov  r0, 5
    call @KeStallExecutionProcessor ; hardware settle; ISR can fire here
    lea  r1, dma_buf
    stw  [r1], r4                   ; republish
    lea  r1, playing
    mov  r2, 1
    stw  [r1], r2
    mov  r2, 1
    out  PORT_CTRL, r2              ; start
    mov  r0, SUCCESS
    pop  lr, r4
    ret
play_fail:
    mov  r0, FAILURE
    pop  lr, r4
    ret

; --------------------------------------------------------------------------
; QueryInformation(r0=handle, r1=prop, r2=buf, r3=len): position property.
QueryInformation:
    push lr
    bne  r1, 0, qp_bad
    bltu r3, 4, qp_bad
    in   r1, PORT_STATUS
    shr  r1, r1, 8                  ; frame counter field
    stw  [r2], r1
    mov  r0, SUCCESS
    pop  lr
    ret
qp_bad:
    mov  r0, FAILURE
    pop  lr
    ret

; --------------------------------------------------------------------------
; SetInformation(r0=handle, r1=prop, r2=buf, r3=len) = SetFormat/SetVolume.
SetInformation:
    push lr
    bltu r3, 4, sp_bad
    beq  r1, 0, sp_rate
    bne  r1, 1, sp_bad
    ; Volume: clamped correctly.
    ldw  r1, [r2]
    bltu r1, 256, sp_vol_ok
    mov  r1, 255
sp_vol_ok:
    out  PORT_VOL, r1
    mov  r0, SUCCESS
    pop  lr
    ret
sp_rate:
    ldw  r1, [r2]
    bltu r1, 8000, sp_bad
    bgeu r1, 48001, sp_bad
    lea  r2, rate
    stw  [r2], r1
    mov  r0, SUCCESS
    pop  lr
    ret
sp_bad:
    mov  r0, FAILURE
    pop  lr
    ret

; --------------------------------------------------------------------------
; Isr(r0 = ctx): trusts the hardware status register. Defects 10 and 11
; manifest here as NULL dereferences of dma_buf.
Isr:
    push lr
    in   r1, PORT_STATUS
    and  r2, r1, PLAY_IRQ
    beq  r2, 0, isr_no
    out  PORT_CTRL, r2              ; acknowledge the frame interrupt
    lea  r1, dma_buf
    ldw  r1, [r1]
    ldw  r2, [r1]                   ; fetch the next frame pointer
    lea  r3, cur_frame
    stw  [r3], r2
    mov  r0, 1
    pop  lr
    ret
isr_no:
    mov  r0, 0
    pop  lr
    ret

; --------------------------------------------------------------------------
; HandleInterrupt(r0 = ctx): the DPC; advances the ring tail.
HandleInterrupt:
    push lr
    lea  r1, cur_frame
    ldw  r1, [r1]
    and  r1, r1, 0xfff
    lea  r2, tail
    stw  [r2], r1
    mov  r0, 0
    pop  lr
    ret

; --------------------------------------------------------------------------
; Aux = StopDma(r0 = handle): correct ordering (flag first, then pointer).
StopDma:
    push lr
    lea  r1, playing
    mov  r2, 0
    stw  [r1], r2
    out  PORT_CTRL, r2
    mov  r0, SUCCESS
    pop  lr
    ret

Reset:
    push lr
    mov  r1, 0x80
    out  PORT_CTRL, r1
    mov  r0, SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
; Halt(r0 = handle): correct teardown.
Halt:
    push lr
    ; Stop interrupt delivery before tearing anything down (correct order).
    lea  r0, sync_obj
    ldw  r0, [r0]
    call @PcDisconnectInterrupt
    lea  r0, dma_buf
    ldw  r0, [r0]
    beq  r0, 0, halt_no_dma
    call @PcFreeDmaChannel
halt_no_dma:
    lea  r0, ext
    ldw  r0, [r0]
    beq  r0, 0, halt_no_ext
    mov  r1, TAG
    call @ExFreePoolWithTag
halt_no_ext:
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    mov  r0, SUCCESS
    pop  lr
    ret

CheckForHang:
    mov  r0, 0
    ret

.data
adapter_table:
    .word Initialize, Play, QueryInformation, SetInformation
    .word Isr, HandleInterrupt, Reset, Halt, CheckForHang, StopDma
name_wave:
    .asciz "Wave"

.bss
adapter:   .space 4
ext:       .space 4
sync_obj:  .space 4
sync_rev:  .space 4
dma_buf:   .space 4
playing:   .space 4
ready:     .space 4
rate:      .space 4
cur_frame: .space 4
tail:      .space 4
scratch:   .space 32
