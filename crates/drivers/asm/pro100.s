; Intel Pro/100 NIC driver (synthetic analog of the DDK sample driver).
;
; Seeded defect (Table 2 row 13):
;   13. the DPC acquires its lock with NdisDprAcquireSpinLock but, on the
;       tx-error handling sub-path, releases it with NdisReleaseSpinLock
;       instead of NdisDprReleaseSpinLock. Microsoft documentation
;       explicitly prohibits this; it corrupts the IRQL and can hang or
;       panic the kernel.
;
; The error sub-path is guarded by a device status bit that well-behaved
; concrete hardware never sets, so only symbolic hardware reaches it.

.name pro100
.equ TAG,          0x45313030       ; 'E100'
.equ NDIS_SUCCESS, 0
.equ NDIS_FAILURE, 0xC0000001
.equ NDIS_NOTSUP,  0xC00000BB
.equ OID_BASE,     0x00010100
.equ PORT_SCB,     0x10             ; status/command block
.equ PORT_IACK,    0x11
.equ PORT_PORT,    0x12             ; the PORT register (reset etc.)
.equ PORT_TX,      0x14
.equ IRQ_LINE,     5

.text
DriverEntry:
    push lr
    lea  r0, miniport_table
    call @NdisMRegisterMiniport
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret


; --------------------------------------------------------------------------
; read_eeprom(r0 = word index) -> r0 = word
read_eeprom:
    out  0x18, r0                   ; EEPROM address latch
    in   r0, 0x19                   ; EEPROM data
    ret

; --------------------------------------------------------------------------
; eeprom_checksum() -> r0 = 1 if the 8-word EEPROM checksums to 0xBABA
eeprom_checksum:
    push r4, r5, lr
    mov  r4, 0
    mov  r5, 0
ee_loop:
    mov  r0, r4
    call read_eeprom
    and  r0, r0, 0xffff
    add  r5, r5, r0
    add  r4, r4, 1
    bltu r4, 8, ee_loop
    and  r5, r5, 0xffff
    beq  r5, 0xBABA, ee_ok
    mov  r0, 0
    pop  lr, r5, r4
    ret
ee_ok:
    mov  r0, 1
    pop  lr, r5, r4
    ret

; --------------------------------------------------------------------------
; self_test() -> r0 = 1 on pass; exercises the SCB through the PORT reg.
self_test:
    push lr
    mov  r1, 1
    out  PORT_PORT, r1              ; selective reset
    in   r1, PORT_SCB
    and  r1, r1, 0x00f0
    bne  r1, 0, st_fail
    mov  r1, 2
    out  PORT_PORT, r1              ; self-test command
    in   r1, PORT_SCB
    and  r1, r1, 0x000f
    bne  r1, 0, st_fail
    mov  r0, 1
    pop  lr
    ret
st_fail:
    mov  r0, 0
    pop  lr
    ret

; --------------------------------------------------------------------------
; Initialize(r0 = adapter handle) -> status: correct throughout.
Initialize:
    push r4, r5, lr
    lea  r1, adapter
    stw  [r1], r0

    ; Validate the EEPROM and run the controller self-test first.
    call eeprom_checksum
    beq  r0, 0, init_bad_hw
    call self_test
    beq  r0, 0, init_bad_hw
    ; Load the MAC address words.
    mov  r0, 0
    call read_eeprom
    lea  r1, mac_lo
    stw  [r1], r0
    mov  r0, 1
    call read_eeprom
    lea  r1, mac_hi
    stw  [r1], r0

    ; The tx lock protects the shared tx bookkeeping.
    lea  r0, tx_lock
    call @NdisAllocateSpinLock

    lea  r0, scratch
    mov  r1, 512
    mov  r2, TAG
    call @NdisAllocateMemoryWithTag
    bne  r0, 0, init_fail
    lea  r1, scratch
    ldw  r5, [r1]
    lea  r1, cb_block
    stw  [r1], r5

    lea  r0, timer
    lea  r1, adapter
    ldw  r1, [r1]
    lea  r2, TimerFn
    mov  r3, 0
    call @NdisMInitializeTimer
    lea  r0, intr_obj
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, IRQ_LINE
    mov  r3, 0
    call @NdisMRegisterInterrupt

    lea  r1, ready
    mov  r2, 1
    stw  [r1], r2
    mov  r0, NDIS_SUCCESS
    pop  lr, r5, r4
    ret

init_bad_hw:
    mov  r0, NDIS_FAILURE
    pop  lr, r5, r4
    ret

init_fail:
    ; Correct failure path: release the lock allocation too.
    lea  r0, tx_lock
    call @NdisFreeSpinLock
    mov  r0, NDIS_FAILURE
    pop  lr, r5, r4
    ret

; --------------------------------------------------------------------------
; Send(r0 = handle, r1 = packet): correct lock usage at passive level.
Send:
    push r4, lr
    lea  r2, ready
    ldw  r2, [r2]
    beq  r2, 0, send_fail
    ldw  r2, [r1]
    ldw  r3, [r1+4]
    bgeu r3, 1515, send_fail
    ; Serialize against the DPC.
    mov  r4, r1                     ; keep the packet across the call
    lea  r0, tx_lock
    call @NdisAcquireSpinLock
    lea  r1, tx_pending
    ldw  r2, [r1]
    add  r2, r2, 1
    stw  [r1], r2
    out  PORT_TX, r2
    lea  r0, tx_lock
    call @NdisReleaseSpinLock       ; matches the acquire variant: correct
    lea  r0, adapter
    ldw  r0, [r0]
    mov  r1, r4
    mov  r2, 0
    call @NdisMSendComplete
    mov  r0, NDIS_SUCCESS
    pop  lr, r4
    ret
send_fail:
    mov  r0, NDIS_FAILURE
    pop  lr, r4
    ret

; --------------------------------------------------------------------------
QueryInformation:
    push lr
    sub  r1, r1, OID_BASE
    bgeu r1, 5, qi_bad
    bltu r3, 4, qi_bad
    beq  r1, 1, qi_pending
    beq  r1, 2, qi_mac
    beq  r1, 3, qi_errors
    beq  r1, 4, qi_mcast_count
    mov  r1, 100000000
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_pending:
    lea  r1, tx_pending
    ldw  r1, [r1]
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_mac:
    bltu r3, 8, qi_bad
    lea  r1, mac_lo
    ldw  r1, [r1]
    stw  [r2], r1
    lea  r1, mac_hi
    ldw  r1, [r1]
    stw  [r2+4], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_errors:
    lea  r1, tx_errors
    ldw  r1, [r1]
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_mcast_count:
    lea  r1, mcast_count
    ldw  r1, [r1]
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_bad:
    mov  r0, NDIS_NOTSUP
    pop  lr
    ret

SetInformation:
    push r4, r5, lr
    sub  r1, r1, OID_BASE
    bgeu r1, 2, si_bad
    bltu r3, 4, si_bad
    beq  r1, 1, si_mcast
    ldw  r1, [r2]
    lea  r2, rx_filter
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr, r5, r4
    ret
si_mcast:
    ; Install a multicast list, properly bounded (contrast with rtl8029).
    ldw  r1, [r2]                   ; requested entry count
    bgeu r1, 9, si_bad              ; table holds 8 entries
    lea  r4, mcast_count
    stw  [r4], r1
    mov  r4, 0
    beq  r1, 0, si_mc_done
si_mc_loop:
    shl  r5, r4, 2
    add  r5, r2, r5
    ldw  r5, [r5+4]                 ; entry i from the caller buffer
    lea  r0, mcast_table
    shl  r12, r4, 2
    add  r0, r0, r12
    stw  [r0], r5
    add  r4, r4, 1
    bltu r4, r1, si_mc_loop
si_mc_done:
    mov  r0, NDIS_SUCCESS
    pop  lr, r5, r4
    ret
si_bad:
    mov  r0, NDIS_NOTSUP
    pop  lr, r5, r4
    ret

; --------------------------------------------------------------------------
Isr:
    push lr
    in   r1, PORT_SCB
    and  r2, r1, 0x8000
    beq  r2, 0, isr_no
    out  PORT_IACK, r1
    lea  r3, scb_shadow
    stw  [r3], r1
    mov  r0, 1
    pop  lr
    ret
isr_no:
    mov  r0, 0
    pop  lr
    ret

; --------------------------------------------------------------------------
; HandleInterrupt(r0 = ctx): the DPC with defect 13.
HandleInterrupt:
    push r4, lr
    lea  r0, tx_lock
    call @NdisDprAcquireSpinLock    ; correct variant for a DPC
    lea  r1, scb_shadow
    ldw  r4, [r1]
    and  r1, r4, 0x1000             ; tx complete?
    beq  r1, 0, dpc_no_tx
    lea  r1, tx_pending
    ldw  r2, [r1]
    beq  r2, 0, dpc_no_tx
    sub  r2, r2, 1
    stw  [r1], r2
dpc_no_tx:
    and  r1, r4, 0x0800             ; tx underrun error path
    beq  r1, 0, dpc_release_ok
    ; Record the error and bump the retry budget.
    lea  r1, tx_errors
    ldw  r2, [r1]
    add  r2, r2, 1
    stw  [r1], r2
    lea  r0, tx_lock
    call @NdisReleaseSpinLock       ; DEFECT 13: wrong release variant
    mov  r0, 0
    pop  lr, r4
    ret
dpc_release_ok:
    lea  r0, tx_lock
    call @NdisDprReleaseSpinLock    ; correct variant
    mov  r0, 0
    pop  lr, r4
    ret

TimerFn:
    push lr
    in   r1, PORT_SCB
    mov  r0, 0
    pop  lr
    ret

Reset:
    push lr
    mov  r1, 0
    out  PORT_PORT, r1              ; software reset
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

Halt:
    push lr
    lea  r0, intr_obj
    call @NdisMDeregisterInterrupt
    lea  r0, cb_block
    ldw  r0, [r0]
    beq  r0, 0, halt_no_cb
    mov  r1, 512
    mov  r2, 0
    call @NdisFreeMemory
halt_no_cb:
    lea  r0, tx_lock
    call @NdisFreeSpinLock
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

CheckForHang:
    mov  r0, 0
    ret

.data
miniport_table:
    .word Initialize, Send, QueryInformation, SetInformation
    .word Isr, HandleInterrupt, Reset, Halt, CheckForHang, 0

.bss
adapter:    .space 4
mac_lo:     .space 4
mac_hi:     .space 4
mcast_count: .space 4
mcast_table: .space 32
cb_block:   .space 4
tx_pending: .space 4
tx_errors:  .space 4
ready:      .space 4
rx_filter:  .space 4
scb_shadow: .space 4
tx_lock:    .space 8
timer:      .space 16
intr_obj:   .space 16
scratch:    .space 32
