; Intel Pro/1000 gigabit NIC driver (synthetic analog).
;
; Seeded defect (Table 2 row 12):
;   12. memory leak on failed initialization: when the statistics block
;       allocation fails, the error path frees the tx block but forgets
;       the rx block.
;
; This is the largest of the six drivers (as in Table 1): it reads the PCI
; descriptor and branches on hardware revision, loads the EEPROM through
; the register window, validates every OID, and tears down correctly.

.name pro1000
.equ TAG,          0x45313047       ; 'E10G'
.equ NDIS_SUCCESS, 0
.equ NDIS_FAILURE, 0xC0000001
.equ NDIS_NOTSUP,  0xC00000BB
.equ OID_BASE,     0x00010100
.equ PORT_CTRL,    0x10
.equ PORT_STATUS,  0x11
.equ PORT_EERD,    0x12             ; EEPROM read data
.equ PORT_EEADDR,  0x13             ; EEPROM address latch
.equ PORT_ICR,     0x14             ; interrupt cause read
.equ PORT_TDT,     0x15             ; tx tail
.equ PORT_RDT,     0x16             ; rx tail
.equ IRQ_LINE,     11

.text
DriverEntry:
    push lr
    lea  r0, miniport_table
    call @NdisMRegisterMiniport
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
; read_eeprom(r0 = word index) -> r0 = word value
read_eeprom:
    out  PORT_EEADDR, r0
    in   r0, PORT_EERD
    ret

; --------------------------------------------------------------------------
; check_link(r0 unused) -> r0 = 1 if link up
check_link:
    in   r0, PORT_STATUS
    and  r0, r0, 2
    shr  r0, r0, 1
    ret

; --------------------------------------------------------------------------
; Initialize(r0 = adapter handle) -> status
Initialize:
    push r4, r5, r6, lr
    lea  r1, adapter
    stw  [r1], r0

    ; Identify the hardware stepping from the PCI descriptor.
    mov  r0, 0
    mov  r1, 4                      ; revision byte offset
    lea  r2, scratch
    mov  r3, 1
    call @NdisReadPciSlotInformation
    lea  r1, scratch
    ldb  r5, [r1]                   ; r5 = hardware revision
    lea  r1, hw_rev
    stw  [r1], r5

    ; Old steppings need a control-register workaround.
    bgeu r5, 2, init_new_stepping
    mov  r1, 0x40
    out  PORT_CTRL, r1
init_new_stepping:

    ; Load the MAC address from the EEPROM.
    push r0
    mov  r0, 0
    call read_eeprom
    lea  r1, mac_lo
    stw  [r1], r0
    mov  r0, 1
    call read_eeprom
    lea  r1, mac_hi
    stw  [r1], r0
    pop  r0

    ; rx descriptor block.
    lea  r0, scratch
    mov  r1, 1024
    mov  r2, TAG
    call @NdisAllocateMemoryWithTag
    bne  r0, 0, init_fail_plain
    lea  r1, scratch
    ldw  r5, [r1]
    lea  r1, rx_block
    stw  [r1], r5

    ; tx descriptor block.
    lea  r0, scratch
    mov  r1, 1024
    mov  r2, TAG
    call @NdisAllocateMemoryWithTag
    bne  r0, 0, init_fail_free_rx
    lea  r1, scratch
    ldw  r5, [r1]
    lea  r1, tx_block
    stw  [r1], r5

    ; Statistics block. Defect 12 lives on this failure path.
    lea  r0, scratch
    mov  r1, 256
    mov  r2, TAG
    call @NdisAllocateMemoryWithTag
    bne  r0, 0, init_fail_leak_rx
    lea  r1, scratch
    ldw  r5, [r1]
    lea  r1, stats_block
    stw  [r1], r5

    ; Interrupt and timer, correctly ordered.
    lea  r0, timer
    lea  r1, adapter
    ldw  r1, [r1]
    lea  r2, TimerFn
    mov  r3, 0
    call @NdisMInitializeTimer
    lea  r0, intr_obj
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, IRQ_LINE
    mov  r3, 0
    call @NdisMRegisterInterrupt

    call check_link
    lea  r1, link_up
    stw  [r1], r0

    lea  r1, ready
    mov  r2, 1
    stw  [r1], r2
    mov  r0, NDIS_SUCCESS
    pop  lr, r6, r5, r4
    ret

init_fail_free_rx:
    ; Correct cleanup when tx allocation fails.
    lea  r0, rx_block
    ldw  r0, [r0]
    mov  r1, 1024
    mov  r2, 0
    call @NdisFreeMemory
    mov  r0, NDIS_FAILURE
    pop  lr, r6, r5, r4
    ret

init_fail_leak_rx:
    ; Defect 12: frees the tx block but forgets the rx block.
    lea  r0, tx_block
    ldw  r0, [r0]
    mov  r1, 1024
    mov  r2, 0
    call @NdisFreeMemory
    mov  r0, NDIS_FAILURE
    pop  lr, r6, r5, r4
    ret

init_fail_plain:
    mov  r0, NDIS_FAILURE
    pop  lr, r6, r5, r4
    ret

; --------------------------------------------------------------------------
; Send(r0 = handle, r1 = packet) -> status
Send:
    push r4, lr
    lea  r2, ready
    ldw  r2, [r2]
    beq  r2, 0, send_fail
    lea  r2, link_up
    ldw  r2, [r2]
    beq  r2, 0, send_fail
    ldw  r2, [r1]
    ldw  r3, [r1+4]
    bgeu r3, 16384, send_fail       ; jumbo limit
    beq  r3, 0, send_fail
    ldb  r4, [r2]                   ; first payload byte
    ; Copy the length into the tx descriptor ring.
    lea  r4, tx_block
    ldw  r4, [r4]
    stw  [r4], r3
    out  PORT_TDT, r3
    lea  r0, adapter
    ldw  r0, [r0]
    mov  r2, 0
    call @NdisMSendComplete
    mov  r0, NDIS_SUCCESS
    pop  lr, r4
    ret
send_fail:
    mov  r0, NDIS_FAILURE
    pop  lr, r4
    ret

; --------------------------------------------------------------------------
; QueryInformation(r0=handle, r1=oid, r2=buf, r3=len): fully validated.
QueryInformation:
    push lr
    sub  r1, r1, OID_BASE
    bgeu r1, 6, qi_bad
    bltu r3, 4, qi_bad
    beq  r1, 0, qi_speed
    beq  r1, 1, qi_mac_lo
    beq  r1, 2, qi_mac_hi
    beq  r1, 3, qi_link
    beq  r1, 4, qi_stats
    ; OID 5: hardware revision.
    lea  r1, hw_rev
    ldw  r1, [r1]
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_speed:
    mov  r1, 1000000000
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_mac_lo:
    lea  r1, mac_lo
    ldw  r1, [r1]
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_mac_hi:
    lea  r1, mac_hi
    ldw  r1, [r1]
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_link:
    call check_link
    stw  [r2], r0
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_stats:
    lea  r1, stats_block
    ldw  r1, [r1]
    beq  r1, 0, qi_bad
    ldw  r1, [r1]
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_bad:
    mov  r0, NDIS_NOTSUP
    pop  lr
    ret

; --------------------------------------------------------------------------
; SetInformation(r0=handle, r1=oid, r2=buf, r3=len): fully validated.
SetInformation:
    push lr
    sub  r1, r1, OID_BASE
    bgeu r1, 2, si_bad
    bltu r3, 4, si_bad
    beq  r1, 1, si_mtu
    ldw  r1, [r2]
    lea  r2, rx_filter
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
si_mtu:
    ldw  r1, [r2]
    bltu r1, 16384, si_mtu_ok
    mov  r0, NDIS_FAILURE
    pop  lr
    ret
si_mtu_ok:
    lea  r2, mtu
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
si_bad:
    mov  r0, NDIS_NOTSUP
    pop  lr
    ret

; --------------------------------------------------------------------------
Isr:
    push lr
    in   r1, PORT_ICR               ; reading ICR also acknowledges
    and  r2, r1, 0xff
    beq  r2, 0, isr_no
    lea  r3, icr_shadow
    stw  [r3], r2
    mov  r0, 1
    pop  lr
    ret
isr_no:
    mov  r0, 0
    pop  lr
    ret

HandleInterrupt:
    push lr
    lea  r1, icr_shadow
    ldw  r1, [r1]
    and  r2, r1, 0x80               ; rx timer
    beq  r2, 0, dpc_check_link
    mov  r2, 1
    out  PORT_RDT, r2
dpc_check_link:
    and  r2, r1, 0x04               ; link state change
    beq  r2, 0, dpc_done
    call check_link
    lea  r1, link_up
    stw  [r1], r0
dpc_done:
    mov  r0, 0
    pop  lr
    ret

TimerFn:
    push lr
    call check_link
    lea  r1, link_up
    stw  [r1], r0
    mov  r0, 0
    pop  lr
    ret

Reset:
    push lr
    mov  r1, 0x80000000
    out  PORT_CTRL, r1
    in   r1, PORT_STATUS
    and  r1, r1, 1
    beq  r1, 0, reset_ok
    mov  r0, NDIS_FAILURE
    pop  lr
    ret
reset_ok:
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
; Halt(r0 = handle): correct, complete teardown.
Halt:
    push lr
    lea  r0, intr_obj
    call @NdisMDeregisterInterrupt
    lea  r0, stats_block
    ldw  r0, [r0]
    beq  r0, 0, halt_no_stats
    mov  r1, 256
    mov  r2, 0
    call @NdisFreeMemory
halt_no_stats:
    lea  r0, tx_block
    ldw  r0, [r0]
    beq  r0, 0, halt_no_tx
    mov  r1, 1024
    mov  r2, 0
    call @NdisFreeMemory
halt_no_tx:
    lea  r0, rx_block
    ldw  r0, [r0]
    beq  r0, 0, halt_no_rx
    mov  r1, 1024
    mov  r2, 0
    call @NdisFreeMemory
halt_no_rx:
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

CheckForHang:
    push lr
    call check_link
    xor  r0, r0, 1                  ; hung if the link has been down
    lea  r1, link_up
    ldw  r1, [r1]
    and  r0, r0, r1
    mov  r0, 0
    pop  lr
    ret

.data
miniport_table:
    .word Initialize, Send, QueryInformation, SetInformation
    .word Isr, HandleInterrupt, Reset, Halt, CheckForHang, 0

.bss
adapter:     .space 4
hw_rev:      .space 4
mac_lo:      .space 4
mac_hi:      .space 4
rx_block:    .space 4
tx_block:    .space 4
stats_block: .space 4
link_up:     .space 4
ready:       .space 4
rx_filter:   .space 4
mtu:         .space 4
icr_shadow:  .space 4
timer:       .space 16
intr_obj:    .space 16
scratch:     .space 32
