; RTL8029 NE2000-compatible NIC driver (synthetic analog).
;
; Seeded defects (Table 2 rows 1-5):
;   1. init failure path returns without NdisCloseConfiguration
;   2. MaximumMulticastList registry value used as array index unchecked
;   3. ISR arms the work timer; if an interrupt arrives after
;      NdisMRegisterInterrupt but before NdisMInitializeTimer, the kernel
;      is handed an uninitialized timer descriptor (BSOD)
;   4. QueryInformation: unchecked OID jump-table index
;   5. SetInformation: same defect
;
; Lifecycle defects (PR 9, not in Table 2):
;   L1. the surprise-removal handler pokes the reset port after the device
;       is gone (touch-after-remove), and frees the multicast table without
;       clearing the pointer, so a later Halt double-frees it
;
; Everything else is deliberately correct, mirroring a mature driver.

.name rtl8029
.equ TAG,            0x52393238     ; 'R928'
.equ NDIS_SUCCESS,   0
.equ NDIS_FAILURE,   0xC0000001
.equ OID_BASE,       0x00010100
.equ PORT_ISTATUS,   0x10           ; interrupt status
.equ PORT_IACK,      0x11           ; interrupt ack
.equ PORT_RESET,     0x12
.equ PORT_TXLEN,     0x14
.equ PORT_TXKICK,    0x15
.equ PORT_RXSTAT,    0x16
.equ IRQ_LINE,       9

.text
DriverEntry:
    push lr
    lea  r0, miniport_table
    call @NdisMRegisterMiniport
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
; Initialize(r0 = adapter handle) -> status
Initialize:
    push r4, r5, r6, lr
    lea  r1, adapter
    stw  [r1], r0

    ; Open the driver's registry configuration.
    lea  r0, scratch
    lea  r1, scratch+4
    call @NdisOpenConfiguration
    lea  r1, scratch+4
    ldw  r5, [r1]                   ; r5 = config handle
    lea  r1, cfg_handle
    stw  [r1], r5

    ; Read MaximumMulticastList. The value is trusted as-is: defect 2.
    lea  r0, scratch
    lea  r1, scratch+8              ; value struct: type @8, data @12
    mov  r2, r5
    lea  r3, name_mcast
    call @NdisReadConfiguration
    lea  r1, scratch+12
    ldw  r6, [r1]                   ; r6 = MaximumMulticastList (UNCHECKED)
    lea  r1, mcast_n
    stw  [r1], r6

    ; Allocate the 32-entry multicast table.
    lea  r0, scratch
    mov  r1, 128
    mov  r2, TAG
    call @NdisAllocateMemoryWithTag
    bne  r0, 0, init_fail_noclose   ; defect 1: leaks the open config handle
    lea  r1, scratch
    ldw  r5, [r1]                   ; r5 = table base
    lea  r1, mcast_buf
    stw  [r1], r5

    ; Store the list terminator at table[MaximumMulticastList]: defect 2.
    lea  r1, mcast_n
    ldw  r2, [r1]
    shl  r2, r2, 2
    add  r2, r5, r2
    mov  r3, 0xffffffff
    stw  [r2], r3

    ; Probe the device; all-ones means the card is absent.
    in   r1, PORT_ISTATUS
    and  r1, r1, 0xff
    beq  r1, 0xff, init_fail_close

    ; Register the interrupt handler.
    lea  r0, intr_obj
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, IRQ_LINE
    mov  r3, 0
    call @NdisMRegisterInterrupt

    ; <-- defect 3 window: the ISR is live but the timer is uninitialized.

    lea  r0, timer
    lea  r1, adapter
    ldw  r1, [r1]
    lea  r2, TimerFn
    mov  r3, 0
    call @NdisMInitializeTimer

    lea  r1, ready
    mov  r2, 1
    stw  [r1], r2

    ; Close the configuration on the success path (correct).
    lea  r0, cfg_handle
    ldw  r0, [r0]
    call @NdisCloseConfiguration

    ; Subscribe to PnP surprise-removal and power notifications. Registered
    ; last so the callback owns the driver state from the moment it is live.
    lea  r0, PnpNotify
    lea  r1, adapter
    ldw  r1, [r1]
    call @IoRegisterPlugPlayNotification
    mov  r0, NDIS_SUCCESS
    pop  lr, r6, r5, r4
    ret

init_fail_close:
    ; Correct cleanup path: free the table, close the configuration.
    lea  r0, mcast_buf
    ldw  r0, [r0]
    mov  r1, 128
    mov  r2, 0
    call @NdisFreeMemory
    lea  r0, cfg_handle
    ldw  r0, [r0]
    call @NdisCloseConfiguration
    mov  r0, NDIS_FAILURE
    pop  lr, r6, r5, r4
    ret

init_fail_noclose:
    ; Defect 1: early return forgets NdisCloseConfiguration.
    mov  r0, NDIS_FAILURE
    pop  lr, r6, r5, r4
    ret

; --------------------------------------------------------------------------
; Send(r0 = adapter handle, r1 = packet descriptor) -> status
Send:
    push r4, lr
    lea  r4, ready
    ldw  r4, [r4]
    beq  r4, 0, send_notready
    ldw  r2, [r1]                   ; packet data va
    ldw  r3, [r1+4]                 ; packet length
    bltu r3, 1515, send_len_ok
    mov  r0, NDIS_FAILURE
    pop  lr, r4
    ret
send_len_ok:
    ldb  r2, [r2]                   ; touch the payload (granted buffer)
    out  PORT_TXLEN, r3
    out  PORT_TXKICK, r2
    lea  r0, adapter
    ldw  r0, [r0]
    mov  r2, 0
    call @NdisMSendComplete
    mov  r0, NDIS_SUCCESS
    pop  lr, r4
    ret
send_notready:
    mov  r0, NDIS_FAILURE
    pop  lr, r4
    ret

; --------------------------------------------------------------------------
; QueryInformation(r0 = handle, r1 = oid, r2 = buf, r3 = len) -> status
QueryInformation:
    push r4, lr
    sub  r1, r1, OID_BASE
    shl  r1, r1, 2                  ; defect 4: no bounds check on the index
    lea  r4, qi_table
    add  r4, r4, r1
    ldw  r4, [r4]
    call r4
    pop  lr, r4
    ret

qi_gen:                             ; OID 0: link speed
    bltu r3, 4, qi_short
    mov  r1, 10000000
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    ret
qi_addr:                            ; OID 1: station address
    bltu r3, 8, qi_short
    mov  r1, 0x00C25000
    stw  [r2], r1
    mov  r1, 0x2029
    stw  [r2+4], r1
    mov  r0, NDIS_SUCCESS
    ret
qi_stats:                           ; OID 2: rx counter from device
    bltu r3, 4, qi_short
    in   r1, PORT_RXSTAT
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    ret
qi_mcast:                           ; OID 3: multicast list size
    bltu r3, 4, qi_short
    lea  r1, mcast_n
    ldw  r1, [r1]
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    ret
qi_short:
    mov  r0, NDIS_FAILURE
    ret

; --------------------------------------------------------------------------
; SetInformation(r0 = handle, r1 = oid, r2 = buf, r3 = len) -> status
SetInformation:
    push r4, lr
    sub  r1, r1, OID_BASE
    shl  r1, r1, 2                  ; defect 5: same unchecked index
    lea  r4, si_table
    add  r4, r4, r1
    ldw  r4, [r4]
    call r4
    pop  lr, r4
    ret

si_filter:                          ; OID 0: packet filter
    bltu r3, 4, si_short
    ldw  r1, [r2]
    lea  r2, rx_filter
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    ret
si_lookahead:                       ; OID 1: lookahead size (validated!)
    bltu r3, 4, si_short
    ldw  r1, [r2]
    bltu r1, 1515, si_la_ok
    mov  r0, NDIS_FAILURE
    ret
si_la_ok:
    lea  r2, lookahead
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    ret
si_short:
    mov  r0, NDIS_FAILURE
    ret

; --------------------------------------------------------------------------
; Isr(r0 = ctx) -> recognized flag
Isr:
    push lr
    in   r1, PORT_ISTATUS
    and  r2, r1, 1
    beq  r2, 0, isr_not_ours
    out  PORT_IACK, r1              ; acknowledge
    ; Defer the heavy work: defect 3 fires here if the timer is not yet
    ; initialized (interrupt during the Initialize window).
    lea  r0, timer
    mov  r1, 10
    call @NdisMSetTimer
    mov  r0, 1
    pop  lr
    ret
isr_not_ours:
    mov  r0, 0
    pop  lr
    ret

; --------------------------------------------------------------------------
; HandleInterrupt(r0 = ctx): the DPC; drains the receive status.
HandleInterrupt:
    push lr
    in   r1, PORT_RXSTAT
    and  r2, r1, 2
    beq  r2, 0, dpc_done
    lea  r0, adapter
    ldw  r0, [r0]
    mov  r1, NDIS_SUCCESS
    mov  r2, 0
    mov  r3, 0
    call @NdisMIndicateStatus
dpc_done:
    mov  r0, 0
    pop  lr
    ret

; --------------------------------------------------------------------------
; TimerFn(r0 = ctx): deferred device poll.
TimerFn:
    push lr
    in   r1, PORT_ISTATUS
    and  r2, r1, 4
    beq  r2, 0, timer_done
    out  PORT_IACK, r2
timer_done:
    mov  r0, 0
    pop  lr
    ret

; --------------------------------------------------------------------------
; Reset(r0 = handle) -> status
Reset:
    push lr
    mov  r1, 1
    out  PORT_RESET, r1
    in   r1, PORT_RESET
    and  r1, r1, 1
    bne  r1, 0, reset_fail
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
reset_fail:
    mov  r0, NDIS_FAILURE
    pop  lr
    ret

; --------------------------------------------------------------------------
; Halt(r0 = handle): correct teardown.
Halt:
    push lr
    lea  r0, intr_obj
    call @NdisMDeregisterInterrupt
    lea  r0, mcast_buf
    ldw  r0, [r0]
    beq  r0, 0, halt_nofree
    mov  r1, 128
    mov  r2, 0
    call @NdisFreeMemory
halt_nofree:
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
; CheckForHang(r0 = handle) -> bool
CheckForHang:
    mov  r0, 0
    ret

; --------------------------------------------------------------------------
; PnpNotify(r0 = ctx, r1 = event): 1 = surprise removal, 2 = enter D3,
; 3 = back to D0.
PnpNotify:
    push lr
    beq  r1, 1, pnp_remove
    beq  r1, 2, pnp_d3
    beq  r1, 3, pnp_d0
    mov  r0, 0
    pop  lr
    ret
pnp_remove:
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    ; Defect L1: "stop" the card via the reset port — but the card is
    ; already gone (touch-after-remove).
    mov  r1, 1
    out  PORT_RESET, r1
    ; Defect L1: frees the multicast table but leaves the stale pointer
    ; behind; the eventual Halt frees it a second time.
    lea  r0, mcast_buf
    ldw  r0, [r0]
    beq  r0, 0, pnp_done
    mov  r1, 128
    mov  r2, 0
    call @NdisFreeMemory
pnp_done:
    mov  r0, 0
    pop  lr
    ret
pnp_d3:
    ; Correct: quiesce without touching the (sleeping) hardware.
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    mov  r0, 0
    pop  lr
    ret
pnp_d0:
    ; Correct: reprogram the device before accepting work again.
    mov  r1, 0
    out  PORT_RESET, r1
    lea  r1, ready
    mov  r2, 1
    stw  [r1], r2
    mov  r0, 0
    pop  lr
    ret

.data
miniport_table:
    .word Initialize, Send, QueryInformation, SetInformation
    .word Isr, HandleInterrupt, Reset, Halt, CheckForHang, 0
qi_table:
    .word qi_gen, qi_addr, qi_stats, qi_mcast
si_table:
    .word si_filter, si_lookahead
name_mcast:
    .asciz "MaximumMulticastList"

.bss
adapter:     .space 4
cfg_handle:  .space 4
mcast_buf:   .space 4
mcast_n:     .space 4
ready:       .space 4
rx_filter:   .space 4
lookahead:   .space 4
timer:       .space 16
intr_obj:    .space 16
scratch:     .space 32
