; Intel 82801AA AC'97 audio controller driver (synthetic analog).
;
; Seeded defect (Table 2 row 14):
;   14. during playback teardown, StopDma clears the stream descriptor
;       pointer *before* stopping the engine and clearing the playing
;       flag; the wait for the engine is a kernel call, so an interrupt
;       arriving in that window makes the ISR dereference the cleared
;       stream pointer — BSOD during playback.
;
; Lifecycle defect (PR 9, not in Table 2):
;   L2. the power handler's D0 arm flips the ready flag back on without
;       reprogramming the engine (ring pointers, control register): after
;       a suspend/resume cycle the hardware is running stale state
;       (resume-without-restore).
;
; Initialization is fully correct (contrast with the Ensoniq driver):
; allocation failures are handled properly and the interrupt object
; status is checked.

.name ac97
.equ TAG,          0x41433937       ; 'AC97'
.equ SUCCESS,      0
.equ FAILURE,      0xC0000001
.equ PORT_GLOB,    0x10             ; global status
.equ PORT_CTRL,    0x11
.equ PORT_CIV,     0x12             ; current index value
.equ PORT_PICB,    0x13             ; position in current buffer
.equ PORT_NAMBAR,  0x14             ; mixer register window
.equ BUF_IRQ,      1
.equ IRQ_LINE,     7

.text
DriverEntry:
    push lr
    lea  r0, adapter_table
    call @PcRegisterAdapter
    mov  r0, SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
; Initialize(r0 = adapter handle) -> status: correct throughout.
Initialize:
    push r4, r5, lr
    lea  r1, adapter
    stw  [r1], r0

    mov  r0, 0
    mov  r1, 512
    mov  r2, TAG
    call @ExAllocatePoolWithTag
    beq  r0, 0, init_fail_plain     ; correct failure handling
    lea  r1, ext
    stw  [r1], r0

    lea  r0, scratch
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, IRQ_LINE
    call @PcNewInterruptSync
    bne  r0, 0, init_fail_free_ext  ; status checked: correct
    lea  r1, scratch
    ldw  r5, [r1]
    lea  r1, sync_obj
    stw  [r1], r5

    lea  r0, adapter
    ldw  r0, [r0]
    lea  r1, name_out
    call @PcRegisterSubdevice

    lea  r0, scratch
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, 8192
    call @PcNewDmaChannel
    bne  r0, 0, init_fail_free_ext
    lea  r1, scratch
    ldw  r5, [r1]
    lea  r1, dma_buf
    stw  [r1], r5

    ; Cold reset of the codec through the mixer window.
    mov  r1, 2
    out  PORT_CTRL, r1
    in   r1, PORT_GLOB
    and  r1, r1, 0x100              ; codec ready?
    bne  r1, 0, codec_ready
    ; Give it one more chance after a settle delay.
    mov  r0, 50
    call @KeStallExecutionProcessor
    in   r1, PORT_GLOB
    and  r1, r1, 0x100
    beq  r1, 0, init_fail_free_all
codec_ready:
    lea  r1, ready
    mov  r2, 1
    stw  [r1], r2
    ; Subscribe to PnP surprise-removal and power notifications. Registered
    ; last so the callback owns the driver state from the moment it is live.
    lea  r0, PnpNotify
    lea  r1, adapter
    ldw  r1, [r1]
    call @IoRegisterPlugPlayNotification
    mov  r0, SUCCESS
    pop  lr, r5, r4
    ret

init_fail_free_all:
    lea  r0, dma_buf
    ldw  r0, [r0]
    call @PcFreeDmaChannel
init_fail_free_ext:
    lea  r0, ext
    ldw  r0, [r0]
    mov  r1, TAG
    call @ExFreePoolWithTag
init_fail_plain:
    mov  r0, FAILURE
    pop  lr, r5, r4
    ret

; --------------------------------------------------------------------------
; Send(r0 = handle, r1 = unused) = Play: publish the stream and start.
Play:
    push lr
    lea  r2, ready
    ldw  r2, [r2]
    beq  r2, 0, play_fail
    ; The stream descriptor lives in the extension.
    lea  r1, ext
    ldw  r1, [r1]
    lea  r2, stream
    stw  [r2], r1                   ; publish stream descriptor
    lea  r2, playing
    mov  r3, 1
    stw  [r2], r3
    out  PORT_CTRL, r3              ; run
    mov  r0, SUCCESS
    pop  lr
    ret
play_fail:
    mov  r0, FAILURE
    pop  lr
    ret

; --------------------------------------------------------------------------
; QueryInformation(r0=handle, r1=prop, r2=buf, r3=len): playback position.
QueryInformation:
    push lr
    bne  r1, 0, qp_bad
    bltu r3, 8, qp_bad
    in   r1, PORT_CIV
    and  r1, r1, 31                 ; index is masked: correct
    stw  [r2], r1
    in   r1, PORT_PICB
    stw  [r2+4], r1
    mov  r0, SUCCESS
    pop  lr
    ret
qp_bad:
    mov  r0, FAILURE
    pop  lr
    ret

; --------------------------------------------------------------------------
; SetInformation(r0=handle, r1=prop, r2=buf, r3=len): mixer volume.
SetInformation:
    push lr
    bne  r1, 1, sv_bad
    bltu r3, 4, sv_bad
    ldw  r1, [r2]
    and  r1, r1, 0x3f3f             ; both channels masked: correct
    out  PORT_NAMBAR, r1
    mov  r0, SUCCESS
    pop  lr
    ret
sv_bad:
    mov  r0, FAILURE
    pop  lr
    ret

; --------------------------------------------------------------------------
; Isr(r0 = ctx): dereferences the stream descriptor when the hardware
; reports a buffer-complete interrupt while the engine is running.
Isr:
    push lr
    in   r1, PORT_GLOB
    and  r2, r1, BUF_IRQ
    beq  r2, 0, isr_no
    out  PORT_GLOB, r2              ; acknowledge
    lea  r1, playing
    ldw  r1, [r1]
    beq  r1, 0, isr_no
    lea  r1, stream
    ldw  r1, [r1]
    ldw  r2, [r1+16]                ; defect 14: stream may be NULL here
    add  r2, r2, 1
    stw  [r1+16], r2                ; bump the completed-buffer count
    mov  r0, 1
    pop  lr
    ret
isr_no:
    mov  r0, 0
    pop  lr
    ret

; --------------------------------------------------------------------------
HandleInterrupt:
    push lr
    in   r1, PORT_CIV
    and  r1, r1, 31
    lea  r2, civ_shadow
    stw  [r2], r1
    mov  r0, 0
    pop  lr
    ret

; --------------------------------------------------------------------------
; Aux = StopDma(r0 = handle). Defect 14: the stream pointer is cleared
; first, the engine stop waits in the kernel, and only then does the
; playing flag go down — leaving a window where the ISR sees
; playing == 1 with stream == NULL.
StopDma:
    push lr
    lea  r1, stream
    mov  r2, 0
    stw  [r1], r2                   ; cleared too early
    mov  r0, 10
    call @KeStallExecutionProcessor ; engine drain; interrupts still live
    lea  r1, playing
    mov  r2, 0
    stw  [r1], r2                   ; cleared too late
    out  PORT_CTRL, r2
    mov  r0, SUCCESS
    pop  lr
    ret

Reset:
    push lr
    mov  r1, 2
    out  PORT_CTRL, r1
    mov  r0, SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
; Halt(r0 = handle): correct teardown.
Halt:
    push lr
    ; Stop interrupt delivery before tearing anything down (correct order).
    lea  r0, sync_obj
    ldw  r0, [r0]
    call @PcDisconnectInterrupt
    lea  r0, dma_buf
    ldw  r0, [r0]
    beq  r0, 0, halt_no_dma
    call @PcFreeDmaChannel
halt_no_dma:
    lea  r0, ext
    ldw  r0, [r0]
    beq  r0, 0, halt_no_ext
    mov  r1, TAG
    call @ExFreePoolWithTag
halt_no_ext:
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    mov  r0, SUCCESS
    pop  lr
    ret

CheckForHang:
    mov  r0, 0
    ret

; --------------------------------------------------------------------------
; PnpNotify(r0 = ctx, r1 = event): 1 = surprise removal, 2 = enter D3,
; 3 = back to D0.
PnpNotify:
    push lr
    beq  r1, 1, pnp_remove
    beq  r1, 2, pnp_d3
    beq  r1, 3, pnp_d0
    mov  r0, 0
    pop  lr
    ret
pnp_remove:
    ; Correct: quiesce in software only; the hardware is gone.
    lea  r1, playing
    mov  r2, 0
    stw  [r1], r2
    lea  r1, stream
    stw  [r1], r2
    lea  r1, ready
    stw  [r1], r2
    mov  r0, 0
    pop  lr
    ret
pnp_d3:
    ; Correct: stop the engine before the device powers down.
    lea  r1, playing
    mov  r2, 0
    stw  [r1], r2
    out  PORT_CTRL, r2
    lea  r1, ready
    stw  [r1], r2
    mov  r0, 0
    pop  lr
    ret
pnp_d0:
    ; Defect L2: accepts work again without reprogramming the engine —
    ; no control-register write, no ring-pointer restore.
    lea  r1, ready
    mov  r2, 1
    stw  [r1], r2
    mov  r0, 0
    pop  lr
    ret

.data
adapter_table:
    .word Initialize, Play, QueryInformation, SetInformation
    .word Isr, HandleInterrupt, Reset, Halt, CheckForHang, StopDma
name_out:
    .asciz "PCM Out"

.bss
adapter:    .space 4
ext:        .space 4
sync_obj:   .space 4
dma_buf:    .space 4
stream:     .space 4
playing:    .space 4
ready:      .space 4
civ_shadow: .space 4
scratch:    .space 32
