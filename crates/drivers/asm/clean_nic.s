; A fully correct NDIS miniport driver.
;
; Used to validate that DDT reports zero false positives (the paper reports
; none across the whole evaluation, §5.1), and as the base template for the
; SDV-comparison variants. Also clean under device-lifecycle fault injection:
; the PnP handler quiesces in software only, every hardware touch is gated on
; the ready flag, and the ring free is clear-before-free on all paths.

.name clean_nic
.equ TAG,          0x434c4e31       ; 'CLN1'
.equ NDIS_SUCCESS, 0
.equ NDIS_FAILURE, 0xC0000001
.equ NDIS_NOTSUP,  0xC00000BB
.equ OID_BASE,     0x00010100
.equ PORT_STATUS,  0x10
.equ PORT_IACK,    0x11
.equ PORT_TX,      0x14
.equ IRQ_LINE,     4

.text
DriverEntry:
    push lr
    lea  r0, miniport_table
    call @NdisMRegisterMiniport
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
Initialize:
    push r4, r5, lr
    lea  r1, adapter
    stw  [r1], r0

    lea  r0, scratch
    lea  r1, scratch+4
    call @NdisOpenConfiguration
    ; Configuration parameters are optional: if the open itself fails,
    ; fall back to the defaults (and there is no handle to close).
    lea  r1, scratch
    ldw  r1, [r1]
    bne  r1, 0, cfg_unavailable
    lea  r1, scratch+4
    ldw  r5, [r1]
    lea  r1, cfg_handle
    stw  [r1], r5

    ; Read an optional parameter, range-checked before use.
    lea  r0, scratch
    lea  r1, scratch+8
    mov  r2, r5
    lea  r3, name_depth
    call @NdisReadConfiguration
    bne  r0, 0, depth_default
    lea  r1, scratch+12
    ldw  r4, [r1]
    bltu r4, 33, depth_store        ; clamp to the table size: correct
depth_default:
    mov  r4, 8
depth_store:
    lea  r1, ring_depth
    stw  [r1], r4

    ; Always close the configuration, on every path from here on.
    lea  r0, cfg_handle
    ldw  r0, [r0]
    call @NdisCloseConfiguration
    jmp  cfg_done

cfg_unavailable:
    mov  r4, 8
    lea  r1, ring_depth
    stw  [r1], r4

cfg_done:
    lea  r0, scratch
    mov  r1, 256
    mov  r2, TAG
    call @NdisAllocateMemoryWithTag
    bne  r0, 0, init_fail
    lea  r1, scratch
    ldw  r5, [r1]
    lea  r1, ring_block
    stw  [r1], r5

    ; Write the terminator inside bounds (contrast with rtl8029).
    lea  r1, ring_depth
    ldw  r2, [r1]
    shl  r2, r2, 2
    add  r2, r5, r2
    mov  r3, 0
    stw  [r2], r3

    lea  r0, timer
    lea  r1, adapter
    ldw  r1, [r1]
    lea  r2, TimerFn
    mov  r3, 0
    call @NdisMInitializeTimer
    bne  r0, 0, init_fail_free      ; timer setup is mandatory: propagate
    lea  r0, intr_obj
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, IRQ_LINE
    mov  r3, 0
    call @NdisMRegisterInterrupt
    bne  r0, 0, init_fail_free      ; no interrupt, no NIC: propagate

    lea  r1, ready
    mov  r2, 1
    stw  [r1], r2

    ; Subscribe to PnP surprise-removal and power notifications. Registered
    ; *last*: once the callback is live it owns the ready flag and the ring,
    ; so Initialize publishes no state after this point (a removal delivered
    ; at the registration boundary would otherwise be silently undone).
    lea  r0, PnpNotify
    lea  r1, adapter
    ldw  r1, [r1]
    call @IoRegisterPlugPlayNotification
    mov  r0, NDIS_SUCCESS
    pop  lr, r5, r4
    ret

init_fail_free:
    ; A mandatory acquisition failed after the ring was allocated:
    ; release the ring block, then report the failure.
    lea  r0, ring_block
    ldw  r0, [r0]
    mov  r1, 256
    mov  r2, 0
    call @NdisFreeMemory
    lea  r1, ring_block
    mov  r2, 0
    stw  [r1], r2

init_fail:
    ; Nothing outstanding: the configuration was closed above.
    mov  r0, NDIS_FAILURE
    pop  lr, r5, r4
    ret

; --------------------------------------------------------------------------
Send:
    push lr
    lea  r2, ready
    ldw  r2, [r2]
    beq  r2, 0, send_fail
    ldw  r2, [r1]
    ldw  r3, [r1+4]
    bgeu r3, 1515, send_fail
    beq  r3, 0, send_fail
    ldb  r2, [r2]
    out  PORT_TX, r3
    lea  r0, adapter
    ldw  r0, [r0]
    mov  r2, 0
    call @NdisMSendComplete
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
send_fail:
    mov  r0, NDIS_FAILURE
    pop  lr
    ret

; --------------------------------------------------------------------------
QueryInformation:
    push lr
    sub  r1, r1, OID_BASE
    bgeu r1, 2, q_bad
    bltu r3, 4, q_bad
    beq  r1, 1, q_depth
    mov  r1, 100000000
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
q_depth:
    lea  r1, ring_depth
    ldw  r1, [r1]
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
q_bad:
    mov  r0, NDIS_NOTSUP
    pop  lr
    ret

SetInformation:
    push lr
    sub  r1, r1, OID_BASE
    bne  r1, 0, s_bad
    bltu r3, 4, s_bad
    ldw  r1, [r2]
    lea  r2, rx_filter
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
s_bad:
    mov  r0, NDIS_NOTSUP
    pop  lr
    ret

; --------------------------------------------------------------------------
Isr:
    push lr
    in   r1, PORT_STATUS
    and  r2, r1, 1
    beq  r2, 0, isr_no
    out  PORT_IACK, r1
    ; The timer is always initialized before interrupts are registered.
    lea  r0, timer
    mov  r1, 5
    call @NdisMSetTimer
    mov  r0, 1
    pop  lr
    ret
isr_no:
    mov  r0, 0
    pop  lr
    ret

HandleInterrupt:
    push lr
    in   r1, PORT_STATUS
    mov  r0, 0
    pop  lr
    ret

TimerFn:
    push lr
    ; A surprise removal may have landed between the timer being set and
    ; firing: never touch the hardware once ready has been cleared.
    lea  r1, ready
    ldw  r1, [r1]
    beq  r1, 0, timer_done
    in   r1, PORT_STATUS
timer_done:
    mov  r0, 0
    pop  lr
    ret

Reset:
    push lr
    lea  r1, ready
    ldw  r1, [r1]
    beq  r1, 0, reset_done
    mov  r1, 1
    out  PORT_IACK, r1
reset_done:
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

Halt:
    push lr
    lea  r0, intr_obj
    call @NdisMDeregisterInterrupt
    lea  r0, ring_block
    ldw  r0, [r0]
    beq  r0, 0, halt_done
    ; Clear the pointer *before* freeing so a removal notification arriving
    ; at the free boundary cannot observe a stale pointer and free it again.
    lea  r1, ring_block
    mov  r2, 0
    stw  [r1], r2
    mov  r1, 256
    mov  r2, 0
    call @NdisFreeMemory
halt_done:
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

CheckForHang:
    mov  r0, 0
    ret

; --------------------------------------------------------------------------
; PnpNotify(r0 = ctx, r1 = event): 1 = surprise removal, 2 = enter D3,
; 3 = back to D0. Fully correct lifecycle handling — no hardware access
; after removal, clear-before-free on the ring, full reprogramming on
; resume (contrast with rtl8029 defect L1 and ac97 defect L2).
PnpNotify:
    push lr
    beq  r1, 1, pnp_remove
    beq  r1, 2, pnp_d3
    beq  r1, 3, pnp_d0
    mov  r0, 0
    pop  lr
    ret
pnp_remove:
    ; Software-only quiesce: the hardware is gone, so don't touch it.
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    ; Release the ring here; clear the pointer first so Halt (or a second
    ; notification) skips its own free.
    lea  r0, ring_block
    ldw  r0, [r0]
    beq  r0, 0, pnp_remove_done
    lea  r1, ring_block
    mov  r2, 0
    stw  [r1], r2
    mov  r1, 256
    mov  r2, 0
    call @NdisFreeMemory
pnp_remove_done:
    mov  r0, 0
    pop  lr
    ret
pnp_d3:
    ; Stop accepting work before the device powers down; nothing to save
    ; beyond the software state that already lives in memory.
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    mov  r0, 0
    pop  lr
    ret
pnp_d0:
    ; Reprogram the device before accepting work again: the power-up left
    ; the interrupt-acknowledge latch in an unknown state.
    mov  r1, 1
    out  PORT_IACK, r1
    lea  r1, ready
    mov  r2, 1
    stw  [r1], r2
    mov  r0, 0
    pop  lr
    ret

.data
miniport_table:
    .word Initialize, Send, QueryInformation, SetInformation
    .word Isr, HandleInterrupt, Reset, Halt, CheckForHang, 0
name_depth:
    .asciz "RingDepth"

.bss
adapter:    .space 4
cfg_handle: .space 4
ring_block: .space 4
ring_depth: .space 4
ready:      .space 4
rx_filter:  .space 4
timer:      .space 16
intr_obj:   .space 16
scratch:    .space 32
