; AMD PCNet NIC driver (synthetic analog).
;
; Seeded defects (Table 2 rows 6-7):
;   6. memory allocated with NdisAllocateMemoryWithTag is not freed when a
;      later allocation fails during initialization
;   7. packets and buffers (and their pools) are not freed on the same
;      failed-initialization path
;
; The teardown path (Halt) is correct, so the leaks only manifest on the
; failure path that DDT reaches by forking the allocation-failure
; alternative (concrete-to-symbolic annotation on the allocator).

.name pcnet
.equ TAG,          0x50434e54       ; 'PCNT'
.equ NDIS_SUCCESS, 0
.equ NDIS_FAILURE, 0xC0000001
.equ OID_BASE,     0x00010100
.equ PORT_CSR0,    0x10
.equ PORT_IACK,    0x11
.equ PORT_TX,      0x14
.equ IRQ_LINE,     10
.equ RX_RING,      2                ; rx descriptors

.text
DriverEntry:
    push lr
    lea  r0, miniport_table
    call @NdisMRegisterMiniport
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
; Initialize(r0 = adapter handle) -> status
Initialize:
    push r4, r5, r6, lr
    lea  r1, adapter
    stw  [r1], r0

    ; Adapter block (allocation A).
    lea  r0, scratch
    mov  r1, 64
    mov  r2, TAG
    call @NdisAllocateMemoryWithTag
    bne  r0, 0, init_fail_plain     ; Nothing allocated yet: plain failure.
    lea  r1, scratch
    ldw  r5, [r1]
    lea  r1, adapter_block
    stw  [r1], r5

    ; Packet pool + buffer pool + rx ring descriptors.
    lea  r0, scratch
    lea  r1, scratch+4
    mov  r2, RX_RING
    mov  r3, 0
    call @NdisAllocatePacketPool
    lea  r1, scratch+4
    ldw  r5, [r1]
    lea  r1, pkt_pool
    stw  [r1], r5

    lea  r0, scratch
    lea  r1, scratch+4
    mov  r2, RX_RING
    call @NdisAllocateBufferPool
    lea  r1, scratch+4
    ldw  r5, [r1]
    lea  r1, buf_pool
    stw  [r1], r5

    ; Two rx packets, each with one buffer over the rx area.
    mov  r6, 0
ring_loop:
    lea  r0, scratch
    lea  r1, scratch+4
    lea  r2, pkt_pool
    ldw  r2, [r2]
    call @NdisAllocatePacket
    lea  r1, scratch+4
    ldw  r4, [r1]
    lea  r1, rx_pkts
    shl  r5, r6, 2
    add  r1, r1, r5
    stw  [r1], r4

    lea  r0, scratch+8
    lea  r1, buf_pool
    ldw  r1, [r1]
    lea  r2, rx_area
    mov  r3, 256
    call @NdisAllocateBuffer
    lea  r1, scratch+8
    ldw  r4, [r1]
    lea  r1, rx_bufs
    shl  r5, r6, 2
    add  r1, r1, r5
    stw  [r1], r4

    add  r6, r6, 1
    bltu r6, RX_RING, ring_loop

    ; DMA shadow area (allocation B). On failure everything allocated so
    ; far is leaked: defects 6 and 7.
    lea  r0, scratch
    mov  r1, 512
    mov  r2, TAG
    call @NdisAllocateMemoryWithTag
    bne  r0, 0, init_fail_leak      ; <-- the buggy path
    lea  r1, scratch
    ldw  r5, [r1]
    lea  r1, dma_block
    stw  [r1], r5

    ; Interrupt + timer, in the correct order.
    lea  r0, timer
    lea  r1, adapter
    ldw  r1, [r1]
    lea  r2, TimerFn
    mov  r3, 0
    call @NdisMInitializeTimer
    lea  r0, intr_obj
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, IRQ_LINE
    mov  r3, 0
    call @NdisMRegisterInterrupt

    lea  r1, ready
    mov  r2, 1
    stw  [r1], r2
    mov  r0, NDIS_SUCCESS
    pop  lr, r6, r5, r4
    ret

init_fail_leak:
    ; Defects 6 and 7: returns failure without freeing the adapter block,
    ; the rx packets/buffers, or the pools.
    mov  r0, NDIS_FAILURE
    pop  lr, r6, r5, r4
    ret

init_fail_plain:
    mov  r0, NDIS_FAILURE
    pop  lr, r6, r5, r4
    ret

; --------------------------------------------------------------------------
; Send(r0 = handle, r1 = packet) -> status
Send:
    push lr
    lea  r2, ready
    ldw  r2, [r2]
    beq  r2, 0, send_fail
    ldw  r2, [r1]                   ; data va
    ldw  r3, [r1+4]                 ; length
    bgeu r3, 1515, send_fail
    ldb  r2, [r2]
    out  PORT_TX, r3
    lea  r0, adapter
    ldw  r0, [r0]
    mov  r2, 0
    call @NdisMSendComplete
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
send_fail:
    mov  r0, NDIS_FAILURE
    pop  lr
    ret

; --------------------------------------------------------------------------
; QueryInformation(r0=handle, r1=oid, r2=buf, r3=len): bounds-checked.
QueryInformation:
    push lr
    sub  r1, r1, OID_BASE
    bgeu r1, 2, qi_bad
    bltu r3, 4, qi_bad
    beq  r1, 0, qi_speed
    in   r1, PORT_CSR0              ; OID 1: device status register
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_speed:
    mov  r1, 100000000
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
qi_bad:
    mov  r0, 0xC00000BB             ; NDIS_STATUS_NOT_SUPPORTED
    pop  lr
    ret

; --------------------------------------------------------------------------
; SetInformation(r0=handle, r1=oid, r2=buf, r3=len): bounds-checked.
SetInformation:
    push lr
    sub  r1, r1, OID_BASE
    bne  r1, 0, si_bad
    bltu r3, 4, si_bad
    ldw  r1, [r2]
    lea  r2, rx_filter
    stw  [r2], r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
si_bad:
    mov  r0, 0xC00000BB
    pop  lr
    ret

; --------------------------------------------------------------------------
Isr:
    push lr
    in   r1, PORT_CSR0
    and  r2, r1, 0x80
    beq  r2, 0, isr_no
    out  PORT_IACK, r2
    mov  r0, 1
    pop  lr
    ret
isr_no:
    mov  r0, 0
    pop  lr
    ret

HandleInterrupt:
    push lr
    in   r1, PORT_CSR0
    and  r2, r1, 0x40
    beq  r2, 0, dpc_done
    lea  r0, adapter
    ldw  r0, [r0]
    mov  r1, 0
    mov  r2, 0
    mov  r3, 0
    call @NdisMIndicateStatus
dpc_done:
    mov  r0, 0
    pop  lr
    ret

TimerFn:
    push lr
    in   r1, PORT_CSR0
    mov  r0, 0
    pop  lr
    ret

Reset:
    push lr
    mov  r1, 4
    out  PORT_CSR0, r1
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

; --------------------------------------------------------------------------
; Halt(r0 = handle): the CORRECT teardown, for contrast with Initialize.
Halt:
    push r4, r5, lr
    lea  r0, intr_obj
    call @NdisMDeregisterInterrupt

    ; Free both rx packets and buffers.
    mov  r4, 0
halt_loop:
    lea  r1, rx_bufs
    shl  r5, r4, 2
    add  r1, r1, r5
    ldw  r0, [r1]
    beq  r0, 0, halt_skip_buf
    call @NdisFreeBuffer
halt_skip_buf:
    lea  r1, rx_pkts
    shl  r5, r4, 2
    add  r1, r1, r5
    ldw  r0, [r1]
    beq  r0, 0, halt_skip_pkt
    call @NdisFreePacket
halt_skip_pkt:
    add  r4, r4, 1
    bltu r4, RX_RING, halt_loop

    lea  r0, buf_pool
    ldw  r0, [r0]
    beq  r0, 0, halt_skip_bpool
    call @NdisFreeBufferPool
halt_skip_bpool:
    lea  r0, pkt_pool
    ldw  r0, [r0]
    beq  r0, 0, halt_skip_ppool
    call @NdisFreePacketPool
halt_skip_ppool:
    lea  r0, dma_block
    ldw  r0, [r0]
    beq  r0, 0, halt_skip_dma
    mov  r1, 512
    mov  r2, 0
    call @NdisFreeMemory
halt_skip_dma:
    lea  r0, adapter_block
    ldw  r0, [r0]
    beq  r0, 0, halt_skip_ab
    mov  r1, 64
    mov  r2, 0
    call @NdisFreeMemory
halt_skip_ab:
    lea  r1, ready
    mov  r2, 0
    stw  [r1], r2
    mov  r0, NDIS_SUCCESS
    pop  lr, r5, r4
    ret

CheckForHang:
    mov  r0, 0
    ret

.data
miniport_table:
    .word Initialize, Send, QueryInformation, SetInformation
    .word Isr, HandleInterrupt, Reset, Halt, CheckForHang, 0

.bss
adapter:       .space 4
adapter_block: .space 4
dma_block:     .space 4
pkt_pool:      .space 4
buf_pool:      .space 4
rx_pkts:       .space 8
rx_bufs:       .space 8
ready:         .space 4
rx_filter:     .space 4
timer:         .space 16
intr_obj:      .space 16
scratch:       .space 32
rx_area:       .space 512
