//! The closed-source binary drivers used in DDT's evaluation (§5).
//!
//! Six synthetic analogs of the drivers in Table 1 — four NIC drivers using
//! the NDIS-flavored API and two sound drivers using the WDM/port-class
//! API — carrying the 14 previously-unknown bugs of Table 2 (see the bug
//! seeding map in DESIGN.md §7). The drivers are written in DDT-32 assembly
//! and shipped to DDT **only as assembled binaries**; nothing in `ddt-core`
//! looks at these sources.
//!
//! Also here:
//!
//! - a fully correct reference driver ([`clean_driver`]) used to validate
//!   DDT's zero-false-positive property,
//! - the SDV comparison sets ([`samples`]): eight sample-bug drivers and
//!   the five synthetic-bug variants of §5.1,
//! - the concrete workload generator ([`workload`]) standing in for
//!   Microsoft's Device Path Exerciser.

pub mod samples;
pub mod workload;

use ddt_isa::asm::{assemble, Assembled};
use ddt_kernel::loader::DeviceDescriptor;

/// The class of a driver (decides workload and default annotations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverClass {
    /// NDIS network miniport.
    Net,
    /// Port-class audio adapter.
    Audio,
}

/// A driver under test: binary source, PnP identity, registry defaults.
#[derive(Clone, Debug)]
pub struct DriverSpec {
    /// Driver name (matches the `.name` directive).
    pub name: &'static str,
    /// NIC or audio.
    pub class: DriverClass,
    /// Assembly source (private to this crate; DDT sees only the binary).
    source: &'static str,
    /// Registry parameters present on the test machine.
    pub registry: &'static [(&'static str, u32)],
    /// The fake PCI descriptor that makes the kernel load this driver.
    pub descriptor: DeviceDescriptor,
    /// Number of Table 2 bugs seeded in this driver.
    pub expected_bugs: usize,
}

impl DriverSpec {
    /// Assembles the driver to its binary image.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source fails to assemble (a build error in
    /// this crate, not a user error).
    pub fn build(&self) -> Assembled {
        let exports = ddt_kernel::export_map();
        assemble(self.source, &exports)
            .unwrap_or_else(|e| panic!("driver {} failed to assemble: {e}", self.name))
    }
}

fn pci(vendor: u16, device: u16, irq: u8) -> DeviceDescriptor {
    DeviceDescriptor {
        vendor_id: vendor,
        device_id: device,
        revision: 1,
        mmio_len: 0x100,
        io_len: 0x20,
        irq_line: irq,
    }
}

/// The six drivers of Table 1 (synthetic analogs).
pub fn drivers() -> Vec<DriverSpec> {
    vec![
        DriverSpec {
            name: "pro1000",
            class: DriverClass::Net,
            source: include_str!("../asm/pro1000.s"),
            registry: &[("NetworkAddress", 0x0002_b3aa)],
            descriptor: pci(0x8086, 0x100e, 11),
            expected_bugs: 1,
        },
        DriverSpec {
            name: "pro100",
            class: DriverClass::Net,
            source: include_str!("../asm/pro100.s"),
            registry: &[("NetworkAddress", 0x0090_27bb)],
            descriptor: pci(0x8086, 0x1229, 5),
            expected_bugs: 1,
        },
        DriverSpec {
            name: "ac97",
            class: DriverClass::Audio,
            source: include_str!("../asm/ac97.s"),
            registry: &[],
            descriptor: pci(0x8086, 0x2415, 7),
            expected_bugs: 1,
        },
        DriverSpec {
            name: "ensoniq",
            class: DriverClass::Audio,
            source: include_str!("../asm/ensoniq.s"),
            registry: &[],
            descriptor: pci(0x1274, 0x5000, 6),
            expected_bugs: 4,
        },
        DriverSpec {
            name: "pcnet",
            class: DriverClass::Net,
            source: include_str!("../asm/pcnet.s"),
            registry: &[("NetworkAddress", 0x0010_5abc)],
            descriptor: pci(0x1022, 0x2000, 10),
            expected_bugs: 2,
        },
        DriverSpec {
            name: "rtl8029",
            class: DriverClass::Net,
            source: include_str!("../asm/rtl8029.s"),
            registry: &[("MaximumMulticastList", 8), ("NetworkAddress", 0x0050_c2dd)],
            descriptor: pci(0x10ec, 0x8029, 9),
            expected_bugs: 5,
        },
    ]
}

/// Looks a driver up by name.
pub fn driver_by_name(name: &str) -> Option<DriverSpec> {
    drivers().into_iter().find(|d| d.name == name)
}

/// The fully correct reference driver (false-positive validation).
pub fn clean_driver() -> DriverSpec {
    DriverSpec {
        name: "clean_nic",
        class: DriverClass::Net,
        source: include_str!("../asm/clean_nic.s"),
        registry: &[("RingDepth", 16), ("NetworkAddress", 0x00aa_bb01)],
        descriptor: pci(0x1af4, 0x1000, 4),
        expected_bugs: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_isa::analysis;

    #[test]
    fn all_drivers_assemble() {
        for d in drivers() {
            let a = d.build();
            assert_eq!(a.image.name, d.name);
            assert!(!a.image.text.is_empty());
        }
        clean_driver().build();
    }

    #[test]
    fn expected_bug_counts_total_fourteen() {
        let total: usize = drivers().iter().map(|d| d.expected_bugs).sum();
        assert_eq!(total, 14, "Table 2 reports 14 bugs");
    }

    #[test]
    fn drivers_register_all_core_entry_points() {
        for d in drivers() {
            let a = d.build();
            for label in ["Initialize", "Isr", "Halt"] {
                assert!(
                    a.label(label).is_some(),
                    "driver {} missing entry label {label}",
                    d.name
                );
            }
        }
    }

    #[test]
    fn census_matches_table1_shape() {
        // Table 1 orders drivers by size; our analogs must preserve the
        // ordering property "pro1000 is the largest, rtl8029 the smallest
        // NIC driver" in code-segment terms.
        let sizes: std::collections::HashMap<&str, usize> = drivers()
            .iter()
            .map(|d| (d.name, d.build().image.text.len()))
            .collect();
        assert!(sizes["pro1000"] > sizes["pcnet"], "pro1000 outranks pcnet");
        assert!(sizes["pro1000"] > sizes["rtl8029"], "pro1000 outranks rtl8029");
        assert!(sizes["rtl8029"] < sizes["pro100"], "rtl8029 is smaller than pro100");
    }

    #[test]
    fn drivers_import_multiple_kernel_apis() {
        for d in drivers() {
            let a = d.build();
            let census = analysis::census(&a.image);
            assert!(
                census.kernel_functions >= 5,
                "driver {} uses only {} kernel APIs",
                d.name,
                census.kernel_functions
            );
            assert!(census.functions >= 8, "driver {} has too few functions", d.name);
            assert!(census.basic_blocks >= 20, "driver {} has too few blocks", d.name);
        }
    }

    #[test]
    fn driver_binaries_roundtrip() {
        for d in drivers() {
            let a = d.build();
            let bytes = a.image.to_bytes();
            let back = ddt_isa::image::DxeImage::from_bytes(&bytes).unwrap();
            assert_eq!(back, a.image);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(driver_by_name("rtl8029").is_some());
        assert!(driver_by_name("nonexistent").is_none());
    }
}
