//! The concrete workload generator (Device Path Exerciser analog, §4.3).
//!
//! "DDT uses Microsoft's Device Path Exerciser as a concrete workload
//! generator to invoke the entry points of the drivers to be tested" — this
//! module is that generator: it produces the sequence of entry-point
//! invocations the exerciser drives, and DDT explores symbolically from
//! each invocation. For the evaluation workloads of §5.2, "for the network
//! drivers, the workload consisted of sending one packet; for the audio
//! drivers, we played a small sound file".

use crate::DriverClass;

/// Base value of the OID space used by the NIC drivers.
pub const OID_BASE: u32 = 0x0001_0100;

/// One workload operation (one entry-point invocation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Invoke `Initialize` (must be first).
    Initialize,
    /// Send one packet of `len` bytes filled with `fill`.
    Send {
        /// Packet length in bytes.
        len: u32,
        /// Fill byte for the payload.
        fill: u8,
    },
    /// Invoke `QueryInformation` with an OID and an output buffer length.
    Query {
        /// Object identifier.
        oid: u32,
        /// Output buffer length.
        len: u32,
    },
    /// Invoke `SetInformation`.
    Set {
        /// Object identifier.
        oid: u32,
        /// Input buffer length.
        len: u32,
        /// Input value placed in the buffer.
        value: u32,
    },
    /// Deliver all due timer callbacks.
    FireTimers,
    /// Invoke `Reset`.
    Reset,
    /// Invoke `CheckForHang`.
    CheckForHang,
    /// Invoke the auxiliary handler (audio: StopDma).
    Aux,
    /// Invoke `Halt` (teardown).
    Halt,
    /// Surprise-remove the device and deliver the PnP notification (the
    /// driver's registered handler sees event code 1). Skipped for drivers
    /// that never registered a PnP handler.
    SurpriseRemove,
    /// Transition the device to D3 and deliver the power notification
    /// (event code 2).
    Suspend,
    /// Transition the device back to D0 and deliver the power notification
    /// (event code 3).
    Resume,
}

impl WorkloadOp {
    /// A short stable name for traces and coverage plots.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadOp::Initialize => "Initialize",
            WorkloadOp::Send { .. } => "Send",
            WorkloadOp::Query { .. } => "QueryInformation",
            WorkloadOp::Set { .. } => "SetInformation",
            WorkloadOp::FireTimers => "TimerCallback",
            WorkloadOp::Reset => "Reset",
            WorkloadOp::CheckForHang => "CheckForHang",
            WorkloadOp::Aux => "Aux",
            WorkloadOp::Halt => "Halt",
            WorkloadOp::SurpriseRemove => "PnpSurpriseRemove",
            WorkloadOp::Suspend => "PnpSetPowerD3",
            WorkloadOp::Resume => "PnpSetPowerD0",
        }
    }
}

/// The standard workload for a driver class.
pub fn workload_for(class: DriverClass) -> Vec<WorkloadOp> {
    match class {
        DriverClass::Net => vec![
            WorkloadOp::Initialize,
            WorkloadOp::Query { oid: OID_BASE, len: 16 },
            WorkloadOp::Set { oid: OID_BASE, len: 4, value: 0x1f },
            WorkloadOp::Send { len: 64, fill: 0xa5 },
            WorkloadOp::FireTimers,
            WorkloadOp::Query { oid: OID_BASE + 2, len: 16 },
            WorkloadOp::CheckForHang,
            WorkloadOp::Reset,
            WorkloadOp::Halt,
        ],
        DriverClass::Audio => vec![
            WorkloadOp::Initialize,
            WorkloadOp::Set { oid: 0, len: 4, value: 44100 }, // Sample rate.
            WorkloadOp::Set { oid: 1, len: 4, value: 128 },   // Volume.
            WorkloadOp::Send { len: 0, fill: 0 },             // Play.
            WorkloadOp::Query { oid: 0, len: 16 },            // Position.
            WorkloadOp::FireTimers,
            WorkloadOp::Aux,                                  // StopDma.
            WorkloadOp::Halt,
        ],
    }
}

/// A minimal smoke workload (used by quick tests): initialize + halt.
pub fn smoke_workload() -> Vec<WorkloadOp> {
    vec![WorkloadOp::Initialize, WorkloadOp::Halt]
}

/// The standard workload with device-lifecycle events spliced in: a
/// suspend/resume cycle after the steady-state operations, then a surprise
/// removal right before teardown. Drivers without a registered PnP handler
/// skip the lifecycle operations, so this degenerates to the standard
/// workload for them.
pub fn lifecycle_workload_for(class: DriverClass) -> Vec<WorkloadOp> {
    let mut ops = workload_for(class);
    let halt = ops
        .iter()
        .position(|op| matches!(op, WorkloadOp::Halt))
        .expect("every workload ends with Halt");
    ops.splice(
        halt..halt,
        [WorkloadOp::Suspend, WorkloadOp::Resume, WorkloadOp::SurpriseRemove],
    );
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_start_with_initialize_and_end_with_halt() {
        for class in [DriverClass::Net, DriverClass::Audio] {
            let w = workload_for(class);
            assert_eq!(w[0], WorkloadOp::Initialize);
            assert_eq!(*w.last().unwrap(), WorkloadOp::Halt);
        }
    }

    #[test]
    fn net_workload_sends_one_packet() {
        let w = workload_for(DriverClass::Net);
        let sends = w.iter().filter(|o| matches!(o, WorkloadOp::Send { .. })).count();
        assert_eq!(sends, 1, "§5.2: the NIC workload is one packet");
    }

    #[test]
    fn audio_workload_plays_and_stops() {
        let w = workload_for(DriverClass::Audio);
        assert!(w.contains(&WorkloadOp::Aux), "playback must be stopped");
    }

    #[test]
    fn lifecycle_workload_cycles_power_then_removes_before_halt() {
        for class in [DriverClass::Net, DriverClass::Audio] {
            let w = lifecycle_workload_for(class);
            let suspend = w.iter().position(|o| *o == WorkloadOp::Suspend).unwrap();
            let resume = w.iter().position(|o| *o == WorkloadOp::Resume).unwrap();
            let remove = w.iter().position(|o| *o == WorkloadOp::SurpriseRemove).unwrap();
            let halt = w.iter().position(|o| *o == WorkloadOp::Halt).unwrap();
            assert!(suspend < resume && resume < remove && remove < halt);
            assert_eq!(w[0], WorkloadOp::Initialize);
            assert_eq!(w.len(), workload_for(class).len() + 3);
        }
    }
}
