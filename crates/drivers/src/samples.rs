//! The SDV comparison driver sets (§5.1).
//!
//! Two sets, both generated from one correct template driver:
//!
//! - [`sdv_sample_set`]: eight single-bug drivers standing in for "the
//!   sample drivers shipped with SDV itself" (SDV found the 8 sample bugs
//!   in 12 minutes, DDT in 4).
//! - [`synthetic_set`]: the five injected synthetic bugs — "a deadlock, an
//!   out-of-order spinlock release, an extra release of a non-acquired
//!   spinlock, a 'forgotten' unreleased spinlock, and a kernel call at the
//!   wrong IRQ level. SDV did not find the first 3 bugs, it found the last
//!   2, and produced 1 false positive. DDT found all 5 bugs and no false
//!   positives."
//!
//! The first three synthetic bugs manipulate the lock through a pointer
//! stored in memory (an alias), which is what defeats the static analyzer's
//! named-lock tracking — the same reason the real SDV misses alias-heavy
//! defects. The out-of-order variant additionally contains a *correct*
//! correlated-branch lock pattern that a path-insensitive analysis
//! misjudges: that is SDV-lite's one false positive.

use ddt_isa::asm::{assemble, Assembled};

/// A generated sample driver with its ground truth.
#[derive(Clone, Debug)]
pub struct SampleDriver {
    /// Driver name.
    pub name: String,
    /// Generated assembly source (consumed by both DDT — as a binary — and
    /// SDV-lite — as a binary too; neither sees this text).
    pub source: String,
    /// The seeded defect class, or `None` for the correct base driver.
    pub bug_kind: Option<BugKind>,
}

/// Defect classes used for scoring the comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// Spinlock acquired while already held (hang).
    Deadlock,
    /// Locks released in non-LIFO order.
    OutOfOrderRelease,
    /// Release of a lock that was never acquired.
    ExtraRelease,
    /// Entry point returns with a lock still held (hang).
    ForgottenRelease,
    /// Blocking/paged kernel call at raised IRQL.
    WrongIrqlCall,
    /// Pool memory freed twice.
    DoubleFree,
    /// Read from freed pool memory.
    UseAfterFree,
    /// Configuration handle never closed.
    ConfigLeak,
    /// Timer armed before initialization.
    UninitTimer,
    /// Allocation result dereferenced without a NULL check.
    NullDeref,
}

impl SampleDriver {
    /// Assembles the generated source.
    ///
    /// # Panics
    ///
    /// Panics if the generated source fails to assemble (a bug in the
    /// template, not a user error).
    pub fn build(&self) -> Assembled {
        let exports = ddt_kernel::export_map();
        assemble(&self.source, &exports)
            .unwrap_or_else(|e| panic!("sample {} failed to assemble: {e}", self.name))
    }
}

struct Template<'a> {
    name: &'a str,
    init_extra: &'a str,
    dpc_body: &'a str,
    halt_body: &'a str,
}

const DEFAULT_DPC: &str = "
    lea  r0, lock_a
    call @NdisDprAcquireSpinLock
    in   r1, 0x10
    lea  r0, lock_a
    call @NdisDprReleaseSpinLock
";

const DEFAULT_HALT: &str = "
    lea  r0, block
    ldw  r0, [r0]
    beq  r0, 0, halt_noblk
    mov  r1, 64
    mov  r2, 0
    call @NdisFreeMemory
halt_noblk:
";

fn instantiate(t: &Template<'_>) -> String {
    let body = r#"
.name {name}
.equ NDIS_SUCCESS, 0
.equ NDIS_FAILURE, 0xC0000001

.text
DriverEntry:
    push lr
    lea  r0, miniport_table
    call @NdisMRegisterMiniport
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

Initialize:
    push r4, lr
    lea  r1, adapter
    stw  [r1], r0
    lea  r0, lock_a
    call @NdisAllocateSpinLock
    lea  r0, lock_b
    call @NdisAllocateSpinLock
    lea  r0, scratch
    mov  r1, 64
    mov  r2, 0x53445631
    call @NdisAllocateMemoryWithTag
    bne  r0, 0, init_fail
    lea  r1, scratch
    ldw  r4, [r1]
    lea  r1, block
    stw  [r1], r4
{init_extra}
    lea  r0, timer
    lea  r1, adapter
    ldw  r1, [r1]
    lea  r2, TimerFn
    mov  r3, 0
    call @NdisMInitializeTimer
    lea  r0, intr_obj
    lea  r1, adapter
    ldw  r1, [r1]
    mov  r2, 3
    mov  r3, 0
    call @NdisMRegisterInterrupt
    mov  r0, NDIS_SUCCESS
    pop  lr, r4
    ret
init_fail:
    lea  r0, lock_a
    call @NdisFreeSpinLock
    lea  r0, lock_b
    call @NdisFreeSpinLock
    mov  r0, NDIS_FAILURE
    pop  lr, r4
    ret

Send:
    push lr
    ldw  r2, [r1]
    ldw  r3, [r1+4]
    bgeu r3, 1515, send_bad
    out  0x14, r3
    lea  r0, adapter
    ldw  r0, [r0]
    mov  r2, 0
    call @NdisMSendComplete
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret
send_bad:
    mov  r0, NDIS_FAILURE
    pop  lr
    ret

QueryInformation:
    mov  r0, 0xC00000BB
    ret

SetInformation:
    mov  r0, 0xC00000BB
    ret

Isr:
    push lr
    in   r1, 0x10
    and  r2, r1, 1
    beq  r2, 0, isr_no
    out  0x11, r1
    mov  r0, 1
    pop  lr
    ret
isr_no:
    mov  r0, 0
    pop  lr
    ret

HandleInterrupt:
    push lr
{dpc_body}
    mov  r0, 0
    pop  lr
    ret

TimerFn:
    push lr
    in   r1, 0x10
    mov  r0, 0
    pop  lr
    ret

Reset:
    mov  r0, NDIS_SUCCESS
    ret

Halt:
    push lr
    lea  r0, intr_obj
    call @NdisMDeregisterInterrupt
{halt_body}
    lea  r0, lock_a
    call @NdisFreeSpinLock
    lea  r0, lock_b
    call @NdisFreeSpinLock
    mov  r0, NDIS_SUCCESS
    pop  lr
    ret

CheckForHang:
    mov  r0, 0
    ret

.data
miniport_table:
    .word Initialize, Send, QueryInformation, SetInformation
    .word Isr, HandleInterrupt, Reset, Halt, CheckForHang, 0

.bss
adapter:  .space 4
block:    .space 4
lock_a:   .space 8
lock_b:   .space 8
lock_ptr: .space 4
extra:    .space 4
cfgh:     .space 4
timer:    .space 16
intr_obj: .space 16
scratch:  .space 32
"#;
    body.replace("{name}", t.name)
        .replace("{init_extra}", t.init_extra)
        .replace("{dpc_body}", t.dpc_body)
        .replace("{halt_body}", t.halt_body)
}

fn sample(name: &str, bug: Option<BugKind>, t: Template<'_>) -> SampleDriver {
    SampleDriver { name: name.to_string(), source: instantiate(&t), bug_kind: bug }
}

/// The correct base driver the variants are derived from.
pub fn base_sample() -> SampleDriver {
    sample(
        "sdv_base",
        None,
        Template {
            name: "sdv_base",
            init_extra: "",
            dpc_body: DEFAULT_DPC,
            halt_body: DEFAULT_HALT,
        },
    )
}

/// The eight sample-bug drivers (the "SDV sample set" analog).
pub fn sdv_sample_set() -> Vec<SampleDriver> {
    vec![
        sample(
            "smp_double_free",
            Some(BugKind::DoubleFree),
            Template {
                name: "smp_double_free",
                init_extra: "",
                dpc_body: DEFAULT_DPC,
                halt_body: "
    lea  r0, block
    ldw  r0, [r0]
    mov  r1, 64
    mov  r2, 0
    call @NdisFreeMemory
    lea  r0, block
    ldw  r0, [r0]
    mov  r1, 64
    mov  r2, 0
    call @NdisFreeMemory            ; BUG: double free
",
            },
        ),
        sample(
            "smp_use_after_free",
            Some(BugKind::UseAfterFree),
            Template {
                name: "smp_use_after_free",
                init_extra: "",
                dpc_body: DEFAULT_DPC,
                halt_body: "
    lea  r0, block
    ldw  r0, [r0]
    mov  r1, 64
    mov  r2, 0
    call @NdisFreeMemory
    lea  r0, block
    ldw  r0, [r0]
    ldw  r1, [r0]                   ; BUG: read from freed memory
",
            },
        ),
        sample(
            "smp_config_leak",
            Some(BugKind::ConfigLeak),
            Template {
                name: "smp_config_leak",
                init_extra: "
    lea  r0, scratch+8
    lea  r1, cfgh
    call @NdisOpenConfiguration     ; BUG: never closed
",
                dpc_body: DEFAULT_DPC,
                halt_body: DEFAULT_HALT,
            },
        ),
        sample(
            "smp_release_unheld",
            Some(BugKind::ExtraRelease),
            Template {
                name: "smp_release_unheld",
                init_extra: "",
                dpc_body: "
    lea  r0, lock_a
    call @NdisDprReleaseSpinLock    ; BUG: released but never acquired
",
                halt_body: DEFAULT_HALT,
            },
        ),
        sample(
            "smp_sleep_dispatch",
            Some(BugKind::WrongIrqlCall),
            Template {
                name: "smp_sleep_dispatch",
                init_extra: "",
                dpc_body: "
    mov  r0, 100
    call @NdisMSleep                ; BUG: sleep in a DPC
",
                halt_body: DEFAULT_HALT,
            },
        ),
        sample(
            "smp_uninit_timer",
            Some(BugKind::UninitTimer),
            Template {
                name: "smp_uninit_timer",
                init_extra: "
    lea  r0, timer
    mov  r1, 5
    call @NdisMSetTimer             ; BUG: timer not initialized yet
",
                dpc_body: DEFAULT_DPC,
                halt_body: DEFAULT_HALT,
            },
        ),
        sample(
            "smp_null_deref",
            Some(BugKind::NullDeref),
            Template {
                name: "smp_null_deref",
                init_extra: "
    lea  r0, scratch+8
    mov  r1, 32
    mov  r2, 0x41414141
    call @NdisAllocateMemoryWithTag
    lea  r1, scratch+8
    ldw  r1, [r1]
    mov  r2, 7
    stw  [r1], r2                   ; BUG: no NULL check on the allocation
    lea  r2, extra
    stw  [r2], r1
",
                dpc_body: DEFAULT_DPC,
                halt_body: DEFAULT_HALT,
            },
        ),
        sample(
            "smp_paged_dispatch",
            Some(BugKind::WrongIrqlCall),
            Template {
                name: "smp_paged_dispatch",
                init_extra: "",
                dpc_body: "
    mov  r0, 1
    mov  r1, 64
    mov  r2, 0x50474431
    call @ExAllocatePoolWithTag     ; BUG: paged pool in a DPC
",
                halt_body: DEFAULT_HALT,
            },
        ),
    ]
}

/// A driver whose DPC spins forever on an in-memory flag no one sets —
/// the pure-computation infinite loop the VM-level loop detector flags
/// (§3.1.1). Not part of the paper's sets; used to validate the checker.
pub fn infinite_loop_sample() -> SampleDriver {
    sample(
        "smp_infinite_loop",
        None,
        Template {
            name: "smp_infinite_loop",
            init_extra: "",
            dpc_body: "
    lea  r1, extra
il_spin:
    ldw  r2, [r1]
    beq  r2, 0, il_spin             ; BUG: nothing ever sets the flag
",
            halt_body: DEFAULT_HALT,
        },
    )
}

/// The five synthetic-bug variants of §5.1.
pub fn synthetic_set() -> Vec<SampleDriver> {
    vec![
        sample(
            "syn_deadlock",
            Some(BugKind::Deadlock),
            Template {
                name: "syn_deadlock",
                init_extra: "",
                dpc_body: "
    lea  r0, lock_a
    call @NdisDprAcquireSpinLock
    ; The second acquisition goes through an alias in memory, which the
    ; static analyzer's named-lock tracking cannot resolve.
    lea  r0, lock_a
    lea  r1, lock_ptr
    stw  [r1], r0
    lea  r1, lock_ptr
    ldw  r0, [r1]
    call @NdisDprAcquireSpinLock    ; BUG: deadlock (same lock)
    lea  r0, lock_a
    call @NdisDprReleaseSpinLock
",
                halt_body: DEFAULT_HALT,
            },
        ),
        sample(
            "syn_out_of_order",
            Some(BugKind::OutOfOrderRelease),
            Template {
                name: "syn_out_of_order",
                init_extra: "",
                dpc_body: "
    ; Correct but path-correlated pattern: the acquire and the release of
    ; lock_b are guarded by the same condition. A path-insensitive
    ; analysis merges the two branches and reports a spurious
    ; release-of-unheld-lock — SDV's one false positive.
    in   r1, 0x10
    and  r2, r1, 2
    beq  r2, 0, oo_noacq
    lea  r0, lock_b
    call @NdisDprAcquireSpinLock
oo_noacq:
    in   r1, 0x10
    beq  r2, 0, oo_norel
    lea  r0, lock_b
    call @NdisDprReleaseSpinLock
oo_norel:
    ; BUG: non-LIFO release order: lock_a (acquired first) is released
    ; before lock_b.
    lea  r0, lock_a
    call @NdisDprAcquireSpinLock
    lea  r0, lock_b
    call @NdisDprAcquireSpinLock
    lea  r0, lock_a
    call @NdisDprReleaseSpinLock
    lea  r0, lock_b
    call @NdisDprReleaseSpinLock
",
                halt_body: DEFAULT_HALT,
            },
        ),
        sample(
            "syn_extra_release",
            Some(BugKind::ExtraRelease),
            Template {
                name: "syn_extra_release",
                init_extra: "",
                dpc_body: "
    ; The release targets a lock reached through memory — invisible to the
    ; named-lock static analysis.
    lea  r0, lock_b
    lea  r1, lock_ptr
    stw  [r1], r0
    lea  r1, lock_ptr
    ldw  r0, [r1]
    call @NdisDprReleaseSpinLock    ; BUG: never acquired
",
                halt_body: DEFAULT_HALT,
            },
        ),
        sample(
            "syn_forgotten",
            Some(BugKind::ForgottenRelease),
            Template {
                name: "syn_forgotten",
                init_extra: "",
                dpc_body: "
    lea  r0, lock_a
    call @NdisDprAcquireSpinLock
    in   r1, 0x10                   ; BUG: returns with lock_a held
",
                halt_body: DEFAULT_HALT,
            },
        ),
        sample(
            "syn_wrong_irql",
            Some(BugKind::WrongIrqlCall),
            Template {
                name: "syn_wrong_irql",
                init_extra: "",
                dpc_body: "
    lea  r0, lock_a
    call @NdisAcquireSpinLock
    mov  r0, 100
    call @NdisMSleep                ; BUG: kernel call at the wrong IRQL
    lea  r0, lock_a
    call @NdisReleaseSpinLock
",
                halt_body: DEFAULT_HALT,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_samples_assemble() {
        base_sample().build();
        for s in sdv_sample_set().iter().chain(synthetic_set().iter()) {
            let a = s.build();
            assert_eq!(a.image.name, s.name);
        }
    }

    #[test]
    fn set_sizes_match_the_paper() {
        assert_eq!(sdv_sample_set().len(), 8, "8 sample bugs");
        assert_eq!(synthetic_set().len(), 5, "5 synthetic bugs");
    }

    #[test]
    fn synthetic_kinds_are_the_papers_list() {
        let kinds: Vec<BugKind> = synthetic_set().iter().map(|s| s.bug_kind.unwrap()).collect();
        assert_eq!(
            kinds,
            vec![
                BugKind::Deadlock,
                BugKind::OutOfOrderRelease,
                BugKind::ExtraRelease,
                BugKind::ForgottenRelease,
                BugKind::WrongIrqlCall,
            ]
        );
    }

    #[test]
    fn base_sample_is_clean() {
        assert!(base_sample().bug_kind.is_none());
    }
}
