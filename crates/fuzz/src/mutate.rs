//! Mutation operators over [`FuzzInput`].
//!
//! Classic byte/word fuzzing operators specialized to the driver input
//! surface: hardware read values dominate (that is where VIA-style
//! device-interface bugs live), kernel-boundary label values cover packet
//! bytes and OIDs, and two schedule operators toggle interrupt injection
//! and forced allocation failure. All choices come from the caller's
//! [`Rng`], so a fixed seed yields a fixed mutant.

use crate::{FuzzInput, Rng};

/// Values that historically flush out edge cases in register parsing.
const INTERESTING: &[u32] = &[
    0,
    1,
    2,
    0x7f,
    0x80,
    0xff,
    0x100,
    0x7fff,
    0x8000,
    0xffff,
    0x1_0000,
    0x7fff_ffff,
    0x8000_0000,
    0xffff_fffe,
    0xffff_ffff,
];

/// Upper bound on hardware values a mutant may grow to; keeps runs bounded.
const MAX_HW: usize = 64;
/// Boundaries eligible for interrupt injection (1-based, matching replay).
const MAX_BOUNDARY: u64 = 24;
/// Kernel-call indices eligible for forced allocation failure (1-based).
const MAX_FAIL_INDEX: u64 = 40;

fn mutate_word(v: u32, rng: &mut Rng) -> u32 {
    match rng.below(4) {
        0 => v ^ (1 << rng.below(32)),
        1 => INTERESTING[rng.below(INTERESTING.len() as u64) as usize],
        2 => v.wrapping_add(1),
        _ => rng.next_u32(),
    }
}

fn toggle(list: &mut Vec<u64>, candidate: u64) {
    match list.iter().position(|&x| x == candidate) {
        Some(i) => {
            list.swap_remove(i);
            list.sort_unstable();
        }
        None => {
            list.push(candidate);
            list.sort_unstable();
        }
    }
}

/// Applies `1..=max_ops` random operators to a copy of `input`.
///
/// Deterministic in `(input, rng state, max_ops)`. The result may equal the
/// input (an operator can undo another); callers dedup via
/// [`FuzzInput::hash`].
pub fn mutate(input: &FuzzInput, rng: &mut Rng, max_ops: u64) -> FuzzInput {
    let mut out = input.clone();
    let ops = 1 + rng.below(max_ops.max(1));
    for _ in 0..ops {
        match rng.below(9) {
            // Hardware value tweaks get half the mass: the device-read
            // stream is the richest input surface.
            0..=2 => {
                if out.hw.is_empty() {
                    out.hw.push(rng.next_u32());
                } else {
                    let i = rng.below(out.hw.len() as u64) as usize;
                    out.hw[i] = mutate_word(out.hw[i], rng);
                }
            }
            3 => {
                if out.hw.len() < MAX_HW {
                    out.hw.push(INTERESTING[rng.below(INTERESTING.len() as u64) as usize]);
                }
            }
            4 => {
                if !out.hw.is_empty() {
                    let i = rng.below(out.hw.len() as u64) as usize;
                    out.hw.remove(i);
                }
            }
            5 => {
                // Labels are never invented here — they enter via seeds
                // (solved models from the trace store) and only their
                // values mutate.
                if !out.labels.is_empty() {
                    let i = rng.below(out.labels.len() as u64) as usize;
                    let v = out.labels[i].1;
                    out.labels[i].1 = mutate_word(v as u32, rng) as u64;
                }
            }
            6 => toggle(&mut out.inject_at, 1 + rng.below(MAX_BOUNDARY)),
            7 => toggle(&mut out.fail_at, 1 + rng.below(MAX_FAIL_INDEX)),
            _ => {
                // Toggle a lifecycle event (codes 1..=3: removal, suspend,
                // resume) at a random boundary.
                let candidate = (1 + rng.below(MAX_BOUNDARY), 1 + rng.below(3) as u8);
                match out.lifecycle.iter().position(|&e| e == candidate) {
                    Some(i) => {
                        out.lifecycle.swap_remove(i);
                    }
                    None => out.lifecycle.push(candidate),
                }
                out.lifecycle.sort_unstable();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let seed = FuzzInput {
            hw: vec![0xcafe, 0],
            labels: vec![("packet_len".into(), 64)],
            ..FuzzInput::default()
        };
        let run = |s: u64| {
            let mut rng = Rng::new(s);
            (0..32).map(|_| mutate(&seed, &mut rng, 4)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "seed changes the mutant stream");
    }

    #[test]
    fn mutants_eventually_cover_every_operator_family() {
        let seed = FuzzInput { hw: vec![5], labels: vec![("x".into(), 0)], ..Default::default() };
        let mut rng = Rng::new(1);
        let mutants: Vec<FuzzInput> = (0..400).map(|_| mutate(&seed, &mut rng, 3)).collect();
        assert!(mutants.iter().any(|m| m.hw != seed.hw));
        assert!(mutants.iter().any(|m| !m.inject_at.is_empty()));
        assert!(mutants.iter().any(|m| !m.fail_at.is_empty()));
        assert!(mutants.iter().any(|m| !m.lifecycle.is_empty()));
        assert!(mutants.iter().any(|m| m.labels[0].1 != 0));
        assert!(mutants.iter().all(|m| m.hw.len() <= MAX_HW));
        assert!(
            mutants.iter().all(|m| m.labels.len() == 1 && m.labels[0].0 == "x"),
            "mutation never invents or drops labels"
        );
    }

    #[test]
    fn schedule_lists_stay_sorted_and_duplicate_free() {
        let mut rng = Rng::new(3);
        let mut cur = FuzzInput::default();
        for _ in 0..200 {
            cur = mutate(&cur, &mut rng, 5);
            assert!(cur.inject_at.windows(2).all(|w| w[0] < w[1]));
            assert!(cur.fail_at.windows(2).all(|w| w[0] < w[1]));
            assert!(cur.inject_at.iter().all(|&b| (1..=MAX_BOUNDARY).contains(&b)));
            assert!(cur.fail_at.iter().all(|&b| (1..=MAX_FAIL_INDEX).contains(&b)));
            assert!(cur.lifecycle.windows(2).all(|w| w[0] < w[1]));
            assert!(cur
                .lifecycle
                .iter()
                .all(|&(b, c)| (1..=MAX_BOUNDARY).contains(&b) && (1..=3).contains(&c)));
        }
    }
}
