//! `ddt-fuzz`: the mutational half of DDT's hybrid concolic/fuzzing loop.
//!
//! The symbolic interpreter explores deeply but slowly; this crate supplies
//! the fast, dumb counterpart — deterministic mutation of driver entry-point
//! inputs (hardware read values, kernel-boundary values like packet bytes
//! and OIDs, interrupt/fault schedules) executed on the concrete VM at
//! superblock speed. It deliberately has **no** dependency on the rest of
//! the workspace: the `ddt-core` hybrid campaign owns all execution and
//! escalation glue, and this crate only defines the input shape
//! ([`FuzzInput`]), the [`corpus`], the [`mutate`] operators, and the
//! [`sched`] power schedule.
//!
//! Everything here is deterministic under a fixed seed: the PRNG is a
//! self-contained SplitMix64 (the vendored `rand` is an empty placeholder),
//! and no container with nondeterministic iteration order feeds mutation
//! decisions.

use serde::{Deserialize, Serialize};

pub mod corpus;
pub mod mutate;
pub mod sched;

pub use corpus::{Corpus, CorpusEntry};
pub use mutate::mutate;
pub use sched::Scheduler;

/// Deterministic SplitMix64 PRNG.
///
/// Chosen for statelessness-per-step (one u64 of state) so a fuzz campaign's
/// entire randomness is reproducible from one seed, which the differential
/// harness relies on.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }

    /// True with probability `num/den`.
    pub fn coin(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// One complete concrete input to a driver exercise run.
///
/// This is the corpus unit and the mutation target: everything the concrete
/// executor needs to deterministically replay one driver workload. The
/// fields mirror the symbolic run's input surface (DESIGN.md §4.10) —
/// hardware reads become scripted values, kernel-boundary symbols become
/// labeled overrides, and the scheduler decisions become explicit lists.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzInput {
    /// Values served, in order, to every hardware read (MMIO and port I/O
    /// share one stream, matching replay semantics).
    pub hw: Vec<u32>,
    /// Labeled kernel-boundary overrides, consumed per-label in order:
    /// `packet_len`, `packet[i]`, `QueryInformation:oid`, ...
    pub labels: Vec<(String, u64)>,
    /// Entry boundaries (1-based) at which an interrupt is injected.
    pub inject_at: Vec<u64>,
    /// Kernel-call indices (1-based) whose allocation is forced to fail.
    pub fail_at: Vec<u64>,
    /// Device-lifecycle events `(boundary, event_code)` injected at entry
    /// boundaries: 1 = surprise removal, 2 = suspend (D0→D3), 3 = resume
    /// (D3→D0). Codes match the PnP-notification callback argument.
    pub lifecycle: Vec<(u64, u8)>,
}

impl FuzzInput {
    /// Content hash (FNV-1a over a canonical byte encoding) used for corpus
    /// dedup and stable on-disk identity.
    pub fn hash(&self) -> u64 {
        fn eat(h: &mut u64, b: u8) {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        fn eat64(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                eat(h, b);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        // Length prefixes keep the encoding injective across field
        // boundaries.
        eat64(&mut h, self.hw.len() as u64);
        for &v in &self.hw {
            eat64(&mut h, v as u64);
        }
        eat64(&mut h, self.labels.len() as u64);
        for (label, v) in &self.labels {
            eat64(&mut h, label.len() as u64);
            for &b in label.as_bytes() {
                eat(&mut h, b);
            }
            eat64(&mut h, *v);
        }
        eat64(&mut h, self.inject_at.len() as u64);
        for &b in &self.inject_at {
            eat64(&mut h, b);
        }
        eat64(&mut h, self.fail_at.len() as u64);
        for &b in &self.fail_at {
            eat64(&mut h, b);
        }
        eat64(&mut h, self.lifecycle.len() as u64);
        for &(b, code) in &self.lifecycle {
            eat64(&mut h, b);
            eat(&mut h, code);
        }
        h
    }

    /// Hex form of [`FuzzInput::hash`], the input's stable id.
    pub fn id(&self) -> String {
        format!("{:016x}", self.hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_not_constant() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = Rng::new(43);
        assert_ne!(xs[0], c.next_u64(), "different seeds diverge");
    }

    #[test]
    fn rng_below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn input_hash_is_field_sensitive() {
        let base = FuzzInput { hw: vec![1, 2], ..FuzzInput::default() };
        let mut other = base.clone();
        assert_eq!(base.hash(), other.hash());
        other.hw[0] = 9;
        assert_ne!(base.hash(), other.hash());
        // Moving a value across the field boundary must change the hash.
        let a = FuzzInput { hw: vec![1], inject_at: vec![], ..FuzzInput::default() };
        let b = FuzzInput { hw: vec![], inject_at: vec![1], ..FuzzInput::default() };
        assert_ne!(a.hash(), b.hash());
        let with_label =
            FuzzInput { labels: vec![("packet_len".into(), 64)], ..FuzzInput::default() };
        assert_ne!(base.hash(), with_label.hash());
        assert_eq!(with_label.id().len(), 16);
        let with_lifecycle =
            FuzzInput { lifecycle: vec![(3, 1)], ..FuzzInput::default() };
        assert_ne!(FuzzInput::default().hash(), with_lifecycle.hash());
    }
}
