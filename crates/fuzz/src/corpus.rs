//! The fuzz corpus: deduplicated inputs with discovery scores.
//!
//! Entries are keyed by [`FuzzInput::hash`]; adding a duplicate is a no-op.
//! The on-disk format is versioned JSON (`corpus.json` in a campaign's
//! trace directory) so a later symbolic run can re-seed fuzzing from the
//! inputs a previous hybrid campaign found interesting.

use std::collections::HashSet;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::FuzzInput;

/// On-disk corpus format version.
pub const CORPUS_VERSION: u32 = 1;

/// A corpus member plus its power-schedule score.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The input itself.
    pub input: FuzzInput,
    /// Scheduling weight: 1 + how many new edges this input discovered.
    pub score: u64,
}

#[derive(Serialize, Deserialize)]
struct CorpusFile {
    version: u32,
    entries: Vec<CorpusEntry>,
}

/// An append-only, hash-deduplicated set of fuzz inputs.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    seen: HashSet<u64>,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Adds an input with an initial score; returns false (and keeps the
    /// existing entry, score untouched) if an equal input is present.
    pub fn add(&mut self, input: FuzzInput, score: u64) -> bool {
        if !self.seen.insert(input.hash()) {
            return false;
        }
        self.entries.push(CorpusEntry { input, score: score.max(1) });
        true
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Borrows one entry.
    pub fn entry(&self, i: usize) -> &CorpusEntry {
        &self.entries[i]
    }

    /// Adds `delta` to an entry's score (called when a mutant of it found
    /// new coverage — AFL's "favored parent" feedback).
    pub fn bump(&mut self, i: usize, delta: u64) {
        self.entries[i].score = self.entries[i].score.saturating_add(delta);
    }

    /// Serializes to versioned JSON at `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let file =
            CorpusFile { version: CORPUS_VERSION, entries: self.entries.clone() };
        let json = serde_json::to_string(&file)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        std::fs::write(path, json)
    }

    /// Loads from `path`, deduplicating (a hand-edited file with repeats
    /// still yields a consistent corpus). Rejects unknown versions.
    pub fn load(path: &Path) -> io::Result<Corpus> {
        let text = std::fs::read_to_string(path)?;
        let file: CorpusFile = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        if file.version != CORPUS_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corpus version {} (supported: {CORPUS_VERSION})", file.version),
            ));
        }
        let mut corpus = Corpus::new();
        for e in file.entries {
            corpus.add(e.input, e.score);
        }
        Ok(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ddt-corpus-{}-{tag}.json", std::process::id()))
    }

    #[test]
    fn add_deduplicates_by_content() {
        let mut c = Corpus::new();
        let a = FuzzInput { hw: vec![1], ..Default::default() };
        assert!(c.add(a.clone(), 1));
        assert!(!c.add(a.clone(), 99), "same content is rejected");
        assert_eq!(c.len(), 1);
        assert_eq!(c.entry(0).score, 1, "duplicate add does not rescore");
        let mut b = a;
        b.hw.push(2);
        assert!(c.add(b, 0));
        assert_eq!(c.entry(1).score, 1, "scores are at least 1");
        c.bump(1, 4);
        assert_eq!(c.entry(1).score, 5);
    }

    #[test]
    fn save_load_round_trips() {
        let mut c = Corpus::new();
        c.add(FuzzInput { hw: vec![3, 4], ..Default::default() }, 2);
        c.add(
            FuzzInput {
                labels: vec![("packet_len".into(), 7)],
                inject_at: vec![2],
                fail_at: vec![8],
                ..Default::default()
            },
            5,
        );
        let path = tmp("roundtrip");
        c.save(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        assert_eq!(back.entries(), c.entries());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_future_versions() {
        let path = tmp("version");
        std::fs::write(&path, "{\"version\": 99, \"entries\": []}").unwrap();
        assert!(Corpus::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
