//! Power schedule: which corpus entry breeds next.
//!
//! Weighted sampling by entry score — an input whose mutants keep finding
//! new edges is picked proportionally more often (the AFL "energy" idea,
//! reduced to its deterministic core). Sampling uses the campaign [`Rng`],
//! so the whole schedule replays from one seed.

use crate::{Corpus, Rng};

/// Weighted sampler over corpus indices.
#[derive(Clone, Debug, Default)]
pub struct Scheduler {
    weights: Vec<u64>,
    total: u64,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Rebuilds weights from the corpus' current scores. Call after any
    /// batch of `add`/`bump` operations; cheap (one pass).
    pub fn sync(&mut self, corpus: &Corpus) {
        self.weights.clear();
        self.total = 0;
        for e in corpus.entries() {
            self.weights.push(e.score);
            self.total += e.score;
        }
    }

    /// Picks a corpus index, weighted by score.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler has not been synced with a non-empty corpus.
    pub fn pick(&self, rng: &mut Rng) -> usize {
        assert!(self.total > 0, "scheduler over an empty corpus");
        let mut x = rng.below(self.total);
        for (i, &w) in self.weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        self.weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FuzzInput;

    #[test]
    fn pick_respects_weights() {
        let mut corpus = Corpus::new();
        corpus.add(FuzzInput { hw: vec![1], ..Default::default() }, 1);
        corpus.add(FuzzInput { hw: vec![2], ..Default::default() }, 9);
        let mut sched = Scheduler::new();
        sched.sync(&corpus);
        let mut rng = Rng::new(5);
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[sched.pick(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[0] * 4, "9:1 weights must dominate: {counts:?}");
        assert!(counts[0] > 0, "low-score entries still get energy");
    }

    #[test]
    fn sync_tracks_bumps() {
        let mut corpus = Corpus::new();
        corpus.add(FuzzInput::default(), 1);
        let mut sched = Scheduler::new();
        sched.sync(&corpus);
        corpus.bump(0, 10);
        sched.sync(&corpus);
        assert_eq!(sched.total, 11);
    }
}
