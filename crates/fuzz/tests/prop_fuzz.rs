//! Property tests for the fuzz subsystem: the mutator is a pure function of
//! (input, seed), and the corpus round-trips through disk with dedup by
//! content hash — the two properties the hybrid differential harness's
//! determinism claim rests on.

use ddt_fuzz::{mutate, Corpus, FuzzInput, Rng};
use proptest::prelude::*;

/// Builds an arbitrary-but-deterministic input from raw generator output.
fn input_from(hw: Vec<u32>, labels: Vec<(u8, u64)>, inject: Vec<u8>, fail: Vec<u8>) -> FuzzInput {
    let mut inject_at: Vec<u64> = inject.iter().map(|&b| 1 + b as u64 % 24).collect();
    inject_at.sort_unstable();
    inject_at.dedup();
    let mut fail_at: Vec<u64> = fail.iter().map(|&b| 1 + b as u64 % 40).collect();
    fail_at.sort_unstable();
    fail_at.dedup();
    FuzzInput {
        hw,
        labels: labels
            .into_iter()
            .map(|(i, v)| (format!("packet[{}]", i % 8), v))
            .collect(),
        inject_at,
        fail_at,
        lifecycle: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equal seeds yield byte-equal mutant streams; mutating never panics
    /// for any input shape.
    #[test]
    fn mutator_is_deterministic_under_a_fixed_seed(
        hw in prop::collection::vec(any::<u32>(), 0..12),
        labels in prop::collection::vec((any::<u8>(), any::<u64>()), 0..6),
        inject in prop::collection::vec(any::<u8>(), 0..4),
        fail in prop::collection::vec(any::<u8>(), 0..4),
        seed in any::<u64>(),
        rounds in 1usize..24,
    ) {
        let base = input_from(hw, labels, inject, fail);
        let stream = |s: u64| {
            let mut rng = Rng::new(s);
            let mut cur = base.clone();
            let mut out = Vec::new();
            for _ in 0..rounds {
                cur = mutate(&cur, &mut rng, 4);
                out.push(cur.clone());
            }
            out
        };
        let a = stream(seed);
        let b = stream(seed);
        prop_assert_eq!(&a, &b, "mutant stream must replay exactly");
        let hashes_a: Vec<u64> = a.iter().map(FuzzInput::hash).collect();
        let hashes_b: Vec<u64> = b.iter().map(FuzzInput::hash).collect();
        prop_assert_eq!(hashes_a, hashes_b);
    }

    /// Save → load reproduces exactly the deduplicated entry list, and
    /// re-adding any loaded input is rejected as a duplicate.
    #[test]
    fn corpus_round_trips_and_dedups_by_hash(
        raw in prop::collection::vec(
            (prop::collection::vec(any::<u32>(), 0..8), any::<u64>(), any::<u64>()),
            1..16,
        ),
        tag in any::<u32>(),
    ) {
        let mut corpus = Corpus::new();
        for (hw, label_v, score) in &raw {
            let input = FuzzInput {
                hw: hw.clone(),
                labels: vec![("packet_len".into(), *label_v)],
                ..FuzzInput::default()
            };
            corpus.add(input, score % 100);
        }
        let path = std::env::temp_dir().join(format!(
            "ddt-prop-corpus-{}-{tag}.json",
            std::process::id()
        ));
        corpus.save(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.entries(), corpus.entries());
        let mut back = back;
        for e in corpus.entries() {
            prop_assert!(!back.add(e.input.clone(), 1), "loaded inputs are already present");
        }
        // Hash-identity sanity: entry count equals distinct hashes.
        let mut hashes: Vec<u64> = corpus.entries().iter().map(|e| e.input.hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        prop_assert_eq!(hashes.len(), corpus.len());
    }
}
