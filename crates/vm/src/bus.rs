//! Device bus: MMIO ranges, port I/O, and the interrupt controller.
//!
//! In QEMU, device accesses are "handled by read/write functions specific to
//! each virtual device" (§4.1.4); the [`Device`] trait is the equivalent
//! hook. DDT's fully symbolic hardware implements the same interface with
//! reads returning fresh symbolic values — here in `ddt-vm` only concrete
//! devices live, used for trace replay and the concrete baselines.

use std::collections::BTreeMap;

/// A memory-mapped / port-mapped hardware device.
pub trait Device {
    /// Reads `size` bytes from register offset `offset` within the device's
    /// MMIO window.
    fn mmio_read(&mut self, offset: u32, size: u8) -> u32;

    /// Writes to a device register.
    fn mmio_write(&mut self, offset: u32, size: u8, value: u32);

    /// Reads from an I/O port owned by this device.
    fn port_read(&mut self, port: u32) -> u32 {
        let _ = port;
        0
    }

    /// Writes to an I/O port owned by this device.
    fn port_write(&mut self, port: u32, value: u32) {
        let _ = (port, value);
    }

    /// Downcast hook: devices that want post-run inspection (the fuzzer
    /// reads back which values a [`ScriptedDevice`] actually served) return
    /// `Some(self)`; the default is opaque.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// A device that ignores writes and reads as zero.
#[derive(Clone, Debug, Default)]
pub struct NullDevice;

impl Device for NullDevice {
    fn mmio_read(&mut self, _offset: u32, _size: u8) -> u32 {
        0
    }

    fn mmio_write(&mut self, _offset: u32, _size: u8, _value: u32) {}
}

/// A device that replays a recorded script of read values.
///
/// This is the replay-side counterpart of symbolic hardware: the trace
/// recorded which concrete value each device read must observe to steer the
/// driver down the buggy path (§3.5), and this device feeds exactly that
/// sequence back. Reads beyond the script return zero.
#[derive(Clone, Debug, Default)]
pub struct ScriptedDevice {
    values: Vec<u32>,
    next: usize,
    /// Every (offset, size, value) actually served, for assertions.
    pub served: Vec<(u32, u8, u32)>,
    /// Every MMIO/port write observed (symbolic hardware discards writes,
    /// but the log is kept for §3.6-style analysis).
    pub writes: Vec<(u32, u32)>,
}

impl ScriptedDevice {
    /// Creates a device that serves `values` in order.
    pub fn new(values: Vec<u32>) -> ScriptedDevice {
        ScriptedDevice { values, ..ScriptedDevice::default() }
    }

    /// Number of scripted values not yet consumed.
    pub fn remaining(&self) -> usize {
        self.values.len().saturating_sub(self.next)
    }

    /// Re-arms the device with a fresh script, clearing the serve/write
    /// logs — the cheap path for run-to-run reuse (snapshot-reset fuzzing)
    /// without reconstructing the bus.
    pub fn rescript(&mut self, values: Vec<u32>) {
        self.values = values;
        self.next = 0;
        self.served.clear();
        self.writes.clear();
    }
}

impl Device for ScriptedDevice {
    fn mmio_read(&mut self, offset: u32, size: u8) -> u32 {
        let v = self.values.get(self.next).copied().unwrap_or(0);
        self.next += 1;
        self.served.push((offset, size, v));
        v
    }

    fn mmio_write(&mut self, offset: u32, _size: u8, value: u32) {
        self.writes.push((offset, value));
    }

    fn port_read(&mut self, port: u32) -> u32 {
        self.mmio_read(port, 4)
    }

    fn port_write(&mut self, port: u32, value: u32) {
        self.writes.push((port, value));
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// The interrupt controller: numbered lines with level-triggered semantics.
#[derive(Clone, Debug, Default)]
pub struct IrqController {
    pending: u32,
    /// Count of assertions per line (diagnostics).
    pub assert_counts: [u32; 32],
}

impl IrqController {
    /// Creates a controller with all lines deasserted.
    pub fn new() -> IrqController {
        IrqController::default()
    }

    /// Asserts interrupt line `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 32`.
    pub fn assert_line(&mut self, line: u8) {
        assert!(line < 32, "no such irq line {line}");
        self.pending |= 1 << line;
        self.assert_counts[line as usize] += 1;
    }

    /// Returns the lowest pending line, if any, without acknowledging it.
    pub fn pending(&self) -> Option<u8> {
        if self.pending == 0 {
            None
        } else {
            Some(self.pending.trailing_zeros() as u8)
        }
    }

    /// Acknowledges (clears) a pending line.
    pub fn ack(&mut self, line: u8) {
        self.pending &= !(1 << line);
    }
}

/// The device bus: MMIO windows and port ranges, each owned by one device.
#[derive(Default)]
pub struct Bus {
    /// MMIO windows: start → (end, device index).
    mmio: BTreeMap<u32, (u32, usize)>,
    /// Port ranges: start → (end, device index).
    ports: BTreeMap<u32, (u32, usize)>,
    devices: Vec<Box<dyn Device>>,
    /// The interrupt controller.
    pub irq: IrqController,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Bus {
        Bus::default()
    }

    /// Registers a device, returning its index.
    pub fn add_device(&mut self, dev: Box<dyn Device>) -> usize {
        self.devices.push(dev);
        self.devices.len() - 1
    }

    /// Maps an MMIO window `[start, start+len)` to a registered device.
    ///
    /// # Panics
    ///
    /// Panics if the device index is unknown.
    pub fn map_mmio(&mut self, start: u32, len: u32, dev: usize) {
        assert!(dev < self.devices.len(), "unknown device {dev}");
        self.mmio.insert(start, (start + len, dev));
    }

    /// Maps a port range `[start, start+len)` to a registered device.
    pub fn map_ports(&mut self, start: u32, len: u32, dev: usize) {
        assert!(dev < self.devices.len(), "unknown device {dev}");
        self.ports.insert(start, (start + len, dev));
    }

    /// Returns the MMIO window containing `addr`, if any.
    pub fn mmio_window(&self, addr: u32) -> Option<(u32, usize)> {
        self.mmio
            .range(..=addr)
            .next_back()
            .and_then(|(&s, &(e, d))| (addr < e).then_some((s, d)))
    }

    /// True if `addr` falls in any MMIO window.
    pub fn is_mmio(&self, addr: u32) -> bool {
        self.mmio_window(addr).is_some()
    }

    /// Dispatches an MMIO read.
    pub fn mmio_read(&mut self, addr: u32, size: u8) -> Option<u32> {
        let (start, dev) = self.mmio_window(addr)?;
        Some(self.devices[dev].mmio_read(addr - start, size))
    }

    /// Dispatches an MMIO write.
    pub fn mmio_write(&mut self, addr: u32, size: u8, value: u32) -> bool {
        match self.mmio_window(addr) {
            Some((start, dev)) => {
                self.devices[dev].mmio_write(addr - start, size, value);
                true
            }
            None => false,
        }
    }

    /// Dispatches a port read; unowned ports read as `0xffff_ffff` (open
    /// bus), like reads from absent ISA devices on a PC.
    pub fn port_read(&mut self, port: u32) -> u32 {
        match self.port_owner(port) {
            Some(dev) => self.devices[dev].port_read(port),
            None => 0xffff_ffff,
        }
    }

    /// Dispatches a port write; writes to unowned ports are discarded.
    pub fn port_write(&mut self, port: u32, value: u32) {
        if let Some(dev) = self.port_owner(port) {
            self.devices[dev].port_write(port, value);
        }
    }

    fn port_owner(&self, port: u32) -> Option<usize> {
        self.ports
            .range(..=port)
            .next_back()
            .and_then(|(&_s, &(e, d))| (port < e).then_some(d))
    }

    /// Borrows a registered device for inspection.
    pub fn device_mut(&mut self, idx: usize) -> &mut dyn Device {
        &mut *self.devices[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_device_serves_in_order() {
        let mut d = ScriptedDevice::new(vec![7, 8]);
        assert_eq!(d.mmio_read(0, 4), 7);
        assert_eq!(d.mmio_read(4, 4), 8);
        assert_eq!(d.mmio_read(8, 4), 0, "exhausted script reads zero");
        assert_eq!(d.remaining(), 0);
        d.mmio_write(0, 4, 99);
        assert_eq!(d.writes, vec![(0, 99)]);
    }

    #[test]
    fn bus_routes_mmio_by_window() {
        let mut bus = Bus::new();
        let a = bus.add_device(Box::new(ScriptedDevice::new(vec![1])));
        let b = bus.add_device(Box::new(ScriptedDevice::new(vec![2])));
        bus.map_mmio(0x8000_0000, 0x100, a);
        bus.map_mmio(0x8000_1000, 0x100, b);
        assert!(bus.is_mmio(0x8000_0040));
        assert!(!bus.is_mmio(0x8000_0200));
        assert_eq!(bus.mmio_read(0x8000_1004, 4), Some(2));
        assert_eq!(bus.mmio_read(0x8000_0004, 4), Some(1));
        assert_eq!(bus.mmio_read(0x9000_0000, 4), None);
    }

    #[test]
    fn port_routing_and_open_bus() {
        let mut bus = Bus::new();
        let d = bus.add_device(Box::new(ScriptedDevice::new(vec![0xab])));
        bus.map_ports(0x10, 8, d);
        assert_eq!(bus.port_read(0x12), 0xab);
        assert_eq!(bus.port_read(0x50), 0xffff_ffff, "open bus");
        bus.port_write(0x50, 1); // Silently discarded.
    }

    #[test]
    fn irq_controller_orders_lines() {
        let mut irq = IrqController::new();
        assert_eq!(irq.pending(), None);
        irq.assert_line(5);
        irq.assert_line(2);
        assert_eq!(irq.pending(), Some(2));
        irq.ack(2);
        assert_eq!(irq.pending(), Some(5));
        irq.ack(5);
        assert_eq!(irq.pending(), None);
        assert_eq!(irq.assert_counts[2], 1);
    }
}

#[cfg(test)]
mod more_bus_tests {
    use super::*;

    #[test]
    fn overlapping_mmio_windows_resolve_to_the_nearest_base() {
        let mut bus = Bus::new();
        let a = bus.add_device(Box::new(ScriptedDevice::new(vec![1; 8])));
        bus.map_mmio(0x1000, 0x100, a);
        // The window lookup picks the greatest base <= addr.
        assert_eq!(bus.mmio_window(0x1000), Some((0x1000, a)));
        assert_eq!(bus.mmio_window(0x10ff), Some((0x1000, a)));
        assert_eq!(bus.mmio_window(0x1100), None);
        assert_eq!(bus.mmio_window(0x0fff), None);
    }

    #[test]
    fn mmio_write_to_unmapped_returns_false() {
        let mut bus = Bus::new();
        assert!(!bus.mmio_write(0x9999, 4, 1));
    }

    #[test]
    fn irq_line_bounds() {
        let mut irq = IrqController::new();
        irq.assert_line(31);
        assert_eq!(irq.pending(), Some(31));
        let r = std::panic::catch_unwind(move || irq.assert_line(32));
        assert!(r.is_err(), "line 32 is out of range");
    }

    #[test]
    fn scripted_device_downcasts_through_the_bus() {
        let mut bus = Bus::new();
        let d = bus.add_device(Box::new(ScriptedDevice::new(vec![5])));
        bus.map_mmio(0x1000, 0x100, d);
        bus.mmio_read(0x1004, 4);
        let dev = bus
            .device_mut(d)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<ScriptedDevice>())
            .expect("scripted device is inspectable");
        assert_eq!(dev.served, vec![(4, 4, 5)]);
        assert!(NullDevice.as_any_mut().is_none(), "opaque by default");
    }

    #[test]
    fn scripted_port_reads_share_the_value_stream() {
        // Port reads and MMIO reads drain the same script: replay order is
        // by hardware read, regardless of access kind.
        let mut d = ScriptedDevice::new(vec![10, 20]);
        assert_eq!(d.port_read(0x10), 10);
        assert_eq!(d.mmio_read(0, 4), 20);
    }
}
