//! The DDT virtual machine (concrete execution).
//!
//! This crate is the QEMU substrate of DESIGN.md §2: a machine that executes
//! DDT-32 guest code one instruction at a time over guest physical memory,
//! a device bus (MMIO + port I/O), and an interrupt controller. DDT's design
//! only requires three hook points from its VM, all of which this crate
//! exposes:
//!
//! 1. instruction dispatch (`[`Vm::step`]` returns control at kernel traps,
//!    so the kernel runs natively — selective symbolic execution's
//!    "concrete side"),
//! 2. device register access (the [`Device`] trait; symbolic hardware in
//!    `ddt-core` implements the same interface over symbolic values),
//! 3. interrupt line assertion ([`IrqController`]).
//!
//! The concrete VM is used by the trace **replay** engine (§3.5 — traces
//! re-execute here with recorded inputs) and by the Driver-Verifier-style
//! concrete baseline in `ddt-sdv`.

pub mod bus;
pub mod cpu;
pub mod mem;

pub use bus::{Bus, Device, IrqController, NullDevice, ScriptedDevice};
pub use cpu::{BlockCache, Cpu, Fault, StepEvent, Vm};
pub use mem::{AccessKind, MemError, Memory};
