//! The DDT-32 CPU and the concrete interpreter.

use ddt_isa::{decode, trap_export_id, Insn, Reg, INSN_SIZE, RETURN_TRAP};
use serde::{Deserialize, Serialize};

use crate::bus::Bus;
use crate::mem::{AccessKind, MemError, Memory};

/// CPU register state.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cpu {
    /// General-purpose registers `r0`–`r15`.
    pub regs: [u32; 16],
    /// Program counter.
    pub pc: u32,
}

impl Cpu {
    /// Reads a register.
    #[inline]
    pub fn get(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u32) {
        self.regs[r.index()] = v;
    }
}

/// A CPU fault: the concrete analog of a crash-inducing driver action.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Undecodable instruction at `pc`.
    IllegalInsn {
        /// Faulting instruction address.
        pc: u32,
    },
    /// Access to unmapped memory.
    BadAccess {
        /// Faulting instruction address.
        pc: u32,
        /// The inaccessible guest address.
        addr: u32,
        /// Access type.
        kind: AccessKind,
    },
    /// Misaligned word or halfword access.
    Misaligned {
        /// Faulting instruction address.
        pc: u32,
        /// The misaligned guest address.
        addr: u32,
    },
    /// Integer division by zero.
    DivByZero {
        /// Faulting instruction address.
        pc: u32,
    },
}

/// What happened during one [`Vm::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// Normal instruction retired; execution continues.
    Continue,
    /// Control transferred to a kernel export trap address.
    KernelCall {
        /// The kernel export id.
        export_id: u16,
        /// The return address saved in `lr` by the call.
        return_to: u32,
    },
    /// Control reached the magic return trap: the driver entry point
    /// returned to the kernel.
    ReturnToKernel,
    /// The machine executed `halt`.
    Halted,
    /// The instruction faulted; machine state is as of the fault.
    Faulted(Fault),
}

/// The concrete virtual machine: CPU + memory + bus.
pub struct Vm {
    /// CPU state.
    pub cpu: Cpu,
    /// Guest memory.
    pub mem: Memory,
    /// Device bus and interrupt controller.
    pub bus: Bus,
    /// Instructions retired.
    pub insns_retired: u64,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

impl Vm {
    /// Creates a VM with empty memory and an empty bus.
    pub fn new() -> Vm {
        Vm { cpu: Cpu::default(), mem: Memory::new(), bus: Bus::new(), insns_retired: 0 }
    }

    /// Loads a driver image into guest memory (maps and copies sections).
    ///
    /// The text section is declared as the code region so later writes to it
    /// (self-modifying code) invalidate any [`BlockCache`].
    pub fn load_image(&mut self, image: &ddt_isa::image::DxeImage) {
        let total = image.image_end() - image.load_base;
        self.mem.map(image.load_base, total);
        self.mem.write_bytes(image.load_base, &image.text).expect("text fits mapping");
        self.mem.write_bytes(image.data_base(), &image.data).expect("data fits mapping");
        self.mem.set_code_region(image.load_base, image.text.len() as u32);
    }

    fn read_mem(&mut self, pc: u32, addr: u32, size: u8) -> Result<u32, Fault> {
        if (size == 4 && !addr.is_multiple_of(4)) || (size == 2 && !addr.is_multiple_of(2)) {
            return Err(Fault::Misaligned { pc, addr });
        }
        if self.bus.is_mmio(addr) {
            return Ok(self.bus.mmio_read(addr, size).unwrap_or(0));
        }
        self.mem
            .read(addr, size, AccessKind::Read)
            .map(|v| v as u32)
            .map_err(|MemError { addr, kind }| Fault::BadAccess { pc, addr, kind })
    }

    fn write_mem(&mut self, pc: u32, addr: u32, size: u8, v: u32) -> Result<(), Fault> {
        if (size == 4 && !addr.is_multiple_of(4)) || (size == 2 && !addr.is_multiple_of(2)) {
            return Err(Fault::Misaligned { pc, addr });
        }
        if self.bus.is_mmio(addr) {
            self.bus.mmio_write(addr, size, v);
            return Ok(());
        }
        self.mem
            .write(addr, size, v as u64)
            .map_err(|MemError { addr, kind }| Fault::BadAccess { pc, addr, kind })
    }

    /// Fetches and executes one instruction.
    ///
    /// Kernel traps are detected *before* executing at the trap address, so
    /// the caller (the kernel dispatcher) regains control with the CPU
    /// exactly as the driver left it.
    pub fn step(&mut self) -> StepEvent {
        let pc = self.cpu.pc;
        // Trap detection.
        if pc == RETURN_TRAP {
            return StepEvent::ReturnToKernel;
        }
        if let Some(export_id) = trap_export_id(pc) {
            return StepEvent::KernelCall { export_id, return_to: self.cpu.get(Reg::LR) };
        }
        // Fetch.
        let mut raw = [0u8; 8];
        for (i, b) in raw.iter_mut().enumerate() {
            match self.mem.read_u8(pc.wrapping_add(i as u32), AccessKind::Fetch) {
                Ok(v) => *b = v,
                Err(e) => {
                    return StepEvent::Faulted(Fault::BadAccess {
                        pc,
                        addr: e.addr,
                        kind: AccessKind::Fetch,
                    })
                }
            }
        }
        let Some(insn) = decode(&raw) else {
            return StepEvent::Faulted(Fault::IllegalInsn { pc });
        };
        self.insns_retired += 1;
        match self.exec(pc, insn) {
            Ok(ev) => ev,
            Err(f) => StepEvent::Faulted(f),
        }
    }

    /// Executes a decoded instruction (pc already fetched from).
    fn exec(&mut self, pc: u32, insn: Insn) -> Result<StepEvent, Fault> {
        use Insn::*;
        let next = pc.wrapping_add(INSN_SIZE);
        let mut jump: Option<u32> = None;
        match insn {
            Halt => return Ok(StepEvent::Halted),
            Nop => {}
            Movi { rd, imm } => self.cpu.set(rd, imm),
            Mov { rd, rs } => {
                let v = self.cpu.get(rs);
                self.cpu.set(rd, v);
            }
            Add { rd, rs, rt } => {
                let v = self.cpu.get(rs).wrapping_add(self.cpu.get(rt));
                self.cpu.set(rd, v);
            }
            Addi { rd, rs, imm } => {
                let v = self.cpu.get(rs).wrapping_add(imm);
                self.cpu.set(rd, v);
            }
            Sub { rd, rs, rt } => {
                let v = self.cpu.get(rs).wrapping_sub(self.cpu.get(rt));
                self.cpu.set(rd, v);
            }
            Mul { rd, rs, rt } => {
                let v = self.cpu.get(rs).wrapping_mul(self.cpu.get(rt));
                self.cpu.set(rd, v);
            }
            Udiv { rd, rs, rt } => {
                let d = self.cpu.get(rt);
                if d == 0 {
                    return Err(Fault::DivByZero { pc });
                }
                let v = self.cpu.get(rs) / d;
                self.cpu.set(rd, v);
            }
            Urem { rd, rs, rt } => {
                let d = self.cpu.get(rt);
                if d == 0 {
                    return Err(Fault::DivByZero { pc });
                }
                let v = self.cpu.get(rs) % d;
                self.cpu.set(rd, v);
            }
            Sdiv { rd, rs, rt } => {
                let d = self.cpu.get(rt) as i32;
                if d == 0 {
                    return Err(Fault::DivByZero { pc });
                }
                let v = (self.cpu.get(rs) as i32).wrapping_div(d);
                self.cpu.set(rd, v as u32);
            }
            And { rd, rs, rt } => {
                let v = self.cpu.get(rs) & self.cpu.get(rt);
                self.cpu.set(rd, v);
            }
            Andi { rd, rs, imm } => {
                let v = self.cpu.get(rs) & imm;
                self.cpu.set(rd, v);
            }
            Or { rd, rs, rt } => {
                let v = self.cpu.get(rs) | self.cpu.get(rt);
                self.cpu.set(rd, v);
            }
            Ori { rd, rs, imm } => {
                let v = self.cpu.get(rs) | imm;
                self.cpu.set(rd, v);
            }
            Xor { rd, rs, rt } => {
                let v = self.cpu.get(rs) ^ self.cpu.get(rt);
                self.cpu.set(rd, v);
            }
            Xori { rd, rs, imm } => {
                let v = self.cpu.get(rs) ^ imm;
                self.cpu.set(rd, v);
            }
            Not { rd, rs } => {
                let v = !self.cpu.get(rs);
                self.cpu.set(rd, v);
            }
            Shl { rd, rs, rt } => {
                let sh = self.cpu.get(rt);
                let v = if sh >= 32 { 0 } else { self.cpu.get(rs) << sh };
                self.cpu.set(rd, v);
            }
            Shli { rd, rs, imm } => {
                let v = if imm >= 32 { 0 } else { self.cpu.get(rs) << imm };
                self.cpu.set(rd, v);
            }
            Shr { rd, rs, rt } => {
                let sh = self.cpu.get(rt);
                let v = if sh >= 32 { 0 } else { self.cpu.get(rs) >> sh };
                self.cpu.set(rd, v);
            }
            Shri { rd, rs, imm } => {
                let v = if imm >= 32 { 0 } else { self.cpu.get(rs) >> imm };
                self.cpu.set(rd, v);
            }
            Sar { rd, rs, rt } => {
                let sh = self.cpu.get(rt).min(31);
                let v = (self.cpu.get(rs) as i32) >> sh;
                self.cpu.set(rd, v as u32);
            }
            Sari { rd, rs, imm } => {
                let v = (self.cpu.get(rs) as i32) >> imm.min(31);
                self.cpu.set(rd, v as u32);
            }
            Ldw { rd, rs, imm } => {
                let addr = self.cpu.get(rs).wrapping_add(imm);
                let v = self.read_mem(pc, addr, 4)?;
                self.cpu.set(rd, v);
            }
            Ldh { rd, rs, imm } => {
                let addr = self.cpu.get(rs).wrapping_add(imm);
                let v = self.read_mem(pc, addr, 2)?;
                self.cpu.set(rd, v);
            }
            Ldb { rd, rs, imm } => {
                let addr = self.cpu.get(rs).wrapping_add(imm);
                let v = self.read_mem(pc, addr, 1)?;
                self.cpu.set(rd, v);
            }
            Stw { rs, rt, imm } => {
                let addr = self.cpu.get(rs).wrapping_add(imm);
                self.write_mem(pc, addr, 4, self.cpu.get(rt))?;
            }
            Sth { rs, rt, imm } => {
                let addr = self.cpu.get(rs).wrapping_add(imm);
                self.write_mem(pc, addr, 2, self.cpu.get(rt))?;
            }
            Stb { rs, rt, imm } => {
                let addr = self.cpu.get(rs).wrapping_add(imm);
                self.write_mem(pc, addr, 1, self.cpu.get(rt))?;
            }
            Jmp { imm } => jump = Some(imm),
            Jr { rs } => jump = Some(self.cpu.get(rs)),
            Beq { rs, rt, imm } => {
                if self.cpu.get(rs) == self.cpu.get(rt) {
                    jump = Some(imm);
                }
            }
            Bne { rs, rt, imm } => {
                if self.cpu.get(rs) != self.cpu.get(rt) {
                    jump = Some(imm);
                }
            }
            Blt { rs, rt, imm } => {
                if (self.cpu.get(rs) as i32) < (self.cpu.get(rt) as i32) {
                    jump = Some(imm);
                }
            }
            Bge { rs, rt, imm } => {
                if (self.cpu.get(rs) as i32) >= (self.cpu.get(rt) as i32) {
                    jump = Some(imm);
                }
            }
            Bltu { rs, rt, imm } => {
                if self.cpu.get(rs) < self.cpu.get(rt) {
                    jump = Some(imm);
                }
            }
            Bgeu { rs, rt, imm } => {
                if self.cpu.get(rs) >= self.cpu.get(rt) {
                    jump = Some(imm);
                }
            }
            Call { imm } => {
                self.cpu.set(Reg::LR, next);
                jump = Some(imm);
            }
            Callr { rs } => {
                let t = self.cpu.get(rs);
                self.cpu.set(Reg::LR, next);
                jump = Some(t);
            }
            Ret => jump = Some(self.cpu.get(Reg::LR)),
            Push { rs } => {
                let sp = self.cpu.get(Reg::SP).wrapping_sub(4);
                self.write_mem(pc, sp, 4, self.cpu.get(rs))?;
                self.cpu.set(Reg::SP, sp);
            }
            Pop { rd } => {
                let sp = self.cpu.get(Reg::SP);
                let v = self.read_mem(pc, sp, 4)?;
                self.cpu.set(rd, v);
                self.cpu.set(Reg::SP, sp.wrapping_add(4));
            }
            In { rd, imm } => {
                let v = self.bus.port_read(imm);
                self.cpu.set(rd, v);
            }
            Inr { rd, rs } => {
                let port = self.cpu.get(rs);
                let v = self.bus.port_read(port);
                self.cpu.set(rd, v);
            }
            Out { rt, imm } => {
                let v = self.cpu.get(rt);
                self.bus.port_write(imm, v);
            }
            Outr { rs, rt } => {
                let port = self.cpu.get(rs);
                let v = self.cpu.get(rt);
                self.bus.port_write(port, v);
            }
        }
        self.cpu.pc = jump.unwrap_or(next);
        // Report kernel-bound control transfers eagerly so the caller never
        // tries to fetch from a trap address.
        if self.cpu.pc == RETURN_TRAP {
            return Ok(StepEvent::ReturnToKernel);
        }
        if let Some(export_id) = trap_export_id(self.cpu.pc) {
            return Ok(StepEvent::KernelCall { export_id, return_to: self.cpu.get(Reg::LR) });
        }
        Ok(StepEvent::Continue)
    }

    /// Runs until a non-`Continue` event or `max_insns` instructions.
    pub fn run(&mut self, max_insns: u64) -> StepEvent {
        for _ in 0..max_insns {
            match self.step() {
                StepEvent::Continue => continue,
                ev => return ev,
            }
        }
        StepEvent::Continue
    }

    /// Pre-decodes the straight-line superblock starting at `pc`.
    ///
    /// The block ends at the first control-flow instruction (inclusive), at
    /// the first undecodable/unfetchable slot (exclusive — dispatching there
    /// falls back to [`Vm::step`] for exact fault semantics), or at
    /// [`MAX_SUPERBLOCK`] instructions.
    fn decode_block(&mut self, pc: u32) -> SuperBlock {
        let mut insns = Vec::new();
        let mut cur = pc;
        while insns.len() < MAX_SUPERBLOCK {
            let mut raw = [0u8; 8];
            let mut ok = true;
            for (i, b) in raw.iter_mut().enumerate() {
                match self.mem.read_u8(cur.wrapping_add(i as u32), AccessKind::Fetch) {
                    Ok(v) => *b = v,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break;
            }
            let Some(insn) = decode(&raw) else { break };
            let terminal = insn.is_terminator();
            insns.push((cur, insn));
            if terminal {
                break;
            }
            cur = cur.wrapping_add(INSN_SIZE);
        }
        SuperBlock { insns }
    }

    /// Threaded-dispatch interpreter: like [`Vm::run`] but executes
    /// pre-decoded superblocks back-to-back with no per-instruction fetch or
    /// decode. Every superblock entry pc is appended to `block_trace` (the
    /// cheap concrete edge map consumed by the fuzzer's coverage feedback).
    ///
    /// Semantically identical to a [`Vm::step`] loop: the cache is keyed by
    /// the memory's code generation, so self-modifying code — even a store
    /// that patches a later instruction of the *current* block — re-decodes
    /// before the stale copy can execute.
    pub fn run_fast(
        &mut self,
        max_insns: u64,
        cache: &mut BlockCache,
        block_trace: &mut Vec<u32>,
    ) -> StepEvent {
        let mut budget = max_insns;
        'dispatch: loop {
            let gen = self.mem.code_generation();
            if cache.generation != gen {
                cache.blocks.clear();
                cache.generation = gen;
            }
            let pc = self.cpu.pc;
            if pc == RETURN_TRAP {
                return StepEvent::ReturnToKernel;
            }
            if let Some(export_id) = trap_export_id(pc) {
                return StepEvent::KernelCall { export_id, return_to: self.cpu.get(Reg::LR) };
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = cache.blocks.entry(pc) {
                let b = self.decode_block(pc);
                if b.insns.is_empty() {
                    // Unfetchable or undecodable right at the entry: one slow
                    // step produces the exact fault.
                    if budget == 0 {
                        return StepEvent::Continue;
                    }
                    match self.step() {
                        StepEvent::Continue => {
                            budget -= 1;
                            continue 'dispatch;
                        }
                        ev => return ev,
                    }
                }
                slot.insert(b);
            }
            let block = &cache.blocks[&pc];
            block_trace.push(pc);
            for &(ipc, insn) in &block.insns {
                if budget == 0 {
                    return StepEvent::Continue;
                }
                self.insns_retired += 1;
                budget -= 1;
                match self.exec(ipc, insn) {
                    Ok(StepEvent::Continue) => {}
                    Ok(ev) => return ev,
                    Err(f) => return StepEvent::Faulted(f),
                }
                if self.mem.code_generation() != gen {
                    // A store hit the code region; the rest of this block may
                    // be stale. Re-dispatch (which rebuilds the cache).
                    continue 'dispatch;
                }
            }
        }
    }
}

/// Maximum pre-decoded instructions per superblock.
const MAX_SUPERBLOCK: usize = 64;

/// A straight-line run of pre-decoded instructions.
#[derive(Clone, Debug)]
struct SuperBlock {
    /// `(pc, insn)` pairs; only the last may be control flow.
    insns: Vec<(u32, Insn)>,
}

/// Cache of pre-decoded superblocks keyed by entry pc.
///
/// Owned by the caller (not the [`Vm`]) so one warm cache can be reused
/// across many fuzz executions of the *same image* (generations only order
/// writes within one image's lifetime, so reuse across different images
/// must start from a fresh cache). It self-invalidates whenever the
/// memory's code generation moves.
#[derive(Debug, Default)]
pub struct BlockCache {
    blocks: std::collections::HashMap<u32, SuperBlock>,
    generation: u64,
}

impl BlockCache {
    /// Creates an empty cache.
    pub fn new() -> BlockCache {
        BlockCache::default()
    }

    /// Number of cached superblocks (diagnostics).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_isa::asm::{assemble, ExportMap};
    use ddt_isa::export_trap_addr;

    fn vm_with(src: &str) -> (Vm, ddt_isa::asm::Assembled) {
        let mut exports = ExportMap::new();
        exports.insert("KeFoo".into(), 3);
        let a = assemble(src, &exports).expect("asm");
        let mut vm = Vm::new();
        vm.load_image(&a.image);
        // Stack.
        vm.mem.map(0x7000_0000, 0x10_0000);
        vm.cpu.set(Reg::SP, 0x7010_0000);
        vm.cpu.set(Reg::LR, RETURN_TRAP);
        vm.cpu.pc = a.image.entry;
        (vm, a)
    }

    #[test]
    fn arithmetic_program() {
        let (mut vm, _) = vm_with(
            "DriverEntry:
                mov r0, 6
                mov r1, 7
                mul r2, r0, r1
                add r2, r2, 8
                shr r3, r2, 1
                ret",
        );
        assert_eq!(vm.run(100), StepEvent::ReturnToKernel);
        assert_eq!(vm.cpu.get(Reg(2)), 50);
        assert_eq!(vm.cpu.get(Reg(3)), 25);
    }

    #[test]
    fn memory_and_stack() {
        let (mut vm, a) = vm_with(
            "DriverEntry:
                push r4, lr
                lea r4, buf
                mov r0, 0x1234
                stw [r4], r0
                ldh r1, [r4]
                ldb r2, [r4+1]
                pop lr, r4
                ret
            .bss
            buf: .space 8",
        );
        assert_eq!(vm.run(100), StepEvent::ReturnToKernel);
        assert_eq!(vm.cpu.get(Reg(1)), 0x1234);
        assert_eq!(vm.cpu.get(Reg(2)), 0x12);
        let _ = a;
    }

    #[test]
    fn loops_and_branches() {
        let (mut vm, _) = vm_with(
            "DriverEntry:
                mov r0, 0
                mov r1, 0
            loop:
                add r0, r0, 1
                add r1, r1, r0
                bltu r0, 10, loop
                ret",
        );
        assert_eq!(vm.run(1000), StepEvent::ReturnToKernel);
        assert_eq!(vm.cpu.get(Reg(1)), 55);
    }

    #[test]
    fn function_calls() {
        let (mut vm, _) = vm_with(
            "DriverEntry:
                push lr
                mov r0, 20
                call double
                pop lr
                ret
            double:
                add r0, r0, r0
                ret",
        );
        assert_eq!(vm.run(100), StepEvent::ReturnToKernel);
        assert_eq!(vm.cpu.get(Reg(0)), 40);
    }

    #[test]
    fn kernel_call_traps_out() {
        let (mut vm, _) = vm_with(
            "DriverEntry:
                push lr
                mov r0, 5
                call @KeFoo
                pop lr
                ret",
        );
        match vm.run(100) {
            StepEvent::KernelCall { export_id, return_to } => {
                assert_eq!(export_id, 3);
                assert_eq!(vm.cpu.pc, export_trap_addr(3));
                assert_eq!(return_to, vm.cpu.get(Reg::LR));
            }
            ev => panic!("expected kernel call, got {ev:?}"),
        }
        // Simulate the kernel returning 0 and resuming the driver.
        vm.cpu.set(Reg(0), 0);
        vm.cpu.pc = vm.cpu.get(Reg::LR);
        assert_eq!(vm.run(100), StepEvent::ReturnToKernel);
    }

    #[test]
    fn unmapped_access_faults() {
        let (mut vm, _) = vm_with(
            "DriverEntry:
                mov r1, 0x12340000
                ldw r0, [r1]
                ret",
        );
        match vm.run(100) {
            StepEvent::Faulted(Fault::BadAccess { addr, kind, .. }) => {
                assert_eq!(addr, 0x1234_0000);
                assert_eq!(kind, AccessKind::Read);
            }
            ev => panic!("expected fault, got {ev:?}"),
        }
    }

    #[test]
    fn misaligned_word_faults() {
        let (mut vm, _) = vm_with(
            "DriverEntry:
                lea r1, buf
                add r1, r1, 2
                ldw r0, [r1]
                ret
            .bss
            buf: .space 8",
        );
        assert!(matches!(vm.run(100), StepEvent::Faulted(Fault::Misaligned { .. })));
    }

    #[test]
    fn div_by_zero_faults() {
        let (mut vm, _) = vm_with(
            "DriverEntry:
                mov r0, 10
                mov r1, 0
                udiv r2, r0, r1
                ret",
        );
        assert!(matches!(vm.run(100), StepEvent::Faulted(Fault::DivByZero { .. })));
    }

    #[test]
    fn illegal_instruction_faults() {
        let (mut vm, a) = vm_with("DriverEntry:\n nop\n ret");
        // Clobber the second instruction with garbage.
        vm.mem.write_bytes(a.image.entry + 8, &[0xee; 8]).unwrap();
        assert!(matches!(vm.run(100), StepEvent::Faulted(Fault::IllegalInsn { .. })));
    }

    #[test]
    fn mmio_routes_to_device() {
        let (mut vm, _) = vm_with(
            "DriverEntry:
                mov r1, 0x80000000
                ldw r0, [r1]
                stw [r1+4], r0
                ret",
        );
        let d = vm.bus.add_device(Box::new(crate::bus::ScriptedDevice::new(vec![0xcafe])));
        vm.bus.map_mmio(0x8000_0000, 0x100, d);
        assert_eq!(vm.run(100), StepEvent::ReturnToKernel);
        assert_eq!(vm.cpu.get(Reg(0)), 0xcafe);
    }

    #[test]
    fn port_io() {
        let (mut vm, _) = vm_with(
            "DriverEntry:
                in r0, 0x10
                out 0x14, r0
                ret",
        );
        let d = vm.bus.add_device(Box::new(crate::bus::ScriptedDevice::new(vec![0x55])));
        vm.bus.map_ports(0x10, 8, d);
        assert_eq!(vm.run(100), StepEvent::ReturnToKernel);
        assert_eq!(vm.cpu.get(Reg(0)), 0x55);
    }

    #[test]
    fn halt_stops() {
        let (mut vm, _) = vm_with("DriverEntry:\n halt");
        assert_eq!(vm.run(10), StepEvent::Halted);
    }

    #[test]
    fn run_budget_returns_continue() {
        let (mut vm, _) = vm_with("DriverEntry:\nspin: jmp spin");
        assert_eq!(vm.run(50), StepEvent::Continue, "budget exhausted mid-loop");
        assert_eq!(vm.insns_retired, 50);
    }

    #[test]
    fn run_fast_matches_step_loop() {
        let src = "DriverEntry:
                push lr
                mov r0, 0
                mov r1, 0
            loop:
                add r0, r0, 1
                call body
                bltu r0, 200, loop
                pop lr
                ret
            body:
                add r1, r1, r0
                ret";
        let (mut slow, _) = vm_with(src);
        let ev_slow = slow.run(1_000_000);
        let (mut fast, _) = vm_with(src);
        let mut cache = BlockCache::new();
        let mut trace = Vec::new();
        let ev_fast = fast.run_fast(1_000_000, &mut cache, &mut trace);
        assert_eq!(ev_slow, ev_fast);
        assert_eq!(slow.cpu, fast.cpu);
        assert_eq!(slow.insns_retired, fast.insns_retired);
        assert_eq!(fast.cpu.get(Reg(1)), (1..=200u32).sum::<u32>());
        assert!(cache.len() >= 3, "loop body, call target, tail all cached");
        assert!(trace.len() as u64 <= fast.insns_retired);
        // Superblock entries start at the function's real block boundaries.
        assert!(trace.iter().all(|pc| *pc >= 0x0010_0000), "entries are code addresses");
    }

    #[test]
    fn run_fast_reuses_a_warm_cache_across_vms() {
        let src = "DriverEntry:
                mov r0, 0
            loop:
                add r0, r0, 1
                bltu r0, 50, loop
                ret";
        let (mut a, _) = vm_with(src);
        let mut cache = BlockCache::new();
        let mut trace = Vec::new();
        assert_eq!(a.run_fast(10_000, &mut cache, &mut trace), StepEvent::ReturnToKernel);
        let warm = cache.len();
        assert!(warm > 0);
        // Same image in a fresh VM: the decoded blocks survive.
        let (mut b, _) = vm_with(src);
        trace.clear();
        assert_eq!(b.run_fast(10_000, &mut cache, &mut trace), StepEvent::ReturnToKernel);
        assert_eq!(cache.len(), warm, "no re-decode on the warm path");
        assert_eq!(b.cpu.get(Reg(0)), 50);
    }

    #[test]
    fn run_fast_invalidates_on_self_modifying_code() {
        // The stores patch an instruction *later in the same superblock*:
        // the 8-byte encoding of `mov r0, 2` (at src) is copied over
        // `mov r0, 1` (at patch) before control reaches it. A step() loop
        // naturally executes the new bytes; run_fast must re-decode.
        let src = "DriverEntry:
                lea r1, src
                lea r2, patch
                ldw r3, [r1]
                stw [r2], r3
                ldw r3, [r1+4]
                stw [r2+4], r3
            patch:
                mov r0, 1
                ret
            src:
                mov r0, 2
                ret";
        let (mut slow, _) = vm_with(src);
        assert_eq!(slow.run(100), StepEvent::ReturnToKernel);
        assert_eq!(slow.cpu.get(Reg(0)), 2, "step loop sees the patched insn");
        let (mut fast, _) = vm_with(src);
        let mut cache = BlockCache::new();
        let mut trace = Vec::new();
        assert_eq!(fast.run_fast(100, &mut cache, &mut trace), StepEvent::ReturnToKernel);
        assert_eq!(fast.cpu.get(Reg(0)), 2, "superblock cache must re-decode after the store");
        assert_eq!(slow.insns_retired, fast.insns_retired);
    }

    #[test]
    fn run_fast_budget_is_resumable() {
        let (mut vm, _) = vm_with("DriverEntry:\nspin: jmp spin");
        let mut cache = BlockCache::new();
        let mut trace = Vec::new();
        assert_eq!(vm.run_fast(50, &mut cache, &mut trace), StepEvent::Continue);
        assert_eq!(vm.insns_retired, 50);
        assert_eq!(vm.run_fast(25, &mut cache, &mut trace), StepEvent::Continue);
        assert_eq!(vm.insns_retired, 75);
    }

    #[test]
    fn run_fast_traps_and_faults_match_step() {
        let src = "DriverEntry:
                push lr
                mov r0, 5
                call @KeFoo
                pop lr
                mov r1, 0x12340000
                ldw r2, [r1]
                ret";
        let (mut vm, _) = vm_with(src);
        let mut cache = BlockCache::new();
        let mut trace = Vec::new();
        match vm.run_fast(100, &mut cache, &mut trace) {
            StepEvent::KernelCall { export_id, .. } => assert_eq!(export_id, 3),
            ev => panic!("expected kernel call, got {ev:?}"),
        }
        vm.cpu.set(Reg(0), 0);
        vm.cpu.pc = vm.cpu.get(Reg::LR);
        match vm.run_fast(100, &mut cache, &mut trace) {
            StepEvent::Faulted(Fault::BadAccess { addr, kind, .. }) => {
                assert_eq!(addr, 0x1234_0000);
                assert_eq!(kind, AccessKind::Read);
            }
            ev => panic!("expected fault, got {ev:?}"),
        }
    }
}
