//! Sparse paged guest physical memory.
//!
//! Memory is allocated in 4 KiB pages on demand, but only within regions
//! explicitly mapped by the loader or the kernel — an access outside every
//! mapped region is a fault, which is how the concrete VM surfaces wild
//! pointer dereferences during replay.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

/// Page size in bytes.
pub const PAGE_SIZE: u32 = 4096;

pub use ddt_isa::AccessKind;

/// A memory access error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemError {
    /// The faulting guest address.
    pub addr: u32,
    /// What kind of access faulted.
    pub kind: AccessKind,
}

/// Guest physical memory: mapped regions + demand-allocated pages.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    /// Mapped regions: start → end (exclusive). Non-overlapping.
    regions: BTreeMap<u32, u32>,
    /// Demand-allocated pages keyed by page base address.
    pages: HashMap<u32, Box<[u8; PAGE_SIZE as usize]>>,
    /// Declared code region `[start, end)`, if any. Writes landing inside it
    /// bump `code_generation`, which is the concrete analog of the symbolic
    /// interpreter's `code_bytes_stable` guard: the superblock cache is
    /// valid exactly while the generation it was decoded under is current.
    code_region: Option<(u32, u32)>,
    /// Bumped on every write that touches the code region.
    code_generation: u64,
}

impl Memory {
    /// Creates empty (fully unmapped) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Maps `[start, start+len)` as accessible, zero-filled memory.
    ///
    /// Overlapping or adjacent regions merge.
    pub fn map(&mut self, start: u32, len: u32) {
        if len == 0 {
            return;
        }
        let end = start.checked_add(len).expect("region wraps the address space");
        let (mut s, mut e) = (start, end);
        // Merge with any overlapping/adjacent existing regions.
        let overlapping: Vec<(u32, u32)> = self
            .regions
            .range(..=e)
            .filter(|&(&rs, &re)| re >= s && rs <= e)
            .map(|(&rs, &re)| (rs, re))
            .collect();
        for (rs, re) in overlapping {
            s = s.min(rs);
            e = e.max(re);
            self.regions.remove(&rs);
        }
        self.regions.insert(s, e);
    }

    /// Unmaps `[start, start+len)`; pages inside are dropped.
    pub fn unmap(&mut self, start: u32, len: u32) {
        if len == 0 {
            return;
        }
        let end = start + len;
        let affected: Vec<(u32, u32)> = self
            .regions
            .range(..end)
            .filter(|&(_, &re)| re > start)
            .map(|(&rs, &re)| (rs, re))
            .collect();
        for (rs, re) in affected {
            self.regions.remove(&rs);
            if rs < start {
                self.regions.insert(rs, start);
            }
            if re > end {
                self.regions.insert(end, re);
            }
        }
        let first_page = start / PAGE_SIZE;
        let last_page = (end - 1) / PAGE_SIZE;
        for p in first_page..=last_page {
            let page_base = p * PAGE_SIZE;
            // Only drop pages fully inside the unmapped range.
            if page_base >= start && page_base + PAGE_SIZE <= end {
                self.pages.remove(&page_base);
            }
        }
    }

    /// True if the byte at `addr` is mapped.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.regions.range(..=addr).next_back().is_some_and(|(_, &end)| addr < end)
    }

    /// True if the whole range `[addr, addr+len)` is mapped.
    pub fn is_range_mapped(&self, addr: u32, len: u32) -> bool {
        if len == 0 {
            return true;
        }
        let Some(end) = addr.checked_add(len) else { return false };
        let mut cur = addr;
        while cur < end {
            match self.regions.range(..=cur).next_back() {
                Some((_, &rend)) if cur < rend => cur = rend,
                _ => return false,
            }
        }
        true
    }

    fn page(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE as usize] {
        let base = addr & !(PAGE_SIZE - 1);
        self.pages.entry(base).or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, addr: u32, kind: AccessKind) -> Result<u8, MemError> {
        if !self.is_mapped(addr) {
            return Err(MemError { addr, kind });
        }
        let base = addr & !(PAGE_SIZE - 1);
        Ok(match self.pages.get(&base) {
            Some(p) => p[(addr - base) as usize],
            None => 0,
        })
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), MemError> {
        if !self.is_mapped(addr) {
            return Err(MemError { addr, kind: AccessKind::Write });
        }
        if let Some((s, e)) = self.code_region {
            if addr >= s && addr < e {
                self.code_generation += 1;
            }
        }
        let base = addr & !(PAGE_SIZE - 1);
        self.page(addr)[(addr - base) as usize] = v;
        Ok(())
    }

    /// Declares `[start, start+len)` as the code region whose writes
    /// invalidate pre-decoded instruction caches (self-modifying code or a
    /// reloaded image). Replaces any earlier declaration and bumps the
    /// generation so stale caches built before the declaration also miss.
    pub fn set_code_region(&mut self, start: u32, len: u32) {
        self.code_region = Some((start, start.saturating_add(len)));
        self.code_generation += 1;
    }

    /// Current code-region write generation. A decoded-block cache records
    /// the generation it decoded under and must be discarded on mismatch.
    pub fn code_generation(&self) -> u64 {
        self.code_generation
    }

    /// Reads a little-endian value of `size` bytes (1, 2, 4, or 8).
    pub fn read(&mut self, addr: u32, size: u8, kind: AccessKind) -> Result<u64, MemError> {
        let mut v = 0u64;
        for i in 0..size {
            v |= (self.read_u8(addr.wrapping_add(i as u32), kind)? as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Writes a little-endian value of `size` bytes.
    pub fn write(&mut self, addr: u32, size: u8, v: u64) -> Result<(), MemError> {
        for i in 0..size {
            self.write_u8(addr.wrapping_add(i as u32), (v >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    /// Copies a byte slice into guest memory.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b)?;
        }
        Ok(())
    }

    /// Reads `len` bytes from guest memory.
    pub fn read_bytes(&mut self, addr: u32, len: u32) -> Result<Vec<u8>, MemError> {
        (0..len).map(|i| self.read_u8(addr.wrapping_add(i), AccessKind::Read)).collect()
    }

    /// Iterates over mapped regions as `(start, end)` pairs.
    pub fn regions(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.regions.iter().map(|(&s, &e)| (s, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let mut m = Memory::new();
        assert_eq!(
            m.read_u8(0x1000, AccessKind::Read),
            Err(MemError { addr: 0x1000, kind: AccessKind::Read })
        );
        assert!(m.write_u8(0x1000, 1).is_err());
    }

    #[test]
    fn mapped_memory_reads_zero_then_roundtrips() {
        let mut m = Memory::new();
        m.map(0x1000, 0x100);
        assert_eq!(m.read_u8(0x1000, AccessKind::Read), Ok(0));
        m.write(0x1010, 4, 0xdead_beef).unwrap();
        assert_eq!(m.read(0x1010, 4, AccessKind::Read), Ok(0xdead_beef));
        assert_eq!(m.read(0x1012, 2, AccessKind::Read), Ok(0xdead));
    }

    #[test]
    fn regions_merge() {
        let mut m = Memory::new();
        m.map(0x1000, 0x100);
        m.map(0x1100, 0x100);
        m.map(0x10c0, 0x100); // Overlaps both.
        assert_eq!(m.regions().collect::<Vec<_>>(), vec![(0x1000, 0x1200)]);
    }

    #[test]
    fn range_mapping_checks_span_regions() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000);
        m.map(0x2000, 0x1000); // Merged: 0x1000..0x3000.
        assert!(m.is_range_mapped(0x1ff0, 0x20));
        assert!(!m.is_range_mapped(0x2ff0, 0x20));
        assert!(m.is_range_mapped(0x2ff0, 0x10));
        assert!(!m.is_range_mapped(0xfff, 1));
        assert!(m.is_range_mapped(0x5000, 0), "empty range is trivially mapped");
    }

    #[test]
    fn unmap_splits_regions_and_clears_pages() {
        let mut m = Memory::new();
        m.map(0x1000, 0x3000);
        m.write_u8(0x2000, 0xaa).unwrap();
        m.unmap(0x2000, 0x1000);
        assert!(m.is_mapped(0x1fff));
        assert!(!m.is_mapped(0x2000));
        assert!(!m.is_mapped(0x2fff));
        assert!(m.is_mapped(0x3000));
        // Remap: the old page content must be gone.
        m.map(0x2000, 0x1000);
        assert_eq!(m.read_u8(0x2000, AccessKind::Read), Ok(0));
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.map(0, 2 * PAGE_SIZE);
        let addr = PAGE_SIZE - 2;
        m.write(addr, 4, 0x1122_3344).unwrap();
        assert_eq!(m.read(addr, 4, AccessKind::Read), Ok(0x1122_3344));
    }

    #[test]
    fn write_bytes_and_read_bytes() {
        let mut m = Memory::new();
        m.map(0x100, 0x100);
        m.write_bytes(0x100, b"hello").unwrap();
        assert_eq!(m.read_bytes(0x100, 5).unwrap(), b"hello");
        assert!(m.write_bytes(0x1fd, b"xyzw").is_err(), "tail crosses the boundary");
    }

    #[test]
    fn code_region_writes_bump_the_generation() {
        let mut m = Memory::new();
        m.map(0x1000, 0x2000);
        let g0 = m.code_generation();
        m.write_u8(0x1004, 1).unwrap(); // No region declared yet: no bump.
        assert_eq!(m.code_generation(), g0);
        m.set_code_region(0x1000, 0x1000);
        let g1 = m.code_generation();
        assert!(g1 > g0, "declaring the region invalidates older caches");
        m.write_u8(0x2800, 0xff).unwrap(); // Data write: stable.
        assert_eq!(m.code_generation(), g1);
        m.write_u8(0x1ffc, 0xff).unwrap(); // Code write: invalidates.
        assert!(m.code_generation() > g1);
        let g2 = m.code_generation();
        m.write(0x1ffe, 4, 0).unwrap(); // Straddles the region boundary.
        assert_eq!(m.code_generation(), g2 + 2, "two of four bytes land inside");
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Memory::new();
        a.map(0, PAGE_SIZE);
        a.write_u8(0, 1).unwrap();
        let mut b = a.clone();
        b.write_u8(0, 2).unwrap();
        assert_eq!(a.read_u8(0, AccessKind::Read), Ok(1));
        assert_eq!(b.read_u8(0, AccessKind::Read), Ok(2));
    }
}
