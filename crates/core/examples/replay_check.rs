//! Replays every found bug concretely and reports reproduction.
fn main() {
    for spec in ddt_drivers::drivers() {
        let dut = ddt_core::DriverUnderTest::from_spec(&spec);
        let report = ddt_core::Ddt::default().test(&dut);
        for bug in &report.bugs {
            let outcome = ddt_core::replay_bug(&dut, bug);
            let ok = matches!(outcome, ddt_core::ReplayOutcome::Reproduced { .. });
            println!("{} [{}] {} -> {}", spec.name, bug.class, if ok {"REPRODUCED"} else {"NOT-REPRODUCED"},
                     match &outcome { ddt_core::ReplayOutcome::Reproduced{observed} => observed.clone(),
                                      ddt_core::ReplayOutcome::NotReproduced{observed} => observed.clone() });
        }
    }
}
