//! Quick check of the annotations ablation (§5.1).
fn main() {
    let mut cfg = ddt_core::DdtConfig::default();
    cfg.annotations = ddt_core::Annotations::disabled();
    let ddt = ddt_core::Ddt::new(cfg);
    let mut total = 0;
    for spec in ddt_drivers::drivers() {
        let dut = ddt_core::DriverUnderTest::from_spec(&spec);
        let report = ddt.test(&dut);
        println!("=== {} : {} bugs, {:.0}% coverage", report.driver, report.bugs.len(), 100.0*report.relative_coverage());
        for b in &report.bugs { println!("  [{}] {}", b.class, b.description); }
        total += report.bugs.len();
    }
    println!("TOTAL {total}");
}
