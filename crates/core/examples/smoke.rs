//! Developer smoke-runner: `smoke <driver>` prints a one-screen report.
fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "clean".into());
    let spec = if which == "clean" {
        ddt_drivers::clean_driver()
    } else {
        ddt_drivers::driver_by_name(&which).expect("driver")
    };
    let dut = ddt_core::DriverUnderTest::from_spec(&spec);
    let t0 = std::time::Instant::now();
    let report = ddt_core::Ddt::default().test(&dut);
    println!("=== {} ({:?}) ===", report.driver, t0.elapsed());
    println!("coverage: {}/{} blocks ({:.0}%)", report.covered_blocks, report.total_blocks, 100.0*report.relative_coverage());
    println!("stats: {:?}", report.stats);
    for b in &report.bugs {
        println!("BUG [{}] pc={:#x} entry={} intr={:?}\n    {}", b.class, b.pc, b.entry, b.interrupted_entry, b.description);
    }
}
