//! Property tests for device-lifecycle fault injection (§4.11).
//!
//! Lifecycle events are replay-deterministic inputs: a schedule of
//! `(boundary, event)` pairs must drive the concrete runner to the exact
//! same trace — kernel event stream, outcome, instruction count, and
//! checker verdicts — every time it is executed. That determinism is what
//! lets a lifecycle bug found symbolically be confirmed concretely, and a
//! fuzz-found schedule be escalated symbolically, without either side
//! chasing a moving target.

use ddt_core::replay::{ConcreteOutcome, ConcreteRunner};
use ddt_core::DriverUnderTest;
use ddt_fuzz::FuzzInput;
use proptest::prelude::*;

fn dut(name: &str) -> DriverUnderTest {
    if name == "clean_nic" {
        return DriverUnderTest::from_spec(&ddt_drivers::clean_driver());
    }
    DriverUnderTest::from_spec(&ddt_drivers::driver_by_name(name).expect("bundled"))
}

/// Normalizes raw generator output into a valid, sorted lifecycle schedule
/// (mirrors what the mutator maintains as an invariant).
fn schedule_from(raw: Vec<(u8, u8)>) -> Vec<(u64, u8)> {
    let mut out: Vec<(u64, u8)> = raw
        .into_iter()
        .map(|(b, c)| (1 + (b as u64) % 24, 1 + c % 3))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// One full concrete execution under a lifecycle schedule, reduced to the
/// comparable essence.
fn execute(
    dut: &DriverUnderTest,
    hw: &[u32],
    schedule: &[(u64, u8)],
    interrupts: &[u64],
) -> (ConcreteOutcome, Vec<String>, u64, bool, bool) {
    let input = FuzzInput {
        hw: hw.to_vec(),
        inject_at: interrupts.to_vec(),
        lifecycle: schedule.to_vec(),
        ..FuzzInput::default()
    };
    let mut runner = ConcreteRunner::new(dut, input.hw.clone());
    runner.apply_fuzz_input(&input);
    let outcome = runner.run();
    let events: Vec<String> = runner.new_events().iter().map(|e| format!("{e:?}")).collect();
    let insns = runner.vm.insns_retired;
    let touched = runner.hw_touched_after_remove();
    let resume_bad = runner.resume_without_writes;
    (outcome, events, insns, touched, resume_bad)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same schedule executes to the same trace, twice, on a seeded
    /// driver: outcome, kernel event stream, instruction count, and both
    /// lifecycle checker verdicts.
    #[test]
    fn lifecycle_schedules_replay_identically_on_rtl8029(
        raw in prop::collection::vec((any::<u8>(), any::<u8>()), 0..6),
        hw in prop::collection::vec(any::<u32>(), 0..8),
        irq in prop::collection::vec(any::<u8>(), 0..3),
    ) {
        let dut = dut("rtl8029");
        let schedule = schedule_from(raw);
        let mut interrupts: Vec<u64> = irq.iter().map(|&b| 1 + b as u64 % 24).collect();
        interrupts.sort_unstable();
        interrupts.dedup();
        let a = execute(&dut, &hw, &schedule, &interrupts);
        let b = execute(&dut, &hw, &schedule, &interrupts);
        prop_assert_eq!(a, b, "schedule {:?} diverged between runs", schedule);
    }

    /// Same property on the audio driver, whose resume-without-restore
    /// checker exercises the power-transition half of the schedule space.
    #[test]
    fn lifecycle_schedules_replay_identically_on_ac97(
        raw in prop::collection::vec((any::<u8>(), any::<u8>()), 0..6),
        hw in prop::collection::vec(any::<u32>(), 0..8),
    ) {
        let dut = dut("ac97");
        let schedule = schedule_from(raw);
        let a = execute(&dut, &hw, &schedule, &[]);
        let b = execute(&dut, &hw, &schedule, &[]);
        prop_assert_eq!(a, b, "schedule {:?} diverged between runs", schedule);
    }

    /// The clean driver is lifecycle-correct under *every* schedule: no
    /// schedule of removals and power transitions makes it touch vanished
    /// hardware, resume without reprogramming, or crash.
    #[test]
    fn no_lifecycle_schedule_breaks_the_clean_driver(
        raw in prop::collection::vec((any::<u8>(), any::<u8>()), 0..8),
        hw in prop::collection::vec(any::<u32>(), 0..8),
        irq in prop::collection::vec(any::<u8>(), 0..3),
    ) {
        let dut = dut("clean_nic");
        let schedule = schedule_from(raw);
        let mut interrupts: Vec<u64> = irq.iter().map(|&b| 1 + b as u64 % 24).collect();
        interrupts.sort_unstable();
        interrupts.dedup();
        let (outcome, _, _, touched, resume_bad) =
            execute(&dut, &hw, &schedule, &interrupts);
        prop_assert!(
            matches!(outcome, ConcreteOutcome::Completed),
            "clean driver must complete under {:?}: {:?}", schedule, outcome
        );
        prop_assert!(!touched, "clean driver touched hardware after removal: {:?}", schedule);
        prop_assert!(!resume_bad, "clean driver resumed without restore: {:?}", schedule);
    }
}

/// Every bug the symbolic explorer finds under lifecycle injection carries
/// a decision log that replays: the signature is backed by a reproducible
/// schedule, not a one-off exploration artifact.
#[test]
fn symbolically_found_lifecycle_bugs_replay_from_their_decisions() {
    let spec = ddt_drivers::driver_by_name("ac97").expect("bundled");
    let mut dut = DriverUnderTest::from_spec(&spec);
    dut.workload = ddt_drivers::workload::lifecycle_workload_for(dut.class);
    let mut config = ddt_core::DdtConfig::default();
    config.fault_plan =
        ddt_core::FaultPlan::for_families(&[ddt_core::FaultFamily::Lifecycle]);
    let report = ddt_core::Ddt::new(config).test(&dut);
    let lifecycle_bugs: Vec<_> = report
        .bugs
        .iter()
        .filter(|b| b.class == ddt_core::BugClass::LifecycleViolation)
        .collect();
    assert!(!lifecycle_bugs.is_empty(), "the seeded ac97 lifecycle bugs were not found");
    for bug in &report.bugs {
        match ddt_core::replay_bug(&dut, bug) {
            ddt_core::ReplayOutcome::Reproduced { .. } => {}
            ddt_core::ReplayOutcome::NotReproduced { observed } => panic!(
                "[{}] {} did not replay (observed: {observed})",
                bug.class, bug.description
            ),
        }
    }
}
