//! Property tests for the fleet merge algebra.
//!
//! The fleet's correctness argument rests on its merge operations being
//! **additive** (the fold of the parts equals the whole) and
//! **order-independent** (shards complete in nondeterministic order, so the
//! fold must be commutative). These tests pin both properties for the three
//! merge paths the supervisor uses: [`ExploreStats::merge_add`],
//! [`RunHealth::merge_add`], and [`Coverage::absorb`].

use ddt_core::coverage::Coverage;
use ddt_core::{ExploreStats, RunHealth};
use ddt_isa::asm::{assemble, ExportMap};
use proptest::prelude::*;

/// SplitMix-style stream: turns one seed into as many field values as a
/// struct needs, so a `Vec<u64>` of seeds generates arbitrary structs.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 16) % 10_000
    }
}

fn arb_stats(seed: u64) -> ExploreStats {
    let mut m = Mix(seed);
    ExploreStats {
        paths_started: m.next(),
        paths_completed: m.next(),
        paths_faulted: m.next(),
        paths_infeasible: m.next(),
        paths_budget_killed: m.next(),
        paths_step_budget_killed: m.next(),
        insns: m.next(),
        peak_states: m.next() as usize,
        symbols: m.next() as u32,
        solver_queries: m.next(),
        solver_fast_hits: m.next(),
        solver_full: m.next(),
        solver_cache_hits: m.next(),
        solver_model_reuse: m.next(),
        solver_unsat_subset: m.next(),
        solver_sliced: m.next(),
        solver_slice_components: m.next(),
        solver_session_probes: m.next(),
        solver_session_resets: m.next(),
        solver_batch_flushes: m.next(),
        solver_batched_verdicts: m.next(),
        solver_batch_witness_hits: m.next(),
        solver_portfolio_races: m.next(),
        solver_portfolio_session_wins: m.next(),
        solver_portfolio_fresh_wins: m.next(),
        solver_portfolio_probe_wins: m.next(),
        solver_rewrite_reductions: m.next(),
        interner_hits: m.next(),
        interner_misses: m.next(),
        cache_evictions: m.next(),
        wall_ms: 0, // merge_add deliberately leaves wall clocks alone.
        max_cow_depth: m.next() as usize,
        states_dropped: m.next(),
        panics_caught: m.next(),
        faults_pool: m.next(),
        faults_shared: m.next(),
        faults_map: m.next(),
        faults_registration: m.next(),
        faults_registry: m.next(),
        faults_lifecycle: m.next(),
        lifecycle_bugs: m.next(),
        quanta_executed: m.next(),
        quanta_to_first_bug: m.next(),
        quanta_to_last_cover: m.next(),
        states_pruned: m.next(),
        fuzz_execs: m.next(),
        fuzz_insns: m.next(),
        fuzz_wall_ms: m.next(),
        escalations: m.next(),
        concrete_blocks: m.next(),
        concrete_bugs: m.next(),
    }
}

fn arb_health(seed: u64) -> RunHealth {
    let mut stats = arb_stats(seed);
    // Exercise the sum-vs-max distinction and the boolean ORs too.
    stats.wall_ms = 0;
    let mut h = RunHealth::from_stats(&stats, seed.is_multiple_of(7), seed.is_multiple_of(5));
    let mut m = Mix(seed ^ 0x9e3779b97f4a7c15);
    h.traces_persisted = m.next();
    h.checkpoints_written = m.next();
    h.journal_records = m.next();
    h.resume_replayed_paths = m.next();
    h.resume_replay_failures = m.next();
    h.fleet_workers_spawned = m.next();
    h.fleet_workers_lost = m.next();
    h.fleet_leases_reassigned = m.next();
    h.fleet_shards_stolen = m.next();
    h.fleet_shards_quarantined = m.next();
    h
}

/// A tiny driver image whose block partition gives `absorb` real block
/// addresses to fold.
fn blocks_and_coverage() -> (Vec<u32>, Coverage) {
    let src = "
        DriverEntry:
            beq r0, r1, a
            nop
            ret
        a:
            beq r2, r3, b
            nop
            ret
        b:
            nop
            ret";
    let a = assemble(src, &ExportMap::new()).expect("fixture assembles");
    let analysis = ddt_isa::analysis::analyze(&a.image);
    let blocks: Vec<u32> = analysis.blocks.keys().copied().collect();
    (blocks, Coverage::new(analysis))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Folding stats shards in any order yields the same aggregate, and
    /// the aggregate is the field-wise sum (max for the watermarks).
    #[test]
    fn stats_merge_is_additive_and_order_independent(
        seeds in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let parts: Vec<ExploreStats> = seeds.iter().map(|&s| arb_stats(s)).collect();

        let mut fwd = ExploreStats::default();
        for p in &parts {
            fwd.merge_add(p);
        }
        let mut rev = ExploreStats::default();
        for p in parts.iter().rev() {
            rev.merge_add(p);
        }
        prop_assert_eq!(&fwd, &rev, "merge order must not matter");

        let sum = |f: fn(&ExploreStats) -> u64| parts.iter().map(f).sum::<u64>();
        prop_assert_eq!(fwd.paths_started, sum(|s| s.paths_started));
        prop_assert_eq!(fwd.insns, sum(|s| s.insns));
        prop_assert_eq!(fwd.solver_queries, sum(|s| s.solver_queries));
        prop_assert_eq!(fwd.paths_step_budget_killed, sum(|s| s.paths_step_budget_killed));
        prop_assert_eq!(fwd.states_dropped, sum(|s| s.states_dropped));
        prop_assert_eq!(fwd.fuzz_execs, sum(|s| s.fuzz_execs));
        prop_assert_eq!(fwd.escalations, sum(|s| s.escalations));
        prop_assert_eq!(fwd.solver_batched_verdicts, sum(|s| s.solver_batched_verdicts));
        prop_assert_eq!(fwd.solver_portfolio_races, sum(|s| s.solver_portfolio_races));
        prop_assert_eq!(fwd.solver_rewrite_reductions, sum(|s| s.solver_rewrite_reductions));
        prop_assert_eq!(
            fwd.peak_states,
            parts.iter().map(|s| s.peak_states).max().unwrap_or(0),
            "peak states is a high-water mark, not a sum"
        );
        prop_assert_eq!(fwd.wall_ms, 0, "wall clocks never merge");
    }

    /// RunHealth folds the same way: counters sum, budget-exhaustion flags
    /// OR, and the fold commutes.
    #[test]
    fn health_merge_is_additive_and_order_independent(
        seeds in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let parts: Vec<RunHealth> = seeds.iter().map(|&s| arb_health(s)).collect();

        let mut fwd = RunHealth::default();
        for p in &parts {
            fwd.merge_add(p);
        }
        let mut rev = RunHealth::default();
        for p in parts.iter().rev() {
            rev.merge_add(p);
        }
        prop_assert_eq!(&fwd, &rev, "merge order must not matter");

        let sum = |f: fn(&RunHealth) -> u64| parts.iter().map(f).sum::<u64>();
        prop_assert_eq!(fwd.path_step_budget_kills, sum(|h| h.path_step_budget_kills));
        prop_assert_eq!(fwd.fleet_workers_lost, sum(|h| h.fleet_workers_lost));
        prop_assert_eq!(fwd.fleet_shards_quarantined, sum(|h| h.fleet_shards_quarantined));
        prop_assert_eq!(fwd.bug_occurrences, sum(|h| h.bug_occurrences));
        prop_assert_eq!(fwd.batched_verdicts, sum(|h| h.batched_verdicts));
        prop_assert_eq!(fwd.portfolio_races, sum(|h| h.portfolio_races));
        prop_assert_eq!(fwd.rewrite_reductions, sum(|h| h.rewrite_reductions));
        prop_assert_eq!(
            fwd.insn_budget_exhausted,
            parts.iter().any(|h| h.insn_budget_exhausted),
            "budget flags OR together"
        );
    }

    /// Absorbing coverage deltas is additive on hit counts, a set union on
    /// covered blocks, and order-independent.
    #[test]
    fn coverage_absorb_is_additive_and_order_independent(
        deltas in prop::collection::vec(
            prop::collection::vec((0usize..3, 1u64..50), 0..6),
            1..6,
        ),
    ) {
        let (blocks, mut fwd) = blocks_and_coverage();
        let (_, mut rev) = blocks_and_coverage();
        let to_hits = |d: &Vec<(usize, u64)>| -> Vec<(u32, u64)> {
            d.iter().map(|&(i, n)| (blocks[i % blocks.len()], n)).collect()
        };

        for d in &deltas {
            let hits = to_hits(d);
            let covered: Vec<u32> = hits.iter().map(|&(pc, _)| pc).collect();
            fwd.absorb(hits, covered);
        }
        for d in deltas.iter().rev() {
            let hits = to_hits(d);
            let covered: Vec<u32> = hits.iter().map(|&(pc, _)| pc).collect();
            rev.absorb(hits, covered);
        }

        let (fwd_hits, fwd_covered, _) = fwd.snapshot();
        let (rev_hits, rev_covered, _) = rev.snapshot();
        prop_assert_eq!(&fwd_hits, &rev_hits, "hit counts commute");
        prop_assert_eq!(&fwd_covered, &rev_covered, "covered set commutes");

        // Additivity: each block's merged count is the sum of its deltas.
        let mut expect: std::collections::BTreeMap<u32, u64> = Default::default();
        for d in &deltas {
            for (pc, n) in to_hits(d) {
                *expect.entry(pc).or_insert(0) += n;
            }
        }
        let expect: Vec<(u32, u64)> = expect.into_iter().collect();
        prop_assert_eq!(fwd_hits, expect);
        prop_assert_eq!(fwd.covered_blocks(), fwd_covered.len());
    }
}
