//! Property tests for the pluggable search frontier.
//!
//! Whatever order a [`Strategy`] imposes, the frontier must stay a faithful
//! container: every pushed state is popped exactly once (no drops, no
//! duplicates), selection never goes out of bounds, and coverage updates
//! between pops — which reshuffle every guided strategy's priorities — can
//! only reorder states, never lose them. [`PruneSet`] gets a model-based
//! check: it may drop a state only when the same fingerprint hash was
//! already seen at the same covered-block count.

use std::collections::HashMap;

use ddt_core::coverage::Coverage;
use ddt_core::{Frontier, Machine, PruneSet, Strategy};
use ddt_isa::analysis;
use ddt_kernel::Kernel;
use ddt_symvm::{SymCounter, SymState};
use proptest::prelude::*;
// `ddt_core::Strategy` shadows the proptest trait of the same name.
use proptest::strategy::Strategy as PropStrategy;

/// A minimal machine whose only interesting properties are its id and pc.
fn machine_at(id: u64, pc: u32) -> Machine {
    let mut m = Machine::new(SymState::new(SymCounter::new()), Kernel::new());
    m.id = id;
    m.st.cpu.pc = pc;
    m
}

/// One shared analysis: strategies rank against real block structure, and
/// half the generated pcs deliberately fall outside it (foreign pcs must
/// degrade gracefully, never panic).
fn pcnet_analysis() -> analysis::CodeAnalysis {
    let spec = ddt_drivers::driver_by_name("pcnet").expect("bundled");
    analysis::analyze(&spec.build().image)
}

/// One scripted frontier interaction: pushes, pops, and coverage mutations
/// interleaved, driven by a seed vector.
#[derive(Clone, Debug)]
enum Step {
    Push { id_salt: u64, pc_salt: usize },
    Pop,
    Exec { pc_salt: usize },
}

fn arb_step() -> impl proptest::strategy::Strategy<Value = Step> {
    prop_oneof![
        (any::<u64>(), any::<usize>())
            .prop_map(|(id_salt, pc_salt)| Step::Push { id_salt, pc_salt }),
        Just(Step::Pop),
        any::<usize>().prop_map(|pc_salt| Step::Exec { pc_salt }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The container law: under every strategy, with coverage mutating
    /// between pops, the multiset of popped ids equals the multiset of
    /// pushed ids (pop everything at the end to drain stragglers).
    #[test]
    fn every_pushed_state_pops_exactly_once(
        steps in proptest::collection::vec(arb_step(), 1..60),
        strategy_pick in 0usize..4,
    ) {
        let strategy = Strategy::ALL[strategy_pick];
        let analysis = pcnet_analysis();
        // Candidate pcs: real block starts plus a few foreign addresses.
        let mut pcs: Vec<u32> = analysis.blocks.keys().copied().take(12).collect();
        pcs.extend([0xdead_0000, 0x1, 0xffff_fff0]);
        let runtime = strategy.runtime(&analysis);
        let mut coverage = Coverage::new(analysis);

        let mut frontier = Frontier::new(runtime, Vec::new());
        let mut pushed: Vec<u64> = Vec::new();
        let mut popped: Vec<u64> = Vec::new();
        let mut next_unique: u64 = 1;
        for step in steps {
            match step {
                Step::Push { id_salt, pc_salt } => {
                    // Unique ids so the multiset check is exact.
                    let id = (id_salt << 16) | next_unique;
                    next_unique += 1;
                    let pc = pcs[pc_salt % pcs.len()];
                    pushed.push(id);
                    frontier.push(machine_at(id, pc));
                }
                Step::Pop => {
                    let len_before = frontier.len();
                    if let Some(m) = frontier.pop(&coverage) {
                        prop_assert_eq!(frontier.len(), len_before - 1);
                        popped.push(m.id);
                    } else {
                        prop_assert_eq!(len_before, 0);
                    }
                }
                Step::Exec { pc_salt } => {
                    coverage.on_exec(pcs[pc_salt % pcs.len()]);
                }
            }
        }
        while let Some(m) = frontier.pop(&coverage) {
            popped.push(m.id);
        }
        prop_assert!(frontier.is_empty());
        pushed.sort_unstable();
        popped.sort_unstable();
        prop_assert_eq!(pushed, popped, "{} dropped or duplicated states", strategy.name());
    }

    /// Selection is deterministic: the same frontier contents and the same
    /// coverage always pick the same state, for every strategy.
    #[test]
    fn selection_is_deterministic(
        salts in proptest::collection::vec((any::<u64>(), any::<usize>()), 2..24),
        warm in proptest::collection::vec(any::<usize>(), 0..16),
    ) {
        let analysis = pcnet_analysis();
        let pcs: Vec<u32> = analysis.blocks.keys().copied().take(16).collect();
        for strategy in Strategy::ALL {
            let runtime = strategy.runtime(&analysis);
            let mut coverage = Coverage::new(analysis.clone());
            for &w in &warm {
                coverage.on_exec(pcs[w % pcs.len()]);
            }
            let items: Vec<Machine> = salts
                .iter()
                .enumerate()
                .map(|(i, &(id, pc))| machine_at(id ^ i as u64, pcs[pc % pcs.len()]))
                .collect();
            let a = runtime.select(&items, &coverage);
            let b = runtime.select(&items, &coverage);
            prop_assert!(a < items.len(), "{}: out of bounds", strategy.name());
            prop_assert_eq!(a, b, "{}: unstable selection", strategy.name());
        }
    }

    /// PruneSet against a reference model: `check` prunes exactly when the
    /// same hash was last recorded at the same covered-block count.
    #[test]
    fn prune_set_matches_reference_model(
        ops in proptest::collection::vec((0u64..16, 0u64..6), 1..120),
    ) {
        let mut ps = PruneSet::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (hash, covered) in ops {
            let expect = model.insert(hash, covered) == Some(covered);
            let got = ps.check(hash, covered);
            prop_assert_eq!(got, expect, "hash {} at covered {}", hash, covered);
        }
        prop_assert_eq!(ps.len(), model.len());
    }

    /// The snapshot/seed round-trip preserves pruning behavior exactly.
    #[test]
    fn prune_snapshot_round_trip_is_behavior_preserving(
        warm in proptest::collection::vec((0u64..16, 0u64..6), 0..60),
        probe in proptest::collection::vec((0u64..16, 0u64..6), 1..60),
    ) {
        let mut original = PruneSet::new();
        for &(h, c) in &warm {
            original.check(h, c);
        }
        let mut restored = PruneSet::seeded(original.snapshot());
        for (h, c) in probe {
            prop_assert_eq!(original.check(h, c), restored.check(h, c));
        }
    }
}
