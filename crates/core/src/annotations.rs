//! Lightweight API annotations (§3.4.1).
//!
//! The paper's annotations fall in four categories; each maps to a
//! mechanism here:
//!
//! 1. **Concrete-to-symbolic conversion hints** — return values and entry
//!    point arguments: the registry hook below (the paper's
//!    `NdisReadConfiguration_return` example, reproduced almost literally),
//!    the allocation "NULL alternative" fork set, the PCI-descriptor
//!    revision hook, and the entry-argument windows applied by the
//!    exerciser (`oid window`, packet length `<=` original).
//! 2. **Symbolic-to-concrete conversion hints** — API usage rules; these
//!    surface as kernel events (`variant_mismatch` on spinlock release,
//!    IRQL changes) that `checkers` turns into bugs.
//! 3. **Resource allocation hints** — the kernel's `ResourceAcquired`/
//!    `ResourceReleased` events drive the grant set used by the memory
//!    checker; `apply_resource_grants` is that translation.
//! 4. **Kernel crash handler hook** — `KernelState::crash` interception in
//!    the exerciser.
//!
//! The whole set can be disabled ([`Annotations::disabled`]) to reproduce
//! the §5.1 ablation: race/hardware bugs stay findable, leak and
//! segmentation-fault bugs are lost with the coverage.

use std::collections::BTreeSet;

use ddt_expr::Expr;
use ddt_kernel::{export_id, Kernel, KernelEvent, ResourceKind};
use ddt_solver::Solver;
use ddt_symvm::{SymOrigin, SymState};

/// Annotation configuration for one test run.
#[derive(Clone, Debug)]
pub struct Annotations {
    /// Master switch (false = the paper's "default mode, no annotations").
    pub enabled: bool,
    /// Kernel exports whose allocations get a forked failure alternative.
    pub alloc_failure_apis: BTreeSet<u16>,
    /// Replace successfully-read registry integers with fresh symbols.
    pub registry_symbolic: bool,
    /// Replace the PCI revision byte with a fresh symbol on descriptor
    /// reads (§4.1.4).
    pub pci_revision_symbolic: bool,
    /// Make entry-point arguments symbolic (OIDs within a window, packet
    /// lengths constrained `<=` original, §7 soundness note).
    pub entry_args_symbolic: bool,
    /// OID window half-width: symbolic OIDs range over
    /// `[base, base + oid_window)`.
    pub oid_window: u32,
}

impl Annotations {
    /// The default NDIS + WDM annotation set used in the evaluation.
    pub fn defaults() -> Annotations {
        let alloc_failure_apis = [
            "NdisAllocateMemoryWithTag",
            "ExAllocatePoolWithTag",
            "PcNewInterruptSync",
            "PcNewDmaChannel",
        ]
        .iter()
        .filter_map(|n| export_id(n))
        .collect();
        Annotations {
            enabled: true,
            alloc_failure_apis,
            registry_symbolic: true,
            pci_revision_symbolic: true,
            entry_args_symbolic: true,
            oid_window: 8,
        }
    }

    /// No annotations (the §5.1 ablation). Symbolic hardware and symbolic
    /// interrupts remain active — they are not annotations.
    pub fn disabled() -> Annotations {
        Annotations {
            enabled: false,
            alloc_failure_apis: BTreeSet::new(),
            registry_symbolic: false,
            pci_revision_symbolic: false,
            entry_args_symbolic: false,
            oid_window: 0,
        }
    }

    /// True if calls to `export` should fork a failed-allocation state.
    pub fn wants_failure_fork(&self, export: u16) -> bool {
        self.enabled && self.alloc_failure_apis.contains(&export)
    }
}

/// Runs post-call annotation hooks (concrete-to-symbolic conversions).
///
/// `args` are the argument values the kernel actually read during the call
/// (concretized on demand); hooks only act when the arguments they need
/// were observed.
pub fn post_kernel_call(
    ann: &Annotations,
    st: &mut SymState,
    kernel: &Kernel,
    _solver: &mut Solver,
    export: u16,
    args: &[Option<u32>; 4],
) {
    if !ann.enabled {
        return;
    }
    let _ = kernel;
    // NdisReadConfiguration_return (the paper's worked example): if the
    // call succeeded and the parameter is an integer, replace IntegerData
    // with a fresh non-negative symbolic integer.
    if Some(export) == export_id("NdisReadConfiguration") && ann.registry_symbolic {
        let (Some(status_ptr), Some(value_ptr)) = (args[0], args[1]) else { return };
        let status = st.mem.read(status_ptr, 4);
        if status.as_const() != Some(0) {
            return; // The read failed; nothing to symbolicate.
        }
        let name = read_cstr(st, args[3].unwrap_or(0));
        let sym = st.new_symbol(
            format!("registry:{name}"),
            SymOrigin::Registry { name },
            32,
        );
        // `if (symb >= 0) ... else ddt_discard_state()`: keep only the
        // non-negative half, as the annotation in §3.4.1 does.
        st.add_constraint(Expr::constant(0, 32).sle(&sym));
        st.mem.write(value_ptr + 4, 4, &sym);
    }
    // Descriptor reads: make the hardware revision byte symbolic so the
    // driver's stepping-dependent paths are explored (§4.1.4).
    if Some(export) == export_id("NdisReadPciSlotInformation") && ann.pci_revision_symbolic {
        let (Some(offset), Some(buf), Some(len)) = (args[1], args[2], args[3]) else {
            return;
        };
        const REVISION_OFFSET: u32 = 4;
        if offset <= REVISION_OFFSET && REVISION_OFFSET < offset + len {
            let sym = st.new_symbol(
                "pci:revision",
                SymOrigin::Annotation { api: "NdisReadPciSlotInformation".into() },
                8,
            );
            st.mem.write_byte(buf + (REVISION_OFFSET - offset), sym);
        }
    }
}

/// Translates kernel resource events into memory-checker grants (the
/// resource allocation hints of §3.4.1).
pub fn apply_resource_grants(st: &mut SymState, events: &[KernelEvent]) {
    for ev in events {
        match ev {
            KernelEvent::ResourceAcquired { kind, handle, size } if *size > 0 => {
                let label = match kind {
                    ResourceKind::PoolMemory => "pool alloc",
                    ResourceKind::Packet => "packet descriptor",
                    ResourceKind::Buffer => "buffer descriptor",
                    ResourceKind::DmaChannel => "dma buffer",
                    ResourceKind::Interrupt => "interrupt object",
                    _ => continue,
                };
                st.grants.grant(*handle, size.max(&16).next_multiple_of(16), label);
            }
            KernelEvent::ResourceReleased { kind, handle } => {
                if matches!(
                    kind,
                    ResourceKind::PoolMemory
                        | ResourceKind::Packet
                        | ResourceKind::Buffer
                        | ResourceKind::DmaChannel
                ) {
                    st.grants.revoke_at(*handle);
                }
            }
            _ => {}
        }
    }
}

fn read_cstr(st: &mut SymState, addr: u32) -> String {
    let mut out = String::new();
    for i in 0..64 {
        if !st.mem.is_mapped(addr + i) {
            break;
        }
        match st.mem.read_byte(addr + i).as_const() {
            Some(0) | None => break,
            Some(b) => out.push(b as u8 as char),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_symvm::SymCounter;

    #[test]
    fn defaults_cover_the_allocators() {
        let a = Annotations::defaults();
        assert!(a.wants_failure_fork(export_id("NdisAllocateMemoryWithTag").unwrap()));
        assert!(a.wants_failure_fork(export_id("ExAllocatePoolWithTag").unwrap()));
        assert!(!a.wants_failure_fork(export_id("NdisMSleep").unwrap()));
        assert!(!Annotations::disabled().wants_failure_fork(5));
    }

    #[test]
    fn registry_hook_symbolicates_integer_data() {
        let ann = Annotations::defaults();
        let mut st = SymState::new(SymCounter::new());
        st.mem.map(0x1000, 0x100);
        // status at 0x1000 (success), value struct at 0x1010, name at 0x1040.
        st.mem.write_concrete_bytes(0x1000, &0u32.to_le_bytes());
        st.mem.write_concrete_bytes(0x1010 + 4, &8u32.to_le_bytes());
        st.mem.write_concrete_bytes(0x1040, b"MaximumMulticastList\0");
        let mut solver = Solver::new();
        let kernel = Kernel::new();
        post_kernel_call(
            &ann,
            &mut st,
            &kernel,
            &mut solver,
            export_id("NdisReadConfiguration").unwrap(),
            &[Some(0x1000), Some(0x1010), Some(0xc0f0_0000), Some(0x1040)],
        );
        let v = st.mem.read(0x1014, 4);
        assert!(!v.is_const(), "IntegerData replaced with a symbol");
        assert_eq!(st.constraints.len(), 1, "non-negativity constraint added");
        // Provenance label carries the parameter name.
        let syms = v.syms();
        let id = *syms.iter().next().unwrap();
        assert_eq!(st.symbols.get(id).unwrap().label, "registry:MaximumMulticastList");
    }

    #[test]
    fn registry_hook_skips_failed_reads() {
        let ann = Annotations::defaults();
        let mut st = SymState::new(SymCounter::new());
        st.mem.map(0x1000, 0x100);
        st.mem.write_concrete_bytes(0x1000, &0xC000_0001u32.to_le_bytes());
        let mut solver = Solver::new();
        let kernel = Kernel::new();
        post_kernel_call(
            &ann,
            &mut st,
            &kernel,
            &mut solver,
            export_id("NdisReadConfiguration").unwrap(),
            &[Some(0x1000), Some(0x1010), Some(0), Some(0x1040)],
        );
        assert!(st.symbols.is_empty(), "no symbol injected on failure");
    }

    #[test]
    fn pci_revision_hook_targets_the_right_byte() {
        let ann = Annotations::defaults();
        let mut st = SymState::new(SymCounter::new());
        st.mem.map(0x2000, 0x20);
        let mut solver = Solver::new();
        let kernel = Kernel::new();
        // Read of 16 bytes from offset 0 into 0x2000: revision is byte 4.
        post_kernel_call(
            &ann,
            &mut st,
            &kernel,
            &mut solver,
            export_id("NdisReadPciSlotInformation").unwrap(),
            &[Some(0), Some(0), Some(0x2000), Some(16)],
        );
        assert!(!st.mem.read_byte(0x2004).is_const());
        assert!(st.mem.read_byte(0x2003).is_const());
    }

    #[test]
    fn resource_events_grant_and_revoke() {
        let mut st = SymState::new(SymCounter::new());
        let events = vec![
            KernelEvent::ResourceAcquired {
                kind: ResourceKind::PoolMemory,
                handle: 0x0100_0000,
                size: 100,
            },
            KernelEvent::ResourceAcquired {
                kind: ResourceKind::ConfigHandle,
                handle: 0xc0f0_0000,
                size: 0,
            },
        ];
        apply_resource_grants(&mut st, &events);
        assert!(st.grants.contains_range(0x0100_0000, 112), "rounded grant");
        assert_eq!(st.grants.len(), 1, "handles without memory are not grants");
        apply_resource_grants(
            &mut st,
            &[KernelEvent::ResourceReleased {
                kind: ResourceKind::PoolMemory,
                handle: 0x0100_0000,
            }],
        );
        assert!(st.grants.is_empty());
    }
}
