//! Bug reports and the per-driver test report (§3.5).
//!
//! "DDT takes as input a binary device driver and outputs a report of found
//! bugs, along with execution traces for each bug." A [`Bug`] carries the
//! classification, the human explanation, the full execution trace, the
//! concrete inputs solved from the path condition, and the decision
//! schedule (interrupt injections, forced allocation failures) needed to
//! replay it.

use ddt_expr::Assignment;
use ddt_symvm::TraceEvent;
use serde::{Deserialize, Serialize};

/// Bug classification, following the "Bug Type" column of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BugClass {
    /// A non-memory resource was not released (config handles, packets...).
    ResourceLeak,
    /// Pool memory was not freed.
    MemoryLeak,
    /// A write/read past the bounds of an owned buffer.
    MemoryCorruption,
    /// A crash from a bad pointer (NULL deref, wild jump, unexpected OID).
    SegFault,
    /// A crash or corruption that needs a particular interrupt timing.
    RaceCondition,
    /// The kernel bug-checked (API misuse: wrong IRQL, bad handles...).
    KernelCrash,
    /// The kernel would hang (deadlock, lock held at return, non-LIFO).
    KernelHang,
}

impl std::fmt::Display for BugClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BugClass::ResourceLeak => "Resource leak",
            BugClass::MemoryLeak => "Memory leak",
            BugClass::MemoryCorruption => "Memory corruption",
            BugClass::SegFault => "Segmentation fault",
            BugClass::RaceCondition => "Race condition",
            BugClass::KernelCrash => "Kernel crash",
            BugClass::KernelHang => "Kernel hang",
        };
        f.write_str(s)
    }
}

/// One scheduling decision DDT made on the buggy path; replay re-applies
/// these deterministically (§3.5).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// A symbolic interrupt was delivered at boundary crossing `boundary`.
    InjectInterrupt {
        /// Boundary-crossing index (counted per path).
        boundary: u64,
    },
    /// Kernel allocation call number `kernel_call` was forced to fail (the
    /// concrete-to-symbolic "NULL alternative" annotation fork).
    ForceAllocFail {
        /// Kernel-call index (counted per path).
        kernel_call: u64,
    },
    /// DDT backtracked a concretization at kernel call `kernel_call` and
    /// re-issued it with a different feasible argument value (§3.2). The
    /// excluded/selected values are captured by the path constraints, so
    /// replay needs no special handling beyond the solved inputs.
    ConcretizationBacktrack {
        /// Kernel-call index (counted per path).
        kernel_call: u64,
    },
}

/// A found bug with everything needed to understand and replay it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bug {
    /// Driver under test.
    pub driver: String,
    /// Classification (Table 2 "Bug Type").
    pub class: BugClass,
    /// One-line description (Table 2 "Description").
    pub description: String,
    /// Driver instruction the failure is attributed to.
    pub pc: u32,
    /// The entry point whose invocation exposed the bug.
    pub entry: String,
    /// If the bug fired inside an injected interrupt handler: the entry
    /// point that was interrupted.
    pub interrupted_entry: Option<String>,
    /// Full execution trace of the failing path.
    pub trace: Vec<TraceEvent>,
    /// Concrete inputs (registry values, hardware reads, entry arguments)
    /// that drive the driver down this path, solved from the constraints.
    pub inputs: Assignment,
    /// Scheduling decisions to re-apply during replay.
    pub decisions: Vec<Decision>,
    /// Dedup key (stable across path enumeration order).
    pub key: String,
}

impl Bug {
    /// Renders the Table 2 style row: driver, type, description.
    pub fn table_row(&self) -> String {
        format!("{:<10} {:<18} {}", self.driver, self.class.to_string(), self.description)
    }
}

/// Exploration statistics (the §5.2 scalability numbers).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Total paths started.
    pub paths_started: u64,
    /// Paths run to completion (workload exhausted).
    pub paths_completed: u64,
    /// Paths ended by a fault or crash.
    pub paths_faulted: u64,
    /// Paths killed as infeasible.
    pub paths_infeasible: u64,
    /// Paths killed by the per-path budget.
    pub paths_budget_killed: u64,
    /// Total instructions executed symbolically.
    pub insns: u64,
    /// Peak simultaneous states in the worklist.
    pub peak_states: usize,
    /// Symbols created.
    pub symbols: u32,
    /// Solver queries issued.
    pub solver_queries: u64,
    /// Queries answered by the solver's cheap-model fast path.
    pub solver_fast_hits: u64,
    /// Queries requiring full bit-blasting and CDCL search.
    pub solver_full: u64,
    /// Exploration wall-clock milliseconds.
    pub wall_ms: u64,
    /// Maximum copy-on-write memory chain depth observed.
    pub max_cow_depth: usize,
}

/// One coverage sample: (milliseconds since start, covered basic blocks).
pub type CoverageSample = (u64, usize);

/// The full report for one driver.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Driver name.
    pub driver: String,
    /// All distinct bugs found.
    pub bugs: Vec<Bug>,
    /// Basic blocks in the driver (denominator for relative coverage).
    pub total_blocks: usize,
    /// Blocks covered by the end of the run.
    pub covered_blocks: usize,
    /// Coverage growth over time (Figures 2 and 3).
    pub coverage_timeline: Vec<CoverageSample>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

impl Report {
    /// Relative coverage at the end of the run (0..=1).
    pub fn relative_coverage(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.covered_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Bugs of a given class.
    pub fn bugs_of(&self, class: BugClass) -> Vec<&Bug> {
        self.bugs.iter().filter(|b| b.class == class).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_display_matches_table2_vocabulary() {
        assert_eq!(BugClass::ResourceLeak.to_string(), "Resource leak");
        assert_eq!(BugClass::RaceCondition.to_string(), "Race condition");
        assert_eq!(BugClass::SegFault.to_string(), "Segmentation fault");
    }

    #[test]
    fn report_relative_coverage() {
        let r = Report {
            driver: "x".into(),
            bugs: vec![],
            total_blocks: 50,
            covered_blocks: 40,
            coverage_timeline: vec![],
            stats: ExploreStats::default(),
        };
        assert!((r.relative_coverage() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn bug_serializes() {
        let b = Bug {
            driver: "rtl8029".into(),
            class: BugClass::RaceCondition,
            description: "test".into(),
            pc: 0x40_0000,
            entry: "Initialize".into(),
            interrupted_entry: Some("Initialize".into()),
            trace: vec![],
            inputs: Assignment::new(),
            decisions: vec![Decision::InjectInterrupt { boundary: 3 }],
            key: "k".into(),
        };
        let s = serde_json::to_string(&b).unwrap();
        let back: Bug = serde_json::from_str(&s).unwrap();
        assert_eq!(back.key, "k");
        assert_eq!(back.class, BugClass::RaceCondition);
    }
}
