//! Bug reports and the per-driver test report (§3.5).
//!
//! "DDT takes as input a binary device driver and outputs a report of found
//! bugs, along with execution traces for each bug." A [`Bug`] carries the
//! classification, the human explanation, the full execution trace, the
//! concrete inputs solved from the path condition, and the decision
//! schedule (interrupt injections, forced allocation failures) needed to
//! replay it.

use ddt_expr::Assignment;
use ddt_kernel::FaultFamily;
use ddt_symvm::TraceEvent;
use serde::{Deserialize, Serialize};

// The classification and decision vocabulary moved to `ddt-trace` so that
// stored trace artifacts are self-describing; re-exported here under the
// historical paths.
pub use ddt_trace::{BugClass, BugOrigin, Decision, LifecycleEvent, ProvenanceChain};

/// A found bug with everything needed to understand and replay it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bug {
    /// Driver under test.
    pub driver: String,
    /// Classification (Table 2 "Bug Type").
    pub class: BugClass,
    /// Which execution mode first found the bug (symbolic exploration,
    /// pure concrete fuzzing, or a fuzz state escalated to symbolic).
    pub origin: BugOrigin,
    /// One-line description (Table 2 "Description").
    pub description: String,
    /// Driver instruction the failure is attributed to.
    pub pc: u32,
    /// The entry point whose invocation exposed the bug.
    pub entry: String,
    /// If the bug fired inside an injected interrupt handler: the entry
    /// point that was interrupted.
    pub interrupted_entry: Option<String>,
    /// Full execution trace of the failing path.
    pub trace: Vec<TraceEvent>,
    /// Concrete inputs (registry values, hardware reads, entry arguments)
    /// that drive the driver down this path, solved from the constraints.
    pub inputs: Assignment,
    /// Scheduling decisions to re-apply during replay.
    pub decisions: Vec<Decision>,
    /// Dedup key (stable across path enumeration order).
    pub key: String,
    /// Stable trace signature (crash pc + call-ish stack + checker id +
    /// provenance roots); identifies the bug across states and runs.
    pub signature: String,
    /// How many states/paths reached this bug during the run.
    pub occurrences: u64,
    /// Call-ish stack at the failure (outermost first).
    pub stack: Vec<String>,
    /// Provenance chains of the symbols the failing condition depended on.
    pub provenance: Vec<ProvenanceChain>,
}

impl Bug {
    /// Renders the Table 2 style row: driver, type, description.
    pub fn table_row(&self) -> String {
        format!("{:<10} {:<18} {}", self.driver, self.class.to_string(), self.description)
    }
}

/// Exploration statistics (the §5.2 scalability numbers).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Total paths started.
    pub paths_started: u64,
    /// Paths run to completion (workload exhausted).
    pub paths_completed: u64,
    /// Paths ended by a fault or crash.
    pub paths_faulted: u64,
    /// Paths killed as infeasible.
    pub paths_infeasible: u64,
    /// Paths killed by the per-path budget.
    pub paths_budget_killed: u64,
    /// Paths killed by the whole-path step budget (potential driver hangs:
    /// the path executed `max_path_insns` instructions without finishing).
    pub paths_step_budget_killed: u64,
    /// Total instructions executed symbolically.
    pub insns: u64,
    /// Peak simultaneous states in the worklist.
    pub peak_states: usize,
    /// Symbols created.
    pub symbols: u32,
    /// Solver queries issued.
    pub solver_queries: u64,
    /// Queries answered by the solver's cheap-model fast path.
    pub solver_fast_hits: u64,
    /// Queries requiring full bit-blasting and CDCL search.
    pub solver_full: u64,
    /// Queries answered by exact-key hits in the shared query cache.
    pub solver_cache_hits: u64,
    /// `Sat` verdicts proved by reusing a cached counterexample.
    pub solver_model_reuse: u64,
    /// `Unsat` verdicts proved by a cached UNSAT subset.
    pub solver_unsat_subset: u64,
    /// Verdict-grade queries decided by independence slicing (split into
    /// two or more symbol-disjoint components).
    pub solver_sliced: u64,
    /// Total components produced across all sliced queries.
    pub solver_slice_components: u64,
    /// Verdict-grade component queries answered on a persistent
    /// incremental solver session instead of a fresh core.
    pub solver_session_probes: u64,
    /// Incremental-session core rebuilds (size caps or symbol-width
    /// conflicts between sibling paths).
    pub solver_session_resets: u64,
    /// Deferred-obligation batches flushed (lazy batched feasibility).
    pub solver_batch_flushes: u64,
    /// Branch-feasibility verdicts delivered through batched flushes.
    pub solver_batched_verdicts: u64,
    /// Batched obligations discharged by evaluating a sibling's model
    /// instead of solving (witness subsumption).
    pub solver_batch_witness_hits: u64,
    /// Hard verdict queries raced across the solver portfolio.
    pub solver_portfolio_races: u64,
    /// Portfolio races won by the incremental-session lane.
    pub solver_portfolio_session_wins: u64,
    /// Portfolio races won by the fresh canonical-blast lane.
    pub solver_portfolio_fresh_wins: u64,
    /// Portfolio races won by the cached-answer probe lane.
    pub solver_portfolio_probe_wins: u64,
    /// Interned DAG nodes eliminated by the algebraic pre-blast rewriter
    /// (summed over rewritten verdict queries).
    pub solver_rewrite_reductions: u64,
    /// Hash-consing interner hits (process-global, sampled at report
    /// assembly; on a resumed campaign this covers the final process only).
    pub interner_hits: u64,
    /// Hash-consing interner misses — distinct expression nodes allocated
    /// (process-global, sampled at report assembly).
    pub interner_misses: u64,
    /// Entries evicted from the shared query cache (LRU, per entry).
    pub cache_evictions: u64,
    /// Exploration wall-clock milliseconds.
    pub wall_ms: u64,
    /// Maximum copy-on-write memory chain depth observed.
    pub max_cow_depth: usize,
    /// Forks silently discarded because the worklist was at `max_states`.
    pub states_dropped: u64,
    /// Panicking states caught and converted into incidents (the run
    /// continued without them).
    pub panics_caught: u64,
    /// Injected pool-allocation faults consumed by the driver.
    pub faults_pool: u64,
    /// Injected shared-memory faults consumed.
    pub faults_shared: u64,
    /// Injected I/O-mapping faults consumed.
    pub faults_map: u64,
    /// Injected registration faults consumed.
    pub faults_registration: u64,
    /// Injected registry-read faults consumed.
    pub faults_registry: u64,
    /// Device-lifecycle events injected (surprise removals and power
    /// transitions delivered to the driver's PnP handler).
    pub faults_lifecycle: u64,
    /// Distinct lifecycle-violation bugs recorded this run.
    pub lifecycle_bugs: u64,
    /// Scheduler quanta executed (one frontier pop + run per quantum).
    pub quanta_executed: u64,
    /// Quantum ordinal at which the first bug was recorded (0 = no bug).
    /// The search-strategy bench compares this across strategies: a guided
    /// frontier should reach the first bug in fewer expansions than FIFO.
    pub quanta_to_first_bug: u64,
    /// Quantum ordinal at which the last new basic block was covered
    /// (0 = nothing covered). Time-to-full-coverage in quanta.
    pub quanta_to_last_cover: u64,
    /// Forked states dropped by structural-fingerprint pruning: the same
    /// `Machine::fingerprint()` had already been seen at the same pc with
    /// no coverage delta since.
    pub states_pruned: u64,
    /// Hybrid mode: concrete fuzz executions completed.
    pub fuzz_execs: u64,
    /// Hybrid mode: instructions retired by the concrete fast executor.
    pub fuzz_insns: u64,
    /// Hybrid mode: wall-clock milliseconds spent inside concrete fuzz
    /// batches (disjoint from symbolic quanta, so the concrete
    /// instructions-per-second rate is `fuzz_insns / fuzz_wall_ms`).
    pub fuzz_wall_ms: u64,
    /// Hybrid mode: fuzz inputs escalated into symbolic states.
    pub escalations: u64,
    /// Hybrid mode: distinct driver blocks first reached by the concrete
    /// executor (before any symbolic path touched them).
    pub concrete_blocks: u64,
    /// Hybrid mode: bugs first sighted by a pure concrete execution.
    pub concrete_bugs: u64,
}

impl ExploreStats {
    /// Bumps the consumed-fault counter for one family.
    pub fn count_fault(&mut self, family: FaultFamily) {
        match family {
            FaultFamily::PoolAlloc => self.faults_pool += 1,
            FaultFamily::SharedMemory => self.faults_shared += 1,
            FaultFamily::MapRegisters => self.faults_map += 1,
            FaultFamily::Registration => self.faults_registration += 1,
            FaultFamily::Registry => self.faults_registry += 1,
            FaultFamily::Lifecycle => self.faults_lifecycle += 1,
        }
    }

    /// Total injected faults consumed across all families.
    pub fn faults_total(&self) -> u64 {
        self.faults_pool
            + self.faults_shared
            + self.faults_map
            + self.faults_registration
            + self.faults_registry
            + self.faults_lifecycle
    }

    /// Samples the process-global expression-interner counters into this
    /// stats block. Called once at report assembly; the counters are
    /// cumulative for the process, so this is an assignment, not a fold.
    pub fn sample_interner(&mut self) {
        let (hits, misses) = ddt_expr::intern_stats();
        self.interner_hits = hits;
        self.interner_misses = misses;
    }

    /// Folds another stats block into this one. Every counter is additive;
    /// the two high-water marks take the max; `wall_ms` is left alone
    /// (workers overlap in time, so their wall clocks must not be summed —
    /// the caller keeps its own). Commutative and associative over the
    /// summed fields, which is what makes fleet merges order-independent.
    pub fn merge_add(&mut self, other: &ExploreStats) {
        self.paths_started += other.paths_started;
        self.paths_completed += other.paths_completed;
        self.paths_faulted += other.paths_faulted;
        self.paths_infeasible += other.paths_infeasible;
        self.paths_budget_killed += other.paths_budget_killed;
        self.paths_step_budget_killed += other.paths_step_budget_killed;
        self.insns += other.insns;
        self.peak_states = self.peak_states.max(other.peak_states);
        self.symbols += other.symbols;
        self.solver_queries += other.solver_queries;
        self.solver_fast_hits += other.solver_fast_hits;
        self.solver_full += other.solver_full;
        self.solver_cache_hits += other.solver_cache_hits;
        self.solver_model_reuse += other.solver_model_reuse;
        self.solver_unsat_subset += other.solver_unsat_subset;
        self.solver_sliced += other.solver_sliced;
        self.solver_slice_components += other.solver_slice_components;
        self.solver_session_probes += other.solver_session_probes;
        self.solver_session_resets += other.solver_session_resets;
        self.solver_batch_flushes += other.solver_batch_flushes;
        self.solver_batched_verdicts += other.solver_batched_verdicts;
        self.solver_batch_witness_hits += other.solver_batch_witness_hits;
        self.solver_portfolio_races += other.solver_portfolio_races;
        self.solver_portfolio_session_wins += other.solver_portfolio_session_wins;
        self.solver_portfolio_fresh_wins += other.solver_portfolio_fresh_wins;
        self.solver_portfolio_probe_wins += other.solver_portfolio_probe_wins;
        self.solver_rewrite_reductions += other.solver_rewrite_reductions;
        self.interner_hits += other.interner_hits;
        self.interner_misses += other.interner_misses;
        self.cache_evictions += other.cache_evictions;
        self.max_cow_depth = self.max_cow_depth.max(other.max_cow_depth);
        self.states_dropped += other.states_dropped;
        self.panics_caught += other.panics_caught;
        self.faults_pool += other.faults_pool;
        self.faults_shared += other.faults_shared;
        self.faults_map += other.faults_map;
        self.faults_registration += other.faults_registration;
        self.faults_registry += other.faults_registry;
        self.faults_lifecycle += other.faults_lifecycle;
        self.lifecycle_bugs += other.lifecycle_bugs;
        self.quanta_executed += other.quanta_executed;
        // First-bug ordinal: the earliest nonzero wins (0 means "never").
        if other.quanta_to_first_bug != 0 {
            self.quanta_to_first_bug = if self.quanta_to_first_bug == 0 {
                other.quanta_to_first_bug
            } else {
                self.quanta_to_first_bug.min(other.quanta_to_first_bug)
            };
        }
        self.quanta_to_last_cover = self.quanta_to_last_cover.max(other.quanta_to_last_cover);
        self.states_pruned += other.states_pruned;
        self.fuzz_execs += other.fuzz_execs;
        self.fuzz_insns += other.fuzz_insns;
        self.fuzz_wall_ms += other.fuzz_wall_ms;
        self.escalations += other.escalations;
        self.concrete_blocks += other.concrete_blocks;
        self.concrete_bugs += other.concrete_bugs;
    }
}

/// Harness-health summary for one run: everything that silently degraded
/// the exploration (dropped states, killed paths, solver fallbacks, caught
/// panics) plus the fault-injection tally.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunHealth {
    /// Forks discarded because the worklist was full (`max_states`).
    pub states_dropped: u64,
    /// Forks dropped by opt-in structural-fingerprint pruning (duplicate
    /// fingerprint at the same pc with no coverage delta). Pruning is a
    /// deliberate search optimization, not degradation, so this does not
    /// affect `pristine()`.
    pub states_pruned: u64,
    /// Paths killed by the per-invocation instruction budget.
    pub budget_kills: u64,
    /// Paths killed by the whole-path step budget — each one is a
    /// potential driver hang worth triaging, not just lost coverage.
    pub path_step_budget_kills: u64,
    /// Solver queries that fell back to full bit-blasting + CDCL search
    /// (the query-cache misses, counted after the candidate fast path).
    pub solver_fallbacks: u64,
    /// Queries answered by exact-key hits in the shared query cache.
    pub cache_hits: u64,
    /// `Sat` verdicts proved by reusing a cached counterexample instead of
    /// blasting (verdict-grade queries only; see DESIGN.md).
    pub cache_model_reuse: u64,
    /// `Unsat` verdicts proved by a cached UNSAT subset of the query.
    pub cache_unsat_subset: u64,
    /// Verdict-grade queries decided by independence slicing.
    pub solver_sliced: u64,
    /// Total symbol-disjoint components across sliced queries.
    pub solver_slice_components: u64,
    /// Component queries answered on a persistent incremental session.
    pub session_probes: u64,
    /// Incremental-session core rebuilds.
    pub session_resets: u64,
    /// Deferred-obligation batches flushed to the solver.
    pub batch_flushes: u64,
    /// Individual feasibility verdicts settled inside those batches.
    pub batched_verdicts: u64,
    /// Batched obligations discharged by evaluating a pooled witness model
    /// instead of a fresh solve.
    pub batch_witness_hits: u64,
    /// Verdict-grade queries raced across the solver portfolio.
    pub portfolio_races: u64,
    /// Portfolio races won by the incremental-session lane.
    pub portfolio_session_wins: u64,
    /// Portfolio races won by the fresh-blast lane.
    pub portfolio_fresh_wins: u64,
    /// Portfolio races won by the cache-probe lane.
    pub portfolio_probe_wins: u64,
    /// Nodes removed from verdict queries by the algebraic pre-blast
    /// rewriter.
    pub rewrite_reductions: u64,
    /// Expression-interner hits (process-global sample).
    pub interner_hits: u64,
    /// Expression-interner misses (process-global sample).
    pub interner_misses: u64,
    /// Query-cache entries evicted (single-entry LRU, never wholesale).
    pub cache_evictions: u64,
    /// Panicking states caught; each is a lost path, not a lost run.
    pub panics_caught: u64,
    /// Injected pool-allocation faults consumed.
    pub faults_pool: u64,
    /// Injected shared-memory faults consumed.
    pub faults_shared: u64,
    /// Injected I/O-mapping faults consumed.
    pub faults_map: u64,
    /// Injected registration faults consumed.
    pub faults_registration: u64,
    /// Injected registry-read faults consumed.
    pub faults_registry: u64,
    /// Device-lifecycle events injected (surprise removals, suspends,
    /// resumes delivered to the PnP handler).
    pub lifecycle_injected: u64,
    /// Distinct lifecycle-violation bugs found.
    pub lifecycle_bugs: u64,
    /// The total-instruction budget ended the run early.
    pub insn_budget_exhausted: bool,
    /// The wall-clock budget ended the run early.
    pub wall_budget_exhausted: bool,
    /// Raw bug sightings before signature deduplication (every state/path
    /// that reached some bug).
    pub bug_occurrences: u64,
    /// Distinct bugs after signature deduplication.
    pub bugs_deduped: u64,
    /// Trace artifacts persisted to the store this run (0 when no store
    /// was configured).
    pub traces_persisted: u64,
    /// Frontier checkpoints written by this process (0 when no checkpoint
    /// directory was configured).
    pub checkpoints_written: u64,
    /// Write-ahead journal records appended by this process.
    pub journal_records: u64,
    /// Frontier machines successfully reconstructed by schedule replay at
    /// the start of a resumed run.
    pub resume_replayed_paths: u64,
    /// Frontier machines whose reconstruction diverged or failed its
    /// fingerprint check; each is a lost pending path, not a lost run.
    pub resume_replay_failures: u64,
    /// Fleet mode: worker processes spawned over the campaign (initial
    /// spawns plus respawns after crashes).
    pub fleet_workers_spawned: u64,
    /// Fleet mode: workers lost to crashes, broken pipes, or the hang
    /// watchdog.
    pub fleet_workers_lost: u64,
    /// Fleet mode: shard leases reassigned after a worker was lost.
    pub fleet_leases_reassigned: u64,
    /// Fleet mode: shards stolen back from laggards and rebalanced.
    pub fleet_shards_stolen: u64,
    /// Fleet mode: shards quarantined into the trace store after
    /// exhausting their retry budget; each is a lost subtree, not a lost
    /// campaign.
    pub fleet_shards_quarantined: u64,
}

impl RunHealth {
    /// Assembles the health section from final stats plus the two
    /// budget-exhaustion facts only the exerciser knows.
    pub fn from_stats(stats: &ExploreStats, insn_exhausted: bool, wall_exhausted: bool) -> Self {
        RunHealth {
            states_dropped: stats.states_dropped,
            states_pruned: stats.states_pruned,
            budget_kills: stats.paths_budget_killed,
            path_step_budget_kills: stats.paths_step_budget_killed,
            solver_fallbacks: stats.solver_full,
            cache_hits: stats.solver_cache_hits,
            cache_model_reuse: stats.solver_model_reuse,
            cache_unsat_subset: stats.solver_unsat_subset,
            solver_sliced: stats.solver_sliced,
            solver_slice_components: stats.solver_slice_components,
            session_probes: stats.solver_session_probes,
            session_resets: stats.solver_session_resets,
            batch_flushes: stats.solver_batch_flushes,
            batched_verdicts: stats.solver_batched_verdicts,
            batch_witness_hits: stats.solver_batch_witness_hits,
            portfolio_races: stats.solver_portfolio_races,
            portfolio_session_wins: stats.solver_portfolio_session_wins,
            portfolio_fresh_wins: stats.solver_portfolio_fresh_wins,
            portfolio_probe_wins: stats.solver_portfolio_probe_wins,
            rewrite_reductions: stats.solver_rewrite_reductions,
            interner_hits: stats.interner_hits,
            interner_misses: stats.interner_misses,
            cache_evictions: stats.cache_evictions,
            panics_caught: stats.panics_caught,
            faults_pool: stats.faults_pool,
            faults_shared: stats.faults_shared,
            faults_map: stats.faults_map,
            faults_registration: stats.faults_registration,
            faults_registry: stats.faults_registry,
            lifecycle_injected: stats.faults_lifecycle,
            lifecycle_bugs: stats.lifecycle_bugs,
            insn_budget_exhausted: insn_exhausted,
            wall_budget_exhausted: wall_exhausted,
            // Filled in by the exerciser once bugs are deduped/persisted.
            bug_occurrences: 0,
            bugs_deduped: 0,
            traces_persisted: 0,
            // Filled in by the campaign layer when checkpointing/resume is
            // active.
            checkpoints_written: 0,
            journal_records: 0,
            resume_replayed_paths: 0,
            resume_replay_failures: 0,
            // Filled in by the fleet supervisor.
            fleet_workers_spawned: 0,
            fleet_workers_lost: 0,
            fleet_leases_reassigned: 0,
            fleet_shards_stolen: 0,
            fleet_shards_quarantined: 0,
        }
    }

    /// Folds another health block into this one: counters sum, the
    /// budget-exhaustion flags OR. Commutative and associative, so fleet
    /// merges are order-independent regardless of worker completion order.
    pub fn merge_add(&mut self, other: &RunHealth) {
        self.states_dropped += other.states_dropped;
        self.states_pruned += other.states_pruned;
        self.budget_kills += other.budget_kills;
        self.path_step_budget_kills += other.path_step_budget_kills;
        self.solver_fallbacks += other.solver_fallbacks;
        self.cache_hits += other.cache_hits;
        self.cache_model_reuse += other.cache_model_reuse;
        self.cache_unsat_subset += other.cache_unsat_subset;
        self.solver_sliced += other.solver_sliced;
        self.solver_slice_components += other.solver_slice_components;
        self.session_probes += other.session_probes;
        self.session_resets += other.session_resets;
        self.batch_flushes += other.batch_flushes;
        self.batched_verdicts += other.batched_verdicts;
        self.batch_witness_hits += other.batch_witness_hits;
        self.portfolio_races += other.portfolio_races;
        self.portfolio_session_wins += other.portfolio_session_wins;
        self.portfolio_fresh_wins += other.portfolio_fresh_wins;
        self.portfolio_probe_wins += other.portfolio_probe_wins;
        self.rewrite_reductions += other.rewrite_reductions;
        self.interner_hits += other.interner_hits;
        self.interner_misses += other.interner_misses;
        self.cache_evictions += other.cache_evictions;
        self.panics_caught += other.panics_caught;
        self.faults_pool += other.faults_pool;
        self.faults_shared += other.faults_shared;
        self.faults_map += other.faults_map;
        self.faults_registration += other.faults_registration;
        self.faults_registry += other.faults_registry;
        self.lifecycle_injected += other.lifecycle_injected;
        self.lifecycle_bugs += other.lifecycle_bugs;
        self.insn_budget_exhausted |= other.insn_budget_exhausted;
        self.wall_budget_exhausted |= other.wall_budget_exhausted;
        self.bug_occurrences += other.bug_occurrences;
        self.bugs_deduped += other.bugs_deduped;
        self.traces_persisted += other.traces_persisted;
        self.checkpoints_written += other.checkpoints_written;
        self.journal_records += other.journal_records;
        self.resume_replayed_paths += other.resume_replayed_paths;
        self.resume_replay_failures += other.resume_replay_failures;
        self.fleet_workers_spawned += other.fleet_workers_spawned;
        self.fleet_workers_lost += other.fleet_workers_lost;
        self.fleet_leases_reassigned += other.fleet_leases_reassigned;
        self.fleet_shards_stolen += other.fleet_shards_stolen;
        self.fleet_shards_quarantined += other.fleet_shards_quarantined;
    }

    /// Total injected faults consumed across all families.
    pub fn faults_total(&self) -> u64 {
        self.faults_pool
            + self.faults_shared
            + self.faults_map
            + self.faults_registration
            + self.faults_registry
            + self.lifecycle_injected
    }

    /// True when nothing degraded: no drops, kills, panics, or early exits.
    pub fn pristine(&self) -> bool {
        self.states_dropped == 0
            && self.budget_kills == 0
            && self.path_step_budget_kills == 0
            && self.panics_caught == 0
            && !self.insn_budget_exhausted
            && !self.wall_budget_exhausted
            && self.fleet_workers_lost == 0
            && self.fleet_shards_quarantined == 0
    }

    /// Renders the human-readable health section of the report.
    pub fn render(&self) -> String {
        let mut out = String::from("run health:\n");
        out.push_str(&format!("  states dropped at cap:  {}\n", self.states_dropped));
        if self.states_pruned > 0 {
            out.push_str(&format!(
                "  states pruned:          {} (duplicate fingerprints)\n",
                self.states_pruned
            ));
        }
        out.push_str(&format!("  budget-killed paths:    {}\n", self.budget_kills));
        if self.path_step_budget_kills > 0 {
            out.push_str(&format!(
                "  step-budget kills:      {} (potential driver hangs)\n",
                self.path_step_budget_kills
            ));
        }
        out.push_str(&format!("  solver full fallbacks:  {}\n", self.solver_fallbacks));
        out.push_str(&format!(
            "  query-cache hits:       {} (exact {}, model-reuse {}, unsat-subset {})\n",
            self.cache_hits + self.cache_model_reuse + self.cache_unsat_subset,
            self.cache_hits,
            self.cache_model_reuse,
            self.cache_unsat_subset
        ));
        out.push_str(&format!("  query-cache evictions:  {}\n", self.cache_evictions));
        out.push_str(&format!(
            "  sliced verdicts:        {} ({} components)\n",
            self.solver_sliced, self.solver_slice_components
        ));
        out.push_str(&format!(
            "  session probes:         {} ({} core resets)\n",
            self.session_probes, self.session_resets
        ));
        if self.batch_flushes > 0 {
            out.push_str(&format!(
                "  batched verdicts:       {} in {} flush(es), {} by witness reuse\n",
                self.batched_verdicts, self.batch_flushes, self.batch_witness_hits
            ));
        }
        if self.portfolio_races > 0 {
            out.push_str(&format!(
                "  portfolio races:        {} (session {}, fresh {}, probe {})\n",
                self.portfolio_races,
                self.portfolio_session_wins,
                self.portfolio_fresh_wins,
                self.portfolio_probe_wins
            ));
        }
        if self.rewrite_reductions > 0 {
            out.push_str(&format!(
                "  rewriter reductions:    {} node(s) eliminated pre-blast\n",
                self.rewrite_reductions
            ));
        }
        let intern_lookups = self.interner_hits + self.interner_misses;
        if intern_lookups > 0 {
            out.push_str(&format!(
                "  interner hit rate:      {:.1}% ({} of {} lookups)\n",
                100.0 * self.interner_hits as f64 / intern_lookups as f64,
                self.interner_hits,
                intern_lookups
            ));
        }
        out.push_str(&format!("  panics caught:          {}\n", self.panics_caught));
        if self.faults_total() > 0 {
            out.push_str(&format!(
                "  faults injected:        {} (pool {}, shared {}, map {}, \
                 registration {}, registry {}, lifecycle {})\n",
                self.faults_total(),
                self.faults_pool,
                self.faults_shared,
                self.faults_map,
                self.faults_registration,
                self.faults_registry,
                self.lifecycle_injected
            ));
        } else {
            out.push_str("  faults injected:        0\n");
        }
        if self.lifecycle_injected > 0 || self.lifecycle_bugs > 0 {
            out.push_str(&format!(
                "  lifecycle events:       {} injected, {} violation(s) found\n",
                self.lifecycle_injected, self.lifecycle_bugs
            ));
        }
        if self.bug_occurrences > 0 {
            out.push_str(&format!(
                "  bugs:                   {} distinct from {} sighting(s)\n",
                self.bugs_deduped, self.bug_occurrences
            ));
        }
        if self.traces_persisted > 0 {
            out.push_str(&format!("  trace artifacts:        {}\n", self.traces_persisted));
        }
        if self.checkpoints_written > 0
            || self.journal_records > 0
            || self.resume_replayed_paths > 0
            || self.resume_replay_failures > 0
        {
            out.push_str(&format!("  checkpoints written:    {}\n", self.checkpoints_written));
            out.push_str(&format!("  journal records:        {}\n", self.journal_records));
            out.push_str(&format!(
                "  resume replays:         {} ok, {} failed\n",
                self.resume_replayed_paths, self.resume_replay_failures
            ));
        }
        if self.fleet_workers_spawned > 0 {
            out.push_str(&format!(
                "  fleet workers:          {} spawned, {} lost\n",
                self.fleet_workers_spawned, self.fleet_workers_lost
            ));
            out.push_str(&format!(
                "  fleet leases:           {} reassigned, {} stolen, {} quarantined\n",
                self.fleet_leases_reassigned,
                self.fleet_shards_stolen,
                self.fleet_shards_quarantined
            ));
        }
        let exhausted = match (self.insn_budget_exhausted, self.wall_budget_exhausted) {
            (true, true) => "instruction + wall clock",
            (true, false) => "instruction",
            (false, true) => "wall clock",
            (false, false) => "none",
        };
        out.push_str(&format!("  budget exhausted:       {exhausted}\n"));
        out
    }
}

/// One coverage sample: (milliseconds since start, covered basic blocks).
pub type CoverageSample = (u64, usize);

/// The full report for one driver.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Driver name.
    pub driver: String,
    /// All distinct bugs found.
    pub bugs: Vec<Bug>,
    /// Basic blocks in the driver (denominator for relative coverage).
    pub total_blocks: usize,
    /// Blocks covered by the end of the run.
    pub covered_blocks: usize,
    /// Coverage growth over time (Figures 2 and 3).
    pub coverage_timeline: Vec<CoverageSample>,
    /// Exploration statistics.
    pub stats: ExploreStats,
    /// Harness-health summary (degradation + fault-injection tally).
    pub health: RunHealth,
}

impl Report {
    /// Relative coverage at the end of the run (0..=1).
    pub fn relative_coverage(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.covered_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Bugs of a given class.
    pub fn bugs_of(&self, class: BugClass) -> Vec<&Bug> {
        self.bugs.iter().filter(|b| b.class == class).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_display_matches_table2_vocabulary() {
        assert_eq!(BugClass::ResourceLeak.to_string(), "Resource leak");
        assert_eq!(BugClass::RaceCondition.to_string(), "Race condition");
        assert_eq!(BugClass::SegFault.to_string(), "Segmentation fault");
    }

    #[test]
    fn report_relative_coverage() {
        let r = Report {
            driver: "x".into(),
            bugs: vec![],
            total_blocks: 50,
            covered_blocks: 40,
            coverage_timeline: vec![],
            stats: ExploreStats::default(),
            health: RunHealth::default(),
        };
        assert!((r.relative_coverage() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn run_health_assembles_from_stats() {
        let mut stats = ExploreStats::default();
        stats.states_dropped = 3;
        stats.paths_budget_killed = 2;
        stats.solver_full = 7;
        stats.solver_cache_hits = 4;
        stats.solver_model_reuse = 2;
        stats.solver_unsat_subset = 1;
        stats.solver_sliced = 3;
        stats.solver_slice_components = 8;
        stats.solver_session_probes = 12;
        stats.solver_session_resets = 1;
        stats.interner_hits = 900;
        stats.interner_misses = 100;
        stats.cache_evictions = 5;
        stats.panics_caught = 1;
        stats.count_fault(FaultFamily::PoolAlloc);
        stats.count_fault(FaultFamily::Registry);
        stats.count_fault(FaultFamily::Registry);
        stats.count_fault(FaultFamily::Lifecycle);
        stats.lifecycle_bugs = 1;
        let h = RunHealth::from_stats(&stats, true, false);
        assert_eq!(h.states_dropped, 3);
        assert_eq!(h.budget_kills, 2);
        assert_eq!(h.solver_fallbacks, 7);
        assert_eq!(h.cache_hits, 4);
        assert_eq!(h.cache_model_reuse, 2);
        assert_eq!(h.cache_unsat_subset, 1);
        assert_eq!(h.solver_sliced, 3);
        assert_eq!(h.solver_slice_components, 8);
        assert_eq!(h.session_probes, 12);
        assert_eq!(h.session_resets, 1);
        assert_eq!(h.interner_hits, 900);
        assert_eq!(h.interner_misses, 100);
        assert_eq!(h.cache_evictions, 5);
        assert_eq!(h.panics_caught, 1);
        assert_eq!(h.faults_pool, 1);
        assert_eq!(h.faults_registry, 2);
        assert_eq!(h.lifecycle_injected, 1);
        assert_eq!(h.lifecycle_bugs, 1);
        assert_eq!(h.faults_total(), 4);
        assert!(h.insn_budget_exhausted);
        assert!(!h.wall_budget_exhausted);
        assert!(!h.pristine());
        let text = h.render();
        assert!(text.contains("panics caught"));
        assert!(text.contains("query-cache hits:       7 (exact 4, model-reuse 2, unsat-subset 1)"));
        assert!(text.contains("query-cache evictions:  5"));
        assert!(text.contains("sliced verdicts:        3 (8 components)"));
        assert!(text.contains("session probes:         12 (1 core resets)"));
        assert!(text.contains("interner hit rate:      90.0% (900 of 1000 lookups)"));
        assert!(text.contains("registry 2"));
        assert!(text.contains("lifecycle 1"));
        assert!(text.contains("lifecycle events:       1 injected, 1 violation(s) found"));
        assert!(text.contains("budget exhausted:       instruction"));
    }

    #[test]
    fn health_renders_campaign_counters_when_active() {
        let mut h = RunHealth::default();
        assert!(!h.render().contains("checkpoints written"), "hidden when inactive");
        assert!(!h.render().contains("interner hit rate"), "hidden with zero lookups");
        h.checkpoints_written = 3;
        h.journal_records = 120;
        h.resume_replayed_paths = 7;
        h.resume_replay_failures = 1;
        let text = h.render();
        assert!(text.contains("checkpoints written:    3"));
        assert!(text.contains("journal records:        120"));
        assert!(text.contains("resume replays:         7 ok, 1 failed"));
    }

    #[test]
    fn search_counters_merge_with_the_right_rules() {
        let mut a = ExploreStats::default();
        a.quanta_executed = 10;
        a.quanta_to_first_bug = 0; // Never saw a bug.
        a.quanta_to_last_cover = 7;
        a.states_pruned = 2;
        let mut b = ExploreStats::default();
        b.quanta_executed = 4;
        b.quanta_to_first_bug = 3;
        b.quanta_to_last_cover = 9;
        b.states_pruned = 1;
        a.merge_add(&b);
        assert_eq!(a.quanta_executed, 14, "additive");
        assert_eq!(a.quanta_to_first_bug, 3, "earliest nonzero wins");
        assert_eq!(a.quanta_to_last_cover, 9, "max");
        assert_eq!(a.states_pruned, 3, "additive");
        let mut c = ExploreStats::default();
        c.quanta_to_first_bug = 8;
        a.merge_add(&c);
        assert_eq!(a.quanta_to_first_bug, 3, "later sighting does not regress");
        let h = RunHealth::from_stats(&a, false, false);
        assert_eq!(h.states_pruned, 3);
        assert!(h.pristine(), "pruning is not degradation");
        assert!(h.render().contains("states pruned:          3"));
        let none = RunHealth::from_stats(&ExploreStats::default(), false, false);
        assert!(!none.render().contains("states pruned"), "hidden when zero");
    }

    #[test]
    fn pristine_health_has_no_degradation() {
        let h = RunHealth::from_stats(&ExploreStats::default(), false, false);
        assert!(h.pristine());
        assert_eq!(h.faults_total(), 0);
    }

    #[test]
    fn inject_fault_decision_roundtrips() {
        let d = Decision::InjectFault { site: 9, kind: FaultFamily::Registration };
        let s = serde_json::to_string(&d).unwrap();
        let back: Decision = serde_json::from_str(&s).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn bug_serializes() {
        let b = Bug {
            driver: "rtl8029".into(),
            class: BugClass::RaceCondition,
            origin: BugOrigin::Symbolic,
            description: "test".into(),
            pc: 0x40_0000,
            entry: "Initialize".into(),
            interrupted_entry: Some("Initialize".into()),
            trace: vec![],
            inputs: Assignment::new(),
            decisions: vec![Decision::InjectInterrupt { boundary: 3 }],
            key: "k".into(),
            signature: "00000000deadbeef".into(),
            occurrences: 2,
            stack: vec!["Initialize".into(), "Isr".into()],
            provenance: vec![],
        };
        let s = serde_json::to_string(&b).unwrap();
        let back: Bug = serde_json::from_str(&s).unwrap();
        assert_eq!(back.key, "k");
        assert_eq!(back.class, BugClass::RaceCondition);
        assert_eq!(back.signature, "00000000deadbeef");
        assert_eq!(back.occurrences, 2);
        assert_eq!(back.stack.len(), 2);
    }
}
