//! Fully symbolic hardware and the VM-level memory access checker.
//!
//! §3.3: "A symbolic device in DDT ignores all writes to its registers and
//! produces symbolic values in response to reads." [`DdtEnv`] implements
//! the `ddt-symvm` environment hooks: every MMIO or port read yields a
//! fresh symbol with hardware provenance; writes are discarded but logged
//! in the trace (used by §3.6-style analysis).
//!
//! The same hook surface carries DDT's memory access verification (§3.1.1):
//! each driver access is checked against the union of granted regions (the
//! driver image, the stack above the stack pointer, kernel-granted buffers,
//! hardware windows). If the (possibly symbolic) address *can* leave every
//! granted region, a violation is recorded with a concrete witness; the
//! path then continues constrained to the buffer the access was aimed at,
//! so exploration proceeds past flagged-but-survivable accesses.

use ddt_expr::Expr;
use ddt_isa::AccessKind;
use ddt_solver::Solver;
use ddt_symvm::interp::{AccessViolation, SymEnv};
use ddt_symvm::{SymOrigin, SymState, TraceEvent};

/// DDT's symbolic hardware + memory checker environment.
#[derive(Debug)]
pub struct DdtEnv {
    /// MMIO window start assigned to the device under test.
    pub mmio_start: u32,
    /// MMIO window length.
    pub mmio_len: u32,
    /// Lowest stack address.
    pub stack_base: u32,
    /// Top-of-stack (initial stack pointer).
    pub stack_top: u32,
    /// Whether the memory access checker is active.
    pub check_memory: bool,
    /// Violations flagged since the last drain (path continues after a
    /// survivable violation; the exerciser converts these to bugs).
    pub pending: Vec<AccessViolation>,
    /// Hardware reads served (for §5.2 statistics).
    pub hardware_reads: u64,
}

impl DdtEnv {
    /// Creates the environment for one driver-under-test configuration.
    pub fn new(mmio_start: u32, mmio_len: u32, stack_base: u32, stack_top: u32) -> DdtEnv {
        DdtEnv {
            mmio_start,
            mmio_len,
            stack_base,
            stack_top,
            check_memory: true,
            pending: Vec::new(),
            hardware_reads: 0,
        }
    }

    /// Drains violations flagged since the last call.
    pub fn drain_violations(&mut self) -> Vec<AccessViolation> {
        std::mem::take(&mut self.pending)
    }

    fn fresh_hw_symbol(
        &mut self,
        st: &mut SymState,
        label: String,
        origin: SymOrigin,
        bits: u32,
    ) -> Expr {
        self.hardware_reads += 1;
        st.new_symbol(label, origin, bits)
    }

    /// Builds the "address range lies inside a permitted region" predicate.
    fn inside_expr(&self, st: &SymState, addr: &Expr, size: u8) -> Expr {
        let w = addr.width();
        let size_e = Expr::constant(size as u64, w);
        let end = addr.add(&size_e);
        let mut inside = Expr::false_();
        let mut add_region = |start: u32, stop: u32| {
            if stop <= start {
                return;
            }
            let s = Expr::constant(start as u64, w);
            let e = Expr::constant(stop as u64, w);
            // start <= addr && addr+size <= stop, with no wraparound
            // (addr <= end is implied by size <= stop - addr when inside).
            let c = s.ule(addr).and(&end.ule(&e)).and(&addr.ule(&end));
            inside = inside.or(&c);
        };
        for g in st.grants.iter() {
            add_region(g.start, g.end);
        }
        // Hardware windows are driver-accessible.
        add_region(self.mmio_start, self.mmio_start.saturating_add(self.mmio_len));
        // The current stack above the stack pointer: "accesses to memory
        // locations below the stack pointer are prohibited" (§3.1.1).
        if let Some(sp) = st.cpu.get(ddt_isa::Reg::SP).as_const() {
            let sp = (sp as u32).max(self.stack_base);
            add_region(sp, self.stack_top);
        }
        inside
    }

    /// Picks the grant region the access was "aimed at": the one containing
    /// the address under the all-zeros model. Deterministic, so reports and
    /// continuations are stable across runs.
    fn aimed_region(&self, st: &SymState, addr: &Expr) -> Option<(u32, u32)> {
        let zero_model = ddt_expr::Assignment::new();
        let aim = addr.eval(&zero_model) as u32;
        if (self.mmio_start..self.mmio_start + self.mmio_len).contains(&aim) {
            return Some((self.mmio_start, self.mmio_start + self.mmio_len));
        }
        st.grants
            .iter()
            .find(|g| aim >= g.start && aim < g.end)
            .map(|g| (g.start, g.end))
    }
}

impl SymEnv for DdtEnv {
    fn is_mmio(&self, addr: u32) -> bool {
        addr >= self.mmio_start && addr < self.mmio_start.saturating_add(self.mmio_len)
    }

    fn mmio_read(&mut self, st: &mut SymState, addr: u32, size: u8) -> Expr {
        let sym = self.fresh_hw_symbol(
            st,
            format!("hw:mmio[{addr:#x}]"),
            SymOrigin::HardwareRead { addr },
            8 * size as u32,
        );
        if let ddt_expr::ExprNode::Sym { id, .. } = sym.node() {
            st.trace.push(TraceEvent::HardwareRead { addr, id: *id });
        }
        sym
    }

    fn mmio_write(&mut self, st: &mut SymState, addr: u32, _size: u8, value: &Expr) {
        // Symbolic hardware discards writes; the trace keeps them so the
        // §3.6 analysis can see e.g. that no interrupt-enable write
        // happened before a crash.
        st.trace.push(TraceEvent::HardwareWrite { addr, value: value.as_const() });
    }

    fn port_read(&mut self, st: &mut SymState, port: u32) -> Expr {
        let sym = self.fresh_hw_symbol(
            st,
            format!("hw:port[{port:#x}]"),
            SymOrigin::PortRead { port },
            32,
        );
        if let ddt_expr::ExprNode::Sym { id, .. } = sym.node() {
            st.trace.push(TraceEvent::HardwareRead { addr: port, id: *id });
        }
        sym
    }

    fn port_write(&mut self, st: &mut SymState, port: u32, value: &Expr) {
        st.trace.push(TraceEvent::HardwareWrite { addr: port, value: value.as_const() });
    }

    fn check_access(
        &mut self,
        st: &mut SymState,
        solver: &mut Solver,
        addr: &Expr,
        size: u8,
        kind: AccessKind,
    ) -> Result<(), AccessViolation> {
        if !self.check_memory {
            return Ok(());
        }
        let pc = st.cpu.pc;
        // Concrete fast path.
        if let Some(a) = addr.as_const() {
            let a = a as u32;
            if self.is_mmio(a) || st.grants.contains_range(a, size as u32) {
                return Ok(());
            }
            if let Some(sp) = st.cpu.get(ddt_isa::Reg::SP).as_const() {
                let sp = (sp as u32).max(self.stack_base);
                if a >= sp && a.saturating_add(size as u32) <= self.stack_top {
                    return Ok(());
                }
            }
            // Definitely outside: the access crashes or corrupts; the path
            // cannot meaningfully continue.
            return Err(AccessViolation {
                pc,
                witness: a,
                kind,
                size,
                reason: format!(
                    "driver {} at {a:#x} outside all granted regions",
                    access_verb(kind)
                ),
                syms: vec![],
                model: None,
            });
        }
        // Symbolic address: can it leave every permitted region?
        let inside = self.inside_expr(st, addr, size);
        if solver.must_be_true(&st.constraints, &inside) {
            return Ok(());
        }
        // Violation: produce a concrete witness outside the regions and a
        // full model of the escaping execution (for replay).
        let mut cs = st.constraints.clone();
        cs.push(inside.lnot());
        let model = match solver.check(&cs) {
            ddt_solver::SatResult::Sat(m) => m,
            ddt_solver::SatResult::Unsat => return Ok(()), // Cannot escape.
        };
        let witness = addr.eval(&model) as u32;
        let violation = AccessViolation {
            pc,
            witness,
            kind,
            size,
            reason: format!(
                "symbolic address can {} outside granted regions (witness {witness:#x})",
                access_verb(kind)
            ),
            syms: addr.syms().into_iter().collect(),
            model: Some(model),
        };
        // Try to continue inside the buffer the access was aimed at.
        if let Some((start, end)) = self.aimed_region(st, addr) {
            let w = addr.width();
            let cont = Expr::constant(start as u64, w)
                .ule(addr)
                .and(&addr.add(&Expr::constant(size as u64, w)).ule(&Expr::constant(end as u64, w)));
            let mut cs2 = st.constraints.clone();
            cs2.push(cont.clone());
            if solver.is_feasible(&cs2) {
                st.add_constraint(cont);
                self.pending.push(violation);
                return Ok(());
            }
        }
        Err(violation)
    }
}

fn access_verb(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "reads",
        AccessKind::Write => "writes",
        AccessKind::Fetch => "fetches",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_isa::Reg;
    use ddt_symvm::SymCounter;

    fn setup() -> (DdtEnv, SymState, Solver) {
        let env = DdtEnv::new(0x8000_0000, 0x100, 0x7000_0000, 0x7010_0000);
        let mut st = SymState::new(SymCounter::new());
        st.cpu.set_u32(Reg::SP, 0x7010_0000);
        st.grants.grant(0x40_0000, 0x1000, "driver image");
        (env, st, Solver::new())
    }

    #[test]
    fn concrete_inside_grant_passes() {
        let (mut env, mut st, mut solver) = setup();
        let addr = Expr::constant(0x40_0100, 32);
        assert!(env.check_access(&mut st, &mut solver, &addr, 4, AccessKind::Read).is_ok());
        assert!(env.pending.is_empty());
    }

    #[test]
    fn concrete_outside_everything_is_fatal() {
        let (mut env, mut st, mut solver) = setup();
        let addr = Expr::constant(0x10, 32); // NULL-page dereference.
        let err = env
            .check_access(&mut st, &mut solver, &addr, 4, AccessKind::Write)
            .unwrap_err();
        assert_eq!(err.witness, 0x10);
    }

    #[test]
    fn stack_above_sp_allowed_below_forbidden() {
        let (mut env, mut st, mut solver) = setup();
        st.cpu.set_u32(Reg::SP, 0x700f_0000);
        let above = Expr::constant(0x700f_0010, 32);
        assert!(env.check_access(&mut st, &mut solver, &above, 4, AccessKind::Write).is_ok());
        let below = Expr::constant(0x700e_fff0, 32);
        assert!(env.check_access(&mut st, &mut solver, &below, 4, AccessKind::Write).is_err());
    }

    #[test]
    fn mmio_window_allowed_and_symbolic() {
        let (mut env, mut st, mut solver) = setup();
        let addr = Expr::constant(0x8000_0040, 32);
        assert!(env.check_access(&mut st, &mut solver, &addr, 4, AccessKind::Read).is_ok());
        let v = env.mmio_read(&mut st, 0x8000_0040, 4);
        assert!(!v.is_const(), "symbolic hardware read");
        assert_eq!(v.width(), 32);
        assert_eq!(env.hardware_reads, 1);
    }

    #[test]
    fn symbolic_provably_inside_passes() {
        let (mut env, mut st, mut solver) = setup();
        // base + idx*4 with idx < 16 stays inside a 0x1000 grant.
        let idx = st.new_symbol("idx", SymOrigin::Other, 32);
        st.add_constraint(idx.ult(&Expr::constant(16, 32)));
        let addr = Expr::constant(0x40_0000, 32)
            .add(&idx.shl(&Expr::constant(2, 32)));
        assert!(env.check_access(&mut st, &mut solver, &addr, 4, AccessKind::Write).is_ok());
        assert!(env.pending.is_empty(), "no violation for a bounded index");
    }

    #[test]
    fn symbolic_escaping_flags_and_continues() {
        let (mut env, mut st, mut solver) = setup();
        st.grants.grant(0x0100_0000, 128, "pool alloc");
        let n = st.new_symbol("registry", SymOrigin::Registry { name: "Max".into() }, 32);
        let addr = Expr::constant(0x0100_0000, 32).add(&n.shl(&Expr::constant(2, 32)));
        let before = st.constraints.len();
        let r = env.check_access(&mut st, &mut solver, &addr, 4, AccessKind::Write);
        assert!(r.is_ok(), "path continues inside the aimed buffer");
        assert_eq!(env.pending.len(), 1, "violation flagged");
        assert!(st.constraints.len() > before, "continuation constraint added");
        // The witness must be outside every region.
        let w = env.pending[0].witness;
        assert!(!st.grants.contains_range(w, 4) || w >= 0x0100_0000 + 128);
    }

    #[test]
    fn checker_disable_allows_everything() {
        let (mut env, mut st, mut solver) = setup();
        env.check_memory = false;
        let addr = Expr::constant(0x10, 32);
        assert!(env.check_access(&mut st, &mut solver, &addr, 4, AccessKind::Write).is_ok());
    }

    #[test]
    fn hardware_writes_are_logged_not_applied() {
        let (mut env, mut st, _solver) = setup();
        env.mmio_write(&mut st, 0x8000_0000, 4, &Expr::constant(7, 32));
        env.port_write(&mut st, 0x10, &Expr::constant(9, 32));
        let evs = st.trace.events();
        let hw_writes = evs
            .iter()
            .filter(|e| matches!(e, TraceEvent::HardwareWrite { .. }))
            .count();
        assert_eq!(hw_writes, 2);
    }
}

#[cfg(test)]
mod aimed_region_tests {
    use super::*;
    use ddt_isa::Reg;
    use ddt_symvm::{SymCounter, SymOrigin, SymState};

    #[test]
    fn aimed_region_targets_the_buffer_of_the_base_pointer() {
        // addr = alloc_base + 4*n: the zero-model lands in the allocation,
        // so the continuation confines the access there, not to the stack
        // or another grant.
        let env = DdtEnv::new(0x8000_0000, 0x100, 0x7000_0000, 0x7010_0000);
        let mut st = SymState::new(SymCounter::new());
        st.cpu.set_u32(Reg::SP, 0x7010_0000);
        st.grants.grant(0x0100_0000, 128, "pool alloc");
        st.grants.grant(0x40_0000, 0x1000, "driver image");
        let n = st.new_symbol("n", SymOrigin::Other, 32);
        let addr = Expr::constant(0x0100_0000, 32).add(&n.shl(&Expr::constant(2, 32)));
        let aimed = env.aimed_region(&st, &addr).expect("zero model hits the pool");
        assert_eq!(aimed, (0x0100_0000, 0x0100_0000 + 128));
    }

    #[test]
    fn aimed_region_recognizes_mmio() {
        let env = DdtEnv::new(0x8000_0000, 0x100, 0x7000_0000, 0x7010_0000);
        let mut st = SymState::new(SymCounter::new());
        let n = st.new_symbol("n", SymOrigin::Other, 32);
        let addr = Expr::constant(0x8000_0000, 32).add(&n);
        assert_eq!(env.aimed_region(&st, &addr), Some((0x8000_0000, 0x8000_0100)));
    }

    #[test]
    fn no_aim_for_wild_addresses() {
        let env = DdtEnv::new(0x8000_0000, 0x100, 0x7000_0000, 0x7010_0000);
        let mut st = SymState::new(SymCounter::new());
        let n = st.new_symbol("n", SymOrigin::Other, 32);
        // Zero model puts the address at 0x6000_0000: no grant there.
        let addr = Expr::constant(0x6000_0000, 32).add(&n);
        assert_eq!(env.aimed_region(&st, &addr), None);
    }
}
