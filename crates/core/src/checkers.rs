//! Dynamic bug checkers and failure classification (§3.1).
//!
//! DDT has two checker families: VM-level checks (memory access
//! verification, implemented in [`crate::hardware`]) and guest-OS-level
//! checks that watch the kernel's event stream like Driver Verifier does
//! (§3.1.2). This module turns terminal conditions and kernel events into
//! classified [`PendingBug`]s:
//!
//! - CPU faults and kernel crashes, classified by context (a fault inside
//!   an injected interrupt handler is a race condition; a fault on a path
//!   with a forced allocation failure is an error-path crash) and by the
//!   provenance of the symbols the failure depends on (§3.6: an address
//!   poisoned by a registry parameter is memory corruption; by an
//!   entry-point argument, a bad-parameter crash),
//! - resource leaks at entry-point return,
//! - spinlock usage rules: wrong release variant, non-LIFO release order,
//!   locks held at return.

use ddt_kernel::{CrashInfo, KernelEvent, ResourceKind};
use ddt_symvm::interp::{AccessViolation, SymFault};
use ddt_symvm::{SymOrigin, TraceEvent};

use crate::faults::FaultPlan;
use crate::machine::Machine;
use crate::report::{BugClass, Decision};

/// A classified bug before trace/model attachment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingBug {
    /// Classification.
    pub class: BugClass,
    /// Human description (the Table 2 "Description" column).
    pub description: String,
    /// Driver pc the bug is attributed to.
    pub pc: u32,
    /// Dedup key (stable across exploration order).
    pub key: String,
    /// Model to record instead of solving the (possibly already further
    /// constrained) path condition — used by memory-checker violations,
    /// whose paths continue inside the aimed buffer after flagging.
    pub model: Option<ddt_expr::Assignment>,
    /// Symbols the failing condition depended on, when the checker knows
    /// them (memory violations carry the symbols of the bad address). The
    /// provenance roots of these symbols feed the bug's trace signature.
    pub syms: Vec<ddt_expr::SymId>,
}

/// The driver pc a fault is attributed to: for fetch faults (wild jumps)
/// the last successfully executed instruction, otherwise the faulting pc.
fn fault_site(m: &Machine, fault_pc: u32, is_fetch: bool) -> u32 {
    if !is_fetch {
        return fault_pc;
    }
    // Newest-first scan of the shared-prefix trace; no flattening.
    m.st.trace.last_exec_pc().unwrap_or(fault_pc)
}

fn race_context(m: &Machine) -> Option<String> {
    m.in_nested_frame().then(|| m.interrupted_entry().unwrap_or_default())
}

/// If this path carries an injected acquisition failure (legacy
/// `ForceAllocFail` or fault-plan `InjectFault`), a phrase describing the
/// error path for bug descriptions.
fn fault_path_note(m: &Machine) -> Option<String> {
    m.decisions.iter().find_map(|d| match d {
        Decision::ForceAllocFail { .. } => {
            Some("an allocation-failure handling path".to_string())
        }
        Decision::InjectFault { kind, .. } => {
            Some(format!("a path where {} failed", kind.describe()))
        }
        Decision::LifecycleEvent { event, .. } => {
            Some(format!("a path where the device saw a {event}"))
        }
        _ => None,
    })
}

/// Classifies a memory-checker violation (§3.6 provenance analysis).
pub fn classify_violation(m: &Machine, v: &AccessViolation) -> PendingBug {
    if v.syms.is_empty() {
        // The offending address is concrete: classify like a plain bad
        // pointer (NULL dereference on an error path, etc.).
        let what = if v.witness < 0x1000 {
            format!("NULL pointer dereference ({:#x})", v.witness)
        } else {
            format!("access to invalid address {:#x}", v.witness)
        };
        let (class, desc) = match (race_context(m), fault_path_note(m)) {
            (Some(at), _) => (
                BugClass::RaceCondition,
                format!("{what} in {} when an interrupt arrives during {at}", m.running()),
            ),
            (None, Some(note)) => (
                BugClass::SegFault,
                format!("{what} in {} on {note}", m.running()),
            ),
            (None, None) => (BugClass::SegFault, format!("{what} in {}", m.running())),
        };
        return PendingBug {
            class,
            description: desc,
            pc: v.pc,
            key: format!("viol:{:x}:{}:{}", v.pc, m.current_entry(), m.running()),
            model: v.model.clone(),
            syms: v.syms.clone(),
        };
    }
    let mut origins: Vec<&SymOrigin> =
        v.syms.iter().filter_map(|id| m.st.symbols.get(*id)).map(|i| &i.origin).collect();
    origins.sort_by_key(|o| match o {
        SymOrigin::Registry { .. } => 0,
        SymOrigin::EntryArg { .. } => 1,
        SymOrigin::HardwareRead { .. } | SymOrigin::PortRead { .. } => 2,
        _ => 3,
    });
    let (class, source) = match origins.first() {
        Some(SymOrigin::Registry { name }) => (
            BugClass::MemoryCorruption,
            format!("unchecked registry parameter {name:?} used in an address"),
        ),
        Some(SymOrigin::EntryArg { entry, .. }) => (
            BugClass::SegFault,
            format!("unvalidated {entry} argument used in an address"),
        ),
        Some(SymOrigin::HardwareRead { addr }) => (
            BugClass::SegFault,
            format!("hardware register value ({addr:#x}) used in an address unchecked"),
        ),
        Some(SymOrigin::PortRead { port }) => (
            BugClass::SegFault,
            format!("hardware port value ({port:#x}) used in an address unchecked"),
        ),
        _ => (BugClass::MemoryCorruption, "out-of-bounds access".to_string()),
    };
    let (class, racy) = match race_context(m) {
        Some(at) => (BugClass::RaceCondition, format!(" (in interrupt during {at})")),
        None => (class, String::new()),
    };
    PendingBug {
        class,
        description: format!(
            "{} in {}: {}{racy}",
            kind_noun(v.kind),
            m.running(),
            source
        ),
        pc: v.pc,
        key: format!("viol:{:x}:{}:{}", v.pc, m.current_entry(), m.running()),
        model: v.model.clone(),
        syms: v.syms.clone(),
    }
}

fn kind_noun(kind: ddt_isa::AccessKind) -> &'static str {
    match kind {
        ddt_isa::AccessKind::Read => "out-of-bounds read",
        ddt_isa::AccessKind::Write => "out-of-bounds write",
        ddt_isa::AccessKind::Fetch => "wild instruction fetch",
    }
}

/// Classifies a CPU fault terminal. Returns `None` for infeasible paths
/// (dead, not buggy).
pub fn classify_fault(m: &Machine, fault: &SymFault) -> Option<PendingBug> {
    let bug = match fault {
        SymFault::Infeasible => return None,
        SymFault::AccessViolation(v) => classify_violation(m, v),
        SymFault::BadAccess { pc, addr, kind } => {
            let is_fetch = matches!(kind, ddt_isa::AccessKind::Fetch);
            let site = fault_site(m, *pc, is_fetch);
            let what = if *addr < 0x1000 {
                format!("NULL pointer dereference ({addr:#x})")
            } else if is_fetch {
                format!("jump to invalid code at {addr:#x}")
            } else {
                format!("access to invalid address {addr:#x}")
            };
            let (class, desc) = match (race_context(m), fault_path_note(m)) {
                (Some(at), _) => (
                    BugClass::RaceCondition,
                    format!("{what} in {} when an interrupt arrives during {at}", m.running()),
                ),
                (None, Some(note)) => (
                    BugClass::SegFault,
                    format!("{what} in {} on {note}", m.running()),
                ),
                (None, None) => (BugClass::SegFault, format!("{what} in {}", m.running())),
            };
            PendingBug {
                class,
                description: desc,
                pc: site,
                key: format!("fault:{site:x}:{}:{}", m.running(), m.current_entry()),
                model: None,
                syms: Vec::new(),
            }
        }
        SymFault::IllegalInsn { pc } => {
            let site = fault_site(m, *pc, true);
            let (class, ctx) = match race_context(m) {
                Some(at) => (BugClass::RaceCondition, format!(" (interrupt during {at})")),
                None => (BugClass::SegFault, String::new()),
            };
            PendingBug {
                class,
                description: format!("execution of invalid code in {}{ctx}", m.running()),
                pc: site,
                key: format!("ill:{site:x}:{}", m.current_entry()),
                model: None,
                syms: Vec::new(),
            }
        }
        SymFault::Misaligned { pc, addr } => PendingBug {
            class: BugClass::SegFault,
            description: format!("misaligned access to {addr:#x} in {}", m.running()),
            pc: *pc,
            key: format!("mis:{pc:x}"),
            model: None,
            syms: Vec::new(),
        },
        SymFault::DivByZero { pc } => PendingBug {
            class: BugClass::SegFault,
            description: format!("division by zero in {}", m.running()),
            pc: *pc,
            key: format!("div:{pc:x}"),
            model: None,
            syms: Vec::new(),
        },
    };
    Some(bug)
}

/// Classifies a kernel crash (BSOD interception, §3.1.2).
///
/// Kernel crashes are deterministic properties of the handler code path
/// that issued the bad call, so they dedup on (code, handler, call site):
/// the same API-misuse crash reachable from several interrupt windows is
/// one bug. (Memory faults keep the interrupted entry in their key — their
/// root cause is the interrupted state, as in the two Ensoniq races.)
pub fn classify_crash(m: &Machine, crash: &CrashInfo) -> PendingBug {
    // The call site: the last driver instruction executed.
    let site = fault_site(m, m.st.cpu.pc, true);
    let deadlockish = crash.message.contains("deadlock");
    let key = format!("crash:{}:{}:{site:x}", crash.code, m.running());
    match race_context(m) {
        Some(at) => PendingBug {
            class: BugClass::RaceCondition,
            description: format!(
                "{} when an interrupt arrives during {at}",
                crash.message
            ),
            pc: site,
            key,
            model: None,
            syms: Vec::new(),
        },
        None => PendingBug {
            class: if deadlockish { BugClass::KernelHang } else { BugClass::KernelCrash },
            description: match fault_path_note(m) {
                Some(note) => format!(
                    "kernel crash in {}: {} (on {note})",
                    m.running(),
                    crash.message
                ),
                None => format!("kernel crash in {}: {}", m.running(), crash.message),
            },
            pc: site,
            key,
            model: None,
            syms: Vec::new(),
        },
    }
}

/// Scans kernel events appended since the last scan for API-usage bugs
/// (symbolic-to-concrete annotation rules, §3.4.1).
pub fn scan_kernel_events(m: &mut Machine) -> Vec<PendingBug> {
    let events = &m.kernel.state.events;
    let mut bugs = Vec::new();
    // Reconstruct the lock LIFO stack over the whole path so order
    // violations are detected even across scan boundaries.
    let mut lock_stack: Vec<u32> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let fresh = i >= m.events_scanned;
        match ev {
            KernelEvent::SpinAcquire { lock, .. } => lock_stack.push(*lock),
            KernelEvent::SpinRelease { lock, variant_mismatch, .. } => {
                if fresh && *variant_mismatch {
                    bugs.push(PendingBug {
                        class: BugClass::KernelCrash,
                        description: format!(
                            "wrong spinlock release variant in {} (NdisReleaseSpinLock after \
                             NdisDprAcquireSpinLock corrupts the IRQL)",
                            m.running()
                        ),
                        pc: m.st.cpu.pc,
                        key: format!("lockvariant:{lock:x}:{}", m.running()),
                        model: None,
                        syms: Vec::new(),
                    });
                }
                if let Some(pos) = lock_stack.iter().rposition(|l| l == lock) {
                    if fresh && pos != lock_stack.len() - 1 {
                        bugs.push(PendingBug {
                            class: BugClass::KernelHang,
                            description: format!(
                                "spinlocks released out of LIFO order in {}",
                                m.running()
                            ),
                            pc: m.st.cpu.pc,
                            key: format!("lockorder:{lock:x}:{}", m.running()),
                            model: None,
                            syms: Vec::new(),
                        });
                    }
                    lock_stack.remove(pos);
                }
            }
            _ => {}
        }
    }
    m.events_scanned = events.len();
    bugs
}

/// Examines a budget-killed path for the infinite-loop signature (§3.1.1,
/// the VM-level infinite-loop detection): the tail of the trace cycles
/// through at most two distinct instructions' blocks with no kernel calls
/// and no hardware reads — a pure computation loop that can never exit.
///
/// Polling loops (which read hardware each iteration) are *not* flagged:
/// with symbolic hardware they fork an exit path every iteration, and
/// whether endless polling is a defect is hardware-model-dependent (§6.1).
pub fn check_infinite_loop(m: &Machine, window: usize) -> Option<PendingBug> {
    if m.st.trace.len() < window {
        return None;
    }
    // Only the window's worth of events is materialized; the shared trace
    // prefix is never flattened.
    let tail = m.st.trace.tail(window);
    let mut pcs = std::collections::BTreeSet::new();
    for ev in &tail {
        match ev {
            TraceEvent::Exec { pc } => {
                pcs.insert(*pc);
            }
            TraceEvent::KernelCall { .. }
            | TraceEvent::HardwareRead { .. }
            | TraceEvent::EntryInvoke { .. } => return None,
            _ => {}
        }
    }
    // A tight cycle: few distinct instructions, repeating.
    if pcs.is_empty() || pcs.len() > 8 {
        return None;
    }
    let pc = *pcs.iter().next().expect("non-empty");
    Some(PendingBug {
        class: BugClass::KernelHang,
        description: format!(
            "infinite loop in {}: {} instruction(s) repeating with no exit condition",
            m.running(),
            pcs.len()
        ),
        pc,
        key: format!("loop:{pc:x}:{}", m.running()),
        model: None,
        syms: Vec::new(),
    })
}

/// Device-lifecycle checkers, run at every invocation return while the
/// returning frame is still on the stack:
///
/// - **touch-after-remove**: any hardware access recorded after the device
///   was surprise-removed is a use of a device that no longer exists (on
///   real hardware the bus returns all-ones or the write is silently
///   dropped; either way the driver is confused). Reported once per path,
///   at the first offending access.
/// - **resume-without-restore**: a `PnpSetPowerD0` handler that returns
///   without a single hardware write has not reprogrammed the device — the
///   registers lost their contents in D3, so the device comes back dead.
pub fn check_lifecycle(m: &mut Machine) -> Vec<PendingBug> {
    let mut bugs = Vec::new();
    if let Some(mark) = m.removed_trace_mark {
        if !m.touch_after_remove_reported {
            let tail = m.st.trace.tail(m.st.trace.len().saturating_sub(mark));
            let mut last_pc = m.st.cpu.pc;
            for ev in &tail {
                let touched = match ev {
                    TraceEvent::Exec { pc } => {
                        last_pc = *pc;
                        None
                    }
                    TraceEvent::HardwareRead { addr, .. } => Some(("reads", *addr)),
                    TraceEvent::HardwareWrite { addr, .. } => Some(("writes", *addr)),
                    _ => None,
                };
                if let Some((verb, addr)) = touched {
                    m.touch_after_remove_reported = true;
                    bugs.push(PendingBug {
                        class: BugClass::LifecycleViolation,
                        description: format!(
                            "{} {verb} device register {addr:#x} after the device \
                             was surprise-removed",
                            m.running()
                        ),
                        pc: last_pc,
                        key: format!("touchremove:{last_pc:x}:{}", m.running()),
                        model: None,
                        syms: Vec::new(),
                    });
                    break;
                }
            }
        }
    }
    if let Some(crate::machine::Frame::Pnp { event, trace_mark, .. }) = m.frames.last() {
        if *event == crate::report::LifecycleEvent::Resume {
            let tail = m.st.trace.tail(m.st.trace.len().saturating_sub(*trace_mark));
            let restored =
                tail.iter().any(|ev| matches!(ev, TraceEvent::HardwareWrite { .. }));
            if !restored {
                bugs.push(PendingBug {
                    class: BugClass::LifecycleViolation,
                    description: "driver resumes to D0 without reprogramming the device \
                                  (the power handler performed no hardware writes)"
                        .to_string(),
                    pc: m.st.cpu.pc,
                    key: format!("noreprog:{}", m.current_entry()),
                    model: None,
                    syms: Vec::new(),
                });
            }
        }
    }
    bugs
}

/// Leak and lock checks when an invocation returns to the kernel.
///
/// `is_initialize_failure` applies the paper's rule that a failed
/// initialization must have released everything it acquired.
pub fn on_invocation_return(
    m: &mut Machine,
    returned: &str,
    status: u32,
    held_at_entry: &[u32],
) -> Vec<PendingBug> {
    let mut bugs = Vec::new();
    // Locks acquired by this invocation must not be held across the return
    // to the kernel (locks held by interrupted code are not its fault, and
    // a leak already reported at the inner frame is not re-reported when
    // the outer frames unwind through it).
    let held_now: Vec<u32> = m.held_locks();
    for lock in held_now {
        if !held_at_entry.contains(&lock) && m.reported_held_locks.insert(lock) {
            bugs.push(PendingBug {
                class: BugClass::KernelHang,
                description: format!(
                    "{returned} returns with spinlock {lock:#x} still held"
                ),
                pc: m.st.cpu.pc,
                key: format!("heldlock:{lock:x}:{returned}"),
                model: None,
                syms: Vec::new(),
            });
        }
    }
    let s = &m.kernel.state;
    // Open configuration handles must not outlive the entry point.
    let open_cfg = s.live_resources(ResourceKind::ConfigHandle);
    if open_cfg > 0 && matches!(returned, "Initialize" | "DriverEntry") {
        bugs.push(PendingBug {
            class: BugClass::ResourceLeak,
            description: format!(
                "driver does not call NdisCloseConfiguration before returning from \
                 {returned}{}",
                if status != 0 { " when initialization fails" } else { "" }
            ),
            pc: m.st.cpu.pc,
            key: format!("cfgleak:{returned}"),
            model: None,
            syms: Vec::new(),
        });
    }
    // Unchecked-failure rule: Initialize claims success even though a
    // mandatory acquisition failed on this path — the driver ignored (or
    // never looked at) the failure status. Registry reads are exempt:
    // falling back to a default parameter value is correct behavior.
    if returned == "Initialize" && status == 0 {
        for family in m.injected_faults.clone() {
            if !FaultPlan::mandatory(family) {
                continue;
            }
            bugs.push(PendingBug {
                class: BugClass::UncheckedFailure,
                description: format!(
                    "Initialize reports success although {} failed \
                     (the failure status is never checked)",
                    family.describe()
                ),
                pc: m.st.cpu.pc,
                key: format!("unchecked:{family:?}:{returned}"),
                model: None,
                syms: Vec::new(),
            });
        }
    }
    // A failed Initialize must free everything it allocated (§5.1: "when
    // memory allocation fails, the drivers do not release all the resources
    // that were already allocated").
    if returned == "Initialize" && status != 0 {
        let pool = s.live_resources(ResourceKind::PoolMemory);
        if pool > 0 {
            bugs.push(PendingBug {
                class: BugClass::MemoryLeak,
                description: format!(
                    "driver leaks {pool} pool allocation(s) when initialization fails"
                ),
                pc: m.st.cpu.pc,
                key: "memleak:Initialize".to_string(),
                model: None,
                syms: Vec::new(),
            });
        }
        let packets = s.live_resources(ResourceKind::Packet);
        let buffers = s.live_resources(ResourceKind::Buffer);
        let pools = s.live_resources(ResourceKind::Pool);
        if packets + buffers + pools > 0 {
            bugs.push(PendingBug {
                class: BugClass::ResourceLeak,
                description: format!(
                    "driver leaks packets/buffers on failed initialization \
                     ({packets} packets, {buffers} buffers, {pools} pools)"
                ),
                pc: m.st.cpu.pc,
                key: "rsrcleak:Initialize".to_string(),
                model: None,
                syms: Vec::new(),
            });
        }
        let dma = s.live_resources(ResourceKind::DmaChannel);
        if dma > 0 {
            bugs.push(PendingBug {
                class: BugClass::ResourceLeak,
                description: format!("driver leaks {dma} DMA channel(s) on failed initialization"),
                pc: m.st.cpu.pc,
                key: "dmaleak:Initialize".to_string(),
                model: None,
                syms: Vec::new(),
            });
        }
    }
    bugs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_kernel::state::SpinLockState;
    use ddt_kernel::Kernel;
    use ddt_symvm::{SymCounter, SymState};

    fn machine() -> Machine {
        let mut m = Machine::new(SymState::new(SymCounter::new()), Kernel::new());
        m.frames.push(crate::machine::Frame::Entry {
            name: "Initialize".into(),
            held_at_entry: vec![],
        });
        m
    }

    #[test]
    fn infeasible_is_not_a_bug() {
        let m = machine();
        assert!(classify_fault(&m, &SymFault::Infeasible).is_none());
    }

    #[test]
    fn null_deref_in_isr_is_a_race() {
        let mut m = machine();
        m.frames.push(crate::machine::Frame::Isr {
            saved: m.save_ctx(),
            at_entry: "Initialize".into(),
            held_at_entry: vec![],
        });
        let f = SymFault::BadAccess { pc: 0x40_0100, addr: 4, kind: ddt_isa::AccessKind::Read };
        let bug = classify_fault(&m, &f).unwrap();
        assert_eq!(bug.class, BugClass::RaceCondition);
        assert!(bug.description.contains("interrupt arrives during Initialize"));
    }

    #[test]
    fn null_deref_on_alloc_failure_path_is_segfault() {
        let mut m = machine();
        m.decisions.push(Decision::ForceAllocFail { kernel_call: 2 });
        let f = SymFault::BadAccess { pc: 0x40_0200, addr: 8, kind: ddt_isa::AccessKind::Write };
        let bug = classify_fault(&m, &f).unwrap();
        assert_eq!(bug.class, BugClass::SegFault);
        assert!(bug.description.contains("allocation-failure"));
    }

    #[test]
    fn registry_poisoned_address_is_memory_corruption() {
        let mut m = machine();
        let sym = m.st.new_symbol(
            "registry:MaximumMulticastList",
            SymOrigin::Registry { name: "MaximumMulticastList".into() },
            32,
        );
        let id = match sym.node() {
            ddt_expr::ExprNode::Sym { id, .. } => *id,
            _ => unreachable!(),
        };
        let v = AccessViolation {
            pc: 0x40_0300,
            witness: 0x9999_0000,
            kind: ddt_isa::AccessKind::Write,
            size: 4,
            reason: "escapes".into(),
            syms: vec![id],
            model: None,
        };
        let bug = classify_violation(&m, &v);
        assert_eq!(bug.class, BugClass::MemoryCorruption);
        assert!(bug.description.contains("MaximumMulticastList"));
    }

    #[test]
    fn wild_fetch_attributed_to_last_executed_insn() {
        let mut m = machine();
        m.st.trace.push(TraceEvent::Exec { pc: 0x40_0500 });
        let f = SymFault::BadAccess {
            pc: 0x6978_614d,
            addr: 0x6978_614d,
            kind: ddt_isa::AccessKind::Fetch,
        };
        let bug = classify_fault(&m, &f).unwrap();
        assert_eq!(bug.pc, 0x40_0500, "attributed to the jump, not the junk target");
    }

    #[test]
    fn crash_in_nested_frame_is_race() {
        let mut m = machine();
        m.frames.push(crate::machine::Frame::Isr {
            saved: m.save_ctx(),
            at_entry: "Initialize".into(),
            held_at_entry: vec![],
        });
        let crash = CrashInfo { code: 0xc7, message: "NdisMSetTimer on uninitialized timer".into() };
        let bug = classify_crash(&m, &crash);
        assert_eq!(bug.class, BugClass::RaceCondition);
    }

    #[test]
    fn deadlock_crash_is_kernel_hang() {
        let m = machine();
        let crash = CrashInfo { code: 0x81, message: "deadlock: spinlock held".into() };
        assert_eq!(classify_crash(&m, &crash).class, BugClass::KernelHang);
    }

    #[test]
    fn variant_mismatch_event_reported_once() {
        let mut m = machine();
        m.kernel.state.events.push(KernelEvent::SpinAcquire { lock: 0x40_1000, dpr: true });
        m.kernel.state.events.push(KernelEvent::SpinRelease {
            lock: 0x40_1000,
            dpr: false,
            variant_mismatch: true,
        });
        let bugs = scan_kernel_events(&mut m);
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].class, BugClass::KernelCrash);
        // Second scan over the same events reports nothing new.
        assert!(scan_kernel_events(&mut m).is_empty());
    }

    #[test]
    fn out_of_order_release_detected() {
        let mut m = machine();
        let ev = &mut m.kernel.state.events;
        ev.push(KernelEvent::SpinAcquire { lock: 0xa, dpr: true });
        ev.push(KernelEvent::SpinAcquire { lock: 0xb, dpr: true });
        ev.push(KernelEvent::SpinRelease { lock: 0xa, dpr: true, variant_mismatch: false });
        ev.push(KernelEvent::SpinRelease { lock: 0xb, dpr: true, variant_mismatch: false });
        let bugs = scan_kernel_events(&mut m);
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].class, BugClass::KernelHang);
        assert!(bugs[0].description.contains("LIFO"));
    }

    #[test]
    fn lifo_release_is_clean() {
        let mut m = machine();
        let ev = &mut m.kernel.state.events;
        ev.push(KernelEvent::SpinAcquire { lock: 0xa, dpr: true });
        ev.push(KernelEvent::SpinAcquire { lock: 0xb, dpr: true });
        ev.push(KernelEvent::SpinRelease { lock: 0xb, dpr: true, variant_mismatch: false });
        ev.push(KernelEvent::SpinRelease { lock: 0xa, dpr: true, variant_mismatch: false });
        assert!(scan_kernel_events(&mut m).is_empty());
    }

    #[test]
    fn failed_initialize_leaks_are_reported_by_kind() {
        let mut m = machine();
        let s = &mut m.kernel.state;
        s.pool.insert(
            0x0100_0000,
            ddt_kernel::state::PoolAlloc { addr: 0x0100_0000, size: 64, tag: 0, paged: false },
        );
        s.packets.insert(0x0100_0100, 0xb00c_0000);
        s.packet_pools.insert(0xb00c_0000, 2);
        let bugs = on_invocation_return(&mut m, "Initialize", 0xC000_0001, &[]);
        let classes: Vec<BugClass> = bugs.iter().map(|b| b.class).collect();
        assert!(classes.contains(&BugClass::MemoryLeak));
        assert!(classes.contains(&BugClass::ResourceLeak));
        assert_eq!(bugs.len(), 2);
    }

    #[test]
    fn successful_initialize_with_resources_is_clean() {
        let mut m = machine();
        m.kernel.state.pool.insert(
            0x0100_0000,
            ddt_kernel::state::PoolAlloc { addr: 0x0100_0000, size: 64, tag: 0, paged: false },
        );
        assert!(on_invocation_return(&mut m, "Initialize", 0, &[]).is_empty());
    }

    #[test]
    fn open_config_at_return_is_a_leak() {
        let mut m = machine();
        m.kernel.state.config_handles.insert(0xc0f0_0000, true);
        let bugs = on_invocation_return(&mut m, "Initialize", 0xC000_0001, &[]);
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].class, BugClass::ResourceLeak);
        assert!(bugs[0].description.contains("NdisCloseConfiguration"));
    }

    #[test]
    fn unchecked_mandatory_fault_on_successful_initialize_is_reported() {
        let mut m = machine();
        m.injected_faults.push(ddt_kernel::FaultFamily::Registration);
        let bugs = on_invocation_return(&mut m, "Initialize", 0, &[]);
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].class, BugClass::UncheckedFailure);
        assert!(bugs[0].description.contains("interrupt/timer registration"));
    }

    #[test]
    fn registry_fault_fallback_is_not_unchecked_failure() {
        let mut m = machine();
        m.injected_faults.push(ddt_kernel::FaultFamily::Registry);
        assert!(on_invocation_return(&mut m, "Initialize", 0, &[]).is_empty());
    }

    #[test]
    fn injected_fault_path_note_shows_up_in_fault_descriptions() {
        let mut m = machine();
        m.decisions.push(Decision::InjectFault {
            site: 3,
            kind: ddt_kernel::FaultFamily::SharedMemory,
        });
        let f = SymFault::BadAccess { pc: 0x40_0200, addr: 8, kind: ddt_isa::AccessKind::Write };
        let bug = classify_fault(&m, &f).unwrap();
        assert_eq!(bug.class, BugClass::SegFault);
        assert!(bug.description.contains("shared memory allocation failed"));
    }

    #[test]
    fn touch_after_remove_reports_first_access_once() {
        let mut m = machine();
        m.st.trace.push(TraceEvent::Exec { pc: 0x40_0010 });
        m.removed_trace_mark = Some(m.st.trace.len());
        m.st.trace.push(TraceEvent::Exec { pc: 0x40_0020 });
        m.st.trace.push(TraceEvent::HardwareWrite { addr: 0x12, value: Some(0xff) });
        m.st.trace.push(TraceEvent::HardwareWrite { addr: 0x13, value: Some(0x1) });
        let bugs = check_lifecycle(&mut m);
        assert_eq!(bugs.len(), 1, "first offending access only");
        assert_eq!(bugs[0].class, BugClass::LifecycleViolation);
        assert_eq!(bugs[0].pc, 0x40_0020, "attributed to the access instruction");
        assert!(bugs[0].description.contains("after the device was surprise-removed"));
        assert!(check_lifecycle(&mut m).is_empty(), "reported once per path");
    }
    #[test]
    fn accesses_before_removal_are_clean() {
        let mut m = machine();
        m.st.trace.push(TraceEvent::HardwareWrite { addr: 0x12, value: Some(0xff) });
        m.removed_trace_mark = Some(m.st.trace.len());
        assert!(check_lifecycle(&mut m).is_empty());
    }

    #[test]
    fn resume_without_hardware_writes_is_a_violation() {
        let mut m = machine();
        m.st.trace.push(TraceEvent::HardwareWrite { addr: 0x11, value: Some(1) });
        let trace_mark = m.st.trace.len();
        m.frames.push(crate::machine::Frame::Pnp {
            event: crate::report::LifecycleEvent::Resume,
            saved: m.save_ctx(),
            at_entry: "Send".into(),
            held_at_entry: vec![],
            trace_mark,
        });
        let bugs = check_lifecycle(&mut m);
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].class, BugClass::LifecycleViolation);
        assert!(bugs[0].description.contains("without reprogramming"));
        // A handler that does reprogram the device is clean.
        m.st.trace.push(TraceEvent::HardwareWrite { addr: 0x11, value: Some(1) });
        assert!(check_lifecycle(&mut m).is_empty());
    }

    #[test]
    fn suspend_handler_needs_no_hardware_writes() {
        let mut m = machine();
        m.frames.push(crate::machine::Frame::Pnp {
            event: crate::report::LifecycleEvent::Suspend,
            saved: m.save_ctx(),
            at_entry: "Send".into(),
            held_at_entry: vec![],
            trace_mark: 0,
        });
        assert!(check_lifecycle(&mut m).is_empty());
    }

    #[test]
    fn lifecycle_path_note_shows_up_in_crash_descriptions() {
        let mut m = machine();
        m.decisions.push(Decision::LifecycleEvent {
            boundary: 2,
            event: crate::report::LifecycleEvent::SurpriseRemove,
        });
        let crash = CrashInfo { code: 0x7e, message: "freeing invalid pool pointer 0x100".into() };
        let bug = classify_crash(&m, &crash);
        assert_eq!(bug.class, BugClass::KernelCrash);
        assert!(bug.description.contains("a path where the device saw a surprise removal"));
    }

    #[test]
    fn held_lock_at_return_is_a_hang() {
        let mut m = machine();
        let mut l = SpinLockState::new();
        l.held = true;
        m.kernel.state.spinlocks.insert(0x40_1000, l);
        let bugs = on_invocation_return(&mut m, "HandleInterrupt", 0, &[]);
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].class, BugClass::KernelHang);
    }
}
