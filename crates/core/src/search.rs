//! Pluggable frontier search strategies and structural-state pruning.
//!
//! Which state the exerciser expands next decides whether a large driver
//! finishes (§3 of the paper; Baldoni et al. catalog the standard
//! techniques). The frontier is abstracted behind [`SearchStrategy`] so the
//! selection policy is a configuration choice, not a property of the loop:
//!
//! - `fifo` — the report-identity baseline: the EXE-style minimum-block-hit
//!   scan exactly as the serial loop has always run it (including the
//!   deterministic stride sampling for large worklists), so reports are
//!   byte-identical to the pre-strategy exerciser;
//! - `coverage-new-first` — states whose last quantum opened unseen blocks
//!   jump the queue (fed by [`Coverage`] deltas stamped on the machine);
//! - `rarest-branch` — states parked in front of the globally least-taken
//!   branch run first ([`Coverage::rarity`] over merged hit counts);
//! - `bug-directed` — states closest (in CFG blocks) to a kernel-call
//!   "checker site" run first ([`CodeAnalysis::checker_distances`]).
//!
//! All guided strategies tie-break by the EXE cold-block priority and then
//! by frontier position, so selection is fully deterministic.
//!
//! [`PruneSet`] implements the opt-in structural-fingerprint pruning: a
//! forked state whose [`Machine::fingerprint`] (pc, invocation shape,
//! decision schedule) was already seen with no global coverage delta since
//! is dropped before it is ever scheduled.

use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap};

use ddt_isa::analysis::CodeAnalysis;
use ddt_trace::{fnv1a64, MachineFingerprint};

use crate::coverage::Coverage;
use crate::machine::Machine;

/// The configured search strategy (a pure config value; the runtime object
/// is built per run via [`Strategy::runtime`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Today's behavior: EXE-style min-block-hit with stride sampling.
    #[default]
    Fifo,
    /// Prioritize states that just discovered new blocks.
    CoverageNewFirst,
    /// Prioritize states in front of the globally rarest branch.
    RarestBranch,
    /// Prioritize states closest to a kernel-call checker site.
    BugDirected,
}

impl Strategy {
    /// Every strategy, in CLI order.
    pub const ALL: [Strategy; 4] = [
        Strategy::Fifo,
        Strategy::CoverageNewFirst,
        Strategy::RarestBranch,
        Strategy::BugDirected,
    ];

    /// Parses a `--strategy` value.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "fifo" => Some(Strategy::Fifo),
            "coverage-new-first" => Some(Strategy::CoverageNewFirst),
            "rarest-branch" => Some(Strategy::RarestBranch),
            "bug-directed" => Some(Strategy::BugDirected),
            _ => None,
        }
    }

    /// The CLI / fingerprint name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Fifo => "fifo",
            Strategy::CoverageNewFirst => "coverage-new-first",
            Strategy::RarestBranch => "rarest-branch",
            Strategy::BugDirected => "bug-directed",
        }
    }

    /// True for every strategy except the baseline.
    pub fn is_guided(self) -> bool {
        !matches!(self, Strategy::Fifo)
    }

    /// Builds the runtime selector. `bug-directed` precomputes its
    /// distance-to-checker-site map from the CFG here, so call this before
    /// the analysis is consumed by [`Coverage::new`].
    pub fn runtime(self, analysis: &CodeAnalysis) -> Box<dyn SearchStrategy> {
        match self {
            Strategy::Fifo => Box::new(FifoScan),
            Strategy::CoverageNewFirst => Box::new(CoverageNewFirst),
            Strategy::RarestBranch => Box::new(RarestBranch),
            Strategy::BugDirected => {
                Box::new(BugDirected { distances: analysis.checker_distances() })
            }
        }
    }
}

/// A frontier selection policy: given the current frontier and the merged
/// global coverage, pick the index of the state to expand next. `frontier`
/// is never empty at the call.
pub trait SearchStrategy: Send + Sync {
    /// The strategy's CLI name.
    fn name(&self) -> &'static str;
    /// Index of the state to expand next.
    fn select(&self, frontier: &[Machine], cov: &Coverage) -> usize;
}

/// For large worklists the baseline scan samples a deterministic stride —
/// an O(1)-ish approximation that keeps the cold-block bias without a full
/// O(n) pass per quantum. Kept bit-identical to the historic serial loop.
const SCAN_LIMIT: usize = 64;

/// The report-identity baseline (§4.3): minimum block-hit count, stride
/// sampled beyond [`SCAN_LIMIT`], first minimum wins.
struct FifoScan;

impl SearchStrategy for FifoScan {
    fn name(&self) -> &'static str {
        Strategy::Fifo.name()
    }

    fn select(&self, frontier: &[Machine], cov: &Coverage) -> usize {
        if frontier.len() <= SCAN_LIMIT {
            frontier
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| cov.priority(m.st.cpu.pc))
                .map(|(i, _)| i)
                .expect("frontier non-empty")
        } else {
            let stride = frontier.len() / SCAN_LIMIT;
            (0..SCAN_LIMIT)
                .map(|k| (k * stride) % frontier.len())
                .min_by_key(|&i| cov.priority(frontier[i].st.cpu.pc))
                .expect("frontier non-empty")
        }
    }
}

/// States that just opened unseen blocks jump the queue; among equally
/// fresh states the newest discovery wins, then the EXE cold-block rule.
struct CoverageNewFirst;

impl SearchStrategy for CoverageNewFirst {
    fn name(&self) -> &'static str {
        Strategy::CoverageNewFirst.name()
    }

    fn select(&self, frontier: &[Machine], cov: &Coverage) -> usize {
        frontier
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| {
                (Reverse(m.cov_fresh), Reverse(m.cov_stamp), cov.priority(m.st.cpu.pc))
            })
            .map(|(i, _)| i)
            .expect("frontier non-empty")
    }
}

/// Inverse global branch frequency: expand the state whose next branches
/// include the globally least-executed one.
struct RarestBranch;

impl SearchStrategy for RarestBranch {
    fn name(&self) -> &'static str {
        Strategy::RarestBranch.name()
    }

    fn select(&self, frontier: &[Machine], cov: &Coverage) -> usize {
        frontier
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| (cov.rarity(m.st.cpu.pc), cov.priority(m.st.cpu.pc)))
            .map(|(i, _)| i)
            .expect("frontier non-empty")
    }
}

/// Directed search toward checker sites: smallest CFG distance to a block
/// that calls into the kernel (where every dynamic checker observes the
/// driver), tie-broken by the cold-block rule.
struct BugDirected {
    distances: BTreeMap<u32, u64>,
}

impl BugDirected {
    fn distance(&self, cov: &Coverage, pc: u32) -> u64 {
        cov.analysis()
            .block_of(pc)
            .and_then(|b| self.distances.get(&b).copied())
            .unwrap_or(u64::MAX)
    }
}

impl SearchStrategy for BugDirected {
    fn name(&self) -> &'static str {
        Strategy::BugDirected.name()
    }

    fn select(&self, frontier: &[Machine], cov: &Coverage) -> usize {
        frontier
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| (self.distance(cov, m.st.cpu.pc), cov.priority(m.st.cpu.pc)))
            .map(|(i, _)| i)
            .expect("frontier non-empty")
    }
}

/// The exerciser's frontier: the worklist plus the strategy that orders it.
/// `pop` is selection + `swap_remove`, exactly like the historic loop, so
/// the `fifo` strategy reproduces it operation for operation.
pub struct Frontier {
    items: Vec<Machine>,
    strategy: Box<dyn SearchStrategy>,
}

impl Frontier {
    /// Wraps an initial worklist (the root machine, or a checkpoint's
    /// restored frontier) under a strategy.
    pub fn new(strategy: Box<dyn SearchStrategy>, items: Vec<Machine>) -> Frontier {
        Frontier { items, strategy }
    }

    /// Adds a state.
    pub fn push(&mut self, m: Machine) {
        self.items.push(m);
    }

    /// Removes and returns the state the strategy ranks first.
    pub fn pop(&mut self, cov: &Coverage) -> Option<Machine> {
        if self.items.is_empty() {
            return None;
        }
        let i = self.strategy.select(&self.items, cov);
        Some(self.items.swap_remove(i))
    }

    /// Number of pending states.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no states are pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The pending states (checkpointing serializes these).
    pub fn as_slice(&self) -> &[Machine] {
        &self.items
    }

    /// Raw storage, for the quantum sinks that push forked children and for
    /// post-quantum metadata stamping/pruning.
    pub fn storage_mut(&mut self) -> &mut Vec<Machine> {
        &mut self.items
    }

    /// The active strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }
}

/// Opt-in structural-fingerprint pruning (`--prune`): remembers every
/// forked state's [`Machine::fingerprint`] hash together with the global
/// covered-block count at its last sighting. A new fork whose fingerprint
/// repeats while coverage has not moved is structurally redundant — the
/// diamond/polling duplicate case — and is dropped before scheduling.
/// A repeat *with* a coverage delta is kept (and re-stamped): the global
/// state changed, so the duplicate may now behave differently.
#[derive(Default)]
pub struct PruneSet {
    seen: HashMap<u64, u64>,
}

impl PruneSet {
    /// An empty set.
    pub fn new() -> PruneSet {
        PruneSet::default()
    }

    /// Restores the set from a checkpoint snapshot, so a resumed campaign
    /// prunes exactly where the uninterrupted one would.
    pub fn seeded(snapshot: impl IntoIterator<Item = (u64, u64)>) -> PruneSet {
        PruneSet { seen: snapshot.into_iter().collect() }
    }

    /// Exports the checkpointable state, sorted for determinism.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.seen.iter().map(|(&h, &c)| (h, c)).collect();
        v.sort_unstable();
        v
    }

    /// Hash of a structural fingerprint (pc is part of it: only states at
    /// the same pc with the same invocation shape and schedule collide).
    pub fn fp_hash(fp: &MachineFingerprint) -> u64 {
        let mut buf = [0u8; 44];
        buf[0..4].copy_from_slice(&fp.pc.to_le_bytes());
        buf[4..12].copy_from_slice(&fp.kernel_calls.to_le_bytes());
        buf[12..20].copy_from_slice(&fp.boundaries.to_le_bytes());
        buf[20..28].copy_from_slice(&fp.workload_pos.to_le_bytes());
        buf[28..32].copy_from_slice(&fp.interrupt_budget.to_le_bytes());
        buf[32..36].copy_from_slice(&fp.frames.to_le_bytes());
        buf[36..44].copy_from_slice(&fp.decisions_fnv.to_le_bytes());
        fnv1a64(&buf)
    }

    /// Decides a freshly forked state's fate: `true` means prune. Always
    /// records the sighting, so the first occurrence (kept) arms the set
    /// and a later coverage delta re-arms it.
    pub fn check(&mut self, h: u64, covered_now: u64) -> bool {
        match self.seen.insert(h, covered_now) {
            Some(prev) => prev == covered_now,
            None => false,
        }
    }

    /// Number of distinct fingerprints seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when no fingerprint has been seen.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::parse(s.name()), Some(s));
        }
        assert_eq!(Strategy::parse("breadth-first"), None);
        assert_eq!(Strategy::default(), Strategy::Fifo);
        assert!(!Strategy::Fifo.is_guided());
        assert!(Strategy::RarestBranch.is_guided());
    }

    #[test]
    fn prune_set_drops_only_repeats_without_coverage_delta() {
        let mut ps = PruneSet::new();
        assert!(!ps.check(7, 10), "first sighting is kept");
        assert!(ps.check(7, 10), "repeat with no coverage delta is pruned");
        assert!(!ps.check(7, 11), "coverage moved: the duplicate is kept");
        assert!(ps.check(7, 11), "and the set re-arms at the new count");
        assert!(!ps.check(8, 11), "distinct fingerprints never collide");
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn prune_set_snapshot_round_trips() {
        let mut ps = PruneSet::new();
        ps.check(3, 5);
        ps.check(1, 9);
        let snap = ps.snapshot();
        assert_eq!(snap, vec![(1, 9), (3, 5)], "sorted for determinism");
        let mut restored = PruneSet::seeded(snap);
        assert!(restored.check(3, 5), "restored set prunes like the original");
    }

    #[test]
    fn fp_hash_separates_pc_and_schedule() {
        let base = MachineFingerprint {
            pc: 0x1000,
            kernel_calls: 2,
            boundaries: 3,
            workload_pos: 1,
            interrupt_budget: 1,
            frames: 1,
            decisions_fnv: 42,
        };
        let mut other_pc = base.clone();
        other_pc.pc = 0x1008;
        let mut other_sched = base.clone();
        other_sched.decisions_fnv = 43;
        assert_eq!(PruneSet::fp_hash(&base), PruneSet::fp_hash(&base));
        assert_ne!(PruneSet::fp_hash(&base), PruneSet::fp_hash(&other_pc));
        assert_ne!(PruneSet::fp_hash(&base), PruneSet::fp_hash(&other_sched));
    }
}
