//! Systematic kernel-API fault injection.
//!
//! The annotation layer (§3.4.1) already forks a "NULL alternative" for the
//! four allocators it knows about. This module generalizes that idea into a
//! configurable **fault plan**: every kernel export that acquires a
//! resource on the driver's behalf belongs to a [`FaultFamily`]
//! ([`ddt_kernel::fault_family`] is the authoritative map), and the
//! exerciser forks an alternative state per call site in which that one
//! acquisition fails. The forked state records a
//! [`Decision::InjectFault`](crate::report::Decision::InjectFault) so the
//! path replays deterministically, and the kernel logs the consumption so
//! checkers can attribute downstream crashes to the failed acquisition.
//!
//! Drivers are expected to *check* acquisition statuses. Two checker
//! mechanisms catch the ones that don't:
//!
//! 1. Kernel-side handle validation: using a resource whose acquisition
//!    failed (a NULL pool handle, an uninitialized timer, a closed config
//!    handle) bug-checks — a [`KernelCrash`](crate::report::BugClass)
//!    attributed to the injected-fault path.
//! 2. The unchecked-failure rule: an `Initialize` that returns success even
//!    though a *mandatory* acquisition (anything but `Registry`, whose
//!    parameters are legitimately optional) failed is reported as
//!    [`UncheckedFailure`](crate::report::BugClass::UncheckedFailure).
//!
//! The plan defaults to disabled so the paper's baseline bug counts
//! (Table 2) are unchanged; enable it with [`FaultPlan::full`] or a custom
//! family set.

use std::collections::BTreeSet;

use ddt_kernel::{fault_family, FaultFamily};

use crate::annotations::Annotations;
use crate::report::Decision;

/// Which kernel-API fault families to inject, and how densely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master switch; a disabled plan injects nothing.
    pub enabled: bool,
    /// Families eligible for injection.
    pub families: BTreeSet<FaultFamily>,
    /// Maximum injected failures per explored path. One (the default) keeps
    /// path growth linear in call sites and matches the annotation layer's
    /// one-failure-per-path convention.
    pub max_faults_per_path: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// No injection at all (the baseline configuration).
    pub fn disabled() -> FaultPlan {
        FaultPlan { enabled: false, families: BTreeSet::new(), max_faults_per_path: 1 }
    }

    /// Inject every family at every eligible call site.
    pub fn full() -> FaultPlan {
        FaultPlan {
            enabled: true,
            families: FaultFamily::ALL.into_iter().collect(),
            max_faults_per_path: 1,
        }
    }

    /// Inject only the given families.
    pub fn for_families(families: &[FaultFamily]) -> FaultPlan {
        FaultPlan {
            enabled: true,
            families: families.iter().copied().collect(),
            max_faults_per_path: 1,
        }
    }

    /// True if this plan injects faults of `family`.
    pub fn wants(&self, family: FaultFamily) -> bool {
        self.enabled && self.families.contains(&family)
    }

    /// Stable fingerprint of the plan, folded into the campaign
    /// configuration fingerprint: a resumed run must inject the exact same
    /// fault alternatives, or checkpointed choice logs would not replay.
    pub fn fingerprint(&self) -> u64 {
        let mut desc = format!("v1:enabled={}:max={}", self.enabled, self.max_faults_per_path);
        for f in &self.families {
            desc.push_str(&format!(":{f:?}"));
        }
        ddt_trace::fnv1a64(desc.as_bytes())
    }

    /// Families whose failure a correct driver must propagate: returning
    /// success from `Initialize` after one of these failed is a bug.
    /// Registry parameters are excluded — drivers legitimately fall back to
    /// defaults when a configuration read fails — and Lifecycle is excluded
    /// because lifecycle events are not acquisitions: they carry no status
    /// for the driver to check.
    pub fn mandatory(family: FaultFamily) -> bool {
        !matches!(family, FaultFamily::Registry | FaultFamily::Lifecycle)
    }
}

/// Per-run fork oracle: decides, call site by call site, whether to fork an
/// injected-failure alternative.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// An injector following `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan }
    }

    /// The plan this injector follows.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Returns the family to inject at a call to `export`, or `None` if
    /// this site should not fork.
    ///
    /// A site is skipped when the export has no family, the plan does not
    /// want the family, the path already carries its per-path quota of
    /// failures (counting both legacy `ForceAllocFail` forks and
    /// `InjectFault` forks — one failed acquisition per path, whichever
    /// mechanism produced it), or the annotation layer already forks an
    /// allocation failure for this export (avoiding duplicate alternatives
    /// for the same site).
    pub fn should_fork(
        &self,
        export: u16,
        annotations: &Annotations,
        decisions: &[Decision],
    ) -> Option<FaultFamily> {
        if !self.plan.enabled {
            return None;
        }
        let family = fault_family(export)?;
        if !self.plan.wants(family) {
            return None;
        }
        if annotations.wants_failure_fork(export) {
            return None;
        }
        let prior = decisions
            .iter()
            .filter(|d| {
                matches!(d, Decision::ForceAllocFail { .. } | Decision::InjectFault { .. })
            })
            .count() as u32;
        if prior >= self.plan.max_faults_per_path {
            return None;
        }
        Some(family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_forks() {
        let inj = FaultInjector::new(FaultPlan::disabled());
        let ann = Annotations::defaults();
        assert_eq!(inj.should_fork(32, &ann, &[]), None);
        assert_eq!(inj.should_fork(40, &ann, &[]), None);
    }

    #[test]
    fn full_plan_forks_unannotated_acquisition_sites() {
        let inj = FaultInjector::new(FaultPlan::full());
        let ann = Annotations::defaults();
        // NdisMRegisterInterrupt has no annotation fork → injectable.
        assert_eq!(inj.should_fork(32, &ann, &[]), Some(FaultFamily::Registration));
        // NdisAllocatePacketPool likewise.
        assert_eq!(inj.should_fork(40, &ann, &[]), Some(FaultFamily::SharedMemory));
        // NdisOpenConfiguration is a Registry site.
        assert_eq!(inj.should_fork(21, &ann, &[]), Some(FaultFamily::Registry));
        // NdisMSleep acquires nothing.
        assert_eq!(inj.should_fork(52, &ann, &[]), None);
    }

    #[test]
    fn annotated_allocators_are_not_double_forked() {
        let inj = FaultInjector::new(FaultPlan::full());
        let ann = Annotations::defaults();
        // ExAllocatePoolWithTag / NdisAllocateMemoryWithTag already get the
        // annotation layer's NULL-alternative fork.
        assert_eq!(inj.should_fork(5, &ann, &[]), None);
        assert_eq!(inj.should_fork(24, &ann, &[]), None);
        // With annotations disabled the injector covers them instead.
        let none = Annotations::disabled();
        assert_eq!(inj.should_fork(5, &none, &[]), Some(FaultFamily::PoolAlloc));
    }

    #[test]
    fn one_fault_per_path_counts_both_decision_kinds() {
        let inj = FaultInjector::new(FaultPlan::full());
        let ann = Annotations::defaults();
        let forced = vec![Decision::ForceAllocFail { kernel_call: 2 }];
        assert_eq!(inj.should_fork(32, &ann, &forced), None);
        let injected =
            vec![Decision::InjectFault { site: 1, kind: FaultFamily::Registry }];
        assert_eq!(inj.should_fork(32, &ann, &injected), None);
        let unrelated = vec![Decision::InjectInterrupt { boundary: 0 }];
        assert_eq!(inj.should_fork(32, &ann, &unrelated), Some(FaultFamily::Registration));
    }

    #[test]
    fn family_selection_filters_sites() {
        let inj = FaultInjector::new(FaultPlan::for_families(&[FaultFamily::Registration]));
        let ann = Annotations::defaults();
        assert_eq!(inj.should_fork(32, &ann, &[]), Some(FaultFamily::Registration));
        assert_eq!(inj.should_fork(40, &ann, &[]), None, "SharedMemory not in plan");
    }

    #[test]
    fn fingerprint_separates_plans() {
        assert_eq!(FaultPlan::disabled().fingerprint(), FaultPlan::disabled().fingerprint());
        assert_ne!(FaultPlan::disabled().fingerprint(), FaultPlan::full().fingerprint());
        assert_ne!(
            FaultPlan::for_families(&[FaultFamily::Registry]).fingerprint(),
            FaultPlan::for_families(&[FaultFamily::PoolAlloc]).fingerprint()
        );
    }

    #[test]
    fn registry_and_lifecycle_are_the_only_optional_families() {
        for family in FaultFamily::ALL {
            let optional = matches!(family, FaultFamily::Registry | FaultFamily::Lifecycle);
            assert_eq!(FaultPlan::mandatory(family), !optional, "{family:?}");
        }
    }

    #[test]
    fn lifecycle_family_never_forks_at_kernel_call_sites() {
        // Lifecycle events inject at execution boundaries, not at kernel
        // calls; no export maps to the family, so the call-site oracle must
        // stay inert even under the full plan.
        let inj = FaultInjector::new(FaultPlan::full());
        let ann = Annotations::defaults();
        for export in 0..128u16 {
            assert_ne!(inj.should_fork(export, &ann, &[]), Some(FaultFamily::Lifecycle));
        }
        assert!(FaultPlan::full().wants(FaultFamily::Lifecycle));
    }
}
