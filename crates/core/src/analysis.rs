//! Post-mortem bug analysis (§3.5 post-processing and §3.6).
//!
//! "Execution traces produced by DDT can also help understand the cause of
//! a bug … identify on what symbolic values the condition depended, when
//! during the execution were they created, why they were created, and what
//! concrete assignment of symbolic values would cause the assertion to
//! fail." This module turns a raw [`Bug`] into that narrative:
//!
//! - [`analyze_bug`] collects the symbols the failing path constrained,
//!   with provenance and the solved trigger values,
//! - [`hardware_writes_before_failure`] extracts the §3.6 hardware-write
//!   log ("since the execution traces contained no writes to that register,
//!   we concluded that the crash occurred before the driver enabled
//!   interrupts"),
//! - [`requires_hardware_beyond_spec`] compares the hardware values the bug
//!   needs against a device register specification — if they are disjoint,
//!   "the observed behavior would not have occurred unless the hardware
//!   malfunctioned",
//! - [`map_to_source`] renders a trace against an assembly listing when the
//!   developer has one ("when driver source code is available, DDT-produced
//!   execution paths can be automatically mapped to source code lines").

use std::collections::BTreeMap;

use ddt_isa::asm::Assembled;
use ddt_symvm::TraceEvent;

use crate::report::Bug;

/// One input the failing path depended on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriggerInput {
    /// Provenance label (`hw:port[0x10]`, `registry:MaximumMulticastList`).
    pub label: String,
    /// The concrete value that drives the driver down the failing path.
    pub value: u64,
    /// Trace position where the symbol was created (event index).
    pub created_at: usize,
}

/// The §3.6 analysis result.
#[derive(Clone, Debug)]
pub struct BugAnalysis {
    /// Inputs the failure depends on, in creation order.
    pub inputs: Vec<TriggerInput>,
    /// Interrupt injections on the path: (line, pc where injected).
    pub interrupts: Vec<(u8, u32)>,
    /// Hardware registers written before the failure (address → values).
    pub hardware_writes: BTreeMap<u32, Vec<u64>>,
    /// A one-paragraph human summary.
    pub summary: String,
}

/// Builds the trigger-input list and narrative for a bug.
pub fn analyze_bug(bug: &Bug) -> BugAnalysis {
    let mut inputs = Vec::new();
    let mut interrupts = Vec::new();
    for (i, ev) in bug.trace.iter().enumerate() {
        match ev {
            TraceEvent::SymCreate { id, label, .. } => inputs.push(TriggerInput {
                label: label.clone(),
                value: bug.inputs.get_or_zero(*id),
                created_at: i,
            }),
            TraceEvent::Interrupt { line, at_pc } => interrupts.push((*line, *at_pc)),
            _ => {}
        }
    }
    let hardware_writes = hardware_writes_before_failure(bug);
    let mut summary = format!("[{}] {}.", bug.class, bug.description);
    if !interrupts.is_empty() {
        summary.push_str(&format!(
            " Requires an interrupt injected at pc {:#x}.",
            interrupts[0].1
        ));
    }
    let relevant: Vec<&TriggerInput> =
        inputs.iter().filter(|t| t.value != 0 || t.label.starts_with("registry")).collect();
    if !relevant.is_empty() {
        let vals: Vec<String> =
            relevant.iter().take(4).map(|t| format!("{} = {:#x}", t.label, t.value)).collect();
        summary.push_str(&format!(" Triggering inputs: {}.", vals.join(", ")));
    }
    if hardware_writes.is_empty() && !interrupts.is_empty() {
        summary.push_str(
            " No hardware register was written before the failure — the device had not \
             been configured (e.g. interrupts were never enabled) when the interrupt fired.",
        );
    }
    BugAnalysis { inputs, interrupts, hardware_writes, summary }
}

/// Hardware registers written on the failing path, in trace order.
pub fn hardware_writes_before_failure(bug: &Bug) -> BTreeMap<u32, Vec<u64>> {
    let mut out: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for ev in &bug.trace {
        if let TraceEvent::HardwareWrite { addr, value } = ev {
            out.entry(*addr).or_default().push(value.unwrap_or(0));
        }
    }
    out
}

/// A device register specification: per register/port, the mask of bits the
/// (correctly functioning) hardware can produce on reads.
#[derive(Clone, Debug, Default)]
pub struct DeviceSpec {
    masks: BTreeMap<u32, u64>,
}

impl DeviceSpec {
    /// Creates an empty specification (all registers unspecified).
    pub fn new() -> DeviceSpec {
        DeviceSpec::default()
    }

    /// Declares that reads of `reg` only produce bits within `mask`.
    pub fn register(mut self, reg: u32, mask: u64) -> DeviceSpec {
        self.masks.insert(reg, mask);
        self
    }

    /// The valid-bit mask for a register, if specified.
    pub fn mask_of(&self, reg: u32) -> Option<u64> {
        self.masks.get(&reg).copied()
    }
}

/// Checks whether the bug requires a hardware read outside the device
/// specification (§3.6: "if the set of possible concrete values implied by
/// the constraints on that symbolic read does not intersect the set of
/// possible values indicated by the specification, then one can safely
/// conclude that the observed behavior would not have occurred unless the
/// hardware malfunctioned").
///
/// Returns the offending (register, required value) pairs.
pub fn requires_hardware_beyond_spec(bug: &Bug, spec: &DeviceSpec) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    for ev in &bug.trace {
        if let TraceEvent::HardwareRead { addr, id } = ev {
            let required = bug.inputs.get_or_zero(*id);
            if let Some(mask) = spec.mask_of(*addr) {
                if required & !mask != 0 {
                    out.push((*addr, required));
                }
            }
        }
    }
    out
}

/// Maps a bug's executed program counters to source lines, when the
/// developer has the assembly listing (§3.5: source mapping is optional and
/// never needed by DDT itself).
pub fn map_to_source(bug: &Bug, listing: &Assembled) -> Vec<(u32, usize, String)> {
    let mut out = Vec::new();
    for ev in &bug.trace {
        if let TraceEvent::Exec { pc } = ev {
            if let Some(&line) = listing.line_map.get(pc) {
                // Nearest label at or before pc names the function.
                let func = listing
                    .labels
                    .iter()
                    .filter(|&(_, &a)| a <= *pc)
                    .max_by_key(|&(_, &a)| a)
                    .map(|(n, _)| n.clone())
                    .unwrap_or_default();
                out.push((*pc, line, func));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exerciser::{Ddt, DriverUnderTest};

    fn rtl_report() -> (DriverUnderTest, crate::report::Report, Assembled) {
        let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
        let listing = spec.build();
        let dut = DriverUnderTest::from_spec(&spec);
        let report = Ddt::default().test(&dut);
        (dut, report, listing)
    }

    #[test]
    fn race_bug_analysis_matches_the_papers_narrative() {
        let (_dut, report, _) = rtl_report();
        let race = report
            .bugs
            .iter()
            .find(|b| b.class == crate::report::BugClass::RaceCondition)
            .expect("the timer race");
        let analysis = analyze_bug(race);
        assert!(!analysis.interrupts.is_empty(), "the race needs an interrupt");
        // §3.6 on this exact bug: "since the execution traces contained no
        // writes to that register, we concluded that the crash occurred
        // before the driver enabled interrupts". Our analog: the only
        // device write on the path is the ISR's ack (port 0x11) — no
        // configuration/enable register was ever programmed.
        const PORT_IACK: u32 = 0x11;
        assert!(
            analysis.hardware_writes.keys().all(|&r| r == PORT_IACK),
            "only the interrupt ack precedes the crash: {:?}",
            analysis.hardware_writes
        );
        assert!(analysis.summary.contains("interrupt"));
    }

    #[test]
    fn corruption_bug_names_the_registry_parameter() {
        let (_dut, report, _) = rtl_report();
        let corr = report
            .bugs
            .iter()
            .find(|b| b.class == crate::report::BugClass::MemoryCorruption)
            .expect("the multicast corruption");
        let analysis = analyze_bug(corr);
        let reg = analysis
            .inputs
            .iter()
            .find(|t| t.label.contains("MaximumMulticastList"))
            .expect("registry input present");
        // The trigger value must index outside the 32-entry table.
        assert!(reg.value >= 32, "triggering index {} must be out of bounds", reg.value);
    }

    #[test]
    fn spec_comparison_flags_out_of_spec_reads() {
        let (_dut, report, _) = rtl_report();
        let race = report
            .bugs
            .iter()
            .find(|b| b.class == crate::report::BugClass::RaceCondition)
            .expect("race");
        // Spec A: the status port can produce any 8-bit value → the race is
        // possible with in-spec hardware.
        let spec_wide = DeviceSpec::new().register(0x10, 0xff);
        assert!(requires_hardware_beyond_spec(race, &spec_wide).is_empty());
        // Spec B: the status port never sets bit 0 → only malfunctioning
        // hardware produces this crash.
        let spec_tight = DeviceSpec::new().register(0x10, 0xfe);
        assert!(!requires_hardware_beyond_spec(race, &spec_tight).is_empty());
    }

    #[test]
    fn source_mapping_resolves_functions_and_lines() {
        let (_dut, report, listing) = rtl_report();
        let race = report
            .bugs
            .iter()
            .find(|b| b.class == crate::report::BugClass::RaceCondition)
            .expect("race");
        let mapped = map_to_source(race, &listing);
        assert!(!mapped.is_empty());
        // The path must pass through Initialize and end in the ISR.
        let funcs: Vec<&str> = mapped.iter().map(|(_, _, f)| f.as_str()).collect();
        assert!(funcs.contains(&"Initialize"));
        assert!(funcs.last().is_some_and(|f| *f == "Isr" || f.starts_with("isr")));
        // Line numbers are 1-based source lines.
        assert!(mapped.iter().all(|&(_, line, _)| line > 0));
    }
}
