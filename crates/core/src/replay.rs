//! Concrete trace replay (§3.5).
//!
//! "A DDT trace has enough information to replay the bug in the DDT VM ...
//! DDT associates with each failed path a set of concrete inputs and system
//! events (e.g., interrupts) that take the driver along that path."
//!
//! [`replay_bug`] re-executes a bug report **concretely** in the `ddt-vm`
//! interpreter: hardware reads are served from the solved model in trace
//! order (a scripted device), registry parameters and entry-point arguments
//! take their model values, and the decision schedule re-applies the
//! injected interrupts and forced allocation failures at the same boundary
//! and call indexes. The same failure must fire again — that is the
//! "irrefutable evidence" the paper gives to consumers.
//!
//! The [`ConcreteRunner`] here is also the execution core of the
//! Driver-Verifier-style concrete baseline in `ddt-sdv`.

use std::collections::{HashMap, VecDeque};

use ddt_isa::Reg;
use ddt_kernel::loader::LoadPlan;
use ddt_kernel::{
    CrashInfo, //
    DevicePowerState,
    EntryInvocation,
    ExecContext,
    FaultFamily,
    Host,
    HostError,
    Irql,
    Kernel,
    KernelEvent,
    ResourceKind,
};
use ddt_vm::{BlockCache, Fault, ScriptedDevice, StepEvent, Vm};

use ddt_drivers::workload::WorkloadOp;
use ddt_fuzz::FuzzInput;

use crate::exerciser::DriverUnderTest;
use crate::report::{Bug, BugClass, Decision, LifecycleEvent};
use ddt_symvm::TraceEvent;

/// How a fork site resolves during choice-log replay (§4.7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ReplaySteer {
    /// Remain the parent: skip this site without forking.
    Stay,
    /// Become the recorded child alternative (1-based pick).
    Child(u32),
}

/// Steers a machine down a checkpointed choice log: a sequence of
/// `(skips, kind, pick)` entries — "stay the parent at `skips` sites, then
/// become child `pick` of the next site, which must be of `kind`" —
/// followed by `trailing` more stay-sites, up to `target_steps` executed
/// instructions. Exploration is deterministic given the schedule, so a
/// faithful re-execution encounters exactly the recorded sites in the
/// recorded order; anything else is a divergence, flagged (never panicked)
/// so resume can degrade gracefully by dropping the path.
pub(crate) struct ReplayCursor {
    entries: Vec<ddt_trace::PathPick>,
    idx: usize,
    skips_left: u64,
    trailing_left: u64,
    /// Stop replaying once the machine has executed this many steps.
    pub target_steps: u64,
    /// Set on the first mismatch between the log and the re-execution.
    pub diverged: Option<String>,
}

impl ReplayCursor {
    /// A cursor over a frontier record's choice log.
    pub fn new(entries: Vec<ddt_trace::PathPick>, trailing: u64, target_steps: u64) -> ReplayCursor {
        let skips_left = entries.first().map(|p| p.skips).unwrap_or(0);
        ReplayCursor { entries, idx: 0, skips_left, trailing_left: trailing, target_steps, diverged: None }
    }

    /// Resolves the fork site the machine just hit.
    pub fn take(&mut self, kind: ddt_trace::SiteKind) -> ReplaySteer {
        if self.diverged.is_some() {
            return ReplaySteer::Stay;
        }
        if self.idx < self.entries.len() {
            if self.skips_left > 0 {
                self.skips_left -= 1;
                return ReplaySteer::Stay;
            }
            let entry = self.entries[self.idx];
            if entry.kind != kind {
                self.diverged =
                    Some(format!("expected {:?} site, re-execution hit {kind:?}", entry.kind));
                return ReplaySteer::Stay;
            }
            self.idx += 1;
            self.skips_left = self.entries.get(self.idx).map(|p| p.skips).unwrap_or(0);
            ReplaySteer::Child(entry.pick)
        } else if self.trailing_left > 0 {
            self.trailing_left -= 1;
            ReplaySteer::Stay
        } else {
            self.diverged = Some(format!("unrecorded {kind:?} site beyond the choice log"));
            ReplaySteer::Stay
        }
    }

    /// True once every recorded entry and trailing skip has been consumed.
    pub fn exhausted(&self) -> bool {
        self.idx >= self.entries.len() && self.trailing_left == 0
    }

    /// Flags a divergence detected by the caller (first flag wins).
    pub fn mark_diverged(&mut self, why: &str) {
        if self.diverged.is_none() {
            self.diverged = Some(why.to_string());
        }
    }
}

/// Outcome of a concrete run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConcreteOutcome {
    /// The workload completed without incident.
    Completed,
    /// A CPU fault occurred (pc attributed like the symbolic classifier).
    Faulted {
        /// The fault.
        fault: Fault,
        /// Whether it happened inside an injected interrupt handler.
        in_interrupt: bool,
    },
    /// The kernel bug-checked.
    Crashed(CrashInfo),
    /// Initialization failed and resources were left outstanding.
    InitFailureLeak {
        /// Which resource kinds leaked.
        kinds: Vec<ResourceKind>,
    },
    /// The instruction budget expired (hang).
    Hung,
}

/// Result of replaying a bug report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The same failure class fired again.
    Reproduced {
        /// What the concrete run observed.
        observed: String,
    },
    /// The concrete run did not fail the same way.
    NotReproduced {
        /// What the concrete run observed instead.
        observed: String,
    },
}

struct CFrame {
    kind: FrameKind,
    saved: Option<([u32; 16], u32, Irql, ExecContext)>,
    name: String,
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum FrameKind {
    Entry,
    Isr,
    Dpc,
    Timer,
    Pnp(LifecycleEvent),
}

/// Detects a stuck run loop: too many consecutive VM events with no
/// instruction retiring means the harness is cycling through traps without
/// the driver making progress — classified as a hang rather than looping
/// forever.
struct SpinGuard {
    last_retired: u64,
    spins: u32,
}

impl SpinGuard {
    fn new(retired: u64) -> SpinGuard {
        SpinGuard { last_retired: retired, spins: 0 }
    }

    fn stuck(&mut self, retired: u64) -> bool {
        if retired != self.last_retired {
            self.last_retired = retired;
            self.spins = 0;
            return false;
        }
        self.spins += 1;
        self.spins > 10_000
    }
}

/// Host over the concrete VM.
struct VmHost<'a> {
    vm: &'a mut Vm,
}

impl Host for VmHost<'_> {
    fn arg(&mut self, idx: usize) -> u32 {
        self.vm.cpu.regs[idx]
    }

    fn set_ret(&mut self, v: u32) {
        self.vm.cpu.regs[0] = v;
    }

    fn mem_read(&mut self, addr: u32, size: u8) -> Result<u32, HostError> {
        self.vm
            .mem
            .read(addr, size, ddt_isa::AccessKind::Read)
            .map(|v| v as u32)
            .map_err(|e| HostError { addr: e.addr })
    }

    fn mem_write(&mut self, addr: u32, size: u8, v: u32) -> Result<(), HostError> {
        self.vm.mem.write(addr, size, v as u64).map_err(|e| HostError { addr: e.addr })
    }

    fn map_region(&mut self, start: u32, len: u32) {
        self.vm.mem.map(start, len);
    }

    fn unmap_region(&mut self, start: u32, len: u32) {
        self.vm.mem.unmap(start, len);
    }

    fn make_symbolic(&mut self, _addr: u32, _len: u32, _label: &str) {
        // Concrete execution: symbolication is a no-op.
    }
}

/// Per-label queues of concrete values for annotated inputs.
#[derive(Clone, Debug, Default)]
pub struct InputOverrides {
    values: HashMap<String, VecDeque<u64>>,
}

impl InputOverrides {
    /// Extracts overrides from a bug's trace + model (label creation order).
    pub fn from_bug(bug: &Bug) -> InputOverrides {
        let mut values: HashMap<String, VecDeque<u64>> = HashMap::new();
        for ev in &bug.trace {
            if let TraceEvent::SymCreate { id, label, .. } = ev {
                values.entry(label.clone()).or_default().push_back(
                    bug.inputs.get_or_zero(*id),
                );
            }
        }
        InputOverrides { values }
    }

    /// Takes the next value recorded under `label`.
    pub fn take(&mut self, label: &str) -> Option<u64> {
        self.values.get_mut(label).and_then(VecDeque::pop_front)
    }
}

/// The concrete execution core: kernel + VM + workload + schedule.
pub struct ConcreteRunner {
    /// The virtual machine.
    pub vm: Vm,
    /// The kernel.
    pub kernel: Kernel,
    workload: Vec<WorkloadOp>,
    workload_pos: usize,
    frames: Vec<CFrame>,
    scratch: u32,
    /// Interrupt boundaries at which to deliver an interrupt.
    inject_at: Vec<u64>,
    /// Boundaries at which a device-lifecycle event must be delivered.
    lifecycle_at: Vec<(u64, LifecycleEvent)>,
    /// Kernel-call indexes at which allocation must fail.
    fail_at: Vec<u64>,
    /// Kernel-call indexes at which a planned fault must be armed.
    fault_at: Vec<(u64, FaultFamily)>,
    kernel_calls: u64,
    boundaries: u64,
    overrides: InputOverrides,
    insn_budget: u64,
    /// Index of the scripted device on the bus (for served-value readback).
    dev: usize,
    /// Index of the first kernel event not yet examined by a caller.
    pub events_cursor: usize,
    /// `(served, writes)` device-access counts at the surprise removal, if
    /// one was delivered: any growth afterwards is a touch-after-remove.
    removal_marks: Option<(usize, usize)>,
    /// Device-write count at PnP handler entry (resume-without-restore).
    pnp_writes_mark: usize,
    /// Set when a resume handler returned without a single hardware write.
    pub resume_without_writes: bool,
    /// Snapshot of (cpu, memory) taken right after image load, before the
    /// entry invocation: [`reset`](Self::reset) restores from here instead
    /// of rebuilding the VM. Memory is demand-paged, so the clone copies
    /// only the pages the image actually touched.
    pristine: (ddt_vm::Cpu, ddt_vm::Memory),
    /// The cached DriverEntry invocation (re-derived load plans are the
    /// other rebuild cost reset avoids).
    entry: EntryInvocation,
}

/// Builds the concrete VM for one run: mapped load plan, loaded image,
/// scratch region, and a scripted device over the MMIO window and the
/// whole port space. Returns the VM and the device's bus index.
fn build_vm(dut: &DriverUnderTest, hw_values: Vec<u32>) -> (Vm, usize) {
    let mut vm = Vm::new();
    let plan = LoadPlan::new(dut.image.clone());
    for (start, len) in plan.regions() {
        vm.mem.map(start, len);
    }
    vm.load_image(&dut.image);
    vm.mem.map(crate::machine::SCRATCH_BASE, crate::machine::SCRATCH_SIZE);
    let dev = vm.bus.add_device(Box::new(ScriptedDevice::new(hw_values)));
    vm.bus.map_mmio(
        ddt_kernel::state::DEVICE_MMIO_BASE,
        dut.descriptor.mmio_len,
        dev,
    );
    vm.bus.map_ports(0, 0x1_0000, dev);
    (vm, dev)
}

impl ConcreteRunner {
    /// Builds a runner for a driver with scripted hardware read values.
    pub fn new(dut: &DriverUnderTest, hw_values: Vec<u32>) -> ConcreteRunner {
        let (vm, dev) = build_vm(dut, hw_values);
        let mut kernel = Kernel::new();
        for (k, v) in &dut.registry {
            kernel.state.registry.insert(k.clone(), *v);
        }
        kernel.state.device = dut.descriptor.clone();
        let entry = LoadPlan::new(dut.image.clone()).driver_entry();
        let pristine = (vm.cpu.clone(), vm.mem.clone());
        let mut runner = ConcreteRunner {
            vm,
            kernel,
            workload: dut.workload.clone(),
            workload_pos: 0,
            frames: Vec::new(),
            scratch: crate::machine::SCRATCH_BASE,
            inject_at: Vec::new(),
            lifecycle_at: Vec::new(),
            fail_at: Vec::new(),
            fault_at: Vec::new(),
            kernel_calls: 0,
            boundaries: 0,
            overrides: InputOverrides::default(),
            insn_budget: 2_000_000,
            dev,
            events_cursor: 0,
            removal_marks: None,
            pnp_writes_mark: 0,
            resume_without_writes: false,
            pristine,
            entry,
        };
        let entry = runner.entry.clone();
        runner.invoke(&entry, FrameKind::Entry, false);
        runner
    }

    /// Re-arms the runner for a fresh execution of the same driver.
    /// Snapshot-reset: cpu and memory restore from the pristine post-load
    /// clone, the scripted device is re-armed in place, and the kernel's
    /// run state resets (configuration — registry and device descriptor —
    /// survives via `KernelState::reset_for_run`). No allocation-heavy VM
    /// rebuild; this is what makes the fuzz loop's per-execution cost the
    /// execution itself.
    pub fn reset(&mut self, _dut: &DriverUnderTest, hw_values: Vec<u32>) {
        self.vm.cpu = self.pristine.0.clone();
        self.vm.mem = self.pristine.1.clone();
        self.vm.insns_retired = 0;
        if let Some(d) = self
            .vm
            .bus
            .device_mut(self.dev)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<ScriptedDevice>())
        {
            d.rescript(hw_values);
        }
        self.kernel.state.reset_for_run();
        self.workload_pos = 0;
        self.frames.clear();
        self.scratch = crate::machine::SCRATCH_BASE;
        self.inject_at.clear();
        self.lifecycle_at.clear();
        self.fail_at.clear();
        self.fault_at.clear();
        self.kernel_calls = 0;
        self.boundaries = 0;
        self.overrides = InputOverrides::default();
        self.events_cursor = 0;
        self.removal_marks = None;
        self.pnp_writes_mark = 0;
        self.resume_without_writes = false;
        let entry = self.entry.clone();
        self.invoke(&entry, FrameKind::Entry, false);
    }

    /// Applies a fuzz input: interrupt boundaries, forced allocation
    /// failures, and per-label value queues (hardware read values were
    /// already scripted into the device at construction/reset).
    pub fn apply_fuzz_input(&mut self, input: &FuzzInput) {
        self.inject_at = input.inject_at.clone();
        self.lifecycle_at = input
            .lifecycle
            .iter()
            .filter_map(|&(b, code)| {
                LifecycleEvent::from_code(code as u32).map(|ev| (b, ev))
            })
            .collect();
        self.fail_at = input.fail_at.clone();
        let mut values: HashMap<String, VecDeque<u64>> = HashMap::new();
        for (label, v) in &input.labels {
            values.entry(label.clone()).or_default().push_back(*v);
        }
        for (label, q) in &values {
            if let Some(name) = label.strip_prefix("registry:") {
                if let Some(&v) = q.front() {
                    self.kernel.state.registry.insert(name.to_string(), v as u32);
                }
            }
        }
        self.overrides = InputOverrides { values };
    }

    /// The hardware reads the scripted device actually served this run:
    /// `(addr, size, value)` in order. The escalation bridge replays these
    /// as symbol pins so the lifted state starts on the concrete path.
    pub fn hardware_served(&mut self) -> Vec<(u32, u8, u32)> {
        self.vm
            .bus
            .device_mut(self.dev)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<ScriptedDevice>())
            .map(|d| d.served.clone())
            .unwrap_or_default()
    }

    /// Applies a bug's decision schedule and solved inputs.
    pub fn apply_bug(&mut self, bug: &Bug) {
        for d in &bug.decisions {
            match d {
                Decision::InjectInterrupt { boundary } => self.inject_at.push(*boundary),
                Decision::LifecycleEvent { boundary, event } => {
                    self.lifecycle_at.push((*boundary, *event))
                }
                Decision::ForceAllocFail { kernel_call } => self.fail_at.push(*kernel_call),
                Decision::InjectFault { site, kind } => self.fault_at.push((*site, *kind)),
                // Backtracked concretizations are fully captured by the
                // solved inputs; nothing to re-apply.
                Decision::ConcretizationBacktrack { .. } => {}
            }
        }
        self.overrides = InputOverrides::from_bug(bug);
        // Registry parameters take their model values.
        for (label, q) in self.overrides.values.clone() {
            if let Some(name) = label.strip_prefix("registry:") {
                if let Some(&v) = q.front() {
                    self.kernel.state.registry.insert(name.to_string(), v as u32);
                }
            }
        }
    }

    fn alloc_scratch(&mut self, len: u32) -> u32 {
        let addr = self.scratch.next_multiple_of(8);
        self.scratch = addr + len;
        addr
    }

    fn invoke(&mut self, inv: &EntryInvocation, kind: FrameKind, keep_sp: bool) {
        let saved = if kind == FrameKind::Entry {
            None
        } else {
            Some((
                self.vm.cpu.regs,
                self.vm.cpu.pc,
                self.kernel.state.irql,
                self.kernel.state.context,
            ))
        };
        let sp_before = self.vm.cpu.get(Reg::SP);
        for (reg, v) in inv.reg_values() {
            self.vm.cpu.set(reg, v);
        }
        if keep_sp {
            self.vm.cpu.set(Reg::SP, sp_before);
        }
        self.vm.cpu.pc = inv.addr;
        self.frames.push(CFrame { kind, saved, name: inv.name.clone() });
    }

    /// Returns `true` when an injected callback frame now owns the pc; the
    /// caller must not redirect execution (e.g. to the next workload op)
    /// until that frame pops.
    fn maybe_inject(&mut self) -> bool {
        self.boundaries += 1;
        // The symbolic exerciser records the post-increment index; and like
        // it, a boundary delivers at most one event — interrupt first.
        let b = self.boundaries;
        if self.inject_interrupt(b) {
            return true;
        }
        self.inject_lifecycle(b)
    }

    fn inject_interrupt(&mut self, b: u64) -> bool {
        if !self.inject_at.contains(&b) || self.frames.len() != 1 {
            return false;
        }
        // A removed or powered-down device raises no interrupts.
        if !self.kernel.state.device_present
            || self.kernel.state.power != DevicePowerState::D0
        {
            return false;
        }
        let Some(table) = self.kernel.state.miniport.clone() else { return false };
        if table.isr == 0 || self.kernel.state.interrupt.is_none() {
            return false;
        }
        self.kernel.state.context = ExecContext::Isr;
        self.kernel.state.irql = Irql::Device;
        let inv = EntryInvocation::new("Isr", table.isr, [0; 4]);
        self.invoke(&inv, FrameKind::Isr, true);
        true
    }

    fn inject_lifecycle(&mut self, b: u64) -> bool {
        let Some(&(_, event)) = self.lifecycle_at.iter().find(|(at, _)| *at == b) else {
            return false;
        };
        if self.frames.len() > 1 {
            return false;
        }
        let s = &self.kernel.state;
        if s.pnp_handler == 0 || !s.device_present || s.irql != Irql::Passive {
            return false;
        }
        self.deliver_lifecycle(event, true);
        true
    }

    /// Counts of `(reads served, writes observed)` on the scripted device.
    fn device_counters(&mut self) -> (usize, usize) {
        self.vm
            .bus
            .device_mut(self.dev)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<ScriptedDevice>())
            .map(|d| (d.served.len(), d.writes.len()))
            .unwrap_or((0, 0))
    }

    /// True when any hardware access happened after a surprise removal.
    pub fn hw_touched_after_remove(&mut self) -> bool {
        let Some((reads, writes)) = self.removal_marks else { return false };
        let (now_reads, now_writes) = self.device_counters();
        now_reads > reads || now_writes > writes
    }

    /// Delivers a lifecycle event: the presence/power state machine advances
    /// first, then the driver's PnP-notification handler runs at passive
    /// level. Mirrors the symbolic executor's `deliver_lifecycle`.
    fn deliver_lifecycle(&mut self, event: LifecycleEvent, keep_sp: bool) {
        match event {
            LifecycleEvent::SurpriseRemove => {
                self.kernel.state.surprise_remove();
                if self.removal_marks.is_none() {
                    self.removal_marks = Some(self.device_counters());
                }
            }
            LifecycleEvent::Suspend => self.kernel.state.set_power(DevicePowerState::D3),
            LifecycleEvent::Resume => self.kernel.state.set_power(DevicePowerState::D0),
        }
        self.pnp_writes_mark = self.device_counters().1;
        self.kernel.state.context = ExecContext::Passive;
        self.kernel.state.irql = Irql::Passive;
        let handler = self.kernel.state.pnp_handler;
        let context = self.kernel.state.pnp_context;
        let inv = EntryInvocation::new(
            event.invocation_name(),
            handler,
            [context, event.code(), 0, 0],
        );
        self.invoke(&inv, FrameKind::Pnp(event), keep_sp);
    }

    /// Handles one VM event; `Some` is a terminal outcome.
    fn dispatch(&mut self, event: StepEvent) -> Option<ConcreteOutcome> {
        match event {
            StepEvent::Continue => None,
            StepEvent::Halted => Some(ConcreteOutcome::Completed),
            StepEvent::Faulted(f) => {
                let in_interrupt = self.frames.len() > 1;
                Some(ConcreteOutcome::Faulted { fault: f, in_interrupt })
            }
            StepEvent::KernelCall { export_id, return_to } => {
                if self.fail_at.contains(&self.kernel_calls) {
                    self.kernel.state.force_alloc_failures = 1;
                }
                if let Some(&(_, kind)) =
                    self.fault_at.iter().find(|(s, _)| *s == self.kernel_calls)
                {
                    self.kernel.state.inject_fault = Some(kind);
                }
                self.kernel_calls += 1;
                let r = {
                    let mut host = VmHost { vm: &mut self.vm };
                    self.kernel.invoke(export_id, &mut host)
                };
                if let Err(crash) = r {
                    return Some(ConcreteOutcome::Crashed(crash));
                }
                self.vm.cpu.pc = return_to;
                self.maybe_inject();
                None
            }
            StepEvent::ReturnToKernel => self.handle_return(),
        }
    }

    /// Runs to a terminal outcome, one instruction at a time.
    pub fn run(&mut self) -> ConcreteOutcome {
        let mut spin = SpinGuard::new(self.vm.insns_retired);
        loop {
            if self.vm.insns_retired > self.insn_budget {
                return ConcreteOutcome::Hung;
            }
            let event = self.vm.step();
            if let Some(outcome) = self.dispatch(event) {
                return outcome;
            }
            if spin.stuck(self.vm.insns_retired) {
                return ConcreteOutcome::Hung;
            }
        }
    }

    /// Runs to a terminal outcome on the translated superblock executor.
    /// Same semantics as [`run`](Self::run) — the kernel boundary, the
    /// injection schedule, and the outcome classification are shared — but
    /// driver code executes through `cache`d pre-decoded blocks, and every
    /// dispatched block entry pc is appended to `block_trace` (the concrete
    /// coverage feed). The cache is only valid across runs of the same
    /// driver image.
    pub fn run_fast(
        &mut self,
        cache: &mut BlockCache,
        block_trace: &mut Vec<u32>,
    ) -> ConcreteOutcome {
        let mut spin = SpinGuard::new(self.vm.insns_retired);
        loop {
            if self.vm.insns_retired > self.insn_budget {
                return ConcreteOutcome::Hung;
            }
            let slice = self.insn_budget - self.vm.insns_retired + 1;
            let event = self.vm.run_fast(slice, cache, block_trace);
            if let Some(outcome) = self.dispatch(event) {
                return outcome;
            }
            if spin.stuck(self.vm.insns_retired) {
                return ConcreteOutcome::Hung;
            }
        }
    }

    fn handle_return(&mut self) -> Option<ConcreteOutcome> {
        let status = self.vm.cpu.regs[0];
        let Some(frame) = self.frames.pop() else {
            // A deferred callback (timer/DPC) fired at a workload boundary:
            // the entry it interrupted had already returned, so the restored
            // pc is the return trap and the frame stack is empty. Resume the
            // workload — without this the trap re-fires forever with no
            // instructions retiring.
            return self.schedule_next_op();
        };
        match frame.kind {
            FrameKind::Entry => {
                if frame.name == "Initialize" && status != 0 {
                    let mut kinds = Vec::new();
                    for kind in [
                        ResourceKind::PoolMemory,
                        ResourceKind::ConfigHandle,
                        ResourceKind::Packet,
                        ResourceKind::Buffer,
                        ResourceKind::Pool,
                        ResourceKind::DmaChannel,
                    ] {
                        if self.kernel.state.live_resources(kind) > 0 {
                            kinds.push(kind);
                        }
                    }
                    return Some(if kinds.is_empty() {
                        ConcreteOutcome::Completed
                    } else {
                        ConcreteOutcome::InitFailureLeak { kinds }
                    });
                }
                if frame.name == "DriverEntry" && self.kernel.state.miniport.is_none() {
                    return Some(ConcreteOutcome::Completed);
                }
                if self.maybe_inject() {
                    // The injected callback runs first; the workload resumes
                    // when its frame pops.
                    return None;
                }
                self.schedule_next_op()
            }
            FrameKind::Isr => {
                let (regs, pc, irql, ctx) = frame.saved.expect("nested frame saves");
                let table = self.kernel.state.miniport.clone().unwrap_or_default();
                if status != 0 && table.handle_interrupt != 0 {
                    // Restore happens after the DPC.
                    self.kernel.state.context = ExecContext::Dpc;
                    self.kernel.state.irql = Irql::Dispatch;
                    let inv =
                        EntryInvocation::new("HandleInterrupt", table.handle_interrupt, [0; 4]);
                    let sp = self.vm.cpu.get(Reg::SP);
                    for (reg, v) in inv.reg_values() {
                        self.vm.cpu.set(reg, v);
                    }
                    self.vm.cpu.set(Reg::SP, sp);
                    self.vm.cpu.pc = inv.addr;
                    self.frames.push(CFrame {
                        kind: FrameKind::Dpc,
                        saved: Some((regs, pc, irql, ctx)),
                        name: "HandleInterrupt".into(),
                    });
                    None
                } else {
                    self.restore(regs, pc, irql, ctx);
                    None
                }
            }
            FrameKind::Dpc | FrameKind::Timer => {
                let (regs, pc, irql, ctx) = frame.saved.expect("nested frame saves");
                self.restore(regs, pc, irql, ctx);
                None
            }
            FrameKind::Pnp(event) => {
                if event == LifecycleEvent::Resume
                    && self.device_counters().1 == self.pnp_writes_mark
                {
                    self.resume_without_writes = true;
                }
                if self.frames.is_empty() {
                    // Workload-level delivery: the handler ran between entry
                    // points, so resume the workload.
                    if self.maybe_inject() {
                        return None;
                    }
                    self.schedule_next_op()
                } else {
                    // Mid-quantum injection: resume the interrupted entry.
                    let (regs, pc, irql, ctx) = frame.saved.expect("nested frame saves");
                    self.restore(regs, pc, irql, ctx);
                    None
                }
            }
        }
    }

    fn restore(&mut self, regs: [u32; 16], pc: u32, irql: Irql, ctx: ExecContext) {
        self.vm.cpu.regs = regs;
        self.vm.cpu.pc = pc;
        self.kernel.state.irql = irql;
        self.kernel.state.context = ctx;
    }

    fn schedule_next_op(&mut self) -> Option<ConcreteOutcome> {
        loop {
            let Some(op) = self.workload.get(self.workload_pos).cloned() else {
                return Some(ConcreteOutcome::Completed);
            };
            self.workload_pos += 1;
            let handle = self.kernel.state.adapter_handle;
            let table = self.kernel.state.miniport.clone().unwrap_or_default();
            self.kernel.state.context = ExecContext::Passive;
            self.kernel.state.irql = Irql::Passive;
            let inv = match &op {
                WorkloadOp::Initialize => {
                    EntryInvocation::new("Initialize", table.initialize, [handle, 0, 0, 0])
                }
                WorkloadOp::Send { len, fill } => {
                    if table.send == 0 {
                        continue;
                    }
                    let data = self.alloc_scratch((*len).max(4));
                    let plen = self
                        .overrides
                        .take("packet_len")
                        .map(|v| (v as u32).clamp(1, *len))
                        .unwrap_or(*len);
                    for i in 0..*len {
                        let b = self
                            .overrides
                            .take(&format!("packet[{i}]"))
                            .map(|v| v as u8)
                            .unwrap_or(*fill);
                        let _ = self.vm.mem.write_u8(data + i, b);
                    }
                    let desc = self.alloc_scratch(16);
                    let _ = self.vm.mem.write(desc, 4, data as u64);
                    let _ = self.vm.mem.write(desc + 4, 4, plen as u64);
                    EntryInvocation::new("Send", table.send, [handle, desc, 0, 0])
                }
                WorkloadOp::Query { oid, len } => {
                    if table.query_information == 0 {
                        continue;
                    }
                    let buf = self.alloc_scratch(*len);
                    let oid_v = self
                        .overrides
                        .take("QueryInformation:oid")
                        .map(|v| v as u32)
                        .unwrap_or(*oid);
                    EntryInvocation::new(
                        "QueryInformation",
                        table.query_information,
                        [handle, oid_v, buf, *len],
                    )
                }
                WorkloadOp::Set { oid, len, value } => {
                    if table.set_information == 0 {
                        continue;
                    }
                    let buf = self.alloc_scratch(*len);
                    let _ = self.vm.mem.write(buf, 4, *value as u64);
                    let oid_v = self
                        .overrides
                        .take("SetInformation:oid")
                        .map(|v| v as u32)
                        .unwrap_or(*oid);
                    EntryInvocation::new(
                        "SetInformation",
                        table.set_information,
                        [handle, oid_v, buf, *len],
                    )
                }
                WorkloadOp::FireTimers => {
                    self.kernel.state.now_us += 200_000;
                    let now_ms = self.kernel.state.now_us / 1000;
                    let due: Option<(u32, u32, u32)> = self
                        .kernel
                        .state
                        .timers
                        .iter()
                        .filter(|(_, t)| t.initialized && t.due.is_some_and(|d| d <= now_ms))
                        .map(|(&a, t)| (a, t.callback, t.context))
                        .next();
                    match due {
                        None => continue,
                        Some((timer, callback, context)) => {
                            if let Some(t) = self.kernel.state.timers.get_mut(&timer) {
                                t.due = None;
                            }
                            if callback == 0 {
                                continue;
                            }
                            self.workload_pos -= 1;
                            self.kernel.state.context = ExecContext::Dpc;
                            self.kernel.state.irql = Irql::Dispatch;
                            let inv = EntryInvocation::new(
                                "TimerCallback",
                                callback,
                                [context, 0, 0, 0],
                            );
                            self.invoke(&inv, FrameKind::Timer, false);
                            return None;
                        }
                    }
                }
                WorkloadOp::Reset => {
                    if table.reset == 0 {
                        continue;
                    }
                    EntryInvocation::new("Reset", table.reset, [handle, 0, 0, 0])
                }
                WorkloadOp::CheckForHang => {
                    if table.check_for_hang == 0 {
                        continue;
                    }
                    EntryInvocation::new("CheckForHang", table.check_for_hang, [handle, 0, 0, 0])
                }
                WorkloadOp::Aux => {
                    if table.aux == 0 {
                        continue;
                    }
                    EntryInvocation::new("Aux", table.aux, [handle, 0, 0, 0])
                }
                WorkloadOp::Halt => {
                    if table.halt == 0 {
                        continue;
                    }
                    EntryInvocation::new("Halt", table.halt, [handle, 0, 0, 0])
                }
                WorkloadOp::SurpriseRemove | WorkloadOp::Suspend | WorkloadOp::Resume => {
                    if self.kernel.state.pnp_handler == 0
                        || !self.kernel.state.device_present
                    {
                        continue;
                    }
                    let event = match op {
                        WorkloadOp::SurpriseRemove => LifecycleEvent::SurpriseRemove,
                        WorkloadOp::Suspend => LifecycleEvent::Suspend,
                        _ => LifecycleEvent::Resume,
                    };
                    self.deliver_lifecycle(event, false);
                    return None;
                }
            };
            self.invoke(&inv, FrameKind::Entry, false);
            return None;
        }
    }

    /// Name of the innermost driver frame currently executing (the entry
    /// a terminal outcome is attributed to). "DriverEntry" when the frame
    /// stack has unwound.
    pub fn current_entry(&self) -> String {
        self.frames
            .last()
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "DriverEntry".to_string())
    }

    /// The interrupted entry point, when an ISR/DPC/timer frame is active
    /// on top of it.
    pub fn interrupted_entry(&self) -> Option<String> {
        (self.frames.len() > 1).then(|| self.frames[0].name.clone())
    }

    /// Kernel events appended since the last call (for usage checkers).
    pub fn new_events(&mut self) -> Vec<KernelEvent> {
        let evs = self.kernel.state.events[self.events_cursor..].to_vec();
        self.events_cursor = self.kernel.state.events.len();
        evs
    }

}

/// The decision schedules of a bug set, keyed and sorted by dedup key — the
/// canonical form for differential comparison. Two explorations are
/// schedule-identical iff their streams are equal: same bugs, and for each
/// bug the same interrupt injections, forced failures, and backtracks in the
/// same order. The cached-vs-uncached harness asserts exactly this.
pub fn decision_streams(bugs: &[Bug]) -> Vec<(String, Vec<Decision>)> {
    let mut streams: Vec<(String, Vec<Decision>)> =
        bugs.iter().map(|b| (b.key.clone(), b.decisions.clone())).collect();
    streams.sort_by(|a, b| a.0.cmp(&b.0));
    streams
}

/// Replays a bug concretely and checks the same failure class fires.
pub fn replay_bug(dut: &DriverUnderTest, bug: &Bug) -> ReplayOutcome {
    // Hardware read values in trace order, from the solved model.
    let hw_values: Vec<u32> = bug
        .trace
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::HardwareRead { id, .. } => Some(bug.inputs.get_or_zero(*id) as u32),
            _ => None,
        })
        .collect();
    let mut runner = ConcreteRunner::new(dut, hw_values);
    runner.apply_bug(bug);
    let outcome = runner.run();
    let variant_mismatch = runner
        .kernel
        .state
        .events
        .iter()
        .any(|e| matches!(e, KernelEvent::SpinRelease { variant_mismatch: true, .. }));
    let fault_fired = runner
        .kernel
        .state
        .events
        .iter()
        .any(|e| matches!(e, KernelEvent::FaultInjected { .. }));
    let observed = format!("{outcome:?}");
    let touched_after_remove = runner.hw_touched_after_remove();
    let removed = runner
        .kernel
        .state
        .events
        .iter()
        .any(|e| matches!(e, KernelEvent::DeviceSurpriseRemoved));
    let reproduced = match bug.class {
        BugClass::SegFault | BugClass::MemoryCorruption => {
            matches!(outcome, ConcreteOutcome::Faulted { .. })
        }
        BugClass::RaceCondition => matches!(
            outcome,
            ConcreteOutcome::Faulted { .. } | ConcreteOutcome::Crashed(_)
        ),
        BugClass::KernelCrash => {
            matches!(outcome, ConcreteOutcome::Crashed(_)) || variant_mismatch
        }
        BugClass::KernelHang => {
            matches!(outcome, ConcreteOutcome::Crashed(_) | ConcreteOutcome::Hung)
                || variant_mismatch
        }
        BugClass::ResourceLeak | BugClass::MemoryLeak => {
            matches!(outcome, ConcreteOutcome::InitFailureLeak { .. })
                || runner.kernel.state.live_resources(ResourceKind::ConfigHandle) > 0
        }
        // The evidence for an unchecked failure is the scheduled fault
        // actually firing while the driver proceeds as if nothing happened:
        // it completes, or blows up downstream on the unacquired resource.
        // An `InitFailureLeak` would mean Initialize *did* propagate the
        // failure — not reproduced.
        BugClass::UncheckedFailure => {
            fault_fired
                && matches!(
                    outcome,
                    ConcreteOutcome::Completed
                        | ConcreteOutcome::Faulted { .. }
                        | ConcreteOutcome::Crashed(_)
                )
        }
        // The evidence for a lifecycle violation is the same misbehavior
        // observed concretely: hardware touched after the device vanished,
        // or a resume handler that reprogrammed nothing. A downstream
        // fault/crash on the removed device also counts — concretely the
        // stale access often escalates.
        BugClass::LifecycleViolation => {
            (removed && touched_after_remove)
                || runner.resume_without_writes
                || (removed
                    && matches!(
                        outcome,
                        ConcreteOutcome::Faulted { .. } | ConcreteOutcome::Crashed(_)
                    ))
        }
    };
    if reproduced {
        ReplayOutcome::Reproduced { observed }
    } else {
        ReplayOutcome::NotReproduced { observed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exerciser::DriverUnderTest;

    #[test]
    fn concrete_runner_completes_clean_driver() {
        let dut = DriverUnderTest::from_spec(&ddt_drivers::clean_driver());
        let mut runner = ConcreteRunner::new(&dut, vec![]);
        assert_eq!(runner.run(), ConcreteOutcome::Completed);
        assert!(runner.vm.insns_retired > 100);
        // The kernel saw the whole workload: a send completed.
        assert!(!runner.kernel.state.completed_sends.is_empty());
    }

    #[test]
    fn forced_alloc_failure_reaches_leak_outcome() {
        let spec = ddt_drivers::driver_by_name("pcnet").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let mut runner = ConcreteRunner::new(&dut, vec![]);
        // pcnet's DMA shadow block (allocation "B") is kernel call #8 on
        // the concrete path — the same index DDT's decision schedule
        // records. Failing it leaks the earlier allocations.
        runner.fail_at = vec![8];
        match runner.run() {
            ConcreteOutcome::InitFailureLeak { kinds } => {
                assert!(kinds.contains(&ResourceKind::PoolMemory), "{kinds:?}");
                assert!(kinds.contains(&ResourceKind::Packet), "{kinds:?}");
            }
            other => panic!("expected the leak outcome, got {other:?}"),
        }
    }

    #[test]
    fn scripted_interrupt_fires_at_the_boundary() {
        let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let mut runner = ConcreteRunner::new(&dut, vec![1, 1, 1, 1]);
        // Inject at every early boundary; with status bit 0 set the ISR
        // arms the (not yet initialized) timer → kernel crash.
        runner.inject_at = (1..16).collect();
        match runner.run() {
            ConcreteOutcome::Crashed(c) => {
                assert!(c.message.contains("uninitialized timer"), "{c:?}");
            }
            other => panic!("expected the timer crash, got {other:?}"),
        }
    }

    #[test]
    fn fast_runner_matches_the_interpreter() {
        let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let mut slow = ConcreteRunner::new(&dut, vec![1, 1, 1, 1]);
        slow.inject_at = (1..16).collect();
        let slow_out = slow.run();
        let mut fast = ConcreteRunner::new(&dut, vec![1, 1, 1, 1]);
        fast.inject_at = (1..16).collect();
        let mut cache = BlockCache::new();
        let mut trace = Vec::new();
        let fast_out = fast.run_fast(&mut cache, &mut trace);
        assert_eq!(fast_out, slow_out, "same outcome on both executors");
        assert_eq!(
            fast.vm.insns_retired, slow.vm.insns_retired,
            "same path, instruction for instruction"
        );
        assert!(!cache.is_empty(), "superblocks were translated");
        assert!(!trace.is_empty(), "block entries were traced");
    }

    #[test]
    fn recycled_runner_reproduces_fresh_behavior() {
        let spec = ddt_drivers::driver_by_name("pcnet").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let mut runner = ConcreteRunner::new(&dut, vec![]);
        runner.fail_at = vec![8];
        let first = runner.run();
        assert!(matches!(first, ConcreteOutcome::InitFailureLeak { .. }));
        // Reset without the failure schedule: the driver completes.
        runner.reset(&dut, vec![]);
        assert_eq!(runner.run(), ConcreteOutcome::Completed);
        // Reset with it again: same outcome as the fresh runner.
        runner.reset(&dut, vec![]);
        runner.fail_at = vec![8];
        assert_eq!(runner.run(), first);
    }

    #[test]
    fn fuzz_input_drives_the_runner_and_serves_back_values() {
        let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let input = FuzzInput {
            hw: vec![1, 1, 1, 1],
            labels: vec![],
            inject_at: (1..16).collect(),
            fail_at: vec![],
            lifecycle: vec![],
        };
        let mut runner = ConcreteRunner::new(&dut, input.hw.clone());
        runner.apply_fuzz_input(&input);
        let mut cache = BlockCache::new();
        let mut trace = Vec::new();
        match runner.run_fast(&mut cache, &mut trace) {
            ConcreteOutcome::Crashed(c) => {
                assert!(c.message.contains("uninitialized timer"), "{c:?}");
            }
            other => panic!("expected the timer crash, got {other:?}"),
        }
        let served = runner.hardware_served();
        assert!(!served.is_empty(), "the device recorded what it served");
        assert_eq!(served[0].2, 1, "first read served the scripted value");
    }

    #[test]
    fn input_overrides_queue_per_label() {
        let mut ov = InputOverrides::default();
        ov.values.entry("x".into()).or_default().extend([1u64, 2, 3]);
        assert_eq!(ov.take("x"), Some(1));
        assert_eq!(ov.take("x"), Some(2));
        assert_eq!(ov.take("y"), None);
    }
}
