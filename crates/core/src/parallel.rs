//! Parallel symbolic exploration (the §6.1 extension).
//!
//! "We are exploring ways to mitigate this problem by running symbolic
//! execution in parallel (Cloud9)" — this module is that extension: the
//! worklist becomes a shared lock-free queue, and worker threads (each with
//! its own solver and symbolic-hardware environment) pull states, run a
//! quantum, and push forks back. Execution states are self-contained
//! snapshots (§4.1.2), which is exactly what makes them cheap to ship
//! between workers.
//!
//! Differences from the serial explorer, both deliberate:
//!
//! - state selection is FIFO per worker rather than the global min-hit
//!   heuristic (a distributed searcher trades heuristic fidelity for
//!   throughput, as Cloud9 does); coverage is still tracked, in batches;
//! - bug deduplication merges per-quantum maps into one shared keyed map —
//!   keys are stable across exploration order, so the final set matches
//!   the serial run.
//!
//! Durable campaigns (§4.7) are supported here too: workers append their
//! quantum outcomes to the shared write-ahead journal, and a frontier
//! checkpoint is taken at a *quiescent cut* — one worker elects itself
//! writer, the others park between quanta, in-flight work drains, and the
//! queue is snapshotted in FIFO order before everyone resumes.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crossbeam::queue::SegQueue;
use ddt_isa::analysis;
use ddt_kernel::loader::StackLayout;
use ddt_kernel::state::DEVICE_MMIO_BASE;
use ddt_trace::{JournalRecord, PathStatus};

use crate::checkpoint::{checkpoint_file, CampaignError, CampaignSeed, CampaignWriter};
use crate::coverage::Coverage;
use crate::exerciser::{Ddt, DriverUnderTest, QuantumSinks};
use crate::hardware::DdtEnv;
use crate::machine::Machine;
use crate::report::{Bug, ExploreStats, Report, RunHealth};
use crate::search::{PruneSet, SearchStrategy, Strategy};

/// Poison-tolerant lock: a worker that panicked mid-update may leave the
/// mutex poisoned, but every guarded structure here (coverage counters, bug
/// maps, stat vectors) stays internally consistent under partial updates —
/// losing one worker must not lose the run's results.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Ids reserved per quantum (a quantum forks far fewer states than this).
const QUANTUM_ID_BLOCK: u64 = 1 << 12;

/// The workers' shared frontier. The `fifo` strategy keeps the historic
/// lock-free queue (per-worker FIFO, byte-identical to the pre-strategy
/// explorer); guided strategies trade it for a small mutex-guarded vector
/// so every pop can rank the whole frontier against live coverage.
enum SharedFrontier {
    /// Lock-free FIFO (the Cloud9-style throughput default).
    Fifo(SegQueue<Machine>),
    /// Strategy-ranked frontier. Lock order is frontier → coverage (pop is
    /// the only place both are held; nothing acquires them the other way).
    Guided { items: Mutex<Vec<Machine>>, strategy: Box<dyn SearchStrategy> },
}

impl SharedFrontier {
    fn push(&self, m: Machine) {
        match self {
            SharedFrontier::Fifo(q) => q.push(m),
            SharedFrontier::Guided { items, .. } => relock(items).push(m),
        }
    }

    fn pop(&self, coverage: &Mutex<Coverage>) -> Option<Machine> {
        match self {
            SharedFrontier::Fifo(q) => q.pop(),
            SharedFrontier::Guided { items, strategy } => {
                let mut v = relock(items);
                if v.is_empty() {
                    return None;
                }
                let i = {
                    let cov = relock(coverage);
                    strategy.select(&v, &cov)
                };
                Some(v.swap_remove(i))
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            SharedFrontier::Fifo(q) => q.len(),
            SharedFrontier::Guided { items, .. } => relock(items).len(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            SharedFrontier::Fifo(q) => q.is_empty(),
            SharedFrontier::Guided { items, .. } => relock(items).is_empty(),
        }
    }

    /// Removes every pending machine (checkpoint cuts and the final
    /// snapshot). Order is preserved on re-push.
    fn drain(&self) -> Vec<Machine> {
        match self {
            SharedFrontier::Fifo(q) => {
                let mut v = Vec::new();
                while let Some(m) = q.pop() {
                    v.push(m);
                }
                v
            }
            SharedFrontier::Guided { items, .. } => std::mem::take(&mut *relock(items)),
        }
    }
}

/// Runs the exploration across `workers` threads.
///
/// Produces the same bug set as [`Ddt::test`] (dedup keys are stable), with
/// merged statistics. `workers == 1` degenerates to a serial FIFO run.
pub fn test_parallel(ddt: &Ddt, dut: &DriverUnderTest, workers: usize) -> Report {
    explore_parallel(ddt, dut, workers, None)
}

/// Resumes an interrupted campaign from `dir` across `workers` threads.
/// The counterpart of [`Ddt::resume`] for the parallel explorer.
pub fn resume_parallel(
    ddt: &Ddt,
    dut: &DriverUnderTest,
    workers: usize,
    dir: &Path,
) -> Result<Report, CampaignError> {
    let (ck, stats, bugs) = ddt.load_for_resume(dut, dir)?;
    if ck.finished {
        return Ok(ddt.rebuild_finished_report(dut, &ck, stats, bugs));
    }
    let seed = ddt.rebuild_seed(dut, ck, stats, bugs);
    let continued = ddt.with_campaign_dir(dir);
    Ok(explore_parallel(&continued, dut, workers, Some(seed)))
}

/// Cumulative solver counters already folded into the shared stats; each
/// worker's solver is monotone, so per-quantum deltas sum exactly.
#[derive(Clone, Copy, Default)]
struct SolverSnap {
    queries: u64,
    fast: u64,
    full: u64,
    hits: u64,
    reuse: u64,
    unsat: u64,
    sliced: u64,
    slice_parts: u64,
    probes: u64,
    resets: u64,
    flushes: u64,
    batched: u64,
    witness: u64,
    races: u64,
    race_session: u64,
    race_fresh: u64,
    race_probe: u64,
    rewrites: u64,
}

/// Adds one quantum's counter deltas into the shared aggregate.
fn merge_stats(agg: &mut ExploreStats, local: &ExploreStats) {
    // Worker-local stats never carry solver/interner/wall fields (those are
    // folded separately from solver snapshots), so the full additive merge
    // the fleet also uses is exact here.
    agg.merge_add(local);
}

/// The parallel exploration loop, optionally seeded with the restored
/// state of an interrupted campaign.
pub(crate) fn explore_parallel(
    ddt: &Ddt,
    dut: &DriverUnderTest,
    workers: usize,
    seed: Option<CampaignSeed>,
) -> Report {
    let workers = workers.max(1);
    let analysis = analysis::analyze(&dut.image);
    let stack = StackLayout::default();
    let queue = match ddt.config.strategy {
        Strategy::Fifo => SharedFrontier::Fifo(SegQueue::new()),
        s => SharedFrontier::Guided {
            items: Mutex::new(Vec::new()),
            strategy: s.runtime(&analysis),
        },
    };

    // One counterexample cache for the whole worker pool: a constraint set
    // solved (or refuted) by any worker is a cache hit for every other.
    let run_cache = ddt.config.run_cache();

    let (coverage, agg_init, bugs_init, first_id, first_seq, base_ms, replays, seen) = match seed
    {
        Some(s) => {
            for m in s.frontier {
                queue.push(m);
            }
            (
                Coverage::seeded(
                    analysis,
                    s.coverage_hits,
                    s.coverage_covered,
                    s.coverage_timeline,
                    s.base_wall_ms,
                ),
                s.stats,
                s.bugs,
                s.next_id,
                s.next_checkpoint_seq,
                s.base_wall_ms,
                (s.replayed_ok, s.replay_failed),
                s.prune_seen,
            )
        }
        None => {
            let root = ddt.make_root_machine(dut);
            let stats = ExploreStats {
                symbols: root.st.counter.allocated(),
                paths_started: 1, // The root.
                ..Default::default()
            };
            queue.push(root);
            (Coverage::new(analysis), stats, HashMap::new(), 1, 0, 0, (0, 0), Vec::new())
        }
    };
    let prune: Option<Mutex<PruneSet>> =
        ddt.config.prune.then(|| Mutex::new(PruneSet::seeded(seen)));
    let coverage = Mutex::new(coverage);
    let agg_stats: Mutex<ExploreStats> = Mutex::new(agg_init);
    let merged: Mutex<HashMap<String, Bug>> = Mutex::new(bugs_init);
    let campaign: Option<Mutex<CampaignWriter>> = ddt.config.checkpoint.as_ref().map(|policy| {
        Mutex::new(CampaignWriter::start(
            policy,
            &dut.image.name,
            ddt.config.fingerprint(),
            first_seq,
        ))
    });

    let in_flight = AtomicUsize::new(0);
    let total_insns = AtomicU64::new(agg_init_insns(&agg_stats));
    let next_id = AtomicU64::new(first_id);
    let quanta = AtomicU64::new(0);
    // Checkpoint cut coordination: `want_cut` parks every worker between
    // quanta; the electing writer waits for `parked + exited` to cover the
    // rest of the pool and `in_flight` to drain before snapshotting.
    let want_cut = AtomicBool::new(false);
    let parked = AtomicUsize::new(0);
    let exited = AtomicUsize::new(0);
    let interrupted = AtomicBool::new(false);
    let started = std::time::Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut solver = ddt.config.solver_for(&run_cache);
                let mut env = DdtEnv::new(
                    DEVICE_MMIO_BASE,
                    dut.descriptor.mmio_len,
                    stack.base,
                    stack.initial_sp(),
                );
                env.check_memory = ddt.config.check_memory;
                let mut prev_solver = SolverSnap::default();
                let mut idle_spins = 0u32;
                loop {
                    if ddt.config.stop_requested() {
                        interrupted.store(true, Ordering::Relaxed);
                        break;
                    }
                    if want_cut.load(Ordering::Acquire) {
                        // A checkpoint cut is forming: park between quanta.
                        parked.fetch_add(1, Ordering::AcqRel);
                        while want_cut.load(Ordering::Acquire) && !ddt.config.stop_requested() {
                            std::thread::yield_now();
                        }
                        parked.fetch_sub(1, Ordering::AcqRel);
                        continue;
                    }
                    if total_insns.load(Ordering::Relaxed) > ddt.config.max_total_insns
                        || base_ms + started.elapsed().as_millis() as u64
                            > ddt.config.time_budget_ms
                    {
                        break;
                    }
                    // Claim in-flight status *before* popping: a worker that
                    // holds a machine but has not yet pushed its forks must
                    // be visible to idle workers, or two workers can race to
                    // the "queue empty + nothing in flight" conclusion while
                    // work is still materializing (premature quiescence).
                    in_flight.fetch_add(1, Ordering::AcqRel);
                    let Some(mut m) = queue.pop(&coverage) else {
                        let before = in_flight.fetch_sub(1, Ordering::AcqRel);
                        if before == 1 && queue.is_empty() && !want_cut.load(Ordering::Acquire) {
                            break; // Global quiescence: no work anywhere.
                        }
                        idle_spins += 1;
                        if idle_spins > 1000 {
                            std::thread::yield_now();
                        }
                        continue;
                    };
                    idle_spins = 0;
                    // A machine restored from a batch-mode checkpoint may
                    // still owe its branch-feasibility verdict (the shared
                    // queue otherwise only holds settled machines — workers
                    // flush their forks before pushing). Settle it before it
                    // executes anything.
                    if m.st.verdict_pending {
                        if solver.is_feasible_obligation(&m.st.constraints) {
                            m.st.verdict_pending = false;
                            relock(&agg_stats).paths_started += 1;
                        } else {
                            in_flight.fetch_sub(1, Ordering::AcqRel);
                            continue;
                        }
                    }
                    let mut local_forks: Vec<Machine> = Vec::new();
                    // Reserve a block of ids for this quantum (ids are
                    // diagnostics; uniqueness suffices).
                    let mut local_id = next_id.fetch_add(QUANTUM_ID_BLOCK, Ordering::Relaxed);
                    let mut exec_pcs: Vec<u32> = Vec::with_capacity(256);
                    // Per-quantum sinks: deltas merged into the shared
                    // aggregates below, so a checkpoint cut always sees a
                    // consistent whole-campaign view.
                    let mut local_stats = ExploreStats::default();
                    let mut local_bugs: HashMap<String, Bug> = HashMap::new();
                    let mut new_bug_keys: Vec<String> = Vec::new();
                    let mut fork_events = Vec::new();
                    // Panic isolation, as in the serial explorer: a panicking
                    // quantum costs one state, not the whole worker (and with
                    // it the thread-join panic that would sink the run).
                    let survived = catch_unwind(AssertUnwindSafe(|| {
                        let mut sinks = QuantumSinks {
                            worklist: &mut local_forks,
                            next_id: &mut local_id,
                            stats: &mut local_stats,
                            bugs: &mut local_bugs,
                            exec_pcs: &mut exec_pcs,
                            new_bug_keys: &mut new_bug_keys,
                            fork_events: &mut fork_events,
                            replay: None,
                        };
                        ddt.run_quantum(dut, &mut m, &mut env, &mut solver, &mut sinks)
                    }));
                    let (alive, status) = match survived {
                        Ok(None) => (true, None),
                        Ok(Some(end)) => (false, Some(end.status())),
                        Err(_) => {
                            local_stats.panics_caught += 1;
                            (false, Some(PathStatus::Panicked))
                        }
                    };
                    total_insns.fetch_add(exec_pcs.len() as u64, Ordering::Relaxed);
                    let (fresh, covered_now) = {
                        let mut cov = relock(&coverage);
                        let before = cov.covered_blocks();
                        for pc in exec_pcs {
                            cov.on_exec(pc);
                        }
                        let now = cov.covered_blocks();
                        ((now - before) as u64, now as u64)
                    };
                    // Settle this quantum's deferred-verdict forks in one
                    // batched pass before they become globally schedulable:
                    // the shared queue must only ever hold settled machines,
                    // and an infeasible zombie must never reach the prune
                    // seen-set below.
                    Ddt::flush_pending(&mut local_forks, &mut solver, &mut local_stats);
                    // Opt-in structural pruning: drop this quantum's forks
                    // whose fingerprint repeats with no coverage delta. The
                    // shared seen-set makes the decision global, like the
                    // serial explorer's.
                    if let Some(p) = &prune {
                        let mut ps = relock(p);
                        local_forks.retain(|f| {
                            if ps.check(PruneSet::fp_hash(&f.fingerprint()), covered_now) {
                                local_stats.states_pruned += 1;
                                false
                            } else {
                                true
                            }
                        });
                    }
                    local_stats.peak_states = local_stats.peak_states.max(queue.len() + 1);
                    let stamp = {
                        let mut agg = relock(&agg_stats);
                        merge_stats(&mut agg, &local_stats);
                        agg.quanta_executed += 1;
                        let stamp = agg.quanta_executed;
                        if fresh > 0 {
                            agg.quanta_to_last_cover = agg.quanta_to_last_cover.max(stamp);
                        }
                        if agg.quanta_to_first_bug == 0 && !local_bugs.is_empty() {
                            agg.quanta_to_first_bug = stamp;
                        }
                        let s = solver.stats();
                        agg.solver_queries += s.queries - prev_solver.queries;
                        agg.solver_fast_hits += s.fast_path_hits - prev_solver.fast;
                        agg.solver_full += s.full_solves - prev_solver.full;
                        agg.solver_cache_hits += s.cache_hits - prev_solver.hits;
                        agg.solver_model_reuse += s.cache_model_reuse - prev_solver.reuse;
                        agg.solver_unsat_subset += s.cache_unsat_subset - prev_solver.unsat;
                        agg.solver_sliced += s.sliced_queries - prev_solver.sliced;
                        agg.solver_slice_components += s.slice_components - prev_solver.slice_parts;
                        agg.solver_session_probes += s.session_probes - prev_solver.probes;
                        agg.solver_session_resets += s.session_resets - prev_solver.resets;
                        agg.solver_batch_flushes += s.batch_flushes - prev_solver.flushes;
                        agg.solver_batched_verdicts += s.batched_verdicts - prev_solver.batched;
                        agg.solver_batch_witness_hits +=
                            s.batch_witness_hits - prev_solver.witness;
                        agg.solver_portfolio_races += s.portfolio_races - prev_solver.races;
                        agg.solver_portfolio_session_wins +=
                            s.portfolio_session_wins - prev_solver.race_session;
                        agg.solver_portfolio_fresh_wins +=
                            s.portfolio_fresh_wins - prev_solver.race_fresh;
                        agg.solver_portfolio_probe_wins +=
                            s.portfolio_probe_wins - prev_solver.race_probe;
                        agg.solver_rewrite_reductions +=
                            s.rewrite_reductions - prev_solver.rewrites;
                        prev_solver = SolverSnap {
                            queries: s.queries,
                            fast: s.fast_path_hits,
                            full: s.full_solves,
                            hits: s.cache_hits,
                            reuse: s.cache_model_reuse,
                            unsat: s.cache_unsat_subset,
                            sliced: s.sliced_queries,
                            slice_parts: s.slice_components,
                            probes: s.session_probes,
                            resets: s.session_resets,
                            flushes: s.batch_flushes,
                            batched: s.batched_verdicts,
                            witness: s.batch_witness_hits,
                            races: s.portfolio_races,
                            race_session: s.portfolio_session_wins,
                            race_fresh: s.portfolio_fresh_wins,
                            race_probe: s.portfolio_probe_wins,
                            rewrites: s.rewrite_reductions,
                        };
                        stamp
                    };
                    if !local_bugs.is_empty() {
                        // Merge keyed bugs, summing sightings on collisions
                        // (plain extend would silently drop counts).
                        let mut g = relock(&merged);
                        for (key, bug) in local_bugs {
                            match g.entry(key) {
                                std::collections::hash_map::Entry::Occupied(mut e) => {
                                    e.get_mut().occurrences += bug.occurrences;
                                }
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    e.insert(bug);
                                }
                            }
                        }
                    }
                    if let Some(c) = &campaign {
                        let mut w = relock(c);
                        for (parent, child, kind) in fork_events.drain(..) {
                            w.record(&JournalRecord::Forked { parent, child, kind });
                        }
                        if let Some(status) = status {
                            w.record(&JournalRecord::PathDone {
                                machine: m.id,
                                status,
                                steps: m.steps_total,
                                new_bugs: std::mem::take(&mut new_bug_keys),
                            });
                        }
                    }
                    for mut fork in local_forks {
                        fork.cov_fresh = fresh;
                        fork.cov_stamp = stamp;
                        queue.push(fork);
                    }
                    if alive {
                        m.cov_fresh = fresh;
                        m.cov_stamp = stamp;
                        queue.push(m);
                    }
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                    if let Some(c) = &campaign {
                        let every = relock(c).every_quanta();
                        let q = quanta.fetch_add(1, Ordering::AcqRel) + 1;
                        let elect = q.is_multiple_of(every)
                            && want_cut
                                .compare_exchange(
                                    false,
                                    true,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok();
                        if elect {
                            // Quiescent cut: wait until every other worker is
                            // parked or gone and no machine is in flight.
                            while in_flight.load(Ordering::Acquire) > 0
                                || parked.load(Ordering::Acquire)
                                    + exited.load(Ordering::Acquire)
                                    < workers - 1
                            {
                                std::thread::yield_now();
                            }
                            let frontier = queue.drain();
                            {
                                let mut snap = relock(&agg_stats).clone();
                                snap.wall_ms = base_ms + started.elapsed().as_millis() as u64;
                                let bugs_snap = relock(&merged);
                                let cov = relock(&coverage);
                                let seen = prune
                                    .as_ref()
                                    .map(|p| relock(p).snapshot())
                                    .unwrap_or_default();
                                let ck = checkpoint_file(
                                    dut,
                                    ddt,
                                    &cov,
                                    &snap,
                                    &bugs_snap,
                                    next_id.load(Ordering::Relaxed),
                                    &frontier,
                                    seen,
                                    false,
                                    false,
                                );
                                drop(cov);
                                drop(bugs_snap);
                                relock(c).write_checkpoint(ck);
                            }
                            // Order preserved: drained front first.
                            for mm in frontier {
                                queue.push(mm);
                            }
                            want_cut.store(false, Ordering::Release);
                        }
                    }
                }
                exited.fetch_add(1, Ordering::AcqRel);
            });
        }
    });

    let coverage = coverage.into_inner().unwrap_or_else(PoisonError::into_inner);
    let mut stats = agg_stats.into_inner().unwrap_or_else(PoisonError::into_inner);
    // Evictions are a property of the one shared cache, not per worker.
    stats.cache_evictions = run_cache.as_ref().map_or(0, |c| c.stats().evictions);
    stats.sample_interner();
    stats.wall_ms = base_ms + started.elapsed().as_millis() as u64;
    let bugs_map = merged.into_inner().unwrap_or_else(PoisonError::into_inner);
    let was_interrupted = interrupted.load(Ordering::Relaxed);
    let insn_exhausted = stats.insns > ddt.config.max_total_insns;
    let wall_exhausted = stats.wall_ms > ddt.config.time_budget_ms;
    let mut health = RunHealth::from_stats(&stats, insn_exhausted, wall_exhausted);
    health.resume_replayed_paths = replays.0;
    health.resume_replay_failures = replays.1;
    if let Some(c) = campaign {
        let mut w = c.into_inner().unwrap_or_else(PoisonError::into_inner);
        let frontier = queue.drain();
        if was_interrupted {
            w.record(&JournalRecord::Interrupted);
        }
        let finished = frontier.is_empty();
        if finished {
            w.record(&JournalRecord::Finished { distinct_bugs: bugs_map.len() as u64 });
        }
        let seen = prune.as_ref().map(|p| relock(p).snapshot()).unwrap_or_default();
        let ck = checkpoint_file(
            dut,
            ddt,
            &coverage,
            &stats,
            &bugs_map,
            next_id.load(Ordering::Relaxed),
            &frontier,
            seen,
            finished,
            was_interrupted,
        );
        w.write_checkpoint(ck);
        w.finish();
        health.checkpoints_written = w.checkpoints_written;
        health.journal_records = w.journal_records;
    }
    let bug_list = ddt.finalize_bugs(bugs_map, &mut health, dut);
    Report {
        driver: dut.image.name.clone(),
        bugs: bug_list,
        total_blocks: coverage.total_blocks(),
        covered_blocks: coverage.covered_blocks(),
        coverage_timeline: coverage.timeline().to_vec(),
        health,
        stats,
    }
}

/// The restored instruction count: the shared budget counter continues the
/// campaign's consumption instead of restarting it.
fn agg_init_insns(agg: &Mutex<ExploreStats>) -> u64 {
    relock(agg).insns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exerciser::DriverUnderTest;

    #[test]
    fn parallel_matches_serial_on_pcnet() {
        let spec = ddt_drivers::driver_by_name("pcnet").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let ddt = Ddt::default();
        let serial = ddt.test(&dut);
        let parallel = test_parallel(&ddt, &dut, 4);
        let mut sk: Vec<&str> = serial.bugs.iter().map(|b| b.key.as_str()).collect();
        let mut pk: Vec<&str> = parallel.bugs.iter().map(|b| b.key.as_str()).collect();
        sk.sort_unstable();
        pk.sort_unstable();
        assert_eq!(sk, pk, "parallel exploration finds the same bugs");
    }

    #[test]
    fn parallel_clean_driver_stays_clean() {
        // Lifecycle injection on and the lifecycle workload in place: the
        // clean driver must stay clean even across surprise removal and
        // power transitions, and its PnP handler counts toward coverage.
        let spec = ddt_drivers::clean_driver();
        let mut dut = DriverUnderTest::from_spec(&spec);
        dut.workload = ddt_drivers::workload::lifecycle_workload_for(spec.class);
        let mut ddt = Ddt::default();
        ddt.config.fault_plan =
            crate::faults::FaultPlan::for_families(&[ddt_kernel::FaultFamily::Lifecycle]);
        let report = test_parallel(&ddt, &dut, 4);
        assert!(report.bugs.is_empty(), "clean driver must stay clean: {:?}", report.bugs);
        assert!(report.relative_coverage() > 0.9);
    }

    #[test]
    fn workers_share_one_query_cache() {
        let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let cache = std::sync::Arc::new(ddt_solver::QueryCache::new());
        let mut ddt = Ddt::default();
        ddt.config.shared_cache = Some(cache.clone());
        let report = test_parallel(&ddt, &dut, 2);
        assert!(report.stats.solver_queries > 0);
        assert!(!cache.is_empty(), "the run's solves must land in the shared cache");
        // A warm re-run over the same handle answers from the cache.
        let warm = test_parallel(&ddt, &dut, 2);
        let warm_hits = warm.stats.solver_cache_hits
            + warm.stats.solver_model_reuse
            + warm.stats.solver_unsat_subset;
        assert!(warm_hits > 0, "warm cache produced no hits");
        let mut ck: Vec<&str> = report.bugs.iter().map(|b| b.key.as_str()).collect();
        let mut wk: Vec<&str> = warm.bugs.iter().map(|b| b.key.as_str()).collect();
        ck.sort_unstable();
        wk.sort_unstable();
        assert_eq!(ck, wk, "warm cache changed the bug set");
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let spec = ddt_drivers::driver_by_name("ensoniq").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let report = test_parallel(&Ddt::default(), &dut, 1);
        assert_eq!(report.bugs.len(), 4);
    }
}
