//! Parallel symbolic exploration (the §6.1 extension).
//!
//! "We are exploring ways to mitigate this problem by running symbolic
//! execution in parallel (Cloud9)" — this module is that extension: the
//! worklist becomes a shared lock-free queue, and worker threads (each with
//! its own solver and symbolic-hardware environment) pull states, run a
//! quantum, and push forks back. Execution states are self-contained
//! snapshots (§4.1.2), which is exactly what makes them cheap to ship
//! between workers.
//!
//! Differences from the serial explorer, both deliberate:
//!
//! - state selection is FIFO per worker rather than the global min-hit
//!   heuristic (a distributed searcher trades heuristic fidelity for
//!   throughput, as Cloud9 does); coverage is still tracked, in batches;
//! - bug deduplication merges per-worker maps at the end — keys are stable
//!   across exploration order, so the final set matches the serial run.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crossbeam::queue::SegQueue;
use ddt_isa::analysis;
use ddt_kernel::loader::StackLayout;
use ddt_kernel::state::DEVICE_MMIO_BASE;

use crate::coverage::Coverage;
use crate::exerciser::{Ddt, DdtConfig, DriverUnderTest};
use crate::hardware::DdtEnv;
use crate::machine::Machine;
use crate::report::{Bug, ExploreStats, Report, RunHealth};

/// Poison-tolerant lock: a worker that panicked mid-update may leave the
/// mutex poisoned, but every guarded structure here (coverage counters, bug
/// maps, stat vectors) stays internally consistent under partial updates —
/// losing one worker must not lose the run's results.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Ids reserved per quantum (a quantum forks far fewer states than this).
const QUANTUM_ID_BLOCK: u64 = 1 << 12;

/// Runs the exploration across `workers` threads.
///
/// Produces the same bug set as [`Ddt::test`] (dedup keys are stable), with
/// merged statistics. `workers == 1` degenerates to a serial FIFO run.
pub fn test_parallel(ddt: &Ddt, dut: &DriverUnderTest, workers: usize) -> Report {
    let workers = workers.max(1);
    let analysis = analysis::analyze(&dut.image);
    let coverage = Mutex::new(Coverage::new(analysis));
    let queue: SegQueue<Machine> = SegQueue::new();
    let in_flight = AtomicUsize::new(0);
    let total_insns = AtomicU64::new(0);
    let next_id = AtomicU64::new(1);
    let stack = StackLayout::default();

    let root = ddt.make_root_machine(dut);
    queue.push(root);

    // One counterexample cache for the whole worker pool: a constraint set
    // solved (or refuted) by any worker is a cache hit for every other.
    let run_cache = ddt.config.run_cache();

    let merged: Mutex<HashMap<String, Bug>> = Mutex::new(HashMap::new());
    let all_stats: Mutex<Vec<ExploreStats>> = Mutex::new(Vec::new());
    let started = std::time::Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut solver = DdtConfig::solver_for(&run_cache);
                let mut env = DdtEnv::new(
                    DEVICE_MMIO_BASE,
                    dut.descriptor.mmio_len,
                    stack.base,
                    stack.initial_sp(),
                );
                env.check_memory = ddt.config.check_memory;
                let mut stats = ExploreStats::default();
                let mut bugs: HashMap<String, Bug> = HashMap::new();
                let mut idle_spins = 0u32;
                loop {
                    if total_insns.load(Ordering::Relaxed) > ddt.config.max_total_insns
                        || started.elapsed().as_millis() as u64 > ddt.config.time_budget_ms
                    {
                        break;
                    }
                    // Claim in-flight status *before* popping: a worker that
                    // holds a machine but has not yet pushed its forks must
                    // be visible to idle workers, or two workers can race to
                    // the "queue empty + nothing in flight" conclusion while
                    // work is still materializing (premature quiescence).
                    in_flight.fetch_add(1, Ordering::AcqRel);
                    let Some(mut m) = queue.pop() else {
                        let before = in_flight.fetch_sub(1, Ordering::AcqRel);
                        if before == 1 && queue.is_empty() {
                            break; // Global quiescence: no work anywhere.
                        }
                        idle_spins += 1;
                        if idle_spins > 1000 {
                            std::thread::yield_now();
                        }
                        continue;
                    };
                    idle_spins = 0;
                    let mut local_forks: Vec<Machine> = Vec::new();
                    // Reserve a block of ids for this quantum (ids are
                    // diagnostics; uniqueness suffices).
                    let mut local_id = next_id.fetch_add(QUANTUM_ID_BLOCK, Ordering::Relaxed);
                    let mut exec_pcs: Vec<u32> = Vec::with_capacity(256);
                    // Panic isolation, as in the serial explorer: a panicking
                    // quantum costs one state, not the whole worker (and with
                    // it the thread-join panic that would sink the run).
                    let survived = catch_unwind(AssertUnwindSafe(|| {
                        ddt.run_quantum(
                            dut,
                            &mut m,
                            &mut env,
                            &mut solver,
                            &mut local_forks,
                            &mut local_id,
                            &mut stats,
                            &mut bugs,
                            &mut exec_pcs,
                        )
                    }));
                    let survived = match survived {
                        Ok(alive) => alive,
                        Err(_) => {
                            stats.panics_caught += 1;
                            false
                        }
                    };
                    total_insns.fetch_add(exec_pcs.len() as u64, Ordering::Relaxed);
                    {
                        let mut cov = relock(&coverage);
                        for pc in exec_pcs {
                            cov.on_exec(pc);
                        }
                    }
                    stats.peak_states = stats.peak_states.max(queue.len() + 1);
                    for fork in local_forks {
                        queue.push(fork);
                    }
                    if survived {
                        queue.push(m);
                    }
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                }
                stats.solver_queries = solver.stats().queries;
                stats.solver_fast_hits = solver.stats().fast_path_hits;
                stats.solver_full = solver.stats().full_solves;
                stats.solver_cache_hits = solver.stats().cache_hits;
                stats.solver_model_reuse = solver.stats().cache_model_reuse;
                stats.solver_unsat_subset = solver.stats().cache_unsat_subset;
                // Merge keyed bugs, summing sightings on key collisions
                // (plain extend would silently drop a worker's count).
                let mut g = relock(&merged);
                for (key, bug) in bugs {
                    match g.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            e.get_mut().occurrences += bug.occurrences;
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(bug);
                        }
                    }
                }
                drop(g);
                relock(&all_stats).push(stats);
            });
        }
    });

    let coverage = coverage.into_inner().unwrap_or_else(PoisonError::into_inner);
    let mut stats = ExploreStats::default();
    for s in all_stats.into_inner().unwrap_or_else(PoisonError::into_inner) {
        stats.paths_started += s.paths_started;
        stats.paths_completed += s.paths_completed;
        stats.paths_faulted += s.paths_faulted;
        stats.paths_infeasible += s.paths_infeasible;
        stats.paths_budget_killed += s.paths_budget_killed;
        stats.insns += s.insns;
        stats.peak_states = stats.peak_states.max(s.peak_states);
        stats.solver_queries += s.solver_queries;
        stats.solver_fast_hits += s.solver_fast_hits;
        stats.solver_full += s.solver_full;
        stats.solver_cache_hits += s.solver_cache_hits;
        stats.solver_model_reuse += s.solver_model_reuse;
        stats.solver_unsat_subset += s.solver_unsat_subset;
        stats.max_cow_depth = stats.max_cow_depth.max(s.max_cow_depth);
        stats.states_dropped += s.states_dropped;
        stats.panics_caught += s.panics_caught;
        stats.faults_pool += s.faults_pool;
        stats.faults_shared += s.faults_shared;
        stats.faults_map += s.faults_map;
        stats.faults_registration += s.faults_registration;
        stats.faults_registry += s.faults_registry;
    }
    stats.paths_started += 1; // The root.
    // Evictions are a property of the one shared cache, not per worker.
    stats.cache_evictions = run_cache.as_ref().map_or(0, |c| c.stats().evictions);
    stats.wall_ms = started.elapsed().as_millis() as u64;
    let insn_exhausted = stats.insns > ddt.config.max_total_insns;
    let wall_exhausted = stats.wall_ms > ddt.config.time_budget_ms;
    let mut health = RunHealth::from_stats(&stats, insn_exhausted, wall_exhausted);
    let bug_list = ddt.finalize_bugs(
        merged.into_inner().unwrap_or_else(PoisonError::into_inner),
        &mut health,
        dut,
    );
    Report {
        driver: dut.image.name.clone(),
        bugs: bug_list,
        total_blocks: coverage.total_blocks(),
        covered_blocks: coverage.covered_blocks(),
        coverage_timeline: coverage.timeline().to_vec(),
        health,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exerciser::DriverUnderTest;

    #[test]
    fn parallel_matches_serial_on_pcnet() {
        let spec = ddt_drivers::driver_by_name("pcnet").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let ddt = Ddt::default();
        let serial = ddt.test(&dut);
        let parallel = test_parallel(&ddt, &dut, 4);
        let mut sk: Vec<&str> = serial.bugs.iter().map(|b| b.key.as_str()).collect();
        let mut pk: Vec<&str> = parallel.bugs.iter().map(|b| b.key.as_str()).collect();
        sk.sort_unstable();
        pk.sort_unstable();
        assert_eq!(sk, pk, "parallel exploration finds the same bugs");
    }

    #[test]
    fn parallel_clean_driver_stays_clean() {
        let dut = DriverUnderTest::from_spec(&ddt_drivers::clean_driver());
        let report = test_parallel(&Ddt::default(), &dut, 4);
        assert!(report.bugs.is_empty());
        assert!(report.relative_coverage() > 0.9);
    }

    #[test]
    fn workers_share_one_query_cache() {
        let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let cache = std::sync::Arc::new(ddt_solver::QueryCache::new());
        let mut ddt = Ddt::default();
        ddt.config.shared_cache = Some(cache.clone());
        let report = test_parallel(&ddt, &dut, 2);
        assert!(report.stats.solver_queries > 0);
        assert!(!cache.is_empty(), "the run's solves must land in the shared cache");
        // A warm re-run over the same handle answers from the cache.
        let warm = test_parallel(&ddt, &dut, 2);
        let warm_hits = warm.stats.solver_cache_hits
            + warm.stats.solver_model_reuse
            + warm.stats.solver_unsat_subset;
        assert!(warm_hits > 0, "warm cache produced no hits");
        let mut ck: Vec<&str> = report.bugs.iter().map(|b| b.key.as_str()).collect();
        let mut wk: Vec<&str> = warm.bugs.iter().map(|b| b.key.as_str()).collect();
        ck.sort_unstable();
        wk.sort_unstable();
        assert_eq!(ck, wk, "warm cache changed the bug set");
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let spec = ddt_drivers::driver_by_name("ensoniq").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let report = test_parallel(&Ddt::default(), &dut, 1);
        assert_eq!(report.bugs.len(), 4);
    }
}
