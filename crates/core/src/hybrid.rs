//! Hybrid concolic/fuzzing exploration (`ddt fuzz`).
//!
//! The symbolic engine is precise but slow; the translated concrete
//! executor (`Vm::run_fast`) retires instructions orders of magnitude
//! faster but only sees one path per input. This module combines them:
//!
//! 1. **Fuzz batches** — a mutational fuzzer drives the [`ConcreteRunner`]
//!    over driver entry-point inputs (scripted hardware read values,
//!    per-label overrides such as packet bytes and OIDs, interrupt
//!    boundaries, forced allocation failures). Coverage feedback comes
//!    from the executor's superblock trace folded into the shared
//!    [`Coverage`] tracker, so concrete and symbolic coverage share one
//!    census.
//! 2. **Escalation bridge** — a concrete execution that reaches new
//!    coverage or a non-clean outcome is lifted into a symbolic
//!    [`Machine`]: the values the scripted device served become symbol
//!    pins (`SymState::hw_pins` / `label_pins`), so the lifted state's
//!    constraints walk the concrete path prefix and symbolic exploration
//!    takes over at the frontier the fuzzer reached.
//! 3. **Interleaved quanta** — between batches the scheduler runs bounded
//!    symbolic quanta; after the last batch the frontier is drained
//!    completely, so a hybrid run explores at least everything a
//!    symbolic-only run would (the Table 2 superset guarantee).
//!
//! Bugs found purely concretely are synthesized into full [`Bug`] reports
//! (trace events, solved-input assignment, decision schedule) so they
//! replay and persist exactly like symbolic ones, tagged
//! [`BugOrigin::Concrete`]; bugs found on an escalated state are tagged
//! [`BugOrigin::Escalated`].

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use ddt_expr::Assignment;
use ddt_expr::SymId;
use ddt_fuzz::{mutate, Corpus, FuzzInput, Rng, Scheduler};
use ddt_kernel::loader::StackLayout;
use ddt_kernel::state::DEVICE_MMIO_BASE;
use ddt_solver::Solver;
use ddt_symvm::{SymOrigin, TraceEvent};
use ddt_vm::BlockCache;

use crate::coverage::Coverage;
use crate::exerciser::{Ddt, DriverUnderTest, QuantumSinks};
use crate::hardware::DdtEnv;
use crate::machine::Machine;
use crate::replay::{ConcreteOutcome, ConcreteRunner};
use crate::report::{
    Bug, BugClass, BugOrigin, Decision, ExploreStats, LifecycleEvent, Report, RunHealth,
};
use crate::search::Frontier;

/// Escalation dedup key: the hardware values an execution was served plus
/// its sorted label pins — identical keys would lift identical subtrees.
type EscalationKey = (Vec<u64>, Vec<(String, u64)>);

/// Hybrid-run configuration (the `ddt fuzz` flags).
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Fuzzer RNG seed; two runs with the same seed and driver explore
    /// identically.
    pub seed: u64,
    /// Number of fuzz batches.
    pub batches: u64,
    /// Concrete executions per batch.
    pub batch_size: u64,
    /// Escalate interesting concrete executions into symbolic states.
    pub escalate: bool,
    /// Symbolic quanta interleaved after each batch.
    pub quanta_per_batch: u64,
    /// Drain the symbolic frontier completely after the last batch
    /// (required for the Table 2 superset guarantee; benches turn it off
    /// to time the pure fuzzing phase).
    pub drain_frontier: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0xDD7,
            batches: 6,
            batch_size: 24,
            escalate: true,
            quanta_per_batch: 32,
            drain_frontier: true,
        }
    }
}

/// The canned corpus: inputs that exercise the generic trouble spots of
/// every bundled driver class — all-zero hardware, all-ones hardware with
/// early interrupts (live status bits during initialization), saturated
/// registers, and one forced allocation failure per early kernel call.
fn canned_seeds(corpus: &mut Corpus) {
    corpus.add(FuzzInput::default(), 1);
    corpus.add(
        FuzzInput {
            hw: vec![1; 16],
            inject_at: (1..16).collect(),
            ..FuzzInput::default()
        },
        4,
    );
    corpus.add(FuzzInput { hw: vec![0xffff_ffff; 16], ..FuzzInput::default() }, 2);
    corpus.add(
        FuzzInput {
            hw: vec![1; 16],
            inject_at: (1..24).collect(),
            fail_at: vec![3],
            ..FuzzInput::default()
        },
        2,
    );
    for k in 0..12 {
        corpus.add(FuzzInput { fail_at: vec![k], ..FuzzInput::default() }, 2);
    }
    // Lifecycle trouble spots: a suspend/resume cycle early in the workload
    // and a surprise removal mid-workload (codes 2/3/1, no-ops for drivers
    // without a PnP handler).
    corpus.add(
        FuzzInput { lifecycle: vec![(6, 2), (8, 3)], ..FuzzInput::default() },
        2,
    );
    for b in [4, 8, 12] {
        corpus.add(FuzzInput { lifecycle: vec![(b, 1)], ..FuzzInput::default() }, 2);
    }
}

/// Seeds the corpus from solved models in the trace store: every persisted
/// bug for this driver becomes a fuzz input (hardware read values in trace
/// order, label overrides, and the decision schedule), so a hybrid run
/// re-finds known bugs concretely in its first batch.
fn seed_from_store(dir: &std::path::Path, driver: &str, corpus: &mut Corpus) {
    let Ok(store) = ddt_trace::TraceStore::open(dir) else { return };
    let Ok(records) = store.list() else { return };
    for rec in records.iter().filter(|r| r.driver == driver) {
        let Ok(artifact) = store.load(&rec.signature) else { continue };
        let mut input = FuzzInput::default();
        for ev in &artifact.events {
            match ev {
                TraceEvent::HardwareRead { id, .. } => {
                    input.hw.push(rec.inputs.get_or_zero(*id) as u32);
                }
                TraceEvent::SymCreate { id, label, origin, .. }
                    if !matches!(
                        origin,
                        SymOrigin::HardwareRead { .. } | SymOrigin::PortRead { .. }
                    ) =>
                {
                    input.labels.push((label.clone(), rec.inputs.get_or_zero(*id)));
                }
                _ => {}
            }
        }
        for d in rec.replay_decisions() {
            match d {
                Decision::InjectInterrupt { boundary } => input.inject_at.push(*boundary),
                Decision::LifecycleEvent { boundary, event } => {
                    input.lifecycle.push((*boundary, event.code() as u8))
                }
                Decision::ForceAllocFail { kernel_call } => input.fail_at.push(*kernel_call),
                Decision::InjectFault { site, .. } => input.fail_at.push(*site),
                Decision::ConcretizationBacktrack { .. } => {}
            }
        }
        input.inject_at.sort_unstable();
        input.inject_at.dedup();
        input.fail_at.sort_unstable();
        input.fail_at.dedup();
        input.lifecycle.sort_unstable();
        input.lifecycle.dedup();
        corpus.add(input, 10);
    }
}

fn fault_pc(fault: &ddt_vm::Fault) -> u32 {
    match *fault {
        ddt_vm::Fault::IllegalInsn { pc }
        | ddt_vm::Fault::BadAccess { pc, .. }
        | ddt_vm::Fault::Misaligned { pc, .. }
        | ddt_vm::Fault::DivByZero { pc } => pc,
    }
}

/// Synthesizes a full [`Bug`] report from a concrete outcome: trace events
/// (symbol creations + hardware reads, so replay can re-script the
/// device), a solved-input assignment over those symbols, and the decision
/// schedule from the fuzz input. `None` for clean completions.
fn synthesize_bug(
    dut: &DriverUnderTest,
    runner: &mut ConcreteRunner,
    input: &FuzzInput,
    outcome: &ConcreteOutcome,
) -> Option<Bug> {
    // A run can complete "cleanly" while still violating the lifecycle
    // rules — the violation evidence lives in the device access log.
    let lifecycle_violation = if runner.hw_touched_after_remove() {
        Some("driver touched device registers after surprise removal")
    } else if runner.resume_without_writes {
        Some("driver resumed to D0 without reprogramming the device")
    } else {
        None
    };
    let (class, description, pc) = match outcome {
        ConcreteOutcome::Completed => match lifecycle_violation {
            Some(desc) => {
                (BugClass::LifecycleViolation, desc.to_string(), runner.vm.cpu.pc)
            }
            None => return None,
        },
        ConcreteOutcome::Faulted { fault, .. } => (
            BugClass::SegFault,
            format!("concrete execution faulted: {fault:?}"),
            fault_pc(fault),
        ),
        ConcreteOutcome::Crashed(c) => {
            (BugClass::KernelCrash, c.message.clone(), runner.vm.cpu.pc)
        }
        ConcreteOutcome::InitFailureLeak { kinds } => (
            BugClass::ResourceLeak,
            format!("initialization failure leaked {kinds:?}"),
            runner.vm.cpu.pc,
        ),
        ConcreteOutcome::Hung => (
            BugClass::KernelHang,
            "instruction budget exhausted (potential hang)".to_string(),
            runner.vm.cpu.pc,
        ),
    };
    // Re-encode the execution's inputs as trace events + an assignment, in
    // the shape `replay_bug` consumes: one symbol per hardware read served
    // by the scripted device (in order) and one per label override.
    let mut trace = Vec::new();
    let mut inputs = Assignment::new();
    let mut next_sym = 0u32;
    for (addr, size, value) in runner.hardware_served() {
        let id = SymId(next_sym);
        next_sym += 1;
        trace.push(TraceEvent::SymCreate {
            id,
            label: format!("hw:mmio[{addr:#x}]"),
            origin: SymOrigin::HardwareRead { addr },
            width: 8 * size as u32,
        });
        trace.push(TraceEvent::HardwareRead { addr, id });
        inputs.set(id, value as u64);
    }
    for (label, value) in &input.labels {
        let id = SymId(next_sym);
        next_sym += 1;
        trace.push(TraceEvent::SymCreate {
            id,
            label: label.clone(),
            origin: SymOrigin::Other,
            width: 64,
        });
        inputs.set(id, *value);
    }
    let mut decisions: Vec<Decision> = Vec::new();
    for &boundary in &input.inject_at {
        decisions.push(Decision::InjectInterrupt { boundary });
    }
    for &(boundary, code) in &input.lifecycle {
        if let Some(event) = LifecycleEvent::from_code(code as u32) {
            decisions.push(Decision::LifecycleEvent { boundary, event });
        }
    }
    for &kernel_call in &input.fail_at {
        decisions.push(Decision::ForceAllocFail { kernel_call });
    }
    let entry = runner.current_entry();
    let stack = vec![entry.clone()];
    let key = format!("cfuzz:{class:?}:{pc:#x}");
    let signature = ddt_trace::signature(pc, &stack, "cfuzz", &[]);
    Some(Bug {
        driver: dut.image.name.clone(),
        class,
        origin: BugOrigin::Concrete,
        description,
        pc,
        entry,
        interrupted_entry: runner.interrupted_entry(),
        trace,
        inputs,
        decisions,
        key,
        signature,
        occurrences: 1,
        stack,
        provenance: Vec::new(),
    })
}

/// Lifts a concrete execution into a symbolic machine: a fresh root whose
/// symbol pins replay the concrete choices. Every hardware read the
/// scripted device served becomes the next `hw_pins` entry; every label
/// override queues under its label. As symbolic execution creates those
/// symbols it constrains them to the pinned values, so the lifted state
/// follows the concrete path while the pins last and explores symbolically
/// beyond them.
fn lift_to_machine(
    ddt: &Ddt,
    dut: &DriverUnderTest,
    runner: &mut ConcreteRunner,
    input: &FuzzInput,
) -> Machine {
    let mut m = ddt.make_root_machine(dut);
    m.st.hw_pins = runner
        .hardware_served()
        .iter()
        .map(|&(_, _, v)| v as u64)
        .collect();
    for (label, value) in &input.labels {
        m.st.label_pins.entry(label.clone()).or_default().push_back(*value);
    }
    m
}

/// Runs up to `max_quanta` symbolic quanta, sharing the exploration
/// bookkeeping of `explore_serial`: coverage folding, search-strategy
/// metadata, panic isolation, and escalation-origin propagation (a bug
/// first recorded on an escalated machine — or any of its forks — is
/// re-tagged [`BugOrigin::Escalated`]).
#[allow(clippy::too_many_arguments)]
fn run_quanta(
    ddt: &Ddt,
    dut: &DriverUnderTest,
    env: &mut DdtEnv,
    solver: &mut Solver,
    frontier: &mut Frontier,
    coverage: &mut Coverage,
    stats: &mut ExploreStats,
    bugs: &mut HashMap<String, Bug>,
    next_id: &mut u64,
    escalated: &mut HashSet<u64>,
    max_quanta: u64,
) {
    let mut executed = 0u64;
    while !frontier.is_empty() && executed < max_quanta {
        if stats.insns > ddt.config.max_total_insns
            || coverage.elapsed_ms() > ddt.config.time_budget_ms
        {
            break;
        }
        // Settle deferred branch-feasibility obligations before selection
        // (same loop-top flush as the serial explorer).
        Ddt::flush_pending(frontier.storage_mut(), solver, stats);
        let Some(mut m) = frontier.pop(coverage) else {
            break; // The flush retired the whole frontier.
        };
        let n_before = frontier.len();
        let covered_before = coverage.covered_blocks();
        let mut exec_pcs = Vec::new();
        let mut new_bug_keys = Vec::new();
        let mut fork_events = Vec::new();
        let survived = catch_unwind(AssertUnwindSafe(|| {
            let mut sinks = QuantumSinks {
                worklist: frontier.storage_mut(),
                next_id: &mut *next_id,
                stats: &mut *stats,
                bugs: &mut *bugs,
                exec_pcs: &mut exec_pcs,
                new_bug_keys: &mut new_bug_keys,
                fork_events: &mut fork_events,
                replay: None,
            };
            ddt.run_quantum(dut, &mut m, env, solver, &mut sinks)
        }));
        let alive = match survived {
            Ok(end) => end.is_none(),
            Err(_) => {
                stats.panics_caught += 1;
                false
            }
        };
        for pc in exec_pcs {
            coverage.on_exec(pc);
        }
        stats.quanta_executed += 1;
        executed += 1;
        let stamp = stats.quanta_executed;
        let covered_now = coverage.covered_blocks();
        let fresh = (covered_now - covered_before) as u64;
        if fresh > 0 {
            stats.quanta_to_last_cover = stamp;
        }
        if stats.quanta_to_first_bug == 0 && !bugs.is_empty() {
            stats.quanta_to_first_bug = stamp;
        }
        m.cov_fresh = fresh;
        m.cov_stamp = stamp;
        for child in frontier.storage_mut()[n_before..].iter_mut() {
            child.cov_fresh = fresh;
            child.cov_stamp = stamp;
        }
        // Escalation provenance: forks of an escalated machine stay
        // escalated; a bug first recorded during this machine's quantum is
        // re-tagged if the machine carries the escalation mark.
        for (parent, child, _) in &fork_events {
            if escalated.contains(parent) {
                escalated.insert(*child);
            }
        }
        if escalated.contains(&m.id) {
            for key in &new_bug_keys {
                if let Some(bug) = bugs.get_mut(key) {
                    if bug.origin == BugOrigin::Symbolic {
                        bug.origin = BugOrigin::Escalated;
                    }
                }
            }
        }
        if alive {
            frontier.push(m);
        }
        stats.peak_states = stats.peak_states.max(frontier.len() + 1);
    }
}

/// The hybrid exploration loop: fuzz batches on the translated concrete
/// executor interleaved with bounded symbolic quanta, then a full frontier
/// drain. Produces the same [`Report`] shape as `Ddt::test`.
pub fn run_hybrid(ddt: &Ddt, dut: &DriverUnderTest, fz: &FuzzConfig) -> Report {
    let run_cache = ddt.config.run_cache();
    let mut solver = ddt.config.solver_for(&run_cache);
    let analysis = ddt_isa::analysis::analyze(&dut.image);
    let strategy_rt = ddt.config.strategy.runtime(&analysis);
    let stack = StackLayout::default();
    let mut env = DdtEnv::new(
        DEVICE_MMIO_BASE,
        dut.descriptor.mmio_len,
        stack.base,
        stack.initial_sp(),
    );
    env.check_memory = ddt.config.check_memory;
    let mut coverage = Coverage::new(analysis);
    let root = ddt.make_root_machine(dut);
    let mut stats = ExploreStats {
        symbols: root.st.counter.allocated(),
        paths_started: 1,
        ..Default::default()
    };
    let mut bugs: HashMap<String, Bug> = HashMap::new();
    let mut next_id: u64 = 1;
    let mut frontier = Frontier::new(strategy_rt, vec![root]);
    let mut escalated: HashSet<u64> = HashSet::new();
    // Escalation dedup: two fuzz inputs that pinned identical values would
    // lift into machines exploring the same subtree.
    let mut escalation_seen: HashSet<EscalationKey> = HashSet::new();

    // Corpus: canned seeds plus solved models from the trace store.
    let mut corpus = Corpus::new();
    canned_seeds(&mut corpus);
    if let Some(dir) = &ddt.config.trace_dir {
        seed_from_store(dir, &dut.image.name, &mut corpus);
    }
    let mut pending_verbatim: VecDeque<FuzzInput> =
        corpus.entries().iter().map(|e| e.input.clone()).collect();
    let mut rng = Rng::new(fz.seed);
    let mut sched = Scheduler::new();
    let mut cache = BlockCache::new();
    let mut runner: Option<ConcreteRunner> = None;

    for _batch in 0..fz.batches {
        if coverage.elapsed_ms() > ddt.config.time_budget_ms {
            break;
        }
        let batch_start = Instant::now();
        for _ in 0..fz.batch_size {
            // Seeds run verbatim first (calibration); then weighted picks
            // from the corpus are mutated.
            let input = match pending_verbatim.pop_front() {
                Some(input) => input,
                None => {
                    sched.sync(&corpus);
                    let idx = sched.pick(&mut rng);
                    mutate(&corpus.entries()[idx].input, &mut rng, 4)
                }
            };
            let r = match runner.as_mut() {
                Some(r) => {
                    r.reset(dut, input.hw.clone());
                    r
                }
                None => runner.insert(ConcreteRunner::new(dut, input.hw.clone())),
            };
            r.apply_fuzz_input(&input);
            let mut block_trace = Vec::new();
            let outcome = r.run_fast(&mut cache, &mut block_trace);
            stats.fuzz_execs += 1;
            stats.fuzz_insns += r.vm.insns_retired;
            let new_blocks = coverage.absorb_concrete(block_trace);
            stats.concrete_blocks += new_blocks;
            let interesting = new_blocks > 0 || outcome != ConcreteOutcome::Completed;
            if interesting {
                // Dedup by content hash: re-adding a verbatim seed is a no-op.
                corpus.add(input.clone(), 1 + new_blocks);
            }
            if let Some(bug) = synthesize_bug(dut, r, &input, &outcome) {
                match bugs.get_mut(&bug.key) {
                    Some(existing) => existing.occurrences += 1,
                    None => {
                        // A signature already known under another key is
                        // the same bug re-found; don't duplicate it.
                        let known = bugs.values().any(|b| b.signature == bug.signature);
                        if !known {
                            stats.concrete_bugs += 1;
                            if stats.quanta_to_first_bug == 0 {
                                // Concrete first blood: attribute it to the
                                // next quantum ordinal so "earliest wins"
                                // merges still hold.
                                stats.quanta_to_first_bug = stats.quanta_executed + 1;
                            }
                            bugs.insert(bug.key.clone(), bug);
                        }
                    }
                }
            }
            if fz.escalate && interesting {
                let pins: Vec<u64> =
                    r.hardware_served().iter().map(|&(_, _, v)| v as u64).collect();
                let mut labels = input.labels.clone();
                labels.sort();
                if escalation_seen.insert((pins, labels)) {
                    let mut m = lift_to_machine(ddt, dut, r, &input);
                    m.id = next_id;
                    next_id += 1;
                    escalated.insert(m.id);
                    frontier.push(m);
                    stats.escalations += 1;
                    stats.paths_started += 1;
                }
            }
        }
        stats.fuzz_wall_ms += batch_start.elapsed().as_millis() as u64;
        run_quanta(
            ddt, dut, &mut env, &mut solver, &mut frontier, &mut coverage, &mut stats,
            &mut bugs, &mut next_id, &mut escalated, fz.quanta_per_batch,
        );
    }
    if fz.drain_frontier {
        // The superset guarantee is structural: hold the escalated states
        // aside and finish the baseline (non-escalated) subtree first —
        // that drain is exactly the symbolic-only exploration, so it ends
        // with the same findings under the same budget. Escalated states
        // then spend whatever budget remains.
        let storage = frontier.storage_mut();
        let mut held: Vec<Machine> = Vec::new();
        let mut i = 0;
        while i < storage.len() {
            if escalated.contains(&storage[i].id) {
                held.push(storage.swap_remove(i));
            } else {
                i += 1;
            }
        }
        run_quanta(
            ddt, dut, &mut env, &mut solver, &mut frontier, &mut coverage, &mut stats,
            &mut bugs, &mut next_id, &mut escalated, u64::MAX,
        );
        for m in held {
            frontier.push(m);
        }
        run_quanta(
            ddt, dut, &mut env, &mut solver, &mut frontier, &mut coverage, &mut stats,
            &mut bugs, &mut next_id, &mut escalated, u64::MAX,
        );
    }

    stats.wall_ms = coverage.elapsed_ms();
    let s = solver.stats();
    stats.solver_queries = s.queries;
    stats.solver_fast_hits = s.fast_path_hits;
    stats.solver_full = s.full_solves;
    stats.solver_cache_hits = s.cache_hits;
    stats.solver_model_reuse = s.cache_model_reuse;
    stats.solver_unsat_subset = s.cache_unsat_subset;
    stats.solver_sliced = s.sliced_queries;
    stats.solver_slice_components = s.slice_components;
    stats.solver_session_probes = s.session_probes;
    stats.solver_session_resets = s.session_resets;
    stats.cache_evictions = run_cache.as_ref().map_or(0, |c| c.stats().evictions);
    stats.sample_interner();
    let insn_exhausted = stats.insns > ddt.config.max_total_insns;
    let wall_exhausted = stats.wall_ms > ddt.config.time_budget_ms;
    let mut health = RunHealth::from_stats(&stats, insn_exhausted, wall_exhausted);
    let bug_list = ddt.finalize_bugs(bugs, &mut health, dut);
    Report {
        driver: dut.image.name.clone(),
        bugs: bug_list,
        total_blocks: coverage.total_blocks(),
        covered_blocks: coverage.covered_blocks(),
        coverage_timeline: coverage.timeline().to_vec(),
        health,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exerciser::DdtConfig;

    fn fuzz_only() -> FuzzConfig {
        FuzzConfig {
            batches: 2,
            batch_size: 20,
            escalate: false,
            quanta_per_batch: 0,
            drain_frontier: false,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn fuzzing_finds_the_rtl8029_interrupt_crash_concretely() {
        let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let ddt = Ddt::new(DdtConfig::default());
        let report = run_hybrid(&ddt, &dut, &fuzz_only());
        assert!(report.stats.fuzz_execs >= 40);
        assert!(report.stats.fuzz_insns > 2_000, "the fast executor retired real work");
        assert!(report.stats.concrete_blocks > 0, "concrete coverage was censused");
        let crash = report
            .bugs
            .iter()
            .find(|b| {
                b.class == BugClass::KernelCrash
                    && b.description.contains("uninitialized timer")
            })
            .expect("the canned live-status seed triggers the timer crash");
        assert_eq!(crash.origin, BugOrigin::Concrete);
        assert!(!crash.trace.is_empty(), "synthesized trace carries hardware reads");
        assert!(!crash.decisions.is_empty(), "interrupt schedule recorded");
    }

    #[test]
    fn concrete_bugs_replay_through_the_standard_replayer() {
        let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let ddt = Ddt::new(DdtConfig::default());
        let report = run_hybrid(&ddt, &dut, &fuzz_only());
        let concrete: Vec<&Bug> =
            report.bugs.iter().filter(|b| b.origin == BugOrigin::Concrete).collect();
        assert!(!concrete.is_empty());
        for bug in concrete {
            let outcome = crate::replay::replay_bug(&dut, bug);
            assert!(
                matches!(outcome, crate::replay::ReplayOutcome::Reproduced { .. }),
                "{}: {outcome:?}",
                bug.key
            );
        }
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let ddt = Ddt::new(DdtConfig::default());
        let a = run_hybrid(&ddt, &dut, &fuzz_only());
        let b = run_hybrid(&ddt, &dut, &fuzz_only());
        let keys = |r: &Report| -> Vec<String> {
            r.bugs.iter().map(|b| b.key.clone()).collect()
        };
        assert_eq!(keys(&a), keys(&b), "same seed, same bug set");
        assert_eq!(a.stats.fuzz_execs, b.stats.fuzz_execs);
        assert_eq!(a.stats.fuzz_insns, b.stats.fuzz_insns);
        assert_eq!(a.covered_blocks, b.covered_blocks);
    }

    #[test]
    fn escalation_lifts_interesting_states_onto_the_frontier() {
        let spec = ddt_drivers::driver_by_name("rtl8029").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let ddt = Ddt::new(DdtConfig::default());
        let fz = FuzzConfig {
            batches: 1,
            batch_size: 8,
            escalate: true,
            quanta_per_batch: 4,
            drain_frontier: false,
            ..FuzzConfig::default()
        };
        let report = run_hybrid(&ddt, &dut, &fz);
        assert!(report.stats.escalations > 0, "interesting executions escalated");
        assert!(report.stats.quanta_executed > 0, "symbolic quanta interleaved");
    }
}
