//! DDT: testing closed-source binary device drivers.
//!
//! This crate is the paper's primary contribution (Kuznetsov, Chipounov,
//! Candea — USENIX ATC 2010): a tool that takes a **binary** driver, runs
//! it against its real (mini-)kernel with **fully symbolic hardware** and
//! **symbolic interrupts**, explores its paths with selective symbolic
//! execution, checks each path with modular dynamic checkers, and emits
//! replayable bug reports.
//!
//! Architecture (paper Figure 1):
//!
//! ```text
//!   driver binary (.dxe) ──► [exerciser] ──► report { bugs, traces }
//!        loads into             │  ▲
//!   [ddt-kernel] (concrete) ◄───┘  │ forks, checks
//!        device accesses ──► [hardware: symbolic device + mem checker]
//!        kernel events   ──► [checkers]
//!        API boundaries  ──► [annotations]
//!        failed paths    ──► [replay] (concrete re-execution in ddt-vm)
//! ```
//!
//! # Quick start
//!
//! ```
//! use ddt_core::{Ddt, DdtConfig, DriverUnderTest};
//!
//! // Test the bundled clean reference driver: no bugs, good coverage.
//! let spec = ddt_drivers::clean_driver();
//! let dut = DriverUnderTest::from_spec(&spec);
//! let report = Ddt::default().test(&dut);
//! assert!(report.bugs.is_empty(), "the clean driver has no bugs");
//! assert!(report.relative_coverage() > 0.5);
//! ```

pub mod analysis;
pub mod annotations;
pub mod checkers;
pub mod checkpoint;
pub mod coverage;
pub mod exerciser;
pub mod faults;
pub mod fleet;
pub mod hardware;
pub mod hybrid;
pub mod machine;
pub mod parallel;
pub mod replay;
pub mod report;
pub mod search;
pub mod tracestore;

pub use analysis::{analyze_bug, BugAnalysis, DeviceSpec};
pub use annotations::Annotations;
pub use checkpoint::{load_latest, CampaignError, CampaignSeed, CheckpointPolicy};
pub use ddt_kernel::FaultFamily;
pub use exerciser::{Ddt, DdtConfig, DriverUnderTest};
pub use faults::{FaultInjector, FaultPlan};
pub use fleet::{
    pump_frames, run_worker, serve, FleetConfig, FleetEvent, WorkerHandle, WorkerLauncher,
    WorkerOpts,
};
pub use hardware::DdtEnv;
pub use hybrid::{run_hybrid, FuzzConfig};
pub use machine::{Frame, Machine, SymHost};
pub use parallel::{resume_parallel, test_parallel};
pub use replay::{decision_streams, replay_bug, ReplayOutcome};
pub use report::{
    Bug, BugClass, BugOrigin, Decision, ExploreStats, LifecycleEvent, Report, RunHealth,
};
pub use search::{Frontier, PruneSet, SearchStrategy, Strategy};
pub use tracestore::{artifact_from_bug, bug_from_artifact, persist_bugs, replay_artifact};
