//! Basic-block coverage tracking and the exploration heuristic (§4.3).
//!
//! "The default heuristic attempts to maximize basic block coverage,
//! similar to the one used in EXE. It maintains a global counter for each
//! basic block, indicating how many times the block was executed. The
//! heuristic selects for the next execution step the basic block with the
//! smallest value. This avoids states that are stuck, for instance, in
//! polling loops."
//!
//! The tracker also records the coverage-over-time series plotted in
//! Figures 2 and 3.

use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use ddt_isa::analysis::CodeAnalysis;

use crate::report::CoverageSample;

/// Global coverage state for one driver test run.
pub struct Coverage {
    analysis: CodeAnalysis,
    hits: HashMap<u32, u64>,
    covered: BTreeSet<u32>,
    timeline: Vec<CoverageSample>,
    start: Instant,
    /// Milliseconds already consumed by earlier segments of a resumed
    /// campaign. The campaign clock is `base_ms` + this process's elapsed
    /// time, so a resumed run continues the wall budget instead of
    /// restarting it.
    base_ms: u64,
}

impl Coverage {
    /// Creates a tracker over the driver's block partition.
    pub fn new(analysis: CodeAnalysis) -> Coverage {
        Coverage {
            analysis,
            hits: HashMap::new(),
            covered: BTreeSet::new(),
            timeline: Vec::new(),
            start: Instant::now(),
            base_ms: 0,
        }
    }

    /// Restores a tracker from checkpointed campaign state: per-block hit
    /// counts (they drive the exploration heuristic), the covered set, the
    /// timeline so far, and the already-consumed campaign clock.
    pub fn seeded(
        analysis: CodeAnalysis,
        hits: impl IntoIterator<Item = (u32, u64)>,
        covered: impl IntoIterator<Item = u32>,
        timeline: Vec<CoverageSample>,
        base_ms: u64,
    ) -> Coverage {
        Coverage {
            analysis,
            hits: hits.into_iter().collect(),
            covered: covered.into_iter().collect(),
            timeline,
            start: Instant::now(),
            base_ms,
        }
    }

    /// Exports the checkpointable state: sorted hit counts, sorted covered
    /// set, timeline.
    pub fn snapshot(&self) -> (Vec<(u32, u64)>, Vec<u32>, Vec<CoverageSample>) {
        let mut hits: Vec<(u32, u64)> = self.hits.iter().map(|(&pc, &n)| (pc, n)).collect();
        hits.sort_unstable();
        let covered: Vec<u32> = self.covered.iter().copied().collect();
        (hits, covered, self.timeline.clone())
    }

    /// Notes execution of the instruction at `pc`; counts block entries.
    pub fn on_exec(&mut self, pc: u32) {
        if self.analysis.blocks.contains_key(&pc) {
            *self.hits.entry(pc).or_insert(0) += 1;
            if self.covered.insert(pc) {
                let ms = self.elapsed_ms();
                self.timeline.push((ms, self.covered.len()));
            }
        }
    }

    /// Folds a remote worker's coverage delta into this tracker: hit
    /// counts add, the covered set unions. No timeline samples are taken —
    /// remote deltas arrive in batches whose internal timing is unknown, so
    /// the merged timeline only reflects blocks this tracker saw directly.
    /// Additive and order-independent, like the stats merges.
    pub fn absorb(
        &mut self,
        hits: impl IntoIterator<Item = (u32, u64)>,
        covered: impl IntoIterator<Item = u32>,
    ) {
        for (pc, n) in hits {
            *self.hits.entry(pc).or_insert(0) += n;
        }
        self.covered.extend(covered);
    }

    /// Folds a concrete-executor block trace into this tracker. The fast
    /// executor reports every superblock entry pc it dispatched; entries
    /// that are real blocks of the driver count exactly like symbolic
    /// `on_exec` hits — same `hits` map, same `covered` set — so a block
    /// reached by both modes is one covered block, not two. Returns how
    /// many blocks were covered for the first time by this trace (the
    /// hybrid "concrete found it first" census).
    pub fn absorb_concrete(&mut self, block_trace: impl IntoIterator<Item = u32>) -> u64 {
        let mut new_blocks = 0;
        for pc in block_trace {
            if self.analysis.blocks.contains_key(&pc) {
                *self.hits.entry(pc).or_insert(0) += 1;
                if self.covered.insert(pc) {
                    new_blocks += 1;
                    let ms = self.elapsed_ms();
                    self.timeline.push((ms, self.covered.len()));
                }
            }
        }
        new_blocks
    }

    /// Hit count of the block containing `pc` (the EXE-style priority:
    /// smaller is more interesting).
    pub fn priority(&self, pc: u32) -> u64 {
        match self.analysis.block_of(pc) {
            Some(block) => self.hits.get(&block).copied().unwrap_or(0),
            None => u64::MAX, // Outside the driver (kernel trap): neutral.
        }
    }

    /// Rarity of the frontier at `pc`: the smallest global hit count among
    /// the static successors of the block containing `pc` (the branches a
    /// state parked there could take next). A state sitting in front of a
    /// never-taken branch scores 0 — the rarest possible — even when its
    /// own block is hot, which is exactly the diamond/polling case the
    /// EXE-style own-block count cannot distinguish. Blocks without static
    /// successors fall back to their own count; outside the driver the
    /// score is neutral (`u64::MAX`).
    pub fn rarity(&self, pc: u32) -> u64 {
        let Some(start) = self.analysis.block_of(pc) else {
            return u64::MAX;
        };
        let block = &self.analysis.blocks[&start];
        block
            .successors
            .iter()
            .map(|s| self.hits.get(s).copied().unwrap_or(0))
            .min()
            .unwrap_or_else(|| self.hits.get(&start).copied().unwrap_or(0))
    }

    /// The block partition this tracker counts over (shared with the
    /// search strategies, which need the CFG to rank frontier states).
    pub fn analysis(&self) -> &CodeAnalysis {
        &self.analysis
    }

    /// Blocks covered so far.
    pub fn covered_blocks(&self) -> usize {
        self.covered.len()
    }

    /// Total blocks in the driver.
    pub fn total_blocks(&self) -> usize {
        self.analysis.block_count()
    }

    /// The coverage-over-time series (Figures 2 and 3).
    pub fn timeline(&self) -> &[CoverageSample] {
        &self.timeline
    }

    /// Milliseconds on the campaign clock: time consumed by earlier
    /// segments plus time elapsed in this process.
    pub fn elapsed_ms(&self) -> u64 {
        self.base_ms + self.start.elapsed().as_millis() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_isa::asm::{assemble, ExportMap};

    fn coverage() -> (Coverage, Vec<u32>) {
        let src = "
            DriverEntry:
                beq r0, r1, a
                nop
                ret
            a:
                nop
                ret";
        let a = assemble(src, &ExportMap::new()).unwrap();
        let analysis = ddt_isa::analysis::analyze(&a.image);
        let blocks: Vec<u32> = analysis.blocks.keys().copied().collect();
        (Coverage::new(analysis), blocks)
    }

    #[test]
    fn block_entries_counted_once_per_entry() {
        let (mut cov, blocks) = coverage();
        assert!(cov.total_blocks() >= 3);
        // blocks[1] is the fall-through (nop; ret): two instructions.
        cov.on_exec(blocks[1]);
        cov.on_exec(blocks[1] + 8); // Interior instruction: not a new block.
        assert_eq!(cov.covered_blocks(), 1);
        cov.on_exec(blocks[0]);
        assert_eq!(cov.covered_blocks(), 2);
        assert_eq!(cov.timeline().len(), 2);
    }

    #[test]
    fn seeded_tracker_continues_clock_and_counts() {
        let (mut cov, blocks) = coverage();
        cov.on_exec(blocks[0]);
        cov.on_exec(blocks[1]);
        let (hits, covered, timeline) = cov.snapshot();
        assert_eq!(hits.len(), 2);
        assert_eq!(covered.len(), 2);
        let analysis = {
            let (c, _) = coverage();
            // Re-derive an identical analysis for the seeded tracker.
            c.analysis
        };
        let mut resumed = Coverage::seeded(analysis, hits, covered, timeline, 5000);
        assert!(resumed.elapsed_ms() >= 5000, "campaign clock continues");
        assert_eq!(resumed.covered_blocks(), 2);
        assert_eq!(resumed.priority(blocks[0]), 1, "hit counts survive resume");
        resumed.on_exec(blocks[0]);
        assert_eq!(resumed.priority(blocks[0]), 2);
        // Already-covered block: no new timeline sample.
        assert_eq!(resumed.timeline().len(), 2);
    }

    #[test]
    fn priority_prefers_cold_blocks() {
        let (mut cov, blocks) = coverage();
        cov.on_exec(blocks[0]);
        cov.on_exec(blocks[0]);
        assert_eq!(cov.priority(blocks[0]), 2);
        assert_eq!(cov.priority(blocks[1]), 0, "unvisited block is coldest");
        assert_eq!(cov.priority(0xdead_0000), u64::MAX, "outside the driver");
    }

    #[test]
    fn rarity_scores_the_coldest_successor() {
        let (mut cov, blocks) = coverage();
        // blocks[0] is the entry branch with two successors; hammer one arm.
        for _ in 0..5 {
            cov.on_exec(blocks[1]);
        }
        // The other arm (blocks[2]) is untouched, so a state at the entry
        // branch still scores 0: the rarest branch out of it is unvisited.
        assert_eq!(cov.rarity(blocks[0]), 0);
        cov.on_exec(blocks[2]);
        cov.on_exec(blocks[2]);
        assert_eq!(cov.rarity(blocks[0]), 2, "min over successor hit counts");
        // A block with no static successors falls back to its own count.
        assert_eq!(cov.rarity(blocks[1]), 5);
        assert_eq!(cov.rarity(0xdead_0000), u64::MAX, "outside the driver");
    }

    /// Satellite: `absorb` must stay additive under the rarity accounting —
    /// merging worker deltas in any order yields the same rarity ranking,
    /// so rarest-branch selection is deterministic across runs.
    #[test]
    fn rarity_survives_absorb_merges_in_any_order() {
        let (mut fwd, blocks) = coverage();
        let (mut rev, _) = coverage();
        let deltas: Vec<Vec<(u32, u64)>> = vec![
            vec![(blocks[1], 3)],
            vec![(blocks[1], 2), (blocks[2], 7)],
            vec![(blocks[2], 1)],
        ];
        for d in &deltas {
            fwd.absorb(d.clone(), d.iter().map(|&(pc, _)| pc).collect::<Vec<_>>());
        }
        for d in deltas.iter().rev() {
            rev.absorb(d.clone(), d.iter().map(|&(pc, _)| pc).collect::<Vec<_>>());
        }
        for &b in &blocks {
            assert_eq!(fwd.rarity(b), rev.rarity(b), "merge order must not matter");
            assert_eq!(fwd.priority(b), rev.priority(b));
        }
        assert_eq!(fwd.rarity(blocks[0]), 5, "additive: 3+2 on the hot arm");
    }

    /// Satellite: the concrete edge map and the symbolic tracker share one
    /// covered set, so a block reached in both modes is censused once.
    #[test]
    fn concrete_absorb_does_not_double_count_shared_blocks() {
        let (mut cov, blocks) = coverage();
        // Symbolic execution reaches the entry block first.
        cov.on_exec(blocks[0]);
        assert_eq!(cov.covered_blocks(), 1);
        // A concrete fuzz run retraces the entry block, then breaks into
        // both arms; interior pcs and kernel pcs in the trace are ignored.
        let trace = vec![blocks[0], blocks[1], blocks[1] + 8, blocks[2], 0xdead_0000];
        let new_blocks = cov.absorb_concrete(trace);
        assert_eq!(new_blocks, 2, "only the two arms are new");
        assert_eq!(cov.covered_blocks(), 3, "entry block censused once");
        assert_eq!(cov.priority(blocks[0]), 2, "hit counts still add across modes");
        // Symbolic execution later reaching a concretely-found block adds
        // heat but no new coverage.
        cov.on_exec(blocks[2]);
        assert_eq!(cov.covered_blocks(), 3);
        assert_eq!(cov.timeline().len(), 3, "one sample per first sighting");
    }
}
