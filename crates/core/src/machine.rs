//! The DDT execution state: symbolic machine + kernel snapshot + schedule.
//!
//! "Each execution state consists conceptually of a complete system
//! snapshot" (§4.1.2): forking a [`Machine`] forks the symbolic CPU/memory
//! (chained COW), the kernel state (pools, locks, timers, registry), the
//! invocation stack, and the decision schedule.

use ddt_expr::Expr;
use ddt_isa::Reg;
use ddt_kernel::{
    EntryInvocation, //
    ExecContext,
    FaultFamily,
    Host,
    HostError,
    Irql,
    Kernel,
};
use ddt_solver::Solver;
use ddt_symvm::{SymOrigin, SymState};
use ddt_trace::{fnv1a64, MachineFingerprint, PathPick, SiteKind};

use crate::report::Decision;
use std::sync::Arc;

/// Saved CPU + kernel execution context for nested invocations (interrupt
/// and timer delivery).
#[derive(Clone, Debug)]
pub struct SavedCtx {
    /// Register file at the preemption point.
    pub regs: [Expr; 16],
    /// Program counter to resume at.
    pub pc: u32,
    /// IRQL to restore.
    pub irql: Irql,
    /// Execution context to restore.
    pub context: ExecContext,
}

/// One entry on the invocation stack.
#[derive(Clone, Debug)]
pub enum Frame {
    /// A top-level workload entry-point invocation.
    Entry {
        /// Entry point name.
        name: String,
        /// Locks held when the invocation started (a correct invocation
        /// must not return holding any *additional* lock).
        held_at_entry: Vec<u32>,
    },
    /// An injected interrupt: the ISR is running.
    Isr {
        /// Context to restore when the interrupt completes.
        saved: SavedCtx,
        /// The entry point that was interrupted.
        at_entry: String,
        /// Locks held at injection time (held by the interrupted code, not
        /// by the handler).
        held_at_entry: Vec<u32>,
    },
    /// The interrupt DPC (HandleInterrupt) is running.
    Dpc {
        /// Context to restore afterwards.
        saved: SavedCtx,
        /// The entry point that was interrupted.
        at_entry: String,
        /// Locks held when the DPC started.
        held_at_entry: Vec<u32>,
    },
    /// A fired timer callback is running.
    Timer {
        /// Context to restore afterwards.
        saved: SavedCtx,
        /// The entry point name at firing time.
        at_entry: String,
        /// Locks held when the callback started.
        held_at_entry: Vec<u32>,
    },
    /// The driver's PnP-notification callback is running (an injected
    /// device-lifecycle event: surprise removal or a power transition).
    Pnp {
        /// Which lifecycle event is being delivered.
        event: crate::report::LifecycleEvent,
        /// Context to restore afterwards.
        saved: SavedCtx,
        /// The entry point that was interrupted (or the entry name for
        /// workload-level delivery).
        at_entry: String,
        /// Locks held when the callback started.
        held_at_entry: Vec<u32>,
        /// Symbolic-trace length at handler entry; the resume-without-
        /// restore checker counts hardware writes from here.
        trace_mark: usize,
    },
}

impl Frame {
    /// Display name of the code this frame runs.
    pub fn running(&self) -> &str {
        match self {
            Frame::Entry { name, .. } => name,
            Frame::Isr { .. } => "Isr",
            Frame::Dpc { .. } => "HandleInterrupt",
            Frame::Timer { .. } => "TimerCallback",
            Frame::Pnp { event, .. } => event.invocation_name(),
        }
    }

    /// Locks that were already held when this frame started running.
    pub fn held_at_entry(&self) -> &[u32] {
        match self {
            Frame::Entry { held_at_entry, .. }
            | Frame::Isr { held_at_entry, .. }
            | Frame::Dpc { held_at_entry, .. }
            | Frame::Timer { held_at_entry, .. }
            | Frame::Pnp { held_at_entry, .. } => held_at_entry,
        }
    }

    /// The interrupted entry, for nested frames.
    pub fn interrupted(&self) -> Option<&str> {
        match self {
            Frame::Entry { .. } => None,
            Frame::Isr { at_entry, .. }
            | Frame::Dpc { at_entry, .. }
            | Frame::Timer { at_entry, .. }
            | Frame::Pnp { at_entry, .. } => Some(at_entry),
        }
    }
}

/// One materialized node of a machine's choice log (a persistent cons
/// list, shared structurally between a parent and its forked children).
///
/// The exploration loop visits a sequence of *nondeterministic fork sites*
/// on every path. At each site the parent continues as alternative 0 and
/// each child takes a 1-based alternative. A machine's identity is exactly
/// its pick at every site, so the log below — run-lengths of "stayed
/// parent" punctuated by materialized child picks — is a complete recipe
/// for rebuilding the machine by steered re-execution from the root.
/// Staying parent is O(1) and allocation-free (`trailing_skips` bump);
/// only taking a child allocates a node.
#[derive(Debug)]
pub struct PathPicks {
    /// The log up to the previous materialized pick.
    pub base: Option<Arc<PathPicks>>,
    /// Sites at which the ancestor stayed parent since `base`.
    pub skips: u64,
    /// The site kind at which a child alternative was taken.
    pub kind: SiteKind,
    /// Which alternative was taken (1-based).
    pub pick: u32,
}

/// Base address of the exerciser's scratch window (packets, OID buffers).
pub const SCRATCH_BASE: u32 = 0x0300_0000;
/// Size of the scratch window.
pub const SCRATCH_SIZE: u32 = 0x10_0000;

/// One DDT execution state.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Symbolic machine state.
    pub st: SymState,
    /// Kernel snapshot.
    pub kernel: Kernel,
    /// Invocation stack (bottom = current workload entry).
    pub frames: Vec<Frame>,
    /// Next workload operation index.
    pub workload_pos: usize,
    /// Remaining symbolic-interrupt injections allowed on this path.
    pub interrupt_budget: u32,
    /// Remaining device-lifecycle injections allowed on this path (two, so
    /// a suspend→resume chain fits).
    pub lifecycle_budget: u32,
    /// Symbolic-trace length when the device was surprise-removed; the
    /// touch-after-remove checker scans hardware accesses from here.
    pub removed_trace_mark: Option<usize>,
    /// True once touch-after-remove was reported on this path (report the
    /// first offending access only).
    pub touch_after_remove_reported: bool,
    /// Kernel calls made on this path (decision indexing).
    pub kernel_calls: u64,
    /// Kernel/driver boundary crossings on this path (decision indexing).
    pub boundaries: u64,
    /// Scheduling decisions taken on this path (for replay).
    pub decisions: Vec<Decision>,
    /// Kernel events already scanned by the checkers.
    pub events_scanned: usize,
    /// Bump cursor inside the scratch window.
    pub scratch_cursor: u32,
    /// Instructions executed since the current entry invocation started.
    pub steps_in_entry: u64,
    /// Locks already reported as held-at-return on this path (collateral
    /// suppression as outer frames unwind).
    pub reported_held_locks: std::collections::BTreeSet<u32>,
    /// Fault families actually consumed on this path (the unchecked-failure
    /// checker compares these against the entry's return status).
    pub injected_faults: Vec<FaultFamily>,
    /// Choice log up to the last materialized child pick (shared tail).
    pub picks: Option<Arc<PathPicks>>,
    /// Fork sites at which this machine stayed parent since the last
    /// materialized pick.
    pub trailing_skips: u64,
    /// Exploration-loop steps executed on this machine (the replay stop
    /// point when the machine is reconstructed from a checkpoint).
    pub steps_total: u64,
    /// Blocks newly covered by this machine's most recent quantum (search
    /// metadata for the coverage-new-first strategy; not part of the
    /// machine's identity and excluded from [`Machine::fingerprint`]).
    pub cov_fresh: u64,
    /// Quantum sequence number at which `cov_fresh` was recorded (newer
    /// discoveries outrank stale ones).
    pub cov_stamp: u64,
    /// Unique id (diagnostics).
    pub id: u64,
}

impl Machine {
    /// Creates the root machine around a fresh symbolic state and kernel.
    pub fn new(st: SymState, kernel: Kernel) -> Machine {
        Machine {
            st,
            kernel,
            frames: Vec::new(),
            workload_pos: 0,
            interrupt_budget: 1,
            lifecycle_budget: 2,
            removed_trace_mark: None,
            touch_after_remove_reported: false,
            kernel_calls: 0,
            boundaries: 0,
            decisions: Vec::new(),
            events_scanned: 0,
            scratch_cursor: SCRATCH_BASE,
            steps_in_entry: 0,
            reported_held_locks: std::collections::BTreeSet::new(),
            injected_faults: Vec::new(),
            picks: None,
            trailing_skips: 0,
            steps_total: 0,
            cov_fresh: 0,
            cov_stamp: 0,
            id: 0,
        }
    }

    /// Forks the machine (cheap: COW memory/trace, small clones elsewhere).
    pub fn fork(&mut self, new_id: u64) -> Machine {
        Machine {
            st: self.st.fork(),
            kernel: self.kernel.clone(),
            frames: self.frames.clone(),
            workload_pos: self.workload_pos,
            interrupt_budget: self.interrupt_budget,
            lifecycle_budget: self.lifecycle_budget,
            removed_trace_mark: self.removed_trace_mark,
            touch_after_remove_reported: self.touch_after_remove_reported,
            kernel_calls: self.kernel_calls,
            boundaries: self.boundaries,
            decisions: self.decisions.clone(),
            events_scanned: self.events_scanned,
            scratch_cursor: self.scratch_cursor,
            steps_in_entry: self.steps_in_entry,
            reported_held_locks: self.reported_held_locks.clone(),
            injected_faults: self.injected_faults.clone(),
            picks: self.picks.clone(),
            trailing_skips: self.trailing_skips,
            steps_total: self.steps_total,
            cov_fresh: self.cov_fresh,
            cov_stamp: self.cov_stamp,
            id: new_id,
        }
    }

    /// Wraps a forked [`SymState`] produced by the interpreter into a full
    /// machine (used when `symvm` forks at a branch).
    pub fn adopt(&self, st: SymState, new_id: u64) -> Machine {
        Machine {
            st,
            kernel: self.kernel.clone(),
            frames: self.frames.clone(),
            workload_pos: self.workload_pos,
            interrupt_budget: self.interrupt_budget,
            lifecycle_budget: self.lifecycle_budget,
            removed_trace_mark: self.removed_trace_mark,
            touch_after_remove_reported: self.touch_after_remove_reported,
            kernel_calls: self.kernel_calls,
            boundaries: self.boundaries,
            decisions: self.decisions.clone(),
            events_scanned: self.events_scanned,
            scratch_cursor: self.scratch_cursor,
            steps_in_entry: self.steps_in_entry,
            reported_held_locks: self.reported_held_locks.clone(),
            injected_faults: self.injected_faults.clone(),
            picks: self.picks.clone(),
            trailing_skips: self.trailing_skips,
            steps_total: self.steps_total,
            cov_fresh: self.cov_fresh,
            cov_stamp: self.cov_stamp,
            id: new_id,
        }
    }

    /// Records that this machine stayed on the parent side of a fork site.
    /// O(1), allocation-free — called at *every* site a path visits.
    pub fn note_site(&mut self) {
        self.trailing_skips += 1;
    }

    /// Records that this machine took child alternative `pick` at a fork
    /// site of the given kind. Call on the freshly forked child *before*
    /// the parent's [`Machine::note_site`], so the child's skip run-length
    /// reflects the parent's count at the site.
    pub fn log_pick(&mut self, kind: SiteKind, pick: u32) {
        self.picks = Some(Arc::new(PathPicks {
            base: self.picks.take(),
            skips: self.trailing_skips,
            kind,
            pick,
        }));
        self.trailing_skips = 0;
    }

    /// Flattens the choice log into root-most-first wire records.
    pub fn picks_vec(&self) -> Vec<PathPick> {
        let mut out = Vec::new();
        let mut node = self.picks.as_deref();
        while let Some(n) = node {
            out.push(PathPick { skips: n.skips, kind: n.kind, pick: n.pick });
            node = n.base.as_deref();
        }
        out.reverse();
        out
    }

    /// Validation fingerprint for checkpointed frontier records: replaying
    /// this machine's choice log from the root must land exactly here.
    pub fn fingerprint(&self) -> MachineFingerprint {
        let decisions_json =
            serde_json::to_vec(&self.decisions).expect("decision schedule serializes");
        MachineFingerprint {
            pc: self.st.cpu.pc,
            kernel_calls: self.kernel_calls,
            boundaries: self.boundaries,
            workload_pos: self.workload_pos as u64,
            interrupt_budget: self.interrupt_budget,
            frames: self.frames.len() as u32,
            decisions_fnv: fnv1a64(&decisions_json),
        }
    }

    /// Name of the code currently running ("Initialize", "Isr", ...).
    pub fn running(&self) -> &str {
        self.frames.last().map(Frame::running).unwrap_or("<none>")
    }

    /// The workload entry at the bottom of the stack.
    pub fn current_entry(&self) -> &str {
        self.frames.first().map(Frame::running).unwrap_or("<none>")
    }

    /// The entry interrupted by the innermost nested frame, if any.
    pub fn interrupted_entry(&self) -> Option<String> {
        self.frames.last().and_then(Frame::interrupted).map(str::to_string)
    }

    /// True if the machine is inside an injected ISR/DPC/timer frame.
    pub fn in_nested_frame(&self) -> bool {
        self.frames.len() > 1
    }

    /// Allocates scratch guest memory (mapped and granted to the driver as
    /// a buffer passed in by the kernel).
    pub fn alloc_scratch(&mut self, len: u32, label: &str) -> u32 {
        let addr = self.scratch_cursor.next_multiple_of(8);
        self.scratch_cursor = addr + len;
        assert!(
            self.scratch_cursor <= SCRATCH_BASE + SCRATCH_SIZE,
            "scratch window exhausted"
        );
        self.st.mem.map(addr, len);
        self.st.grants.grant(addr, len, label);
        addr
    }

    /// Captures the current CPU + kernel context for a nested invocation.
    pub fn save_ctx(&self) -> SavedCtx {
        SavedCtx {
            regs: self.st.cpu.regs.clone(),
            pc: self.st.cpu.pc,
            irql: self.kernel.state.irql,
            context: self.kernel.state.context,
        }
    }

    /// Addresses of spinlocks currently held (frame snapshots).
    pub fn held_locks(&self) -> Vec<u32> {
        self.kernel
            .state
            .spinlocks
            .iter()
            .filter(|(_, l)| l.held)
            .map(|(&a, _)| a)
            .collect()
    }

    /// Restores a saved context (interrupt/timer return).
    pub fn restore_ctx(&mut self, ctx: &SavedCtx) {
        self.st.cpu.regs = ctx.regs.clone();
        self.st.cpu.pc = ctx.pc;
        self.kernel.state.irql = ctx.irql;
        self.kernel.state.context = ctx.context;
    }

    /// Applies an entry invocation: registers, stack, link, pc.
    pub fn apply_invocation(&mut self, inv: &EntryInvocation, keep_sp: bool) {
        let sp_before = self.st.cpu.get(Reg::SP);
        for (reg, v) in inv.reg_values() {
            self.st.cpu.set_u32(reg, v);
        }
        if keep_sp {
            // Nested invocations (ISR/DPC) run on the interrupted stack.
            self.st.cpu.set(Reg::SP, sp_before);
        }
        self.st.cpu.pc = inv.addr;
        self.steps_in_entry = 0;
    }
}

/// [`Host`] implementation over symbolic state: the kernel's window into
/// the (possibly symbolic) machine, with on-demand concretization (§3.2).
pub struct SymHost<'a> {
    /// The machine state the kernel manipulates.
    pub st: &'a mut SymState,
    /// Solver used for concretization.
    pub solver: &'a mut Solver,
    /// Arguments read so far (cached to concretize at most once).
    pub args_seen: [Option<u32>; 4],
}

impl<'a> SymHost<'a> {
    /// Creates a host over the state.
    pub fn new(st: &'a mut SymState, solver: &'a mut Solver) -> SymHost<'a> {
        SymHost { st, solver, args_seen: [None; 4] }
    }

    fn concretize_expr(&mut self, e: &Expr) -> u32 {
        if let Some(c) = e.as_const() {
            return c as u32;
        }
        // Model reuse: evaluating the cached model yields a witness value
        // consistent with the path condition without a solver call.
        let v = match self.st.model_eval(e) {
            Some(v) => v as u32,
            None => match self.solver.check(&self.st.constraints) {
                ddt_solver::SatResult::Sat(m) => {
                    let v = e.eval(&m) as u32;
                    self.st.set_model(m);
                    v
                }
                ddt_solver::SatResult::Unsat => {
                    unreachable!("live path must have satisfiable constraints")
                }
            },
        };
        self.st.record_concretization(e.clone(), v);
        v
    }
}

impl Host for SymHost<'_> {
    fn arg(&mut self, idx: usize) -> u32 {
        if let Some(v) = self.args_seen[idx] {
            return v;
        }
        let e = self.st.cpu.get(Reg(idx as u8));
        let v = self.concretize_expr(&e);
        self.args_seen[idx] = Some(v);
        v
    }

    fn set_ret(&mut self, v: u32) {
        self.st.cpu.set_u32(Reg(0), v);
    }

    fn mem_read(&mut self, addr: u32, size: u8) -> Result<u32, HostError> {
        if !self.st.mem.is_range_mapped(addr, size as u32) {
            return Err(HostError { addr });
        }
        let e = self.st.mem.read(addr, size);
        match e.as_const() {
            Some(c) => Ok(c as u32),
            None => {
                // Concrete (kernel) code reading symbolic memory: the
                // location is concretized and the constraint recorded
                // (§4.1.1). The concrete value is written back so later
                // reads see the same value.
                let v = self.concretize_expr(&e);
                self.st.mem.write(addr, size, &Expr::constant(v as u64, 8 * size as u32));
                Ok(v)
            }
        }
    }

    fn mem_write(&mut self, addr: u32, size: u8, v: u32) -> Result<(), HostError> {
        if !self.st.mem.is_range_mapped(addr, size as u32) {
            return Err(HostError { addr });
        }
        self.st.mem.write(addr, size, &Expr::constant(v as u64, 8 * size as u32));
        Ok(())
    }

    fn map_region(&mut self, start: u32, len: u32) {
        self.st.mem.map(start, len);
    }

    fn unmap_region(&mut self, start: u32, len: u32) {
        self.st.mem.unmap(start, len);
    }

    fn make_symbolic(&mut self, addr: u32, len: u32, label: &str) {
        for i in 0..len {
            let sym = self.st.new_symbol(
                format!("{label}[{i}]"),
                SymOrigin::Annotation { api: label.to_string() },
                8,
            );
            self.st.mem.write_byte(addr + i, sym);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_symvm::SymCounter;

    fn machine() -> Machine {
        Machine::new(SymState::new(SymCounter::new()), Kernel::new())
    }

    #[test]
    fn fork_isolates_kernel_and_schedule() {
        let mut a = machine();
        a.kernel.state.registry.insert("X".into(), 1);
        let mut b = a.fork(1);
        b.kernel.state.registry.insert("X".into(), 2);
        b.decisions.push(Decision::InjectInterrupt { boundary: 0 });
        assert_eq!(a.kernel.state.registry["X"], 1);
        assert!(a.decisions.is_empty());
        assert_eq!(b.kernel.state.registry["X"], 2);
    }

    #[test]
    fn choice_log_compresses_and_flattens_in_order() {
        let mut parent = machine();
        parent.note_site();
        parent.note_site();
        // Fork at the third site: child takes alternative 1.
        let mut child = parent.fork(1);
        child.log_pick(SiteKind::BranchFork, 1);
        parent.note_site();
        // Child then stays parent at one site and forks a grandchild.
        child.note_site();
        let mut grand = child.fork(2);
        grand.log_pick(SiteKind::Interrupt, 2);
        child.note_site();
        assert_eq!(parent.picks_vec(), vec![]);
        assert_eq!(parent.trailing_skips, 3);
        assert_eq!(
            child.picks_vec(),
            vec![PathPick { skips: 2, kind: SiteKind::BranchFork, pick: 1 }]
        );
        assert_eq!(child.trailing_skips, 2);
        assert_eq!(
            grand.picks_vec(),
            vec![
                PathPick { skips: 2, kind: SiteKind::BranchFork, pick: 1 },
                PathPick { skips: 1, kind: SiteKind::Interrupt, pick: 2 },
            ]
        );
        assert_eq!(grand.trailing_skips, 0);
    }

    #[test]
    fn fingerprint_tracks_state_and_schedule() {
        let mut m = machine();
        let fp0 = m.fingerprint();
        m.st.cpu.pc = 0x40;
        m.decisions.push(Decision::InjectInterrupt { boundary: 3 });
        let fp1 = m.fingerprint();
        assert_ne!(fp0, fp1);
        assert_eq!(fp1.pc, 0x40);
        assert_eq!(m.fingerprint(), fp1, "fingerprint is deterministic");
    }

    #[test]
    fn scratch_allocations_map_and_grant() {
        let mut m = machine();
        let a = m.alloc_scratch(64, "packet data");
        let b = m.alloc_scratch(16, "oid buffer");
        assert!(a >= SCRATCH_BASE);
        assert!(b >= a + 64);
        assert!(m.st.mem.is_range_mapped(a, 64));
        assert!(m.st.grants.contains_range(a, 64));
        assert_eq!(m.st.grants.label_of(a), Some("packet data"));
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut m = machine();
        m.st.cpu.set_u32(Reg(5), 77);
        m.st.cpu.pc = 0x1234;
        m.kernel.state.irql = Irql::Dispatch;
        let saved = m.save_ctx();
        m.st.cpu.set_u32(Reg(5), 0);
        m.st.cpu.pc = 0;
        m.kernel.state.irql = Irql::Device;
        m.restore_ctx(&saved);
        assert_eq!(m.st.cpu.get(Reg(5)).as_const(), Some(77));
        assert_eq!(m.st.cpu.pc, 0x1234);
        assert_eq!(m.kernel.state.irql, Irql::Dispatch);
    }

    #[test]
    fn symhost_concretizes_args_once() {
        let mut st = SymState::new(SymCounter::new());
        let x = st.new_symbol("a0", SymOrigin::Other, 32);
        st.add_constraint(x.ult(&Expr::constant(10, 32)));
        st.cpu.set(Reg(0), x);
        let mut solver = Solver::new();
        let mut host = SymHost::new(&mut st, &mut solver);
        let v1 = host.arg(0);
        let v2 = host.arg(0);
        assert_eq!(v1, v2);
        assert!(v1 < 10);
        assert_eq!(host.st.concretizations.len(), 1, "one concretization only");
    }

    #[test]
    fn symhost_concretizes_symbolic_memory_consistently() {
        let mut st = SymState::new(SymCounter::new());
        st.mem.map(0x1000, 0x100);
        let x = st.new_symbol("cell", SymOrigin::Other, 32);
        st.add_constraint(x.eq(&Expr::constant(42, 32)));
        st.mem.write(0x1000, 4, &x);
        let mut solver = Solver::new();
        let mut host = SymHost::new(&mut st, &mut solver);
        assert_eq!(host.mem_read(0x1000, 4), Ok(42));
        // The write-back makes the location concrete for the driver too.
        assert_eq!(st.mem.read(0x1000, 4).as_const(), Some(42));
    }

    #[test]
    fn symhost_faults_on_unmapped() {
        let mut st = SymState::new(SymCounter::new());
        let mut solver = Solver::new();
        let mut host = SymHost::new(&mut st, &mut solver);
        assert_eq!(host.mem_read(0x5000, 4), Err(HostError { addr: 0x5000 }));
    }

    #[test]
    fn frame_names() {
        let saved = SavedCtx {
            regs: std::array::from_fn(|_| Expr::constant(0, 32)),
            pc: 0,
            irql: Irql::Passive,
            context: ExecContext::Passive,
        };
        let f = Frame::Isr { saved, at_entry: "Initialize".into(), held_at_entry: vec![] };
        assert_eq!(f.running(), "Isr");
        assert_eq!(f.interrupted(), Some("Initialize"));
        let e = Frame::Entry { name: "Send".into(), held_at_entry: vec![] };
        assert_eq!(e.running(), "Send");
        assert_eq!(e.interrupted(), None);
    }
}
