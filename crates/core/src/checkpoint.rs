//! Crash-safe exploration campaigns (§4.7): checkpoint/resume with a
//! write-ahead path journal.
//!
//! A campaign directory holds two kinds of artifacts, both in the
//! versioned formats of `ddt-trace`:
//!
//! - `journal-<gen>.ddtj` — an append-only, per-record-checksummed log of
//!   campaign progress (path terminations, fork decisions, checkpoint
//!   publications). Each process writes its own *generation* file so a torn
//!   tail left by a crash is never appended to.
//! - `checkpoint-<seq>.ddtc` — periodic frontier checkpoints. Every pending
//!   machine is serialized as its **choice-log prefix**: the compressed
//!   schedule of fork-site decisions that deterministically re-derives the
//!   machine from the root. Atomicity is temp-file + `fsync` + `rename` +
//!   directory `fsync`, so a SIGKILL at any instruction leaves the newest
//!   complete checkpoint loadable.
//!
//! Resume ([`Ddt::resume`]) loads the newest decodable checkpoint, refuses
//! driver/configuration mismatches, reconstructs the frontier by replaying
//! each prefix through the quantum engine in replay mode (validated against
//! the recorded [`MachineFingerprint`](ddt_trace::MachineFingerprint)),
//! restores the aggregate maps and the *consumed* budgets, and continues —
//! producing a report identical to the uninterrupted run's. A checkpoint
//! whose `finished` flag is set short-circuits: the report is rebuilt
//! without exploring.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{BufWriter, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use ddt_kernel::loader::StackLayout;
use ddt_kernel::state::DEVICE_MMIO_BASE;
use ddt_solver::Solver;
use ddt_trace::{
    decode_checkpoint, //
    encode_checkpoint,
    encode_journal_header,
    encode_journal_record,
    CheckpointFile,
    CoverageRecord,
    FrontierRecord,
    JournalRecord,
};

use crate::coverage::Coverage;
use crate::exerciser::{Ddt, DriverUnderTest, QuantumSinks};
use crate::hardware::DdtEnv;
use crate::machine::Machine;
use crate::replay::ReplayCursor;
use crate::report::{Bug, ExploreStats, Report, RunHealth};

/// Campaign durability policy.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory receiving the journal and checkpoint files.
    pub dir: PathBuf,
    /// Frontier checkpoint cadence in scheduling quanta. The journal is
    /// written continuously; this bounds only how much *replay* work a
    /// resume needs, so the default favors low overhead.
    pub every_quanta: u64,
}

impl CheckpointPolicy {
    /// A policy writing to `dir` at the default cadence.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy { dir: dir.into(), every_quanta: 512 }
    }
}

/// Why a campaign could not be resumed.
#[derive(Debug)]
pub enum CampaignError {
    /// The directory could not be read or written.
    Io(std::io::Error),
    /// No checkpoint file exists in the directory.
    NoCheckpoint(PathBuf),
    /// Every present checkpoint failed to decode.
    Corrupt(String),
    /// The checkpoint belongs to a different driver or configuration.
    Mismatch(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign i/o error: {e}"),
            CampaignError::NoCheckpoint(dir) => {
                write!(f, "no checkpoint found in {}", dir.display())
            }
            CampaignError::Corrupt(why) => write!(f, "campaign store is corrupt: {why}"),
            CampaignError::Mismatch(why) => write!(f, "campaign mismatch: {why}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> CampaignError {
        CampaignError::Io(e)
    }
}

/// Restored state handed to the exploration loops by [`Ddt::resume`]: the
/// reconstructed frontier plus every aggregate the uninterrupted run would
/// have accumulated by the checkpointed quantum.
pub struct CampaignSeed {
    /// Reconstructed pending machines, in checkpointed worklist order (the
    /// selection heuristic breaks ties by position, so order matters).
    pub frontier: Vec<Machine>,
    /// Aggregate counters as of the checkpoint (budgets continue, not
    /// reset: `insns` feeds the total-instruction check directly).
    pub stats: ExploreStats,
    /// The keyed bug map as of the checkpoint.
    pub bugs: HashMap<String, Bug>,
    /// Per-block hit counts (they drive the selection heuristic).
    pub coverage_hits: Vec<(u32, u64)>,
    /// Covered block set.
    pub coverage_covered: Vec<u32>,
    /// Coverage-over-time series so far.
    pub coverage_timeline: Vec<crate::report::CoverageSample>,
    /// Milliseconds already consumed by earlier segments (campaign clock).
    pub base_wall_ms: u64,
    /// Next machine id (fresh forks stay unique across segments).
    pub next_id: u64,
    /// Next checkpoint sequence number.
    pub next_checkpoint_seq: u64,
    /// Frontier paths successfully replayed (run-health counter).
    pub replayed_ok: u64,
    /// Frontier paths dropped on divergence (run-health counter).
    pub replay_failed: u64,
    /// Structural-fingerprint prune set snapshot (`--prune` campaigns):
    /// (fingerprint hash, covered-block count at last sighting). Empty when
    /// pruning was off.
    pub prune_seen: Vec<(u64, u64)>,
}

/// Appends the write-ahead journal and publishes frontier checkpoints.
///
/// I/O failures are reported to stderr and disable the failing artifact;
/// they never abort the exploration — durability is best-effort by design,
/// the in-memory run stays authoritative.
pub(crate) struct CampaignWriter {
    dir: PathBuf,
    journal: Option<BufWriter<File>>,
    seq: u64,
    every_quanta: u64,
    /// Checkpoints successfully published by this process.
    pub checkpoints_written: u64,
    /// Journal records successfully appended by this process.
    pub journal_records: u64,
}

impl CampaignWriter {
    /// Opens a fresh journal generation in the campaign directory and
    /// writes the segment-start record.
    pub(crate) fn start(
        policy: &CheckpointPolicy,
        driver: &str,
        config_fp: u64,
        first_seq: u64,
    ) -> CampaignWriter {
        if let Err(e) = fs::create_dir_all(&policy.dir) {
            eprintln!("ddt: cannot create checkpoint dir {}: {e}", policy.dir.display());
        }
        // Each process appends to its own generation file: a torn tail left
        // by a previous crash stays frozen (recoverable by prefix) instead
        // of being appended to, which would corrupt the framing.
        let generation = next_generation(&policy.dir);
        let path = policy.dir.join(format!("journal-{generation:06}.ddtj"));
        let journal = match File::create(&path) {
            Ok(f) => {
                let mut w = BufWriter::new(f);
                match w.write_all(&encode_journal_header()) {
                    Ok(()) => Some(w),
                    Err(e) => {
                        eprintln!("ddt: journal header write failed: {e}");
                        None
                    }
                }
            }
            Err(e) => {
                eprintln!("ddt: cannot open journal {}: {e}", path.display());
                None
            }
        };
        let mut writer = CampaignWriter {
            dir: policy.dir.clone(),
            journal,
            seq: first_seq,
            every_quanta: policy.every_quanta.max(1),
            checkpoints_written: 0,
            journal_records: 0,
        };
        writer.record(&JournalRecord::Started { driver: driver.to_string(), config_fp });
        writer
    }

    /// Checkpoint cadence in quanta.
    pub(crate) fn every_quanta(&self) -> u64 {
        self.every_quanta
    }

    /// Appends one journal record (buffered; made durable at checkpoints).
    pub(crate) fn record(&mut self, rec: &JournalRecord) {
        if let Some(w) = self.journal.as_mut() {
            match w.write_all(&encode_journal_record(rec)) {
                Ok(()) => self.journal_records += 1,
                Err(e) => {
                    eprintln!("ddt: journal append failed, disabling journal: {e}");
                    self.journal = None;
                }
            }
        }
    }

    /// Publishes one frontier checkpoint atomically: journal fsync first
    /// (write-ahead ordering), then temp file + fsync + rename + directory
    /// fsync. A crash at any instruction leaves either the previous or the
    /// new checkpoint fully intact.
    pub(crate) fn write_checkpoint(&mut self, mut ck: CheckpointFile) {
        self.sync_journal();
        ck.seq = self.seq;
        let frontier = ck.frontier.len() as u64;
        let bytes = encode_checkpoint(&ck);
        let tmp = self.dir.join(format!(".checkpoint-{:06}.tmp", self.seq));
        let dst = self.dir.join(format!("checkpoint-{:06}.ddtc", self.seq));
        let res = (|| -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &dst)?;
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.record(&JournalRecord::Checkpoint { seq: self.seq, frontier });
                self.seq += 1;
                self.checkpoints_written += 1;
                self.prune();
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                eprintln!("ddt: checkpoint write failed: {e}");
            }
        }
    }

    /// Makes the tail of the journal durable.
    pub(crate) fn finish(&mut self) {
        self.sync_journal();
    }

    fn sync_journal(&mut self) {
        if let Some(w) = self.journal.as_mut() {
            let flushed = w.flush().and_then(|()| w.get_ref().sync_all());
            if let Err(e) = flushed {
                eprintln!("ddt: journal fsync failed, disabling journal: {e}");
                self.journal = None;
            }
        }
    }

    /// Keeps the two newest checkpoints (the newest plus one fallback);
    /// best-effort, purely a disk bound.
    fn prune(&self) {
        let mut seqs = checkpoint_seqs(&self.dir);
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        for &(seq, _) in seqs.iter().skip(2) {
            let _ = fs::remove_file(self.dir.join(format!("checkpoint-{seq:06}.ddtc")));
        }
    }
}

/// `journal-<gen>.ddtj` generations already present, plus one.
fn next_generation(dir: &Path) -> u64 {
    list_numbered(dir, "journal-", ".ddtj").into_iter().map(|(g, _)| g + 1).max().unwrap_or(0)
}

fn checkpoint_seqs(dir: &Path) -> Vec<(u64, PathBuf)> {
    list_numbered(dir, "checkpoint-", ".ddtc")
}

fn list_numbered(dir: &Path, prefix: &str, suffix: &str) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = fs::read_dir(dir) else { return Vec::new() };
    entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
            Some((digits.parse().ok()?, e.path()))
        })
        .collect()
}

/// Loads the newest decodable checkpoint in `dir`. An unreadable or
/// corrupt newest file falls back to the previous one (the write protocol
/// keeps it intact); only when every candidate fails is the store corrupt.
pub fn load_latest(dir: &Path) -> Result<CheckpointFile, CampaignError> {
    if !dir.is_dir() {
        return Err(CampaignError::NoCheckpoint(dir.to_path_buf()));
    }
    let mut seqs = checkpoint_seqs(dir);
    if seqs.is_empty() {
        return Err(CampaignError::NoCheckpoint(dir.to_path_buf()));
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    let mut last_err = String::new();
    for (_, path) in &seqs {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                last_err = format!("{}: {e}", path.display());
                continue;
            }
        };
        match decode_checkpoint(&bytes) {
            Ok(ck) => return Ok(ck),
            Err(e) => last_err = format!("{}: {e}", path.display()),
        }
    }
    Err(CampaignError::Corrupt(last_err))
}

/// Builds the checkpoint image of the current campaign state. The caller
/// must have folded `wall_ms` and the solver counters into `stats` first;
/// the writer assigns the sequence number.
#[allow(clippy::too_many_arguments)]
pub(crate) fn checkpoint_file(
    dut: &DriverUnderTest,
    ddt: &Ddt,
    coverage: &Coverage,
    stats: &ExploreStats,
    bugs: &HashMap<String, Bug>,
    next_id: u64,
    frontier: &[Machine],
    prune_seen: Vec<(u64, u64)>,
    finished: bool,
    interrupted: bool,
) -> CheckpointFile {
    let (hits, covered, timeline) = coverage.snapshot();
    // Key-sorted bug list: the JSON payload is byte-stable for a given bug
    // map, so identical campaign states produce identical checkpoints.
    let mut bug_list: Vec<&Bug> = bugs.values().collect();
    bug_list.sort_by(|a, b| a.key.cmp(&b.key));
    CheckpointFile {
        seq: 0,
        driver: dut.image.name.clone(),
        config_fp: ddt.config.fingerprint(),
        wall_ms: stats.wall_ms,
        insns: stats.insns,
        next_id,
        finished,
        interrupted,
        stats_json: serde_json::to_vec(stats).expect("stats are serializable"),
        bugs_json: serde_json::to_vec(&bug_list).expect("bugs are serializable"),
        coverage: CoverageRecord {
            hits,
            covered,
            timeline: timeline.into_iter().map(|(ms, n)| (ms, n as u64)).collect(),
        },
        frontier: frontier.iter().map(frontier_record).collect(),
        prune_seen,
    }
}

/// Snapshots one live machine as its portable decision-prefix record — the
/// unit a checkpoint stores and a fleet supervisor leases out.
pub(crate) fn frontier_record(m: &Machine) -> FrontierRecord {
    FrontierRecord {
        id: m.id,
        steps_total: m.steps_total,
        trailing_skips: m.trailing_skips,
        picks: m.picks_vec(),
        fp: m.fingerprint(),
        cov_fresh: m.cov_fresh,
        cov_stamp: m.cov_stamp,
        pending: m.st.verdict_pending,
    }
}

impl Ddt {
    /// Resumes an interrupted campaign from `dir` and continues it to a
    /// final report (serial explorer). See the module docs for the
    /// protocol; [`Ddt::resume_parallel`] is the multi-worker variant.
    pub fn resume(&self, dut: &DriverUnderTest, dir: &Path) -> Result<Report, CampaignError> {
        let (ck, stats, bugs) = self.load_for_resume(dut, dir)?;
        if ck.finished {
            return Ok(self.rebuild_finished_report(dut, &ck, stats, bugs));
        }
        let seed = self.rebuild_seed(dut, ck, stats, bugs);
        let continued = self.with_campaign_dir(dir);
        Ok(continued.explore_serial(dut, Some(seed)))
    }

    /// Loads and validates the newest checkpoint plus its JSON payloads.
    pub(crate) fn load_for_resume(
        &self,
        dut: &DriverUnderTest,
        dir: &Path,
    ) -> Result<(CheckpointFile, ExploreStats, HashMap<String, Bug>), CampaignError> {
        let ck = load_latest(dir)?;
        if ck.driver != dut.image.name {
            return Err(CampaignError::Mismatch(format!(
                "checkpoint is for driver '{}', not '{}'",
                ck.driver, dut.image.name
            )));
        }
        let config_fp = self.config.fingerprint();
        if ck.config_fp != config_fp {
            return Err(CampaignError::Mismatch(format!(
                "checkpoint configuration fingerprint {:016x} != current {config_fp:016x} \
                 (resume with the same flags the campaign started with)",
                ck.config_fp
            )));
        }
        let stats: ExploreStats = serde_json::from_slice(&ck.stats_json)
            .map_err(|e| CampaignError::Corrupt(format!("stats payload: {e}")))?;
        let bug_list: Vec<Bug> = serde_json::from_slice(&ck.bugs_json)
            .map_err(|e| CampaignError::Corrupt(format!("bugs payload: {e}")))?;
        let bugs = bug_list.into_iter().map(|b| (b.key.clone(), b)).collect();
        Ok((ck, stats, bugs))
    }

    /// A clone of this tool whose continued exploration checkpoints into
    /// `dir` (the resumed campaign keeps its own durability).
    pub(crate) fn with_campaign_dir(&self, dir: &Path) -> Ddt {
        let mut config = self.config.clone();
        let every = config.checkpoint.as_ref().map(|p| p.every_quanta);
        let mut policy = CheckpointPolicy::new(dir);
        if let Some(every) = every {
            policy.every_quanta = every;
        }
        config.checkpoint = Some(policy);
        Ddt::new(config)
    }

    /// Report reconstruction for a campaign whose final checkpoint says it
    /// already ran to completion: no exploration, same report.
    pub(crate) fn rebuild_finished_report(
        &self,
        dut: &DriverUnderTest,
        ck: &CheckpointFile,
        stats: ExploreStats,
        bugs: HashMap<String, Bug>,
    ) -> Report {
        let analysis = ddt_isa::analysis::analyze(&dut.image);
        let coverage = Coverage::seeded(
            analysis,
            ck.coverage.hits.iter().copied(),
            ck.coverage.covered.iter().copied(),
            ck.coverage.timeline.iter().map(|&(ms, n)| (ms, n as usize)).collect(),
            ck.wall_ms,
        );
        let mut stats = stats;
        stats.sample_interner();
        let insn_exhausted = stats.insns > self.config.max_total_insns;
        let wall_exhausted = stats.wall_ms > self.config.time_budget_ms;
        let mut health = RunHealth::from_stats(&stats, insn_exhausted, wall_exhausted);
        let bug_list = self.finalize_bugs(bugs, &mut health, dut);
        Report {
            driver: dut.image.name.clone(),
            bugs: bug_list,
            total_blocks: coverage.total_blocks(),
            covered_blocks: coverage.covered_blocks(),
            coverage_timeline: coverage.timeline().to_vec(),
            health,
            stats,
        }
    }

    /// Reconstructs the frontier from choice-log prefixes and assembles the
    /// campaign seed. Paths that fail to replay (divergence, fingerprint
    /// mismatch, or a panic) are dropped with a stderr note and counted in
    /// run health — a degraded resume is still a valid exploration.
    pub(crate) fn rebuild_seed(
        &self,
        dut: &DriverUnderTest,
        ck: CheckpointFile,
        stats: ExploreStats,
        bugs: HashMap<String, Bug>,
    ) -> CampaignSeed {
        let run_cache = self.config.run_cache();
        let mut solver = self.config.solver_for(&run_cache);
        let stack = StackLayout::default();
        let mut env = DdtEnv::new(
            DEVICE_MMIO_BASE,
            dut.descriptor.mmio_len,
            stack.base,
            stack.initial_sp(),
        );
        env.check_memory = self.config.check_memory;
        let mut frontier = Vec::with_capacity(ck.frontier.len());
        let mut replayed_ok = 0;
        let mut replay_failed = 0;
        for rec in &ck.frontier {
            match self.replay_prefix(dut, rec, &mut env, &mut solver) {
                Ok(m) => {
                    replayed_ok += 1;
                    frontier.push(m);
                }
                Err(why) => {
                    replay_failed += 1;
                    eprintln!("ddt: resume: dropping frontier path {}: {why}", rec.id);
                }
            }
        }
        CampaignSeed {
            frontier,
            stats,
            bugs,
            coverage_hits: ck.coverage.hits,
            coverage_covered: ck.coverage.covered,
            coverage_timeline: ck
                .coverage
                .timeline
                .into_iter()
                .map(|(ms, n)| (ms, n as usize))
                .collect(),
            base_wall_ms: ck.wall_ms,
            next_id: ck.next_id,
            next_checkpoint_seq: ck.seq + 1,
            replayed_ok,
            replay_failed,
            prune_seen: ck.prune_seen,
        }
    }

    /// Replays one frontier record's choice log from the root, validating
    /// the result against the recorded fingerprint. All exploration side
    /// effects go to scratch sinks: the checkpoint's aggregates already
    /// account for everything the prefix did the first time.
    pub(crate) fn replay_prefix(
        &self,
        dut: &DriverUnderTest,
        rec: &FrontierRecord,
        env: &mut DdtEnv,
        solver: &mut Solver,
    ) -> Result<Machine, String> {
        self.replay_prefix_observed(dut, rec, env, solver, &mut |_| {})
    }

    /// [`Ddt::replay_prefix`] with a progress observer: `on_quantum` is
    /// called after every replayed quantum with the number of steps it
    /// advanced. Replay of a deep prefix is real work that can outlast a
    /// watchdog deadline, so callers with a supervisor (the fleet worker)
    /// use the observer to keep heartbeating while the scratch sinks hide
    /// the replay from every aggregate.
    pub(crate) fn replay_prefix_observed(
        &self,
        dut: &DriverUnderTest,
        rec: &FrontierRecord,
        env: &mut DdtEnv,
        solver: &mut Solver,
        on_quantum: &mut dyn FnMut(u64),
    ) -> Result<Machine, String> {
        let mut m = self.make_root_machine(dut);
        let mut cursor = ReplayCursor::new(rec.picks.clone(), rec.trailing_skips, rec.steps_total);
        let mut scratch_worklist = Vec::new();
        let mut scratch_next_id = u64::MAX;
        let mut scratch_stats = ExploreStats::default();
        let mut scratch_bugs = HashMap::new();
        while m.steps_total < rec.steps_total {
            let before = m.steps_total;
            let mut exec_pcs = Vec::new();
            let mut new_bug_keys = Vec::new();
            let mut fork_events = Vec::new();
            let end = catch_unwind(AssertUnwindSafe(|| {
                let mut sinks = QuantumSinks {
                    worklist: &mut scratch_worklist,
                    next_id: &mut scratch_next_id,
                    stats: &mut scratch_stats,
                    bugs: &mut scratch_bugs,
                    exec_pcs: &mut exec_pcs,
                    new_bug_keys: &mut new_bug_keys,
                    fork_events: &mut fork_events,
                    replay: Some(&mut cursor),
                };
                self.run_quantum(dut, &mut m, env, solver, &mut sinks)
            }));
            let end = match end {
                Ok(end) => end,
                Err(_) => return Err("replay quantum panicked".to_string()),
            };
            if let Some(why) = &cursor.diverged {
                return Err(why.clone());
            }
            if end.is_some() {
                return Err("path terminated before its checkpointed step count".to_string());
            }
            if m.steps_total == before {
                return Err("replay made no progress".to_string());
            }
            on_quantum(m.steps_total - before);
        }
        if !cursor.exhausted() {
            return Err("choice log not fully consumed at target step count".to_string());
        }
        let fp = m.fingerprint();
        if fp != rec.fp {
            return Err(format!(
                "state fingerprint mismatch after replay (pc {:#x} vs recorded {:#x})",
                fp.pc, rec.fp.pc
            ));
        }
        m.id = rec.id;
        // Search metadata is not derivable from the choice log (it depends
        // on global coverage at fork time), so restore it from the record —
        // guided strategies rank a resumed frontier exactly like the
        // uninterrupted run would.
        m.cov_fresh = rec.cov_fresh;
        m.cov_stamp = rec.cov_stamp;
        // Replay never settles verdicts (the obligation belongs to the
        // exploration loop, not the reconstruction); the record says whether
        // this machine still owes one.
        m.st.verdict_pending = rec.pending;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{resume_parallel, test_parallel};
    use crate::report::Report;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ddt-campaign-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The bug fields a resumed run must reproduce exactly (§4.7): the
    /// dedup key, the classification, the attributed pc, and — the hard
    /// part — the *solved concrete inputs* of every bug.
    fn bug_essence(r: &Report) -> Vec<(String, String, u32, String, String)> {
        let mut v: Vec<_> = r
            .bugs
            .iter()
            .map(|b| {
                (
                    b.key.clone(),
                    format!("{:?}", b.class),
                    b.pc,
                    b.entry.clone(),
                    format!("{:?}", b.inputs),
                )
            })
            .collect();
        v.sort();
        v
    }

    /// Interrupt a serial campaign mid-flight via the stop flag, resume it
    /// from the checkpoint directory, and demand a report identical to the
    /// uninterrupted reference run.
    #[test]
    fn serial_interrupt_resume_matches_uninterrupted() {
        let spec = ddt_drivers::driver_by_name("pcnet").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let reference = Ddt::default().test(&dut);

        let dir = tmp_dir("serial-eq");
        let flag = Arc::new(AtomicBool::new(false));
        let mut policy = CheckpointPolicy::new(dir.clone());
        policy.every_quanta = 8;
        let mut ddt = Ddt::default();
        ddt.config.checkpoint = Some(policy);
        ddt.config.stop_flag = Some(flag.clone());
        let setter = {
            let f = flag.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(25));
                f.store(true, Ordering::Relaxed);
            })
        };
        let partial = ddt.test(&dut);
        setter.join().unwrap();
        // Whether or not the flag won the race, the store must be loadable.
        let ck = load_latest(&dir).expect("checkpoint written");
        assert!(ck.interrupted || ck.finished);

        let resumed = Ddt::default().resume(&dut, &dir).expect("resume");
        assert_eq!(bug_essence(&resumed), bug_essence(&reference));
        assert_eq!(resumed.covered_blocks, reference.covered_blocks);
        assert_eq!(
            resumed.stats.paths_completed + resumed.stats.paths_faulted
                + resumed.stats.paths_infeasible,
            reference.stats.paths_completed + reference.stats.paths_faulted
                + reference.stats.paths_infeasible,
            "terminal path census differs after resume"
        );
        // The resumed run either replayed a frontier or rebuilt a finished
        // report; in the interrupted case it must report replay health.
        if ck.interrupted && !ck.finished {
            assert!(partial.health.checkpoints_written > 0);
            assert!(resumed.health.resume_replayed_paths > 0);
            assert_eq!(resumed.health.resume_replay_failures, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Resuming a campaign that ran to completion is a no-op rebuild: no
    /// re-exploration, same report.
    #[test]
    fn resume_after_clean_finish_is_noop() {
        let dut = DriverUnderTest::from_spec(&ddt_drivers::clean_driver());
        let dir = tmp_dir("finished");
        let mut ddt = Ddt::default();
        ddt.config.checkpoint = Some(CheckpointPolicy::new(dir.clone()));
        let full = ddt.test(&dut);
        let ck = load_latest(&dir).expect("final checkpoint");
        assert!(ck.finished, "clean run must close the campaign");

        let resumed = Ddt::default().resume(&dut, &dir).expect("resume");
        assert!(resumed.bugs.is_empty());
        assert_eq!(resumed.covered_blocks, full.covered_blocks);
        assert_eq!(resumed.stats.insns, full.stats.insns, "no-op resume re-explored");
        assert_eq!(resumed.health.resume_replayed_paths, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_missing_and_empty_dirs() {
        let dut = DriverUnderTest::from_spec(&ddt_drivers::clean_driver());
        let missing = tmp_dir("missing");
        match Ddt::default().resume(&dut, &missing) {
            Err(CampaignError::NoCheckpoint(_)) => {}
            other => panic!("expected NoCheckpoint, got {other:?}"),
        }
        let empty = tmp_dir("empty");
        std::fs::create_dir_all(&empty).unwrap();
        match Ddt::default().resume(&dut, &empty) {
            Err(CampaignError::NoCheckpoint(_)) => {}
            other => panic!("expected NoCheckpoint, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&empty);
    }

    #[test]
    fn resume_refuses_corrupt_checkpoint() {
        let dut = DriverUnderTest::from_spec(&ddt_drivers::clean_driver());
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("checkpoint-000000.ddtc"), b"DDTCgarbage").unwrap();
        match Ddt::default().resume(&dut, &dir) {
            Err(CampaignError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A checkpoint taken under one configuration must not silently seed a
    /// run under another: the budgets and fault plan shape the path set.
    #[test]
    fn resume_refuses_config_mismatch() {
        let dut = DriverUnderTest::from_spec(&ddt_drivers::clean_driver());
        let dir = tmp_dir("mismatch");
        let mut ddt = Ddt::default();
        ddt.config.checkpoint = Some(CheckpointPolicy::new(dir.clone()));
        let _ = ddt.test(&dut);

        let mut other = Ddt::default();
        other.config.interrupt_budget = 0;
        match other.resume(&dut, &dir) {
            Err(CampaignError::Mismatch(_)) => {}
            other => panic!("expected Mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The parallel explorer participates in campaigns too: interrupt a
    /// 4-worker run, resume it in parallel, and compare against the serial
    /// reference (key set + coverage are schedule-independent).
    #[test]
    fn parallel_interrupt_resume_matches_reference() {
        let spec = ddt_drivers::driver_by_name("pcnet").expect("bundled");
        let dut = DriverUnderTest::from_spec(&spec);
        let reference = Ddt::default().test(&dut);

        let dir = tmp_dir("parallel-eq");
        let flag = Arc::new(AtomicBool::new(false));
        let mut policy = CheckpointPolicy::new(dir.clone());
        policy.every_quanta = 8;
        let mut ddt = Ddt::default();
        ddt.config.checkpoint = Some(policy);
        ddt.config.stop_flag = Some(flag.clone());
        let setter = {
            let f = flag.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(25));
                f.store(true, Ordering::Relaxed);
            })
        };
        let partial = test_parallel(&ddt, &dut, 4);
        setter.join().unwrap();
        assert!(partial.health.checkpoints_written > 0);

        let resumed = resume_parallel(&Ddt::default(), &dut, 4, &dir).expect("resume");
        let mut rk: Vec<&str> = resumed.bugs.iter().map(|b| b.key.as_str()).collect();
        let mut sk: Vec<&str> = reference.bugs.iter().map(|b| b.key.as_str()).collect();
        rk.sort_unstable();
        sk.sort_unstable();
        assert_eq!(rk, sk, "parallel resume changed the bug set");
        assert_eq!(resumed.covered_blocks, reference.covered_blocks);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
